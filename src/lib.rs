//! # adaptable-mirroring
//!
//! A reproduction of *Adaptable Mirroring in Cluster Servers*
//! (Gavrilovska, Schwan, Oleson — HPDC 2001): middleware-level event
//! mirroring for cluster servers running Operational Information Systems,
//! with application-specific traffic reduction (filtering, overwriting,
//! coalescing, complex sequence/tuple rules), a modified two-phase-commit
//! checkpointing protocol, and threshold-driven runtime adaptation of the
//! mirroring policy.
//!
//! This umbrella crate re-exports the workspace:
//!
//! * [`core`] — the mirroring engine (the paper's contribution)
//! * [`echo`] — typed event channels, wire format, transports
//! * [`ede`] — the airline Event Derivation Engine substrate
//! * [`edge`] — the massive-fan-out subscriber delivery tier
//! * [`sim`] — the deterministic cluster simulator
//! * [`runtime`] — the threads-and-channels runtime
//! * [`workload`] — FAA/Delta streams, request generators
//! * [`ois`] — assembled OIS server + experiment harness
//!
//! ## Quickstart
//!
//! ```
//! use adaptable_mirroring::runtime::{Cluster, ClusterConfig};
//! use adaptable_mirroring::core::mirrorfn::MirrorFnKind;
//! use adaptable_mirroring::core::event::{Event, PositionFix};
//!
//! let cluster = Cluster::start(ClusterConfig {
//!     mirrors: 2,
//!     kind: MirrorFnKind::Simple,
//!     ..Default::default()
//! });
//! let fix = PositionFix { lat: 33.6, lon: -84.4, alt_ft: 31000.0,
//!                         speed_kts: 450.0, heading_deg: 270.0 };
//! for seq in 1..=100 {
//!     cluster.submit(Event::faa_position(seq, 1, fix));
//! }
//! assert!(cluster.wait_all_processed(100, std::time::Duration::from_secs(5)));
//! // Any mirror can now answer a thin client's initial-state request.
//! let snapshot = cluster.snapshot(2).expect("mirror 2 is live");
//! assert_eq!(snapshot.flight_count(), 1);
//! cluster.shutdown();
//! ```

#![warn(missing_docs)]

pub use mirror_core as core;
pub use mirror_echo as echo;
pub use mirror_ede as ede;
pub use mirror_edge as edge;
pub use mirror_ois as ois;
pub use mirror_runtime as runtime;
pub use mirror_sim as sim;
pub use mirror_workload as workload;
