//! Integration tests of the full simulated OIS cluster: workload crates →
//! experiment harness → core middleware → EDE, asserting the system-level
//! invariants the paper depends on.

use adaptable_mirroring::core::adapt::{AdaptAction, MonitorKind};
use adaptable_mirroring::core::mirrorfn::MirrorFnKind;
use adaptable_mirroring::ois::experiment::{
    mirrors_consistent, run, AdaptSetup, ExperimentConfig, Ingest, RequestTargets,
};
use adaptable_mirroring::workload::delta::DeltaStreamConfig;
use adaptable_mirroring::workload::faa::FaaStreamConfig;
use adaptable_mirroring::workload::requests::RequestPattern;

fn stream(n: u64, size: usize) -> FaaStreamConfig {
    FaaStreamConfig {
        flights: 30,
        total_events: n,
        events_per_sec: 1_000.0,
        event_size: size,
        seed: 0xFAA,
        first_flight: 0,
    }
}

#[test]
fn mixed_streams_replicate_consistently_across_many_mirrors() {
    let r = run(&ExperimentConfig {
        mirrors: 6,
        kind: MirrorFnKind::Simple,
        faa: stream(3_000, 700),
        delta: Some(DeltaStreamConfig { flights: 30, span_us: 3_000_000, ..Default::default() }),
        ..Default::default()
    });
    assert_eq!(r.state_hashes.len(), 7);
    assert!(
        r.state_hashes.windows(2).all(|w| w[0] == w[1]),
        "simple mirroring: every site identical, got {:?}",
        r.state_hashes
    );
}

#[test]
fn selective_mirrors_agree_with_each_other() {
    // Under selective mirroring, mirrors see a thinner stream than the
    // central — but every mirror must still agree with every other mirror.
    let r = run(&ExperimentConfig {
        mirrors: 4,
        kind: MirrorFnKind::Selective { overwrite: 10 },
        faa: stream(3_000, 700),
        ..Default::default()
    });
    assert!(mirrors_consistent(&r), "mirror divergence: {:?}", r.state_hashes);
    // And selectivity is real: central mirrored ~1/10th of the stream.
    assert!(r.central.mirrored <= 3_000 / 5, "mirrored {}", r.central.mirrored);
    assert!(r.central.suppressed >= 3_000 / 2);
}

#[test]
fn coalescing_mirrors_track_latest_positions() {
    let r = run(&ExperimentConfig {
        mirrors: 2,
        kind: MirrorFnKind::Coalescing { coalesce: 10, checkpoint_every: 50 },
        faa: stream(2_000, 700),
        ..Default::default()
    });
    assert!(mirrors_consistent(&r));
    assert!(r.central.mirrored < 2_000 / 4, "coalescing must compress the wire");
}

#[test]
fn deterministic_experiments_repeat_exactly() {
    let cfg = ExperimentConfig {
        mirrors: 2,
        kind: MirrorFnKind::Simple,
        faa: stream(1_000, 500),
        requests: RequestPattern::Constant { rate: 50.0 },
        ..Default::default()
    };
    let a = run(&cfg);
    let b = run(&cfg);
    assert_eq!(a.total_time_s, b.total_time_s);
    assert_eq!(a.update_delay, b.update_delay);
    assert_eq!(a.state_hashes, b.state_hashes);
    assert_eq!(a.requests_served, b.requests_served);
}

#[test]
fn open_loop_requests_are_all_served_under_overload() {
    let r = run(&ExperimentConfig {
        mirrors: 1,
        kind: MirrorFnKind::Simple,
        faa: stream(2_000, 1_000),
        requests: RequestPattern::Constant { rate: 300.0 },
        request_horizon_us: 2_000_000,
        targets: RequestTargets::MirrorsOnly,
        ..Default::default()
    });
    assert!(r.requests_served >= 500, "served {}", r.requests_served);
    assert_eq!(r.request_latency.count, r.requests_served);
    assert!(r.max_pending_requests > 1, "overload must queue requests");
}

#[test]
fn recovery_storm_triggers_and_releases_adaptation() {
    let r = run(&ExperimentConfig {
        mirrors: 2,
        kind: MirrorFnKind::Coalescing { coalesce: 10, checkpoint_every: 50 },
        adapt: Some(AdaptSetup {
            monitor: MonitorKind::PendingRequests,
            primary: 15,
            secondary: 10,
            action: AdaptAction::SwitchMirrorFn {
                normal: MirrorFnKind::Coalescing { coalesce: 10, checkpoint_every: 50 },
                engaged: MirrorFnKind::Overwriting { overwrite: 20, checkpoint_every: 100 },
            },
        }),
        faa: stream(6_000, 700),
        ingest: Ingest::Paced,
        requests: RequestPattern::RecoveryStorm {
            at_us: 1_500_000,
            count: 400,
            spread_us: 300_000,
        },
        targets: RequestTargets::MirrorsOnly,
        ..Default::default()
    });
    assert!(r.adaptations >= 2, "storm must engage and release (got {})", r.adaptations);
    // Engagement happens around the storm, not before it.
    assert!(r.adaptation_times_s[0] >= 1.0, "engaged at {:?}", r.adaptation_times_s);
    assert_eq!(r.requests_served, 400);
}

#[test]
fn paced_and_backlog_ingest_reach_identical_final_state() {
    let base = ExperimentConfig {
        mirrors: 1,
        kind: MirrorFnKind::Simple,
        faa: stream(1_500, 600),
        ..Default::default()
    };
    let backlog = run(&ExperimentConfig { ingest: Ingest::Backlog, ..base.clone() });
    let paced = run(&ExperimentConfig { ingest: Ingest::Paced, ..base });
    assert_eq!(backlog.state_hashes, paced.state_hashes);
    assert_eq!(backlog.events, paced.events);
}

#[test]
fn update_delay_metrics_are_internally_consistent() {
    let r = run(&ExperimentConfig {
        mirrors: 1,
        kind: MirrorFnKind::Simple,
        faa: stream(2_000, 500),
        ingest: Ingest::Paced,
        ..Default::default()
    });
    let d = r.update_delay;
    assert!(d.count > 0);
    assert!(d.min_us <= d.max_us);
    assert!(d.mean_us() >= d.min_us as f64 && d.mean_us() <= d.max_us as f64);
    assert!(!r.delay_series.is_empty());
}

#[test]
fn recorded_trace_replays_to_identical_results() {
    // Record the generated workload to a trace file, load it back, and
    // verify the loaded stream is bit-identical — experiments are portable
    // artifacts, not in-memory accidents.
    let events = adaptable_mirroring::workload::faa::generate(&stream(500, 700));
    let path = std::env::temp_dir().join(format!("mirror-it-{}.mtrc", std::process::id()));
    adaptable_mirroring::echo::trace::save(&path, &events).unwrap();
    let loaded = adaptable_mirroring::echo::trace::load(&path).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(loaded, events);

    // Feeding the loaded trace through an EDE gives the same state hash as
    // the original — replay fidelity end to end.
    let mut a = adaptable_mirroring::ede::Ede::new();
    let mut b = adaptable_mirroring::ede::Ede::new();
    for (_, e) in &events {
        a.process(e);
    }
    for (_, e) in &loaded {
        b.process(e);
    }
    assert_eq!(a.state_hash(), b.state_hash());
}

#[test]
fn utilization_is_sane_and_identifies_the_bottleneck() {
    let r = run(&ExperimentConfig {
        mirrors: 2,
        kind: MirrorFnKind::Simple,
        faa: stream(2_000, 1_000),
        ..Default::default()
    });
    assert_eq!(r.utilization.len(), 3);
    for (i, u) in r.utilization.iter().enumerate() {
        assert!((0.0..=1.0 + 1e-9).contains(u), "site {i} utilization {u} out of range");
    }
    // Under backlog ingest with no requests, the central site (EDE +
    // mirroring + checkpoint coordination) is the binding resource.
    assert!(
        r.utilization[0] >= r.utilization[1],
        "central must be the bottleneck: {:?}",
        r.utilization
    );
    assert!(r.utilization[0] > 0.9, "backlog mode should keep the bottleneck busy");
}

#[test]
fn checkpointing_bounds_backup_memory() {
    // Without commits the backup queue would hold the whole stream; with
    // the protocol running it must stay near the checkpoint interval.
    let r = run(&ExperimentConfig {
        mirrors: 1,
        kind: MirrorFnKind::Simple,
        faa: stream(5_000, 400),
        ingest: Ingest::Paced, // paced: mirror keeps up, commits stay fresh
        ..Default::default()
    });
    assert!(r.central.checkpoints >= 90, "rounds ran: {}", r.central.checkpoints);
    // The run ends fully committed or nearly so; mirrored-minus-pruned is
    // bounded by a few checkpoint intervals.
    // (Checked indirectly: a run that never pruned would have had its
    // queue-management costs explode and the totals diverge.)
    assert!(r.total_time_s < 10.0, "paced 5s stream must not blow up: {}", r.total_time_s);
}
