//! Property-based tests on the core invariants, spanning crates.
#![allow(clippy::field_reassign_with_default)]

use proptest::prelude::*;

use adaptable_mirroring::core::event::{Event, EventBody, EventType, FlightStatus, PositionFix};
use adaptable_mirroring::core::mirrorfn::{CoalescingMirror, MirrorFn};
use adaptable_mirroring::core::params::MirrorParams;
use adaptable_mirroring::core::queue::BackupQueue;
use adaptable_mirroring::core::rules::{Rule, RuleSet};
use adaptable_mirroring::core::status::StatusTable;
use adaptable_mirroring::core::timestamp::{StampOrdering, VectorTimestamp};
use adaptable_mirroring::echo::wire::{decode_frame, encode_frame, Frame};
use adaptable_mirroring::ede::{Ede, OperationalState, ShardMap, ShardedEde, Snapshot};

// ---------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------

fn arb_fix() -> impl Strategy<Value = PositionFix> {
    (-90.0f64..90.0, -180.0f64..180.0, 0.0f64..45_000.0, 0.0f64..600.0, 0.0f64..360.0).prop_map(
        |(lat, lon, alt_ft, speed_kts, heading_deg)| PositionFix {
            lat,
            lon,
            alt_ft,
            speed_kts,
            heading_deg,
        },
    )
}

fn arb_status() -> impl Strategy<Value = FlightStatus> {
    prop::sample::select(FlightStatus::ALL.to_vec())
}

fn arb_body() -> impl Strategy<Value = EventBody> {
    prop_oneof![
        arb_fix().prop_map(EventBody::Position),
        arb_status().prop_map(EventBody::Status),
        (0u32..500, 1u32..500)
            .prop_map(|(b, e)| EventBody::Boarding { boarded: b.min(e), expected: e }),
        (0u32..300, 0u32..300)
            .prop_map(|(l, r)| EventBody::Baggage { loaded: l, reconciled: r.min(l) }),
        (arb_status(), 1u32..10)
            .prop_map(|(status, collapsed)| EventBody::Derived { status, collapsed }),
        (arb_fix(), 1u32..100).prop_map(|(last, count)| EventBody::Coalesced { last, count }),
        prop::collection::vec(any::<u8>(), 0..64).prop_map(|v| EventBody::Opaque(v.into())),
    ]
}

fn arb_event() -> impl Strategy<Value = Event> {
    (
        0u16..4,
        1u64..1_000_000,
        0u32..500,
        arb_body(),
        prop::collection::vec(0u64..1_000_000, 0..4),
        0u32..4096,
        0u64..10_000_000,
    )
        .prop_map(|(stream, seq, flight, body, stamp, padding, ingress)| Event {
            stream,
            seq,
            flight,
            body,
            stamp: VectorTimestamp::from_components(stamp),
            padding,
            ingress_us: ingress,
        })
}

fn arb_stamp() -> impl Strategy<Value = VectorTimestamp> {
    prop::collection::vec(0u64..1000, 0..5).prop_map(VectorTimestamp::from_components)
}

// ---------------------------------------------------------------------
// Wire format
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn wire_roundtrip_any_event(ev in arb_event()) {
        let bytes = encode_frame(&Frame::Data(std::sync::Arc::new(ev.clone())));
        prop_assert_eq!(bytes.len(), 2 + ev.wire_size(),
            "frame = version+kind+exact wire size");
        let back = decode_frame(bytes).unwrap();
        prop_assert_eq!(back, Frame::Data(std::sync::Arc::new(ev)));
    }

    #[test]
    fn wire_decode_never_panics_on_corruption(ev in arb_event(), cut in 0usize..64, flip in 0usize..64) {
        let bytes = encode_frame(&Frame::Data(std::sync::Arc::new(ev)));
        // Truncation never panics.
        let cut = cut.min(bytes.len());
        let _ = decode_frame(bytes.slice(..cut));
        // Bit flips never panic.
        let mut v = bytes.to_vec();
        if !v.is_empty() {
            let i = flip % v.len();
            v[i] ^= 0xFF;
            let _ = decode_frame(bytes::Bytes::from(v));
        }
    }
}

// ---------------------------------------------------------------------
// Vector timestamps: lattice laws
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn stamp_join_meet_laws(a in arb_stamp(), b in arb_stamp(), c in arb_stamp()) {
        // Commutativity.
        prop_assert_eq!(a.join(&b).compare(&b.join(&a)), StampOrdering::Equal);
        prop_assert_eq!(a.meet(&b).compare(&b.meet(&a)), StampOrdering::Equal);
        // Associativity of join.
        prop_assert_eq!(
            a.join(&b).join(&c).compare(&a.join(&b.join(&c))),
            StampOrdering::Equal
        );
        // Bounds: meet ≤ a ≤ join.
        prop_assert!(a.meet(&b).dominated_by(&a));
        prop_assert!(a.dominated_by(&a.join(&b)));
        // Absorption: a ∧ (a ∨ b) = a.
        prop_assert_eq!(a.meet(&a.join(&b)).compare(&a), StampOrdering::Equal);
        // Idempotence.
        prop_assert_eq!(a.join(&a).compare(&a), StampOrdering::Equal);
    }

    #[test]
    fn stamp_compare_is_antisymmetric(a in arb_stamp(), b in arb_stamp()) {
        match a.compare(&b) {
            StampOrdering::Before => prop_assert_eq!(b.compare(&a), StampOrdering::After),
            StampOrdering::After => prop_assert_eq!(b.compare(&a), StampOrdering::Before),
            StampOrdering::Equal => prop_assert_eq!(b.compare(&a), StampOrdering::Equal),
            StampOrdering::Concurrent => {
                prop_assert_eq!(b.compare(&a), StampOrdering::Concurrent)
            }
        }
    }
}

// ---------------------------------------------------------------------
// Backup queue / checkpoint pruning
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn backup_prune_only_removes_dominated(
        seqs in prop::collection::vec((0u16..3, 1u64..100), 1..60),
        commit in arb_stamp(),
    ) {
        let mut q = BackupQueue::new();
        let mut clock = VectorTimestamp::empty();
        for (stream, seq) in seqs {
            let mut e = Event::new(stream, seq, 1, EventBody::Status(FlightStatus::EnRoute));
            clock.advance(stream as usize, seq);
            e.stamp = clock.clone();
            q.push(e);
        }
        let before: Vec<VectorTimestamp> = q.iter().map(|e| e.stamp.clone()).collect();
        q.prune(&commit);
        let after: Vec<VectorTimestamp> = q.iter().map(|e| e.stamp.clone()).collect();
        // Everything surviving is NOT dominated by the commit…
        for s in &after {
            prop_assert!(!s.dominated_by(&commit));
        }
        // …and everything removed WAS dominated.
        for s in &before {
            if !after.contains(s) {
                prop_assert!(s.dominated_by(&commit));
            }
        }
    }
}

// ---------------------------------------------------------------------
// Overwrite rule counting
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn overwrite_keeps_one_in_max_len(n in 1u64..300, max_len in 2u32..20) {
        let mut rs = RuleSet::new()
            .with(Rule::Overwrite { ty: EventType::FaaPosition, max_len });
        let mut table = StatusTable::new();
        let mut mirrored = 0u64;
        for seq in 1..=n {
            let e = Event::faa_position(seq, 1, PositionFix {
                lat: 0.0, lon: 0.0, alt_ft: 0.0, speed_kts: 0.0, heading_deg: 0.0,
            });
            table.observe(&e);
            if rs.evaluate(e, &mut table).mirror.is_some() {
                mirrored += 1;
            }
        }
        // Exactly ⌈n / max_len⌉ survive: the first of each run.
        prop_assert_eq!(mirrored, n.div_ceil(max_len as u64));
    }
}

// ---------------------------------------------------------------------
// EDE determinism and snapshot/replay equivalence
// ---------------------------------------------------------------------

fn arb_ops_events() -> impl Strategy<Value = Vec<Event>> {
    prop::collection::vec(
        (
            0u32..8,
            prop_oneof![
                arb_fix().prop_map(EventBody::Position),
                arb_status().prop_map(EventBody::Status),
                (0u32..200, 1u32..200)
                    .prop_map(|(b, e)| EventBody::Boarding { boarded: b.min(e), expected: e }),
            ],
        ),
        1..120,
    )
    .prop_map(|pairs| {
        pairs
            .into_iter()
            .enumerate()
            .map(|(i, (flight, body))| {
                let mut e = Event::new(0, i as u64 + 1, flight, body);
                e.stamp.advance(0, i as u64 + 1);
                e
            })
            .collect()
    })
}

proptest! {
    #[test]
    fn ede_is_deterministic(events in arb_ops_events()) {
        let mut a = Ede::new();
        let mut b = Ede::new();
        for e in &events {
            prop_assert_eq!(a.process(e), b.process(e));
        }
        prop_assert_eq!(a.state_hash(), b.state_hash());
    }

    #[test]
    fn snapshot_then_replay_converges(events in arb_ops_events(), split in 0usize..120) {
        let split = split.min(events.len());
        // Server processes everything.
        let mut server = OperationalState::new();
        for e in &events {
            server.apply(e);
        }
        // Client snapshots at `split`, then replays the tail.
        let mut at_split = OperationalState::new();
        for e in &events[..split] {
            at_split.apply(e);
        }
        let snap = Snapshot::capture(&at_split, VectorTimestamp::empty());
        let mut client = snap.restore();
        for e in &events[split..] {
            client.apply(e);
        }
        prop_assert_eq!(client.state_hash(), server.state_hash());
    }
}

// ---------------------------------------------------------------------
// Sharded apply-path equivalence (PR 7)
//
// The tentpole claim behind the parallel apply path: because all EDE
// state is per-flight and flight-id routing is sticky, partitioning the
// store into any number of shards and applying events in any order that
// preserves each flight's sub-sequence reaches the same operational
// state as the serial single-store apply.
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn sharded_apply_matches_unsharded_hash(
        events in arb_ops_events(),
        shards in 1usize..12,
        picks in prop::collection::vec(0usize..64, 0..240),
    ) {
        // Serial, unsharded reference.
        let mut reference = Ede::new();
        for e in &events {
            reference.process(e);
        }
        let expected = reference.state_hash();

        // Same stream through the sharded store, original order.
        let map = ShardMap::new(shards);
        let in_order = ShardedEde::new(shards);
        for e in &events {
            in_order.process_shard(map.shard_of(e.flight), e, |_| {}, |_| {});
        }
        prop_assert_eq!(in_order.state_hash(), expected,
            "sharded in-order apply diverged (shards={})", shards);
        prop_assert_eq!(in_order.applied(), events.len() as u64);

        // An arbitrary per-flight-order-preserving interleaving: partition
        // the stream into per-flight queues, then drain them in the pick
        // order proptest chose. This models shard workers racing ahead of
        // each other while each flight's events stay FIFO.
        let mut queues: std::collections::BTreeMap<u32, std::collections::VecDeque<&Event>> =
            std::collections::BTreeMap::new();
        for e in &events {
            queues.entry(e.flight).or_default().push_back(e);
        }
        let interleaved = ShardedEde::new(shards);
        let mut picks = picks.into_iter().cycle();
        while !queues.is_empty() {
            let keys: Vec<u32> = queues.keys().copied().collect();
            let k = keys[picks.next().unwrap_or(0) % keys.len()];
            let q = queues.get_mut(&k).unwrap();
            let e = q.pop_front().unwrap();
            if q.is_empty() {
                queues.remove(&k);
            }
            interleaved.process_shard(map.shard_of(e.flight), e, |_| {}, |_| {});
        }
        prop_assert_eq!(interleaved.state_hash(), expected,
            "per-flight-preserving interleaving diverged (shards={})", shards);
    }

    #[test]
    fn shard_counts_agree_with_each_other(
        events in arb_ops_events(),
        a in 1usize..10,
        b in 1usize..10,
    ) {
        // Any two shard counts agree — the partition is invisible in the
        // canonical hash even when no serial reference is consulted.
        let build = |n: usize| {
            let map = ShardMap::new(n);
            let store = ShardedEde::new(n);
            for e in &events {
                store.process_shard(map.shard_of(e.flight), e, |_| {}, |_| {});
            }
            store
        };
        let sa = build(a);
        let sb = build(b);
        prop_assert_eq!(sa.state_hash(), sb.state_hash());
        prop_assert_eq!(sa.flight_count(), sb.flight_count());
    }
}

// ---------------------------------------------------------------------
// Coalescing conservation
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn coalescing_conserves_events_and_last_fix(
        flights in prop::collection::vec(0u32..5, 1..100),
        cap in 2u32..12,
    ) {
        let mut m = CoalescingMirror::new();
        let mut params = MirrorParams::default();
        params.coalesce = true;
        params.coalesce_max = cap;

        let mut last_fix_per_flight = std::collections::HashMap::new();
        let mut out = Vec::new();
        for (i, &flight) in flights.iter().enumerate() {
            let fix = PositionFix {
                lat: i as f64,
                lon: 0.0,
                alt_ft: 0.0,
                speed_kts: 0.0,
                heading_deg: 0.0,
            };
            last_fix_per_flight.insert(flight, fix);
            let mut e = Event::faa_position(i as u64 + 1, flight, fix);
            e.stamp.advance(0, i as u64 + 1);
            out.extend(m.prepare(vec![e], &params));
        }
        out.extend(m.flush(&params));

        // Conservation: the counts of coalesced events sum to the input.
        let total: u64 = out
            .iter()
            .map(|e| match &e.body {
                EventBody::Coalesced { count, .. } => *count as u64,
                _ => 1,
            })
            .sum();
        prop_assert_eq!(total, flights.len() as u64);

        // No run exceeds the cap.
        for e in &out {
            if let EventBody::Coalesced { count, .. } = &e.body {
                prop_assert!(*count <= cap);
            }
        }

        // The last coalesced event per flight carries that flight's last fix.
        for (&flight, &fix) in &last_fix_per_flight {
            let last = out.iter().rev().find(|e| e.flight == flight).unwrap();
            if let EventBody::Coalesced { last: got, .. } = &last.body {
                prop_assert_eq!(got.lat, fix.lat);
            }
        }
    }
}

// ---------------------------------------------------------------------
// Delta state-transfer: base + delta ≡ full restore (PR 10)
//
// The claim every StateSync consumer relies on: holding the state of a
// marked base capture and folding in a delta captured against that base
// reaches exactly the state a fresh full snapshot would install — for
// any divergence, including migration purges (tombstones travel).
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn delta_catchup_matches_full_restore(
        events in arb_ops_events(),
        split in 0usize..120,
        purges in prop::collection::vec(0u32..8, 0..4),
    ) {
        let split = split.min(events.len());
        // Producer applies the prefix, then marks the consumer's base —
        // what a seed capture does on the live site.
        let mut server = OperationalState::new();
        for e in &events[..split] {
            server.apply(e);
        }
        let mut base_frontier = VectorTimestamp::empty();
        base_frontier.advance(0, split as u64);
        server.mark_frontier(&base_frontier);
        let base_snap = Snapshot::capture(&server, base_frontier.clone());

        // Divergence: the tail of the stream plus migration purges.
        for e in &events[split..] {
            server.apply(e);
        }
        for &f in &purges {
            server.retain_flights(|id| id != f);
        }

        let mut as_of = VectorTimestamp::empty();
        as_of.advance(0, events.len() as u64 + 1);
        let delta = server
            .capture_delta(&base_frontier, as_of)
            .expect("a just-marked base is inside the delta window");

        // Catch-up: restore the base, fold the delta.
        let mut caught_up = base_snap.restore();
        caught_up.apply_delta(&delta);
        prop_assert_eq!(caught_up.state_hash(), server.state_hash(),
            "base+delta must hash identically to the producer");
        // …and to what a full fresh snapshot would have installed.
        let full = Snapshot::capture(&server, VectorTimestamp::empty()).restore();
        prop_assert_eq!(caught_up.state_hash(), full.state_hash());

        // Tombstones really travel: a purged flight is absent on the
        // consumer exactly when it is absent on the producer.
        for &f in &purges {
            prop_assert_eq!(caught_up.flight(f).is_none(), server.flight(f).is_none(),
                "purge of flight {} must replicate", f);
        }

        // The delta survives the wire byte-exactly (what the WAN tier
        // actually ships).
        let bytes = adaptable_mirroring::echo::wire::encode_delta(&delta);
        prop_assert_eq!(bytes.len(), delta.wire_size(), "encode = declared wire size");
        let back = adaptable_mirroring::echo::wire::decode_delta(bytes).unwrap();
        prop_assert_eq!(back, delta);
    }
}

// ---------------------------------------------------------------------
// Content partitioning: per-group apply ≡ unpartitioned apply
// ---------------------------------------------------------------------

use adaptable_mirroring::core::{PartitionMap, PARTITION_SLOTS};
use adaptable_mirroring::ede::union_state_hash;

/// An arbitrary slot→group table over up to `groups` groups (epoch 1, the
/// first post-uniform era).
fn arb_partition_map(groups: u16) -> impl Strategy<Value = PartitionMap> {
    prop::collection::vec(0u16..groups, PARTITION_SLOTS)
        .prop_map(|slots| PartitionMap::from_parts(1, slots))
}

proptest! {
    /// The equivalence claim the partition-scale experiment relies on:
    /// routing an interleaved stream per-group and applying each group's
    /// share independently yields per-partition states whose union hash
    /// equals the state hash of one site applying the whole stream. Holds
    /// for ANY map because routing is per-flight: each flight's event
    /// subsequence lands at exactly one group, in order.
    #[test]
    fn partitioned_apply_union_equals_unpartitioned(
        map in (1u16..5).prop_flat_map(arb_partition_map),
        events in prop::collection::vec(arb_event(), 1..200),
    ) {
        let mut whole = OperationalState::new();
        let mut parts: Vec<OperationalState> =
            (0..map.groups()).map(|_| OperationalState::new()).collect();
        for ev in &events {
            whole.apply(ev);
            parts[map.group_of(ev.flight) as usize].apply(ev);
        }
        prop_assert_eq!(union_state_hash(parts.iter()), whole.state_hash());
        // The groups' flight sets partition the unpartitioned set: disjoint
        // (no flight counted twice) and covering (none lost).
        let total: usize = parts.iter().map(|p| p.flight_count()).sum();
        prop_assert_eq!(total, whole.flight_count());
    }

    /// Epoch fencing is monotone under arbitrary delivery orders: after any
    /// interleaving of adoptions, the surviving map is the one with the
    /// highest epoch seen, and re-deliveries are no-ops.
    #[test]
    fn partition_adoption_is_monotone(epochs in prop::collection::vec(1u64..50, 1..40)) {
        let mut current: Option<PartitionMap> = None;
        let mut highest = 0u64;
        for (i, &e) in epochs.iter().enumerate() {
            // Tag each map's slot table with its position so we can tell
            // which delivery won.
            let incoming =
                PartitionMap::from_parts(e, vec![(i % u16::MAX as usize) as u16; PARTITION_SLOTS]);
            let adopted = PartitionMap::adopt(&mut current, &incoming);
            prop_assert_eq!(adopted, e > highest, "adopt iff strictly newer");
            highest = highest.max(e);
            prop_assert_eq!(current.as_ref().unwrap().epoch(), highest);
        }
    }
}
