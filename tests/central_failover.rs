//! Central-site failover: the deepest payoff of mirroring. When the
//! coordinator node dies, any mirror's replicated state can seed a new
//! coordinator and the service continues — clients keep their
//! subscriptions, mirrors keep theirs, and the stream picks up where the
//! sources left off.

use std::time::Duration;

use adaptable_mirroring::core::event::{Event, FlightStatus, PositionFix};
use adaptable_mirroring::core::mirrorfn::MirrorFnKind;
use adaptable_mirroring::runtime::{Cluster, ClusterConfig};

fn fix() -> PositionFix {
    PositionFix { lat: 41.9, lon: -87.6, alt_ft: 24_000.0, speed_kts: 440.0, heading_deg: 200.0 }
}

#[test]
fn promoted_mirror_takes_over_as_coordinator() {
    let cluster = Cluster::start(ClusterConfig {
        mirrors: 3,
        kind: MirrorFnKind::Simple,
        suspect_after: 0,
        durability: None,
        failover: None,
        scale: None,
        ..Default::default()
    });
    cluster.central().handle().set_params(false, 1, 20);
    let updates = cluster.subscribe_updates();

    // Normal operation.
    for seq in 1..=300u64 {
        cluster.submit(Event::faa_position(seq, (seq % 9) as u32, fix()));
    }
    cluster.submit(Event::delta_status(1, 4, FlightStatus::Landed));
    assert!(cluster.wait_all_processed(301, Duration::from_secs(10)));
    let pre_crash_hash = cluster.state_hashes()[1]; // a mirror's view

    // The central node dies; mirror 2 is promoted.
    cluster.stop_central();
    let survivors = cluster.promote_mirror(2).unwrap();
    assert_eq!(survivors, vec![1, 3]);

    // The new coordinator starts from the replicated state…
    assert!(
        cluster.wait(Duration::from_secs(10), |c| c.central().state_hash() == pre_crash_hash),
        "promoted coordinator must hold the replicated state"
    );

    // …and service continues: sources resume, updates flow, mirrors track.
    let update_backlog_before = updates.backlog();
    for seq in 301..=500u64 {
        cluster.submit(Event::faa_position(seq, (seq % 9) as u32, fix()));
    }
    // (The new site's processed counter starts at zero — its pre-crash
    // history lives in the seeded state, not the counter.)
    assert!(
        cluster.wait(Duration::from_secs(10), |c| c.central().processed() >= 200),
        "new coordinator stalled at {}",
        cluster.central().processed()
    );
    // Survivor mirrors receive the post-promotion stream.
    let survivors_track = cluster.wait(Duration::from_secs(10), |c| {
        [1u16, 3].iter().all(|&s| c.mirror(s).processed() >= 501)
    });
    assert!(survivors_track, "survivors must keep mirroring under the new coordinator");

    // State convergence across the new cluster (central + survivors).
    let converged = cluster.wait(Duration::from_secs(10), |c| {
        let h = c.state_hashes();
        h[0] == h[1] && h[0] == h[2] // central, mirror 1, mirror 3
    });
    assert!(converged, "hashes: {:?}", cluster.state_hashes());

    // Regular clients kept their subscription across the failover: new
    // updates arrived on the OLD subscriber? No — the update channel
    // belongs to the failed central; a recovering client re-subscribes to
    // the new coordinator (the paper's thin-client recovery flow).
    let _ = update_backlog_before;
    let new_updates = cluster.subscribe_updates();
    for seq in 501..=520u64 {
        cluster.submit(Event::faa_position(seq, 1, fix()));
    }
    let mut got = 0;
    while got < 20 {
        match new_updates.recv_timeout(Duration::from_secs(5)) {
            Some(_) => got += 1,
            None => break,
        }
    }
    assert_eq!(got, 20, "re-subscribed clients receive the live stream");

    // Checkpointing runs under the new coordinator.
    let committed = cluster.wait(Duration::from_secs(10), |c| {
        c.central().committed().map(|t| t.get(0) >= 480).unwrap_or(false)
    });
    assert!(committed, "commit frontier: {:?}", cluster.central().committed());

    // …and the new coordinator answers initial-state requests directly.
    let snap = cluster.snapshot(0).unwrap();
    assert_eq!(snap.flight_count(), 9);
    cluster.shutdown();
}
