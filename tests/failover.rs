//! Failure detection and mirror recovery — the paper's §6 "future work"
//! extension: "extending the mirroring infrastructure with recovery
//! support, for both client failures, and failures of a node within the
//! cluster server."

use std::time::Duration;

use adaptable_mirroring::core::event::{Event, PositionFix};
use adaptable_mirroring::core::mirrorfn::MirrorFnKind;
use adaptable_mirroring::runtime::{Cluster, ClusterConfig};

fn fix() -> PositionFix {
    PositionFix { lat: 40.6, lon: -73.8, alt_ft: 20_000.0, speed_kts: 420.0, heading_deg: 90.0 }
}

/// Paced feed: in a real deployment events arrive over time, so checkpoint
/// rounds are far slower than channel transit. A tiny inter-batch pause
/// keeps the round rate realistic relative to reply latency (burst-fast
/// rounds would make reply lag indistinguishable from failure).
fn feed(cluster: &Cluster, from: u64, to: u64) {
    for seq in from..=to {
        cluster.submit(Event::faa_position(seq, (seq % 6) as u32, fix()));
        if seq % 10 == 0 {
            std::thread::sleep(Duration::from_micros(500));
        }
    }
}

#[test]
fn dead_mirror_is_detected_and_commits_resume() {
    let cluster = Cluster::start(ClusterConfig {
        mirrors: 2,
        kind: MirrorFnKind::Simple,
        suspect_after: 5,
        durability: None,
        failover: None,
        scale: None,
        ..Default::default()
    });
    cluster.central().handle().set_params(false, 1, 20);

    feed(&cluster, 1, 100);
    assert!(cluster.wait_all_processed(100, Duration::from_secs(5)));

    // Mirror 2 crashes. Keep traffic flowing so checkpoint rounds keep
    // turning over (detection counts missed rounds, not wall time).
    cluster.fail_mirror(2).unwrap();
    feed(&cluster, 101, 400);

    let detected = cluster.wait(Duration::from_secs(10), |c| c.failed_mirrors() == vec![2]);
    assert!(detected, "failed mirrors: {:?}", cluster.failed_mirrors());

    // Commits resume among the survivors past the crash point.
    feed(&cluster, 401, 500);
    let committed = cluster.wait(Duration::from_secs(10), |c| {
        c.central().committed().map(|t| t.get(0) >= 450).unwrap_or(false)
    });
    assert!(committed, "commit frontier: {:?}", cluster.central().committed());
    // Survivor consistency holds.
    assert_eq!(cluster.state_hashes()[0], cluster.state_hashes()[1]);
    cluster.shutdown();
}

#[test]
fn rejoined_mirror_recovers_full_state_and_participates() {
    let cluster = Cluster::start(ClusterConfig {
        mirrors: 2,
        kind: MirrorFnKind::Simple,
        suspect_after: 5,
        durability: None,
        failover: None,
        scale: None,
        ..Default::default()
    });
    cluster.central().handle().set_params(false, 1, 20);

    feed(&cluster, 1, 200);
    assert!(cluster.wait_all_processed(200, Duration::from_secs(5)));

    cluster.fail_mirror(2).unwrap();
    feed(&cluster, 201, 500);
    assert!(cluster.wait(Duration::from_secs(10), |c| c.failed_mirrors() == vec![2]));

    // Bring a replacement up, seeded from the central site, while traffic
    // continues to flow.
    cluster.rejoin_mirror(2).unwrap();
    assert!(cluster.failed_mirrors().is_empty());
    feed(&cluster, 501, 700);

    assert!(
        cluster.wait(Duration::from_secs(10), |c| c.central().processed() >= 700),
        "central stalled"
    );
    // The replacement converges to the same state as central & mirror 1.
    let converged = cluster.wait(Duration::from_secs(10), |c| {
        let h = c.state_hashes();
        h[0] == h[1] && h[1] == h[2]
    });
    assert!(converged, "hashes {:?}", cluster.state_hashes());

    // …and it answers initial-state requests like any other mirror.
    let snap = cluster.snapshot(2).expect("rejoined mirror live");
    assert_eq!(snap.flight_count(), 6);

    // …and checkpoint rounds include it again (commits keep advancing).
    feed(&cluster, 701, 800);
    let committed = cluster.wait(Duration::from_secs(10), |c| {
        c.central().committed().map(|t| t.get(0) >= 750).unwrap_or(false)
    });
    assert!(committed, "commit frontier: {:?}", cluster.central().committed());
    cluster.shutdown();
}

#[test]
fn detection_disabled_by_default_never_excludes() {
    let cluster = Cluster::start(ClusterConfig {
        mirrors: 2,
        kind: MirrorFnKind::Simple,
        suspect_after: 0, // paper default: no timeouts, no exclusion
        durability: None,
        failover: None,
        scale: None,
        ..Default::default()
    });
    cluster.central().handle().set_params(false, 1, 10);
    feed(&cluster, 1, 50);
    assert!(cluster.wait_all_processed(50, Duration::from_secs(5)));
    cluster.fail_mirror(2).unwrap();
    feed(&cluster, 51, 300);
    assert!(cluster.wait(Duration::from_secs(5), |c| c.central().processed() >= 300));
    std::thread::sleep(Duration::from_millis(100));
    assert!(cluster.failed_mirrors().is_empty(), "no detection when disabled");
    // Commits stall (the dead participant never replies) — the documented
    // price of the timeout-free protocol, and why §6 plans recovery.
    let frontier = cluster.central().committed().map(|t| t.get(0)).unwrap_or(0);
    assert!(frontier <= 60, "commits should stall near the crash, got {frontier}");
    cluster.shutdown();
}
