//! Elastic membership end to end: a request storm drives the central
//! `ScalePolicy` to spawn a fresh mirror mid-traffic — seeded from the
//! epoch-cached snapshot frame plus replay, admitted at the next
//! membership epoch, serving gateway requests — and the quiesce after the
//! storm retires it again. No `&mut Cluster` anywhere: every membership
//! change goes through the epoch-stamped registry.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use adaptable_mirroring::core::adapt::{AdaptAction, MonitorKind, MonitorThresholds, ScalePolicy};
use adaptable_mirroring::core::event::{Event, PositionFix};
use adaptable_mirroring::core::membership::{MembershipError, SiteState};
use adaptable_mirroring::core::mirrorfn::MirrorFnKind;
use adaptable_mirroring::runtime::{Cluster, ClusterConfig, ScaleEvent};

fn fix() -> PositionFix {
    PositionFix { lat: 33.6, lon: -84.4, alt_ft: 31_000.0, speed_kts: 450.0, heading_deg: 270.0 }
}

/// Paced background feeder: keeps checkpoint rounds (the scale-signal
/// transport) turning over until the test is done with it.
fn spawn_feeder(
    cluster: Arc<Cluster>,
    stop: Arc<AtomicBool>,
    seq: Arc<AtomicU64>,
) -> std::thread::JoinHandle<()> {
    std::thread::spawn(move || {
        while !stop.load(Ordering::Relaxed) {
            let s = seq.fetch_add(1, Ordering::Relaxed) + 1;
            cluster.submit(Event::faa_position(s, (s % 8) as u32, fix()));
            std::thread::sleep(Duration::from_micros(250));
        }
    })
}

#[test]
fn storm_triggers_scale_out_and_quiesce_retires() {
    let cluster = Arc::new(Cluster::start(ClusterConfig {
        mirrors: 1,
        kind: MirrorFnKind::Simple,
        suspect_after: 0,
        durability: None,
        failover: None,
        scale: Some(ScalePolicy {
            thresholds: MonitorThresholds::new(12, 8),
            sustain: 2,
            cooldown: 4,
            max_mirrors: 2,
            min_mirrors: 1,
        }),
        ..Default::default()
    }));
    cluster.central().handle().set_params(false, 1, 10);
    assert_eq!(cluster.epoch(), 0);
    assert_eq!(cluster.mirror_ids(), vec![1]);

    // Gateway on the only mirror, with a per-request pad so a burst queues
    // and the pending gauge rides checkpoint replies to the central
    // controller.
    let gateway = cluster.mirror(1).serve_requests(Duration::from_millis(3));
    let client = gateway.client();

    let stop = Arc::new(AtomicBool::new(false));
    let seq = Arc::new(AtomicU64::new(0));
    let feeder = spawn_feeder(Arc::clone(&cluster), Arc::clone(&stop), Arc::clone(&seq));

    // Let normal operation settle; no scale event may fire while idle.
    std::thread::sleep(Duration::from_millis(100));
    assert!(cluster.poll_scale().is_empty(), "idle cluster must not scale");

    // The storm: a deep queue of padded requests holds PendingRequests
    // over the primary threshold across sustained rounds.
    let mut receivers = Vec::new();
    let mut spawned = None;
    let deadline = Instant::now() + Duration::from_secs(20);
    while spawned.is_none() && Instant::now() < deadline {
        for _ in 0..40 {
            receivers.push(client.fire().unwrap());
        }
        for ev in cluster.poll_scale() {
            if let ScaleEvent::Spawned { site, epoch } = ev {
                spawned = Some((site, epoch));
            }
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    let (site, spawn_epoch) = spawned.expect("storm must trigger scale-out");
    assert_eq!(site, 2, "first elastic mirror takes the next never-used id");
    assert!(spawn_epoch >= 1, "admission must bump the membership epoch");
    assert_eq!(cluster.epoch(), spawn_epoch);
    assert_eq!(cluster.membership().state_of(2), Some(SiteState::Live));
    assert_eq!(cluster.mirror_ids(), vec![1, 2]);

    // Drain the storm so the cluster can converge and later quiesce.
    for r in receivers {
        let _ = r.recv_timeout(Duration::from_secs(10));
    }

    // The spawned mirror converges to the same replicated state as the
    // central site and the original mirror, under live traffic.
    let converged = cluster.wait(Duration::from_secs(10), |c| {
        let h = c.state_hashes();
        c.mirror(2).processed() > 0 && h.windows(2).all(|w| w[0] == w[1])
    });
    assert!(converged, "spawned mirror must converge: {:?}", cluster.state_hashes());

    // …and it serves gateway requests like any born-at-start mirror.
    let gw2 = cluster.mirror(2).serve_requests(Duration::ZERO);
    let snap = gw2.client().fetch(Duration::from_secs(5)).expect("spawned mirror serves");
    assert!(snap.flight_count() > 0, "snapshot from the spawned mirror carries state");
    gw2.stop();

    // Checkpoint rounds kept committing across the epoch change.
    let committed_after_spawn = cluster.central().committed().map(|t| t.get(0)).unwrap_or(0);
    assert!(
        cluster.wait(Duration::from_secs(10), |c| {
            c.central().committed().map(|t| t.get(0) > committed_after_spawn + 50).unwrap_or(false)
        }),
        "commits must advance with the spawned mirror voting: {:?}",
        cluster.central().committed()
    );

    // Quiesce: the gauge sits at zero, the sustained under-threshold
    // streak (after the cooldown) retires the extra mirror.
    let mut retired = None;
    let deadline = Instant::now() + Duration::from_secs(20);
    while retired.is_none() && Instant::now() < deadline {
        for ev in cluster.poll_scale() {
            if let ScaleEvent::Retired { site, epoch } = ev {
                retired = Some((site, epoch));
            }
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    let (gone, retire_epoch) = retired.expect("quiesce must retire the spawned mirror");
    assert_eq!(gone, 2, "scale-in retires the youngest mirror");
    assert!(retire_epoch > spawn_epoch);
    assert_eq!(cluster.epoch(), retire_epoch);
    assert_eq!(cluster.membership().state_of(2), Some(SiteState::Retired));
    assert_eq!(cluster.mirror_ids(), vec![1], "min_mirrors floor holds");
    assert!(matches!(cluster.snapshot(2), Err(MembershipError::Retired(2))));

    // Rounds still commit in the shrunk membership.
    let committed_after_retire = cluster.central().committed().map(|t| t.get(0)).unwrap_or(0);
    assert!(
        cluster.wait(Duration::from_secs(10), |c| {
            c.central().committed().map(|t| t.get(0) > committed_after_retire + 50).unwrap_or(false)
        }),
        "commits must survive the scale-in: {:?}",
        cluster.central().committed()
    );

    stop.store(true, Ordering::Relaxed);
    feeder.join().unwrap();
    gateway.stop();
    match Arc::try_unwrap(cluster) {
        Ok(c) => c.shutdown(),
        Err(_) => panic!("cluster still shared"),
    }
}

/// Satellite: a mirror joining while the §4.3 adaptation oscillator has
/// the degraded profile *engaged* adopts the in-force generation-stamped
/// directive at seed time, then follows the release back down like every
/// other site. Joining must not fork the parameter history.
#[test]
fn mirror_added_mid_engagement_adopts_in_force_directive() {
    let normal = MirrorFnKind::Coalescing { coalesce: 10, checkpoint_every: 25 };
    let degraded = MirrorFnKind::Overwriting { overwrite: 20, checkpoint_every: 100 };
    let cluster = Arc::new(Cluster::start(ClusterConfig {
        mirrors: 1,
        kind: normal,
        suspect_after: 0,
        durability: None,
        failover: None,
        scale: None,
        ..Default::default()
    }));
    cluster.central().handle().set_monitor_values(MonitorKind::PendingRequests, 10, 7);
    cluster
        .central()
        .handle()
        .set_adapt_action(AdaptAction::SwitchMirrorFn { normal, engaged: degraded });

    let gateway = cluster.mirror(1).serve_requests(Duration::from_millis(4));
    let client = gateway.client();
    let stop = Arc::new(AtomicBool::new(false));
    let seq = Arc::new(AtomicU64::new(0));
    let feeder = spawn_feeder(Arc::clone(&cluster), Arc::clone(&stop), Arc::clone(&seq));

    // Deep storm: engagement must hold while the new site joins.
    let mut receivers = Vec::new();
    for _ in 0..200 {
        receivers.push(client.fire().unwrap());
    }
    let engaged = cluster
        .wait(Duration::from_secs(10), |c| c.central().handle().params().overwrite_max == 20);
    assert!(engaged, "storm must engage the degraded profile");

    // Join mid-engagement.
    let site = cluster.add_mirror().expect("add mirror mid-engagement");
    assert_eq!(site, 2);
    let in_force = cluster.central().handle().params();
    let adopted = cluster.mirror(2).handle().params();
    assert_eq!(adopted.overwrite_max, 20, "new mirror must adopt the engaged profile");
    assert_eq!(
        adopted.generation, in_force.generation,
        "adopted directive must carry the in-force generation stamp"
    );

    // Storm drains → the release directive (next generation) reaches the
    // late joiner through the piggybacked commit, like every other site.
    for r in receivers {
        let _ = r.recv_timeout(Duration::from_secs(10));
    }
    let released = cluster.wait(Duration::from_secs(10), |c| {
        let p = c.mirror(2).handle().params();
        p.coalesce_max == 10 && p.checkpoint_every == 25 && p.generation > in_force.generation
    });
    assert!(released, "late joiner must follow the release: {:?}", {
        let m = cluster.mirror(2);
        let p = m.handle().params();
        p
    });

    stop.store(true, Ordering::Relaxed);
    feeder.join().unwrap();
    gateway.stop();
    match Arc::try_unwrap(cluster) {
        Ok(c) => c.shutdown(),
        Err(_) => panic!("cluster still shared"),
    }
}
