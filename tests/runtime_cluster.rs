//! Integration tests of the real (threaded) runtime: live clusters over
//! in-process channels and over TCP, exercising the same middleware the
//! simulator measures.

use std::time::Duration;

use adaptable_mirroring::core::api::{MirrorConfig, MirrorHandle};
use adaptable_mirroring::core::event::{Event, EventType, FlightStatus, PositionFix};
use adaptable_mirroring::core::mirrorfn::MirrorFnKind;
use adaptable_mirroring::echo::channel::EventChannel;
use adaptable_mirroring::echo::transport::TcpTransport;
use adaptable_mirroring::runtime::bridge::{central_endpoint, mirror_endpoint};
use adaptable_mirroring::runtime::{Cluster, ClusterConfig, MirrorSite, RuntimeClock};

fn fix(alt: f64) -> PositionFix {
    PositionFix { lat: 10.0, lon: 20.0, alt_ft: alt, speed_kts: 400.0, heading_deg: 45.0 }
}

#[test]
fn four_mirror_cluster_replicates_a_full_day() {
    let cluster = Cluster::start(ClusterConfig { mirrors: 4, ..Default::default() });
    let mut seq = 0u64;
    // Positions + full lifecycle for 8 flights.
    for round in 0..50 {
        for flight in 0..8u32 {
            seq += 1;
            cluster.submit(Event::faa_position(seq, flight, fix(1000.0 * round as f64)));
        }
    }
    let mut dseq = 0u64;
    for flight in 0..8u32 {
        for status in [
            FlightStatus::Boarding,
            FlightStatus::Departed,
            FlightStatus::Landed,
            FlightStatus::AtGate,
        ] {
            dseq += 1;
            cluster.submit(Event::delta_status(dseq, flight, status));
        }
    }
    let total = 400 + 32;
    assert!(
        cluster.wait_all_processed(total, Duration::from_secs(10)),
        "processed: central {} mirrors {:?}",
        cluster.central().processed(),
        cluster.mirror_ids().iter().map(|&s| cluster.mirror(s).processed()).collect::<Vec<_>>()
    );
    let hashes = cluster.state_hashes();
    assert!(hashes.windows(2).all(|w| w[0] == w[1]), "{hashes:?}");
    // Arrival derivation happened everywhere (AtGate ⇒ Arrived).
    let snap = cluster.snapshot(3).expect("mirror 3 live");
    assert_eq!(snap.flight(0).map(|f| f.status), Some(FlightStatus::Arrived));
    cluster.shutdown();
}

#[test]
fn dynamic_reconfiguration_mid_stream() {
    let cluster = Cluster::start(ClusterConfig { mirrors: 1, ..Default::default() });
    for seq in 1..=50u64 {
        cluster.submit(Event::faa_position(seq, 1, fix(100.0)));
    }
    assert!(cluster.wait(Duration::from_secs(5), |c| c.mirror(1).processed() >= 50));

    // Table-1 dynamic call: switch to 1-in-25 overwriting, live.
    cluster.central().handle().set_overwrite(EventType::FaaPosition, 25);
    for seq in 51..=150u64 {
        cluster.submit(Event::faa_position(seq, 1, fix(200.0)));
    }
    assert!(cluster.wait(Duration::from_secs(5), |c| c.central().processed() >= 150));
    std::thread::sleep(Duration::from_millis(100));
    let mirror_seen = cluster.mirror(1).processed();
    assert!(
        (50..=60).contains(&(mirror_seen as i64)),
        "after reconfig the mirror should see ~4 of 100 new events, saw {} total",
        mirror_seen
    );
    cluster.shutdown();
}

#[test]
fn concurrent_submitters_do_not_corrupt_state() {
    let cluster = std::sync::Arc::new(Cluster::start(ClusterConfig {
        mirrors: 2,
        kind: MirrorFnKind::Simple,
        suspect_after: 0,
        durability: None,
        failover: None,
        scale: None,
        ..Default::default()
    }));
    // Four threads, each its own stream id, so per-stream seq stays unique.
    let mut handles = Vec::new();
    for stream in 0..4u16 {
        let cluster = std::sync::Arc::clone(&cluster);
        handles.push(std::thread::spawn(move || {
            for seq in 1..=100u64 {
                let mut e = Event::faa_position(seq, stream as u32, fix(5.0));
                e.stream = stream;
                cluster.submit(e);
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert!(cluster.wait_all_processed(400, Duration::from_secs(10)));
    let hashes = cluster.state_hashes();
    assert!(hashes.windows(2).all(|w| w[0] == w[1]), "{hashes:?}");
    match std::sync::Arc::try_unwrap(cluster) {
        Ok(c) => c.shutdown(),
        Err(_) => panic!("cluster still shared"),
    }
}

#[test]
fn checkpoint_commits_under_live_load() {
    let cluster = Cluster::start(ClusterConfig { mirrors: 2, ..Default::default() });
    cluster.central().handle().set_params(false, 1, 20);
    for seq in 1..=200u64 {
        cluster.submit(Event::faa_position(seq, (seq % 3) as u32, fix(9.0)));
    }
    assert!(cluster.wait_all_processed(200, Duration::from_secs(10)));
    assert!(
        cluster.wait(Duration::from_secs(5), |c| {
            c.central().committed().map(|t| t.get(0) >= 160).unwrap_or(false)
        }),
        "commit frontier: {:?}",
        cluster.central().committed()
    );
    cluster.shutdown();
}

#[test]
fn tcp_bridged_mirror_matches_inproc_mirror() {
    // Cluster channels.
    let data = EventChannel::new("t.data");
    let ctrl_down = EventChannel::new("t.ctrl.down");
    let ctrl_up = EventChannel::new("t.ctrl.up");
    let clock = RuntimeClock::new();

    // In-proc mirror (site 1).
    let mut local = MirrorSite::start(
        MirrorHandle::new(MirrorConfig::default().build_mirror(1)),
        clock.clone(),
        &data,
        &ctrl_down,
        ctrl_up.publisher(),
    );

    // TCP-bridged mirror (site 2) in a "remote process".
    let down_listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let up_listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let down_addr = down_listener.local_addr().unwrap();
    let up_addr = up_listener.local_addr().unwrap();
    let remote = std::thread::spawn(move || {
        let down = TcpTransport::accept_one(&down_listener).unwrap();
        let up = TcpTransport::connect(up_addr).unwrap();
        let (mut site, bridge) =
            mirror_endpoint(Box::new(down), Box::new(up), |data, ctrl_down, ctrl_up| {
                MirrorSite::start(
                    MirrorHandle::new(MirrorConfig::default().build_mirror(2)),
                    RuntimeClock::new(),
                    data,
                    ctrl_down,
                    ctrl_up.publisher(),
                )
            });
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while site.processed() < 300 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        let hash = site.state_hash();
        let n = site.processed();
        site.stop();
        bridge.stop();
        bridge.join();
        (n, hash)
    });
    let down = TcpTransport::connect(down_addr).unwrap();
    let up = TcpTransport::accept_one(&up_listener).unwrap();
    let bridge =
        central_endpoint(&data, &ctrl_down, ctrl_up.publisher(), Box::new(down), Box::new(up));

    // Publish the same stamped stream to both mirrors.
    let p = data.publisher();
    let mut clock_stamp = adaptable_mirroring::core::timestamp::VectorTimestamp::new(1);
    for seq in 1..=300u64 {
        let mut e = Event::faa_position(seq, (seq % 12) as u32, fix(500.0));
        clock_stamp.advance(0, seq);
        e.stamp = clock_stamp.clone();
        p.publish(e.into());
    }

    // Stop our bridge endpoint first so the remote side's join can finish.
    bridge.stop();
    let (remote_n, remote_hash) = remote.join().unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while local.processed() < 300 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(remote_n, 300);
    assert_eq!(local.processed(), 300);
    assert_eq!(
        local.state_hash(),
        remote_hash,
        "a TCP-bridged mirror must hold the same state as an in-proc one"
    );
    local.stop();
    bridge.join();
}
