//! Capstone integration: a full operational day (banks, rotations,
//! connections, crews, baggage) streamed through a live mirrored cluster,
//! consumed by an operations monitor on the regular update stream, and
//! cross-checked against the scenario's ground truth — then the same day
//! re-interpreted from a mirror snapshot + replay, reaching the identical
//! picture.

use std::time::Duration;

use adaptable_mirroring::core::mirrorfn::MirrorFnKind;
use adaptable_mirroring::ede::ops::{ConnectionPlan, OpsAlert, OpsMonitor};
use adaptable_mirroring::runtime::{Cluster, ClusterConfig};
use adaptable_mirroring::workload::scenario::{generate, Scenario, ScenarioConfig};

fn configured_monitor(s: &Scenario) -> OpsMonitor {
    let mut ops = OpsMonitor::new();
    for c in &s.crews {
        ops.assign_crew(c.crew, c.flight, c.start_us);
    }
    for c in &s.connections {
        ops.plan_connection(ConnectionPlan {
            group: c.group,
            from: c.from,
            to: c.to,
            passengers: c.passengers,
        });
    }
    for &(inbound, outbound) in &s.rotations {
        ops.plan_rotation(inbound, outbound);
    }
    ops
}

#[test]
fn full_day_through_live_cluster_matches_ground_truth() {
    let cfg = ScenarioConfig {
        banks: 2,
        flights_per_bank: 8,
        late_inbound_pct: 40,
        seed: 77,
        ..Default::default()
    };
    let day = generate(&cfg);
    assert!(!day.late_inbounds.is_empty(), "scenario must contain late inbounds");

    let cluster = Cluster::start(ClusterConfig {
        mirrors: 2,
        kind: MirrorFnKind::Simple,
        suspect_after: 0,
        ..Default::default()
    });
    let updates = cluster.subscribe_updates();

    // Stream the day (events carry scenario ingress times; delivery order
    // follows submission order).
    let n = day.events.len() as u64;
    for (_, e) in &day.events {
        cluster.submit(e.clone());
    }
    assert!(cluster.wait_all_processed(n, Duration::from_secs(10)));

    // The dashboard consumes the regular update stream. The EDE derives
    // `Arrived` from AtGate, so updates ≥ inputs.
    let mut ops = configured_monitor(&day);
    let mut consumed = Vec::new();
    while let Some(u) = updates.recv_timeout(Duration::from_millis(300)) {
        ops.observe(&u);
        consumed.push(u);
    }
    assert!(consumed.len() as u64 >= n, "updates {} < inputs {n}", consumed.len());

    // Ground truth: every late inbound's connecting group must be flagged
    // (tight or missed), and no on-time group may be flagged missed.
    for &late in &day.late_inbounds {
        let group = 5000 + late;
        let flagged = ops.alerts.iter().any(|a| {
            matches!(a,
            OpsAlert::MissedConnection { group: g, .. } |
            OpsAlert::TightConnection { group: g, .. } if *g == group)
        });
        assert!(flagged, "late inbound {late}: group {group} not flagged; alerts {:?}", ops.alerts);
    }
    for c in &day.connections {
        if !day.late_inbounds.contains(&c.from) {
            let missed = ops.alerts.iter().any(|a| {
                matches!(a,
                OpsAlert::MissedConnection { group: g, .. } if *g == c.group)
            });
            assert!(!missed, "on-time group {} flagged missed", c.group);
        }
    }
    // Turnarounds complete only where the inbound made it in time; at
    // minimum every on-time rotation must complete.
    let turnarounds =
        ops.alerts.iter().filter(|a| matches!(a, OpsAlert::TurnaroundComplete { .. })).count();
    let on_time_rotations =
        day.rotations.iter().filter(|(inb, _)| !day.late_inbounds.contains(inb)).count();
    assert!(
        turnarounds >= on_time_rotations,
        "turnarounds {turnarounds} < on-time rotations {on_time_rotations}"
    );
    // All flights departed fully reconciled: no baggage alerts.
    assert!(ops.alerts.iter().all(|a| !matches!(a, OpsAlert::BaggageMismatch { .. })));

    // Replication invariant across the whole day.
    let hashes = cluster.state_hashes();
    assert!(hashes.windows(2).all(|w| w[0] == w[1]), "{hashes:?}");

    // A rebooted dashboard replaying the same updates reaches the same
    // picture (determinism of derived operational state).
    let mut rebooted = configured_monitor(&day);
    for u in &consumed {
        rebooted.observe(u);
    }
    assert_eq!(ops.alerts, rebooted.alerts);

    cluster.shutdown();
}

#[test]
fn scenario_state_is_identical_under_selective_mirroring_at_the_central() {
    // Selective mirroring thins the mirrors, but the central EDE's view of
    // the day is identical to the no-mirroring view: the forward path is
    // lossless by construction.
    let day = generate(&ScenarioConfig { banks: 2, flights_per_bank: 6, ..Default::default() });

    let run = |kind| {
        let cluster = Cluster::start(ClusterConfig { mirrors: 1, kind, ..Default::default() });
        for (_, e) in &day.events {
            cluster.submit(e.clone());
        }
        let n = day.events.len() as u64;
        assert!(cluster.wait(Duration::from_secs(10), |c| c.central().processed() >= n));
        let h = cluster.central().state_hash();
        cluster.shutdown();
        h
    };
    let simple = run(MirrorFnKind::Simple);
    let selective = run(MirrorFnKind::Selective { overwrite: 10 });
    assert_eq!(simple, selective, "selectivity must never change the central's state");
}
