//! Torture tests for the checkpointing protocol: drive the three state
//! machines (coordinator, mirror relays, main-unit responders) through
//! seeded-random schedules of event mirroring, round initiation, and
//! control-message delivery with arbitrary delays and interleavings —
//! asserting the protocol's safety invariants after every step.
//!
//! Safety invariants (from the paper's §3.2.1 argument):
//!
//! 1. **Commit validity** — a committed timestamp is never beyond what any
//!    participant had processed when it replied (commits are minima).
//! 2. **Commit monotonicity** — the coordinator's committed frontier only
//!    advances.
//! 3. **Prune safety** — pruning at a commit never discards an event that
//!    a lagging mirror still needs (every pruned event is dominated by a
//!    stamp every participant has processed).
//! 4. **Subsumption** — abandoning rounds and losing (reordering) control
//!    messages never wedges the protocol: a final fully-delivered round
//!    always commits the common frontier.

use proptest::prelude::*;

use adaptable_mirroring::core::adapt::MonitorReport;
use adaptable_mirroring::core::checkpoint::{
    CentralCheckpointer, CheckpointMsg, MainUnitResponder, MirrorRelay,
};
use adaptable_mirroring::core::event::{Event, EventBody, FlightStatus};
use adaptable_mirroring::core::queue::BackupQueue;
use adaptable_mirroring::core::timestamp::VectorTimestamp;
use adaptable_mirroring::core::ControlMsg;

/// One mirror's world: relay + backup queue + main responder + how far its
/// EDE has processed the (single) stream.
struct MirrorWorld {
    relay: MirrorRelay,
    backup: BackupQueue,
    main: MainUnitResponder,
    processed: u64,
    /// Mirrored events received but not yet "processed" by the main unit.
    inbox: Vec<Event>,
    /// Control messages in flight toward this mirror (arbitrarily delayed).
    ctrl_in: Vec<ControlMsg>,
}

fn stamped(seq: u64) -> Event {
    let mut e = Event::new(0, seq, 1, EventBody::Status(FlightStatus::EnRoute));
    e.stamp.advance(0, seq);
    e
}

/// A scripted step of the torture schedule.
#[derive(Debug, Clone)]
enum Step {
    /// Central mirrors the next `n` events to everyone.
    Mirror(u8),
    /// Mirror `m` processes up to `n` inbox events through its main unit.
    Process(u8, u8),
    /// Central initiates a checkpoint round.
    Begin,
    /// Deliver the oldest in-flight control message at mirror `m`.
    DeliverCtrl(u8),
    /// Mirror `m`'s main unit answers the oldest pending CHKPT.
    AnswerChkpt(u8),
    /// Drop the oldest in-flight control message at mirror `m`
    /// (the protocol tolerates lost control events).
    DropCtrl(u8),
}

fn arb_step(mirrors: u8) -> impl Strategy<Value = Step> {
    prop_oneof![
        (1u8..5).prop_map(Step::Mirror),
        (0..mirrors, 1u8..5).prop_map(|(m, n)| Step::Process(m, n)),
        Just(Step::Begin),
        (0..mirrors).prop_map(Step::DeliverCtrl),
        (0..mirrors).prop_map(Step::AnswerChkpt),
        (0..mirrors).prop_map(Step::DropCtrl),
    ]
}

/// Run a schedule; panic on any invariant violation.
fn run_schedule(mirror_count: u8, steps: Vec<Step>) {
    let sites: Vec<u16> = (1..=mirror_count as u16).collect();
    let mut central = CentralCheckpointer::new(sites.clone());
    let mut central_backup = BackupQueue::new();
    let mut central_main = MainUnitResponder::new(0);
    let mut worlds: Vec<MirrorWorld> = sites
        .iter()
        .map(|&s| MirrorWorld {
            relay: MirrorRelay::new(),
            backup: BackupQueue::new(),
            main: MainUnitResponder::new(s),
            processed: 0,
            inbox: Vec::new(),
            ctrl_in: Vec::new(),
        })
        .collect();
    let mut next_seq = 0u64;
    let mut last_committed = VectorTimestamp::empty();
    // Pending CHKPTs awaiting a main-unit answer, per mirror.
    let mut pending_chkpt: Vec<Vec<ControlMsg>> = vec![Vec::new(); mirror_count as usize];
    // Replies in flight toward the central site.
    let mut replies_in_flight: Vec<(u64, u16, VectorTimestamp)> = Vec::new();

    fn apply_commit_msgs(
        msgs: Vec<CheckpointMsg>,
        worlds: &mut [MirrorWorld],
        central_main: &mut MainUnitResponder,
        replies_in_flight: &mut Vec<(u64, u16, VectorTimestamp)>,
    ) {
        for m in msgs {
            match m {
                CheckpointMsg::BroadcastToMirrors(c) => {
                    for w in worlds.iter_mut() {
                        w.ctrl_in.push(c.clone());
                    }
                }
                CheckpointMsg::ToLocalMain(c) => {
                    // Central main answers CHKPT immediately (it processes
                    // in lock-step here) and applies commits.
                    if let Some(ControlMsg::ChkptRep { round, site, stamp, .. }) =
                        central_main.on_chkpt(&c, MonitorReport::default())
                    {
                        replies_in_flight.push((round, site, stamp));
                    }
                    central_main.on_commit(&c);
                }
                CheckpointMsg::ToCentral(_) => unreachable!("central emits no ToCentral"),
            }
        }
    }

    for step in steps {
        match step {
            Step::Mirror(n) => {
                for _ in 0..n {
                    next_seq += 1;
                    let e = stamped(next_seq);
                    central_backup.push(e.clone());
                    central_main.record_processed(&e.stamp);
                    for w in worlds.iter_mut() {
                        w.backup.push(e.clone());
                        w.inbox.push(e.clone());
                    }
                }
            }
            Step::Process(m, n) => {
                let w = &mut worlds[m as usize];
                for _ in 0..n.min(w.inbox.len() as u8) {
                    let e = w.inbox.remove(0);
                    w.processed = w.processed.max(e.seq);
                    w.main.record_processed(&e.stamp);
                }
            }
            Step::Begin => {
                let proposal = central_backup.last_stamp().clone();
                let msgs = central.begin(proposal);
                apply_commit_msgs(msgs, &mut worlds, &mut central_main, &mut replies_in_flight);
            }
            Step::DeliverCtrl(m) => {
                let w = &mut worlds[m as usize];
                if w.ctrl_in.is_empty() {
                    continue;
                }
                let c = w.ctrl_in.remove(0);
                match &c {
                    ControlMsg::Chkpt { .. } => {
                        let out = w.relay.on_chkpt(c.clone());
                        for o in out {
                            if let CheckpointMsg::ToLocalMain(cc) = o {
                                pending_chkpt[m as usize].push(cc);
                            }
                        }
                    }
                    ControlMsg::Commit { stamp, .. } => {
                        // Invariant 3 (prune safety): everything this commit
                        // prunes must be processed by EVERY live participant.
                        let min_processed = worlds
                            .iter()
                            .map(|w| w.main.processed().get(0))
                            .chain(std::iter::once(central_main.processed().get(0)))
                            .min()
                            .unwrap();
                        assert!(
                            stamp.get(0) <= min_processed,
                            "commit {} beyond global processed frontier {}",
                            stamp.get(0),
                            min_processed
                        );
                        let w = &mut worlds[m as usize];
                        let (_pruned, fwd) = w.relay.on_commit(c.clone(), &mut w.backup);
                        for o in fwd {
                            if let CheckpointMsg::ToLocalMain(cc) = o {
                                w.main.on_commit(&cc);
                            }
                        }
                    }
                    ControlMsg::ChkptRep { .. } => unreachable!(),
                }
            }
            Step::AnswerChkpt(m) => {
                if pending_chkpt[m as usize].is_empty() {
                    continue;
                }
                let c = pending_chkpt[m as usize].remove(0);
                let w = &mut worlds[m as usize];
                if let Some(ControlMsg::ChkptRep { round, site, stamp, .. }) =
                    w.main.on_chkpt(&c, MonitorReport::default())
                {
                    let out = w.relay.on_main_reply(
                        round,
                        site,
                        stamp,
                        MonitorReport::default(),
                        0,
                        &w.backup,
                    );
                    for o in out {
                        if let CheckpointMsg::ToCentral(ControlMsg::ChkptRep {
                            round,
                            site,
                            stamp,
                            ..
                        }) = o
                        {
                            replies_in_flight.push((round, site, stamp));
                        }
                    }
                }
            }
            Step::DropCtrl(m) => {
                let w = &mut worlds[m as usize];
                if !w.ctrl_in.is_empty() {
                    w.ctrl_in.remove(0);
                }
            }
        }

        // Drain replies to the coordinator after every step (arrival order
        // is already randomized by when AnswerChkpt steps happen).
        while let Some((round, site, stamp)) = replies_in_flight.pop() {
            // Invariant 1: a reply never claims more than the site processed.
            if site != 0 {
                let w = &worlds[(site - 1) as usize];
                assert!(stamp.get(0) <= w.main.processed().get(0), "reply beyond processed");
            }
            if let Some((commit, msgs)) = central.on_reply(round, site, stamp, 0) {
                // Invariant 2: monotone commits.
                assert!(
                    last_committed.dominated_by(&commit),
                    "commit regressed: {last_committed} then {commit}"
                );
                last_committed = commit.clone();
                central_backup.prune(&commit);
                apply_commit_msgs(msgs, &mut worlds, &mut central_main, &mut replies_in_flight);
            }
        }
    }

    // Invariant 4 (liveness via subsumption): a final, fully-delivered
    // round commits the common frontier.
    let msgs = central.begin(central_backup.last_stamp().clone());
    apply_commit_msgs(msgs, &mut worlds, &mut central_main, &mut replies_in_flight);
    for m in 0..mirror_count {
        // Deliver everything outstanding, then answer the newest CHKPT.
        while !worlds[m as usize].ctrl_in.is_empty() {
            let c = worlds[m as usize].ctrl_in.remove(0);
            if let ControlMsg::Chkpt { .. } = &c {
                let out = worlds[m as usize].relay.on_chkpt(c);
                for o in out {
                    if let CheckpointMsg::ToLocalMain(cc) = o {
                        pending_chkpt[m as usize].push(cc);
                    }
                }
            } else if let ControlMsg::Commit { .. } = &c {
                let w = &mut worlds[m as usize];
                let _ = w.relay.on_commit(c, &mut w.backup);
            }
        }
        while let Some(c) = pending_chkpt[m as usize].pop() {
            let w = &mut worlds[m as usize];
            if let Some(ControlMsg::ChkptRep { round, site, stamp, .. }) =
                w.main.on_chkpt(&c, MonitorReport::default())
            {
                let out = w.relay.on_main_reply(
                    round,
                    site,
                    stamp,
                    MonitorReport::default(),
                    0,
                    &w.backup,
                );
                for o in out {
                    if let CheckpointMsg::ToCentral(ControlMsg::ChkptRep {
                        round,
                        site,
                        stamp,
                        ..
                    }) = o
                    {
                        replies_in_flight.push((round, site, stamp));
                    }
                }
            }
        }
    }
    let mut committed_final = None;
    while let Some((round, site, stamp)) = replies_in_flight.pop() {
        if let Some((commit, _)) = central.on_reply(round, site, stamp, 0) {
            committed_final = Some(commit);
        }
    }
    let expected: u64 = worlds
        .iter()
        .map(|w| w.main.processed().get(0))
        .chain(std::iter::once(central_main.processed().get(0)))
        .min()
        .unwrap();
    let commit = committed_final.expect("final fully-delivered round must commit");
    assert_eq!(
        commit.get(0),
        expected.min(next_seq),
        "final commit must equal the common processed frontier"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn protocol_safety_holds_under_random_schedules_two_mirrors(
        steps in prop::collection::vec(arb_step(2), 1..120)
    ) {
        run_schedule(2, steps);
    }

    #[test]
    fn protocol_safety_holds_under_random_schedules_four_mirrors(
        steps in prop::collection::vec(arb_step(4), 1..200)
    ) {
        run_schedule(4, steps);
    }
}

#[test]
fn protocol_survives_pathological_drop_everything_schedule() {
    // Every control message toward mirror 0 is dropped mid-run; the final
    // fully-delivered round still commits.
    let mut steps = Vec::new();
    for _ in 0..20 {
        steps.push(Step::Mirror(3));
        steps.push(Step::Process(0, 3));
        steps.push(Step::Process(1, 3));
        steps.push(Step::Begin);
        steps.push(Step::DropCtrl(0));
        steps.push(Step::DeliverCtrl(1));
        steps.push(Step::AnswerChkpt(1));
    }
    run_schedule(2, steps);
}
