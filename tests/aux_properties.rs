//! Property tests on the auxiliary-unit pipeline as a whole: random event
//! streams through a central unit and a mirror unit, checking the paper's
//! structural guarantees.

use proptest::prelude::*;

use adaptable_mirroring::core::api::MirrorConfig;
use adaptable_mirroring::core::aux_unit::{AuxAction, AuxInput};
use adaptable_mirroring::core::event::{Event, EventBody, EventType, FlightStatus, PositionFix};
use adaptable_mirroring::core::mirrorfn::MirrorFnKind;
use adaptable_mirroring::ede::Ede;

fn fix(v: f64) -> PositionFix {
    PositionFix { lat: v, lon: v, alt_ft: 10_000.0 + v, speed_kts: 400.0, heading_deg: 0.0 }
}

/// (flight, is_position) pairs drive a deterministic event stream.
fn arb_stream() -> impl Strategy<Value = Vec<(u32, bool)>> {
    prop::collection::vec((0u32..6, any::<bool>()), 1..200)
}

fn build_events(spec: &[(u32, bool)]) -> Vec<Event> {
    let mut faa_seq = 0u64;
    let mut delta_seq = 0u64;
    spec.iter()
        .map(|&(flight, is_pos)| {
            if is_pos {
                faa_seq += 1;
                Event::faa_position(faa_seq, flight, fix(faa_seq as f64))
            } else {
                delta_seq += 1;
                // Cycle through statuses; regressions are absorbed by the EDE.
                let status = FlightStatus::ALL[(delta_seq % 7) as usize];
                Event::delta_status(delta_seq, flight, status)
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The forward path is lossless under every built-in mirroring kind:
    /// the central EDE sees exactly the input events (plus derivations),
    /// regardless of how aggressively the mirror path filters.
    #[test]
    fn forward_path_is_lossless_under_all_kinds(spec in arb_stream(), kind_ix in 0usize..4) {
        let kind = [
            MirrorFnKind::Simple,
            MirrorFnKind::Selective { overwrite: 7 },
            MirrorFnKind::Coalescing { coalesce: 5, checkpoint_every: 50 },
            MirrorFnKind::Overwriting { overwrite: 9, checkpoint_every: 50 },
        ][kind_ix];
        let mut aux = MirrorConfig::default().build_central(vec![1]);
        aux.install_kind(kind);
        let events = build_events(&spec);
        let mut forwarded = 0usize;
        for e in events.iter().cloned() {
            for a in aux.handle(AuxInput::Data(e.into())) {
                if let AuxAction::ForwardToMain(f) = a {
                    // Derived events (from tuple rules) would add extras;
                    // none are configured here, so the forward stream is
                    // exactly the input stream, in order.
                    prop_assert_eq!(f.event_type() != EventType::Derived, true);
                    forwarded += 1;
                }
            }
        }
        prop_assert_eq!(forwarded, events.len());
    }

    /// Mirrored wire events are always a *subset representation* of the
    /// input: replaying them through an EDE never produces state the full
    /// stream wouldn't (positions match the latest forwarded fix or an
    /// earlier one; statuses never exceed the full stream's).
    #[test]
    fn mirror_stream_is_a_faithful_subset(spec in arb_stream()) {
        let mut aux = MirrorConfig::default().build_central(vec![1]);
        aux.install_kind(MirrorFnKind::Selective { overwrite: 5 });
        let events = build_events(&spec);

        let mut full = Ede::new();
        let mut thin = Ede::new();
        for e in events.iter().cloned() {
            for a in aux.handle(AuxInput::Data(e.into())) {
                match a {
                    AuxAction::ForwardToMain(f) => {
                        full.process(&f);
                    }
                    AuxAction::Mirror { event: m, .. } => {
                        thin.process(&m);
                    }
                    _ => {}
                }
            }
        }
        // Drain any coalescing tail.
        for a in aux.handle(AuxInput::Flush) {
            if let AuxAction::Mirror { event: m, .. } = a {
                thin.process(&m);
            }
        }
        // Every flight the thin view knows, the full view knows, and the
        // thin view is never *ahead* of the full view.
        for (id, tv) in thin.state().iter() {
            let fv = full.state().flight(*id);
            prop_assert!(fv.is_some(), "mirror invented flight {id}");
            let fv = fv.unwrap();
            prop_assert!(tv.status <= fv.status || fv.status == FlightStatus::Cancelled,
                "mirror ahead on flight {}: {:?} > {:?}", id, tv.status, fv.status);
            prop_assert!(tv.position_seq <= fv.position_seq,
                "mirror has a newer fix than the full stream");
        }
    }

    /// Stamps assigned by the receiving task are monotone (each stamped
    /// event dominates-or-equals its predecessor) — the property vector
    /// timestamps need for checkpoint minima to make sense.
    #[test]
    fn receiving_task_stamps_are_monotone(spec in arb_stream()) {
        let mut aux = MirrorConfig::default().build_central(vec![1]);
        let events = build_events(&spec);
        let mut last = adaptable_mirroring::core::timestamp::VectorTimestamp::empty();
        for e in events {
            for a in aux.handle(AuxInput::Data(e.into())) {
                if let AuxAction::ForwardToMain(f) = a {
                    prop_assert!(last.dominated_by(&f.stamp),
                        "stamp regressed: {} then {}", last, f.stamp);
                    last = f.stamp.clone();
                }
            }
        }
    }

    /// Counter bookkeeping: received = forwarded (no derivations
    /// configured), mirrored + suppressed = received for per-event kinds.
    #[test]
    fn counters_balance(spec in arb_stream()) {
        let mut aux = MirrorConfig::default().build_central(vec![1]);
        aux.install_kind(MirrorFnKind::Selective { overwrite: 4 });
        let events = build_events(&spec);
        let n = events.len() as u64;
        for e in events {
            aux.handle(AuxInput::Data(e.into()));
        }
        let c = aux.counters();
        prop_assert_eq!(c.received, n);
        prop_assert_eq!(c.forwarded, n);
        prop_assert_eq!(c.mirrored + c.suppressed, n);
    }
}

/// Non-property check: a coalescing unit conserves event counts across
/// arbitrary flush points.
#[test]
fn coalescing_conserves_counts_across_flushes() {
    let mut aux = MirrorConfig::default().build_central(vec![1]);
    aux.install_kind(MirrorFnKind::Coalescing { coalesce: 4, checkpoint_every: 1000 });
    let mut total_represented = 0u64;
    let mut sent = 0u64;
    for seq in 1..=97u64 {
        let e = Event::faa_position(seq, (seq % 3) as u32, fix(seq as f64));
        for a in aux.handle(AuxInput::Data(e.into())) {
            if let AuxAction::Mirror { event: m, .. } = a {
                sent += 1;
                if let EventBody::Coalesced { count, .. } = m.body {
                    total_represented += count as u64;
                } else {
                    total_represented += 1;
                }
            }
        }
        if seq % 13 == 0 {
            for a in aux.handle(AuxInput::Flush) {
                if let AuxAction::Mirror { event: m, .. } = a {
                    sent += 1;
                    if let EventBody::Coalesced { count, .. } = m.body {
                        total_represented += count as u64;
                    } else {
                        total_represented += 1;
                    }
                }
            }
        }
    }
    for a in aux.handle(AuxInput::Flush) {
        if let AuxAction::Mirror { event: m, .. } = a {
            sent += 1;
            if let EventBody::Coalesced { count, .. } = m.body {
                total_represented += count as u64;
            } else {
                total_represented += 1;
            }
        }
    }
    assert_eq!(total_represented, 97, "every input represented exactly once");
    assert!(sent < 97, "coalescing must compress ({sent} wire events)");
}
