//! Request gateways + load balancing together: the paper's client-request
//! path on real threads. A least-pending balancer reads the sites' live
//! pending-request gauges, so a slow mirror automatically sheds load to a
//! fast one.

use std::sync::atomic::Ordering;
use std::time::Duration;

use adaptable_mirroring::core::event::{Event, PositionFix};
use adaptable_mirroring::ois::balancer::{Balancer, BalancerPolicy};
use adaptable_mirroring::runtime::{Cluster, ClusterConfig};

fn fix() -> PositionFix {
    PositionFix { lat: 35.2, lon: -80.9, alt_ft: 18_000.0, speed_kts: 410.0, heading_deg: 140.0 }
}

#[test]
fn least_pending_balancer_sheds_load_from_the_slow_mirror() {
    let cluster = Cluster::start(ClusterConfig { mirrors: 2, ..Default::default() });
    for seq in 1..=100u64 {
        cluster.submit(Event::faa_position(seq, (seq % 10) as u32, fix()));
    }
    assert!(cluster.wait_all_processed(100, Duration::from_secs(5)));

    // Mirror 1: slow gateway (5 ms per request); mirror 2: fast (none).
    let slow = cluster.mirrors()[0].serve_requests(Duration::from_millis(5));
    let fast = cluster.mirrors()[1].serve_requests(Duration::ZERO);
    let clients = [slow.client(), fast.client()];
    let gauges = [cluster.mirrors()[0].pending_gauge(), cluster.mirrors()[1].pending_gauge()];

    let mut balancer = Balancer::new(vec![1, 2], BalancerPolicy::LeastPending);
    let mut receivers = Vec::new();
    let mut dispatched = [0usize; 2];
    for _ in 0..80 {
        // Feed live gauge readings to the balancer, as a front-end would.
        balancer.report_pending(1, gauges[0].load(Ordering::Relaxed));
        balancer.report_pending(2, gauges[1].load(Ordering::Relaxed));
        let site = balancer.pick().unwrap() as usize;
        dispatched[site - 1] += 1;
        receivers.push(clients[site - 1].fire().unwrap());
        std::thread::sleep(Duration::from_micros(300));
    }
    for r in receivers {
        assert!(r.recv_timeout(Duration::from_secs(10)).is_ok(), "every request answered");
    }
    assert!(
        dispatched[1] > dispatched[0],
        "fast mirror must absorb more load: slow={} fast={}",
        dispatched[0],
        dispatched[1]
    );
    // Both served something (no starvation).
    assert!(dispatched[0] > 0);

    slow.stop();
    fast.stop();
    cluster.shutdown();
}

#[test]
fn gateways_answer_with_converged_state() {
    let cluster = Cluster::start(ClusterConfig { mirrors: 2, ..Default::default() });
    for seq in 1..=150u64 {
        cluster.submit(Event::faa_position(seq, (seq % 6) as u32, fix()));
    }
    assert!(cluster.wait_all_processed(150, Duration::from_secs(5)));
    std::thread::sleep(Duration::from_millis(30)); // settle

    let gw1 = cluster.mirrors()[0].serve_requests(Duration::ZERO);
    let gw2 = cluster.mirrors()[1].serve_requests(Duration::ZERO);
    let s1 = gw1.client().fetch(Duration::from_secs(5)).unwrap();
    let s2 = gw2.client().fetch(Duration::from_secs(5)).unwrap();
    assert_eq!(s1.flight_count(), 6);
    assert_eq!(
        s1.restore().state_hash(),
        s2.restore().state_hash(),
        "any mirror answers with the same state — the point of mirroring"
    );
    gw1.stop();
    gw2.stop();
    cluster.shutdown();
}
