//! Request gateways + load balancing together: the paper's client-request
//! path on real threads. A least-pending balancer reads the sites' live
//! pending-request gauges, so a slow mirror automatically sheds load to a
//! fast one.

use std::time::Duration;

use adaptable_mirroring::core::event::{Event, PositionFix};
use adaptable_mirroring::ois::balancer::{Balancer, BalancerPolicy};
use adaptable_mirroring::runtime::{Cluster, ClusterConfig};

fn fix() -> PositionFix {
    PositionFix { lat: 35.2, lon: -80.9, alt_ft: 18_000.0, speed_kts: 410.0, heading_deg: 140.0 }
}

#[test]
fn least_pending_balancer_sheds_load_from_the_slow_mirror() {
    let cluster = Cluster::start(ClusterConfig { mirrors: 2, ..Default::default() });
    for seq in 1..=100u64 {
        cluster.submit(Event::faa_position(seq, (seq % 10) as u32, fix()));
    }
    assert!(cluster.wait_all_processed(100, Duration::from_secs(5)));

    // Mirror 1: slow gateway (5 ms per request); mirror 2: fast (none).
    let slow = cluster.mirror(1).serve_requests(Duration::from_millis(5));
    let fast = cluster.mirror(2).serve_requests(Duration::ZERO);
    let clients = [slow.client(), fast.client()];

    // The balancer reads each site's live pending gauge directly — no
    // report/push plumbing between the gateways and the front-end.
    let mut balancer = Balancer::new(vec![1, 2], BalancerPolicy::LeastPending);
    balancer.attach_gauge(1, cluster.mirror(1).pending_gauge());
    balancer.attach_gauge(2, cluster.mirror(2).pending_gauge());
    let mut receivers = Vec::new();
    let mut dispatched = [0usize; 2];
    for _ in 0..80 {
        let site = balancer.pick().unwrap() as usize;
        dispatched[site - 1] += 1;
        receivers.push(clients[site - 1].fire().unwrap());
        std::thread::sleep(Duration::from_micros(300));
    }
    for r in receivers {
        assert!(r.recv_timeout(Duration::from_secs(10)).is_ok(), "every request answered");
    }
    assert!(
        dispatched[1] > dispatched[0],
        "fast mirror must absorb more load: slow={} fast={}",
        dispatched[0],
        dispatched[1]
    );
    // Both served something (no starvation).
    assert!(dispatched[0] > 0);

    slow.stop();
    fast.stop();
    cluster.shutdown();
}

#[test]
fn gateways_answer_with_converged_state() {
    let cluster = Cluster::start(ClusterConfig { mirrors: 2, ..Default::default() });
    for seq in 1..=150u64 {
        cluster.submit(Event::faa_position(seq, (seq % 6) as u32, fix()));
    }
    assert!(cluster.wait_all_processed(150, Duration::from_secs(5)));
    std::thread::sleep(Duration::from_millis(30)); // settle

    let gw1 = cluster.mirror(1).serve_requests(Duration::ZERO);
    let gw2 = cluster.mirror(2).serve_requests(Duration::ZERO);
    let s1 = gw1.client().fetch(Duration::from_secs(5)).unwrap();
    let s2 = gw2.client().fetch(Duration::from_secs(5)).unwrap();
    assert_eq!(s1.flight_count(), 6);
    assert_eq!(
        s1.restore().state_hash(),
        s2.restore().state_hash(),
        "any mirror answers with the same state — the point of mirroring"
    );
    gw1.stop();
    gw2.stop();
    cluster.shutdown();
}

/// The bounded-staleness contract that makes the epoch cache safe: a
/// cached snapshot served K events stale, restored by value and followed
/// by a replay of the update stream, converges to the live state hash.
#[test]
fn stale_cached_snapshot_plus_replay_converges() {
    use adaptable_mirroring::runtime::{GatewayConfig, SnapshotCachePolicy};
    use std::time::Instant;

    let cluster = Cluster::start(ClusterConfig::default());
    // Subscribe before fetching so the replay stream misses nothing.
    let updates = cluster.subscribe_updates();
    for seq in 1..=60u64 {
        cluster.submit(Event::faa_position(seq, (seq % 7) as u32, fix()));
    }
    assert!(cluster.wait_all_processed(60, Duration::from_secs(5)));

    // A staleness bound deep enough that the second fetch is guaranteed to
    // be served from the (by then stale) cached capture.
    let gw = cluster.central().serve_requests_with(GatewayConfig {
        workers: 1,
        cache: Some(SnapshotCachePolicy {
            max_stale_events: 10_000,
            max_stale: Duration::from_secs(3600),
        }),
        service_pad: Duration::ZERO,
        ..GatewayConfig::default()
    });
    let client = gw.client();
    let first = client.fetch(Duration::from_secs(5)).unwrap(); // miss: primes the cache
    for seq in 61..=120u64 {
        cluster.submit(Event::faa_position(seq, (seq % 7) as u32, fix()));
    }
    assert!(cluster.wait_all_processed(120, Duration::from_secs(5)));
    let stale = client.fetch(Duration::from_secs(5)).unwrap();
    assert_eq!(stale.as_of, first.as_of, "second fetch must reuse the cached capture");

    let stats = cluster.stats();
    assert_eq!(stats.central.snapshot_cache_misses, 1);
    assert_eq!(stats.central.snapshot_cache_hits, 1);
    assert_eq!(stats.central.requests_served, 2);

    // A recovering display: move the stale snapshot into an operational
    // state, then replay the update stream over it (idempotent absorption
    // makes replaying from before the frontier harmless).
    let mut state = stale.into_snapshot().into_state();
    assert_ne!(
        state.state_hash(),
        cluster.central().state_hash(),
        "precondition: the cached snapshot is genuinely stale"
    );
    let deadline = Instant::now() + Duration::from_secs(5);
    while state.state_hash() != cluster.central().state_hash() && Instant::now() < deadline {
        match updates.recv_timeout(Duration::from_millis(200)) {
            Some(u) => {
                state.apply(&u);
            }
            None => break,
        }
    }
    assert_eq!(
        state.state_hash(),
        cluster.central().state_hash(),
        "stale snapshot + frontier replay must converge to the live state"
    );
    gw.stop();
    cluster.shutdown();
}

#[test]
fn group_router_recovers_from_stale_partition_map() {
    use adaptable_mirroring::core::{FlightId, PartitionMap};
    use adaptable_mirroring::ois::GroupRouter;
    use adaptable_mirroring::runtime::{
        GatewayConfig, PartitionedCluster, PartitionedConfig, RequestError,
    };

    // Two mirror groups; one gateway per group central (site id 0 in each
    // group's namespace — the router balances groups, not sites, here).
    let pc =
        PartitionedCluster::start(PartitionedConfig { groups: 2, group: ClusterConfig::default() });
    let flight: FlightId = (0..).find(|&f| pc.map().group_of(f) == 0).unwrap();
    for seq in 0..10u64 {
        pc.submit(Event::faa_position(seq, flight, fix()));
    }
    assert!(pc.wait_quiesced(Duration::from_secs(10)));
    let gateways = [
        pc.serve_group_requests(0, GatewayConfig::default()),
        pc.serve_group_requests(1, GatewayConfig::default()),
    ];
    let clients = [gateways[0].client(), gateways[1].client()];

    // The router caches the pre-migration map…
    let mut router = GroupRouter::new(
        pc.map(),
        vec![
            Balancer::new(vec![0], BalancerPolicy::RoundRobin),
            Balancer::new(vec![0], BalancerPolicy::RoundRobin),
        ],
    );
    // …and the cluster moves the flight's slot out from under it.
    pc.migrate_slot(PartitionMap::slot_of(flight), 1, Duration::from_secs(30)).expect("migrate");

    // First try lands on the stale group; the typed refusal names the
    // owner; the router re-routes and the retry succeeds.
    let (g, _site) = router.route(flight).expect("route");
    let verdict = clients[g as usize].fetch_flight(flight, Duration::from_secs(5));
    let served = match verdict {
        Ok(snap) => snap,
        Err(RequestError::WrongPartition { owner_group }) => {
            let (g2, _) = router.on_wrong_partition(flight, owner_group).expect("re-route");
            assert_eq!(g2, owner_group);
            clients[g2 as usize]
                .fetch_flight(flight, Duration::from_secs(5))
                .expect("retry against the named owner must succeed")
        }
        Err(e) => panic!("unexpected gateway error: {e}"),
    };
    assert!(served.flight_count() >= 1);
    assert_eq!(router.reroutes(), 1, "exactly one misroute per moved slot");
    // The learned correction makes the next route go straight to group 1.
    assert_eq!(router.route(flight).map(|(g, _)| g), Some(1));

    drop(clients);
    let [g0, g1] = gateways;
    g0.stop();
    g1.stop();
    pc.shutdown();
}
