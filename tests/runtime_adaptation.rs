//! Live adaptation in the threaded runtime — the §4.3 mechanism end to
//! end on real threads: a request storm through a mirror's gateway raises
//! its pending-request gauge, the gauge rides checkpoint replies to the
//! central adaptation controller, the controller engages the degraded
//! profile (piggybacked on the commit), and releases it when the storm
//! drains.

use std::time::Duration;

use adaptable_mirroring::core::adapt::{AdaptAction, MonitorKind};
use adaptable_mirroring::core::event::{Event, PositionFix};
use adaptable_mirroring::core::mirrorfn::MirrorFnKind;
use adaptable_mirroring::runtime::{Cluster, ClusterConfig};

fn fix() -> PositionFix {
    PositionFix { lat: 39.0, lon: -104.0, alt_ft: 36_000.0, speed_kts: 480.0, heading_deg: 90.0 }
}

#[test]
fn request_storm_engages_and_releases_adaptation_live() {
    let cluster = Cluster::start(ClusterConfig {
        mirrors: 1,
        kind: MirrorFnKind::Coalescing { coalesce: 10, checkpoint_every: 25 },
        suspect_after: 0,
        ..Default::default()
    });
    // Configure adaptation through the Table-1 API on the live cluster.
    let normal = MirrorFnKind::Coalescing { coalesce: 10, checkpoint_every: 25 };
    let degraded = MirrorFnKind::Overwriting { overwrite: 20, checkpoint_every: 100 };
    cluster.central().handle().set_monitor_values(MonitorKind::PendingRequests, 10, 7);
    cluster
        .central()
        .handle()
        .set_adapt_action(AdaptAction::SwitchMirrorFn { normal, engaged: degraded });

    // Gateway on the mirror with a per-request pad so a burst queues.
    let gateway = cluster.mirror(1).serve_requests(Duration::from_millis(4));
    let client = gateway.client();

    // Paced background stream keeps checkpoint rounds (the adaptation
    // transport) turning over.
    let feeder_cluster = std::sync::Arc::new(cluster);
    let cluster = std::sync::Arc::clone(&feeder_cluster);
    let feeder = std::thread::spawn(move || {
        for seq in 1..=3_000u64 {
            feeder_cluster.submit(Event::faa_position(seq, (seq % 8) as u32, fix()));
            std::thread::sleep(Duration::from_micros(300));
        }
    });

    // Let normal operation settle, then unleash the storm.
    std::thread::sleep(Duration::from_millis(100));
    assert_eq!(
        cluster.central().counters().adaptations.load(std::sync::atomic::Ordering::Relaxed),
        0
    );
    let mut receivers = Vec::new();
    for _ in 0..120 {
        receivers.push(client.fire().unwrap());
    }

    // Engagement: the central aux applies the directive to itself.
    let engaged = cluster
        .wait(Duration::from_secs(10), |c| c.central().handle().params().overwrite_max == 20);
    assert!(engaged, "storm must engage the degraded profile");
    // The mirror receives the piggybacked directive too.
    let mirror_engaged = cluster
        .wait(Duration::from_secs(10), |c| c.mirror(1).handle().params().overwrite_max == 20);
    assert!(mirror_engaged, "directive must reach the mirror");

    // Storm drains → release back to the normal profile.
    for r in receivers {
        let _ = r.recv_timeout(Duration::from_secs(10));
    }
    let released = cluster.wait(Duration::from_secs(10), |c| {
        c.central().handle().params().coalesce_max == 10
            && c.central().handle().params().checkpoint_every == 25
    });
    assert!(released, "draining the storm must release the adaptation");

    feeder.join().unwrap();
    gateway.stop();
    match std::sync::Arc::try_unwrap(cluster) {
        Ok(c) => c.shutdown(),
        Err(_) => panic!("cluster still shared"),
    }
}
