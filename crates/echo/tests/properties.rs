//! Property tests for the framed transport stack.
//!
//! Two layers are hammered with generated inputs:
//!
//! * the **framed TCP read path** — arbitrary chunk boundaries, garbage
//!   bytes and hostile length prefixes must never panic, never desync and
//!   never surface a mangled frame as valid, and
//! * the **resilient link layer** — under arbitrary drop / duplicate /
//!   reorder / corrupt / disconnect schedules, the application must see
//!   every frame exactly once, in order, and never a corrupt one.

use std::io;
use std::net::TcpListener;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use proptest::prelude::*;

use mirror_core::event::{Event, FlightStatus, PositionFix};
use mirror_core::timestamp::VectorTimestamp;
use mirror_echo::faults::{FaultPlan, FaultState, FaultyTransport};
use mirror_echo::resilient::{ResilientTransport, RetryPolicy};
use mirror_echo::transport::{inproc_rendezvous, InProcDialer, InProcListener, Polled, MAX_FRAME};
use mirror_echo::wire::{
    decode_frame, decode_snapshot, encode_edge_event, encode_frame, encode_frame_shared,
    encode_reseed, encode_snapshot, Frame, SubscriptionFilter, WIRE_VERSION,
};
use mirror_echo::{TcpTransport, Transport};
use mirror_ede::{FlightView, Snapshot};

fn data(seq: u64) -> Frame {
    Frame::Data(Arc::new(Event::delta_status(seq, (seq % 40) as u32, FlightStatus::Boarding)))
}

/// Write `bytes` to a fresh loopback connection in `chunk`-sized pieces
/// and hand the accepted transport to `check`.
fn with_raw_writer<R>(bytes: Vec<u8>, chunk: usize, check: impl FnOnce(TcpTransport) -> R) -> R {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().unwrap();
    let writer = std::thread::spawn(move || {
        use std::io::Write;
        let mut s = std::net::TcpStream::connect(addr).expect("connect");
        for c in bytes.chunks(chunk.max(1)) {
            // The reader may reject the stream and close mid-write
            // (oversized prefix, garbage): that's its prerogative.
            if s.write_all(c).is_err() {
                return;
            }
        }
        // Dropping the stream closes it: the reader sees EOF afterwards.
    });
    let t = TcpTransport::accept_one(&listener).expect("accept");
    let out = check(t);
    writer.join().expect("writer thread");
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Pure decode over arbitrary bytes: errors are fine, panics are not.
    #[test]
    fn decode_frame_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = decode_frame(bytes::Bytes::from(bytes));
    }

    /// The reliability envelopes roundtrip bit-exactly for any field
    /// values, including the extremes.
    #[test]
    fn protocol_frames_roundtrip(seq in any::<u64>(), cum in any::<u64>(), next in any::<u64>()) {
        let frames = [
            Frame::Seq { seq, inner: Box::new(data(seq % 1000 + 1)) },
            Frame::Ack { cum },
            Frame::Hello { next },
        ];
        for f in frames {
            prop_assert_eq!(decode_frame(encode_frame(&f)), Ok(f));
        }
    }

    /// Batches of any size (including empty) roundtrip bit-exactly, bare
    /// and inside the one permitted Seq envelope, and their encoding obeys
    /// the MAX_FRAME bound for any size the event path can produce.
    #[test]
    fn batch_frames_roundtrip(
        seqs in prop::collection::vec(1u64..10_000, 0..48),
        seq in any::<u64>(),
    ) {
        let batch = Frame::Batch(seqs.iter().map(|&s| data(s)).collect());
        let encoded = encode_frame(&batch);
        prop_assert!(encoded.len() <= MAX_FRAME as usize);
        prop_assert_eq!(decode_frame(encoded), Ok(batch.clone()));
        let env = Frame::Seq { seq, inner: Box::new(batch) };
        prop_assert_eq!(decode_frame(encode_frame(&env)), Ok(env));
    }

    /// The decoder's nesting-depth limit: a batch inside a batch (however
    /// the inner one is shaped) never decodes, it errors.
    #[test]
    fn nested_batches_are_rejected(seqs in prop::collection::vec(1u64..10_000, 0..8)) {
        let inner = Frame::Batch(seqs.iter().map(|&s| data(s)).collect());
        let nested = Frame::Batch(vec![data(1), inner]);
        prop_assert!(decode_frame(encode_frame(&nested)).is_err());
    }

    /// The edge-tier subscription/resume/delivery frames roundtrip
    /// bit-exactly for any field values, including empty and large flight
    /// filters and extreme sequence numbers.
    #[test]
    fn edge_frames_roundtrip(
        client in any::<u64>(),
        last_seq in any::<u64>(),
        pub_seq in any::<u64>(),
        ids in prop::collection::vec(any::<u32>(), 0..64),
        seq in 1u64..10_000,
    ) {
        let event = match data(seq) {
            Frame::Data(e) => e,
            _ => unreachable!(),
        };
        let frames = [
            Frame::Subscribe { client, filter: SubscriptionFilter::All },
            Frame::Subscribe { client, filter: SubscriptionFilter::Flights(ids) },
            Frame::Resume { client, last_seq },
            Frame::EdgeEvent { pub_seq, event },
        ];
        for f in frames {
            prop_assert_eq!(decode_frame(encode_frame(&f)), Ok(f.clone()), "{:?}", f);
        }
    }

    /// The encode-once delivery helpers produce bytes identical to a full
    /// `encode_frame`, for any payload: prepending the edge header to a
    /// cached encoding is not a second wire format.
    #[test]
    fn edge_helpers_match_frame_encoding(
        pub_seq in any::<u64>(),
        seq in 1u64..10_000,
        snapshot in prop::collection::vec(any::<u8>(), 0..256),
    ) {
        let inner = data(seq);
        let cached = encode_frame_shared(&inner);
        let event = match inner {
            Frame::Data(e) => e,
            _ => unreachable!(),
        };
        let expect = encode_frame(&Frame::EdgeEvent { pub_seq, event });
        prop_assert_eq!(encode_edge_event(pub_seq, &cached), expect);

        let snap = bytes::Bytes::from(snapshot);
        let frame = Frame::Reseed { pub_seq, snapshot: snap.clone() };
        prop_assert_eq!(encode_reseed(pub_seq, &snap), encode_frame(&frame));
        prop_assert_eq!(decode_frame(encode_reseed(pub_seq, &snap)), Ok(frame));
    }

    /// Truncating an edge frame at any byte boundary errors cleanly.
    #[test]
    fn truncated_edge_frames_never_decode(
        pub_seq in any::<u64>(),
        seq in 1u64..10_000,
        cut_frac in 0.0f64..1.0,
    ) {
        let event = match data(seq) {
            Frame::Data(e) => e,
            _ => unreachable!(),
        };
        let bytes = encode_frame(&Frame::EdgeEvent { pub_seq, event });
        let cut = ((bytes.len() - 1) as f64 * cut_frac) as usize;
        prop_assert!(decode_frame(bytes.slice(..cut)).is_err(), "cut at {}", cut);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A valid frame stream split at arbitrary byte boundaries (TCP gives
    /// no message framing) reassembles into exactly the sent frames, in
    /// order, with a clean EOF at the end.
    #[test]
    fn tcp_reassembles_arbitrarily_chunked_streams(
        seqs in prop::collection::vec(1u64..10_000, 1..8),
        chunk in 1usize..9,
    ) {
        let frames: Vec<Frame> = seqs.iter().map(|&s| data(s)).collect();
        let mut bytes = Vec::new();
        for f in &frames {
            let b = encode_frame(f);
            bytes.extend_from_slice(&(b.len() as u32).to_le_bytes());
            bytes.extend_from_slice(&b);
        }
        let got = with_raw_writer(bytes, chunk, |mut t| {
            let mut got = Vec::new();
            while let Ok(Some(f)) = t.recv() {
                got.push(f);
            }
            got
        });
        prop_assert_eq!(got, frames);
    }

    /// A well-framed payload of garbage must come back as an error (or,
    /// for streams that happen to decode, a frame) — never a panic, and
    /// never a "valid" frame when the version byte is wrong.
    #[test]
    fn tcp_read_path_survives_garbage_payloads(
        payload in prop::collection::vec(any::<u8>(), 0..256),
        chunk in 1usize..9,
    ) {
        let bad_version = payload.first().is_some_and(|&v| v != WIRE_VERSION);
        let mut bytes = (payload.len() as u32).to_le_bytes().to_vec();
        bytes.extend_from_slice(&payload);
        let res = with_raw_writer(bytes, chunk, |mut t| t.recv());
        if bad_version || payload.len() < 2 {
            prop_assert!(res.is_err(), "garbage decoded as a frame: {res:?}");
        }
    }

    /// A length prefix beyond `MAX_FRAME` is rejected before any
    /// allocation, whatever follows it.
    #[test]
    fn tcp_read_path_rejects_oversized_length_prefix(extra in 1u32..1_000_000) {
        let mut bytes = (MAX_FRAME.saturating_add(extra)).to_le_bytes().to_vec();
        bytes.extend_from_slice(&[0u8; 16]);
        let res = with_raw_writer(bytes, 16, |mut t| t.recv());
        prop_assert!(res.is_err(), "oversized frame must be refused: {res:?}");
    }
}

fn faulty_dialer(
    mut dialer: InProcDialer,
    state: Arc<Mutex<FaultState>>,
) -> impl FnMut() -> io::Result<Box<dyn Transport>> {
    move || {
        let raw = dialer.dial()?;
        Ok(Box::new(FaultyTransport::with_state(raw, Arc::clone(&state))) as Box<dyn Transport>)
    }
}

fn acceptor(mut listener: InProcListener) -> impl FnMut() -> io::Result<Box<dyn Transport>> {
    move || listener.accept(Duration::from_millis(5)).map(|t| Box::new(t) as Box<dyn Transport>)
}

/// An arbitrary per-flight view, covering the full field space the
/// snapshot codec must carry (including the `None`-position case and the
/// non-hashed `updates` odometer).
fn arb_flight_view() -> impl Strategy<Value = FlightView> {
    (
        (
            prop::sample::select(FlightStatus::ALL.to_vec()),
            any::<bool>(),
            // Finite coordinates: the codec is bit-exact for any f64, but
            // a NaN position would defeat the equality check (NaN != NaN).
            (-90.0f64..90.0, -180.0f64..180.0, -1000.0f64..60_000.0, 0.0f64..1200.0, 0.0f64..360.0),
        ),
        (any::<u64>(), any::<u32>(), any::<u32>(), any::<u32>(), any::<u32>(), any::<u64>()),
    )
        .prop_map(
            |((status, has_pos, coords), (position_seq, boarded, expected, l, r, upd))| {
                let (lat, lon, alt_ft, speed_kts, heading_deg) = coords;
                let mut v = FlightView::new();
                v.status = status;
                v.position =
                    has_pos.then_some(PositionFix { lat, lon, alt_ft, speed_kts, heading_deg });
                v.position_seq = position_seq;
                v.boarded = boarded;
                v.expected = expected;
                v.bags_loaded = l;
                v.bags_reconciled = r;
                v.updates = upd;
                v
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The snapshot wire codec roundtrips arbitrary operational states:
    /// encode → decode reproduces the snapshot exactly — same `as_of`
    /// frontier, and a restored store with an identical `state_hash`.
    #[test]
    fn snapshot_codec_roundtrips_arbitrary_states(
        entries in prop::collection::vec((any::<u32>(), arb_flight_view()), 0..40),
        stamp in prop::collection::vec(any::<u64>(), 0..6),
    ) {
        let flights: mirror_ede::FlightMap = entries.into_iter().collect();
        let as_of = VectorTimestamp::from_components(stamp);
        let snap = Snapshot::from_parts(flights, as_of);
        let decoded = decode_snapshot(encode_snapshot(&snap)).expect("roundtrip decode");
        prop_assert_eq!(&decoded.as_of, &snap.as_of);
        prop_assert_eq!(decoded.restore().state_hash(), snap.restore().state_hash());
        prop_assert_eq!(decoded, snap);
    }

    /// Arbitrary byte soup never panics the snapshot decoder.
    #[test]
    fn decode_snapshot_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = decode_snapshot(bytes::Bytes::from(bytes));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Whatever the fault schedule — drops, duplicates, reorders, inbound
    /// corruption, periodic forced disconnects — a resilient link delivers
    /// the application's frames exactly once, in order, and never
    /// surfaces a corrupted frame (corruption is detected and handled as
    /// link failure below the application).
    #[test]
    fn resilient_link_is_exactly_once_in_order_under_arbitrary_faults(
        seed in any::<u64>(),
        drops in 0u32..=350,
        dups in 0u32..=300,
        reorders in 0u32..=200,
        corrupts in 0u32..=150,
        disconnect in prop_oneof![Just(0u64), 3u64..20],
    ) {
        const N: u64 = 40;
        let plan = FaultPlan::new(seed)
            .drops(drops)
            .dups(dups)
            .reorders(reorders)
            .corrupts(corrupts)
            .disconnect_every(disconnect);
        let (dialer, listener) = inproc_rendezvous("prop.link");
        let state = plan.state();
        let mut tx = ResilientTransport::new(
            faulty_dialer(dialer, Arc::clone(&state)),
            RetryPolicy::fast(1_000_000),
            "prop.tx",
        );
        let mut rx = ResilientTransport::new(
            acceptor(listener),
            RetryPolicy::fast(1_000_000),
            "prop.rx",
        );

        let mut got = Vec::new();
        let mut sent = 0u64;
        let deadline = Instant::now() + Duration::from_secs(20);
        while got.len() < N as usize && Instant::now() < deadline {
            if sent < N {
                sent += 1;
                tx.send(&data(sent)).expect("send must absorb link faults");
            } else {
                tx.tick(Duration::from_millis(1));
            }
            while let Ok(Polled::Frame(f)) = rx.recv_timeout(Duration::from_millis(1)) {
                got.push(f);
            }
        }

        let summary = state.lock().unwrap().summary();
        prop_assert_eq!(got.len() as u64, N, "lost or duplicated frames under {:?}", summary);
        for (i, f) in got.iter().enumerate() {
            prop_assert_eq!(f, &data(i as u64 + 1), "order violated at {} under {:?}", i, summary);
        }
    }
}
