//! Framed transports carrying the wire format between units.
//!
//! Two implementations of the same [`Transport`] contract:
//!
//! * [`InProcTransport`] — a loopback pair backed by crossbeam channels.
//!   Frames are still run through the binary codec on every send/recv, so
//!   in-process deployments exercise exactly the bytes a networked
//!   deployment would (and codec regressions surface in every test).
//! * [`TcpTransport`] — `std::net::TcpStream` with little-endian `u32`
//!   length-prefixed frames and `TCP_NODELAY` set (mirroring traffic is
//!   many small messages; Nagle would serialize checkpoint rounds).
//!
//! Both are reliable and in-order, the delivery contract the checkpoint
//! protocol of the paper assumes ("this version assumes reliable
//! communication across mirror sites").

use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};

use bytes::Bytes;
use crossbeam::channel::{self, Receiver, Sender};

use crate::wire::{decode_frame, encode_frame, Frame, WireError};

/// Maximum accepted frame size (guards against corrupt length prefixes).
pub const MAX_FRAME: u32 = 64 * 1024 * 1024;

/// A reliable, in-order, bidirectional frame transport.
pub trait Transport: Send {
    /// Send one frame.
    fn send(&mut self, frame: &Frame) -> io::Result<()>;

    /// Block until a frame arrives; `Ok(None)` on clean shutdown of the
    /// peer.
    fn recv(&mut self) -> io::Result<Option<Frame>>;

    /// Diagnostic label.
    fn label(&self) -> String;
}

fn wire_err(e: WireError) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, e)
}

// ---------------------------------------------------------------------
// In-process loopback
// ---------------------------------------------------------------------

/// One endpoint of an in-process transport pair.
pub struct InProcTransport {
    tx: Sender<Bytes>,
    rx: Receiver<Bytes>,
    label: String,
}

impl InProcTransport {
    /// Create a connected pair of endpoints.
    pub fn pair(label: &str) -> (InProcTransport, InProcTransport) {
        let (a_tx, b_rx) = channel::unbounded();
        let (b_tx, a_rx) = channel::unbounded();
        (
            InProcTransport { tx: a_tx, rx: a_rx, label: format!("{label}:a") },
            InProcTransport { tx: b_tx, rx: b_rx, label: format!("{label}:b") },
        )
    }
}

impl Transport for InProcTransport {
    fn send(&mut self, frame: &Frame) -> io::Result<()> {
        let bytes = encode_frame(frame);
        self.tx
            .send(bytes)
            .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "peer dropped"))
    }

    fn recv(&mut self) -> io::Result<Option<Frame>> {
        match self.rx.recv() {
            Ok(bytes) => decode_frame(bytes).map(Some).map_err(wire_err),
            Err(_) => Ok(None),
        }
    }

    fn label(&self) -> String {
        self.label.clone()
    }
}

// ---------------------------------------------------------------------
// TCP
// ---------------------------------------------------------------------

/// A TCP transport endpoint.
pub struct TcpTransport {
    stream: TcpStream,
    peer: String,
}

impl TcpTransport {
    /// Connect to a listening peer.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        Self::from_stream(stream)
    }

    /// Wrap an accepted stream.
    pub fn from_stream(stream: TcpStream) -> io::Result<Self> {
        stream.set_nodelay(true)?;
        let peer = stream.peer_addr().map(|a| a.to_string()).unwrap_or_else(|_| "?".into());
        Ok(TcpTransport { stream, peer })
    }

    /// Bind a listener and accept exactly one connection (convenience for
    /// tests and point-to-point deployments). Returns the bound address
    /// via the callback before blocking in accept.
    pub fn accept_one(listener: &TcpListener) -> io::Result<Self> {
        let (stream, _) = listener.accept()?;
        Self::from_stream(stream)
    }
}

impl Transport for TcpTransport {
    fn send(&mut self, frame: &Frame) -> io::Result<()> {
        let bytes = encode_frame(frame);
        let len = bytes.len() as u32;
        if len > MAX_FRAME {
            return Err(io::Error::new(io::ErrorKind::InvalidInput, "frame too large"));
        }
        self.stream.write_all(&len.to_le_bytes())?;
        self.stream.write_all(&bytes)?;
        Ok(())
    }

    fn recv(&mut self) -> io::Result<Option<Frame>> {
        let mut len_buf = [0u8; 4];
        match self.stream.read_exact(&mut len_buf) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
            Err(e) => return Err(e),
        }
        let len = u32::from_le_bytes(len_buf);
        if len > MAX_FRAME {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "frame length corrupt"));
        }
        let mut buf = vec![0u8; len as usize];
        self.stream.read_exact(&mut buf)?;
        decode_frame(Bytes::from(buf)).map(Some).map_err(wire_err)
    }

    fn label(&self) -> String {
        format!("tcp:{}", self.peer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mirror_core::event::{Event, FlightStatus};
    use mirror_core::timestamp::VectorTimestamp;
    use mirror_core::ControlMsg;

    fn ev(seq: u64) -> Frame {
        Frame::Data(Event::delta_status(seq, 55, FlightStatus::Boarding).with_total_size(256))
    }

    #[test]
    fn inproc_roundtrip_both_directions() {
        let (mut a, mut b) = InProcTransport::pair("t");
        a.send(&ev(1)).unwrap();
        b.send(&ev(2)).unwrap();
        assert_eq!(b.recv().unwrap(), Some(ev(1)));
        assert_eq!(a.recv().unwrap(), Some(ev(2)));
    }

    #[test]
    fn inproc_eof_on_peer_drop() {
        let (mut a, b) = InProcTransport::pair("t");
        drop(b);
        assert!(a.send(&ev(1)).is_err());
        assert_eq!(a.recv().unwrap(), None);
    }

    #[test]
    fn inproc_preserves_order_across_threads() {
        let (mut a, mut b) = InProcTransport::pair("t");
        let h = std::thread::spawn(move || {
            for i in 0..500 {
                a.send(&ev(i)).unwrap();
            }
        });
        for i in 0..500 {
            assert_eq!(b.recv().unwrap(), Some(ev(i)));
        }
        h.join().unwrap();
    }

    #[test]
    fn tcp_roundtrip() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let mut t = TcpTransport::accept_one(&listener).unwrap();
            // Echo everything back until EOF.
            while let Some(f) = t.recv().unwrap() {
                t.send(&f).unwrap();
            }
        });
        let mut c = TcpTransport::connect(addr).unwrap();
        for i in 0..50 {
            c.send(&ev(i)).unwrap();
        }
        let ctrl = Frame::Control(ControlMsg::Chkpt {
            round: 9,
            stamp: VectorTimestamp::from_components(vec![1, 2, 3]),
        });
        c.send(&ctrl).unwrap();
        for i in 0..50 {
            assert_eq!(c.recv().unwrap(), Some(ev(i)));
        }
        assert_eq!(c.recv().unwrap(), Some(ctrl));
        drop(c);
        server.join().unwrap();
    }

    #[test]
    fn tcp_eof_is_clean() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let mut t = TcpTransport::accept_one(&listener).unwrap();
            assert_eq!(t.recv().unwrap(), None);
        });
        let c = TcpTransport::connect(addr).unwrap();
        drop(c);
        server.join().unwrap();
    }

    #[test]
    fn labels_are_informative() {
        let (a, _b) = InProcTransport::pair("link");
        assert!(a.label().contains("link"));
    }
}
