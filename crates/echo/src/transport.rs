//! Framed transports carrying the wire format between units.
//!
//! Two implementations of the same [`Transport`] contract:
//!
//! * [`InProcTransport`] — a loopback pair backed by crossbeam channels.
//!   Frames are still run through the binary codec on every send/recv, so
//!   in-process deployments exercise exactly the bytes a networked
//!   deployment would (and codec regressions surface in every test).
//! * [`TcpTransport`] — `std::net::TcpStream` with little-endian `u32`
//!   length-prefixed frames and `TCP_NODELAY` set (mirroring traffic is
//!   many small messages; Nagle would serialize checkpoint rounds).
//!
//! Both are reliable and in-order, the delivery contract the checkpoint
//! protocol of the paper assumes ("this version assumes reliable
//! communication across mirror sites").

use std::io::{self, IoSlice, Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::time::Duration;

use bytes::Bytes;
use crossbeam::channel::{self, Receiver, RecvTimeoutError, Sender};

use crate::wire::{decode_frame, encode_frame, Frame, WireError};

/// Maximum accepted frame size (guards against corrupt length prefixes).
pub const MAX_FRAME: u32 = 64 * 1024 * 1024;

/// Outcome of a bounded-wait receive ([`Transport::recv_timeout`]).
#[derive(Debug, PartialEq)]
pub enum Polled {
    /// A frame arrived.
    Frame(Frame),
    /// The peer shut the link down cleanly.
    Eof,
    /// Nothing arrived within the timeout; the link is still up.
    Idle,
}

/// A bidirectional frame transport.
///
/// The base implementations ([`InProcTransport`], [`TcpTransport`]) are
/// reliable and in-order for as long as the connection lives; surviving
/// frame loss, reordering and reconnects is layered on top by
/// [`ResilientTransport`](crate::resilient::ResilientTransport).
pub trait Transport: Send {
    /// Send one frame.
    fn send(&mut self, frame: &Frame) -> io::Result<()>;

    /// Send a frame that has already been encoded (see
    /// [`encode_frame_shared`](crate::wire::encode_frame_shared)). This is
    /// the zero-copy fast path: callers that fan one frame out to many
    /// links encode once and hand the same `Bytes` to every transport.
    ///
    /// The default implementation decodes and delegates to
    /// [`send`](Transport::send), so wrappers that inspect frames (fault
    /// injection, tracing) keep seeing every frame without overriding
    /// this; the base transports override it to move bytes straight to
    /// the wire.
    fn send_encoded(&mut self, bytes: &Bytes) -> io::Result<()> {
        let frame = decode_frame(bytes.clone()).map_err(wire_err)?;
        self.send(&frame)
    }

    /// Block until a frame arrives; `Ok(None)` on clean shutdown of the
    /// peer.
    fn recv(&mut self) -> io::Result<Option<Frame>>;

    /// Wait up to `timeout` for a frame. The default implementation simply
    /// blocks in [`recv`](Transport::recv) (no timeout); transports that
    /// can wait with a bound override it, which is what lets the resilient
    /// layer multiplex sending, receiving and reconnecting on one thread.
    fn recv_timeout(&mut self, _timeout: Duration) -> io::Result<Polled> {
        match self.recv()? {
            Some(f) => Ok(Polled::Frame(f)),
            None => Ok(Polled::Eof),
        }
    }

    /// Diagnostic label.
    fn label(&self) -> String;
}

fn wire_err(e: WireError) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, e)
}

// ---------------------------------------------------------------------
// In-process loopback
// ---------------------------------------------------------------------

/// One endpoint of an in-process transport pair.
pub struct InProcTransport {
    tx: Sender<Bytes>,
    rx: Receiver<Bytes>,
    label: String,
}

impl InProcTransport {
    /// Create a connected pair of endpoints.
    pub fn pair(label: &str) -> (InProcTransport, InProcTransport) {
        let (a_tx, b_rx) = channel::unbounded();
        let (b_tx, a_rx) = channel::unbounded();
        (
            InProcTransport { tx: a_tx, rx: a_rx, label: format!("{label}:a") },
            InProcTransport { tx: b_tx, rx: b_rx, label: format!("{label}:b") },
        )
    }
}

impl Transport for InProcTransport {
    fn send(&mut self, frame: &Frame) -> io::Result<()> {
        let bytes = encode_frame(frame);
        self.send_encoded(&bytes)
    }

    fn send_encoded(&mut self, bytes: &Bytes) -> io::Result<()> {
        self.tx
            .send(bytes.clone())
            .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "peer dropped"))
    }

    fn recv(&mut self) -> io::Result<Option<Frame>> {
        match self.rx.recv() {
            Ok(bytes) => decode_frame(bytes).map(Some).map_err(wire_err),
            Err(_) => Ok(None),
        }
    }

    fn recv_timeout(&mut self, timeout: Duration) -> io::Result<Polled> {
        match self.rx.recv_timeout(timeout) {
            Ok(bytes) => decode_frame(bytes).map(Polled::Frame).map_err(wire_err),
            Err(RecvTimeoutError::Timeout) => Ok(Polled::Idle),
            Err(RecvTimeoutError::Disconnected) => Ok(Polled::Eof),
        }
    }

    fn label(&self) -> String {
        self.label.clone()
    }
}

// ---------------------------------------------------------------------
// In-process reconnection rendezvous
// ---------------------------------------------------------------------

/// Dialing side of an in-process "listener": every [`dial`](Self::dial)
/// manufactures a fresh [`InProcTransport`] pair and hands the far half to
/// the matching [`InProcListener`]. This gives in-process deployments (and
/// chaos tests) the same connect/accept lifecycle a TCP deployment has, so
/// reconnect-with-backoff paths can be exercised without sockets.
pub struct InProcDialer {
    tx: Sender<InProcTransport>,
    label: String,
    dialed: u64,
}

/// Accepting side of an in-process rendezvous; see [`InProcDialer`].
pub struct InProcListener {
    rx: Receiver<InProcTransport>,
    label: String,
}

/// Create a connected dialer/listener rendezvous named `label`.
pub fn inproc_rendezvous(label: &str) -> (InProcDialer, InProcListener) {
    let (tx, rx) = channel::unbounded();
    (
        InProcDialer { tx, label: label.to_string(), dialed: 0 },
        InProcListener { rx, label: label.to_string() },
    )
}

impl InProcDialer {
    /// Establish a fresh connection, returning the near half.
    pub fn dial(&mut self) -> io::Result<InProcTransport> {
        self.dialed += 1;
        let (near, far) = InProcTransport::pair(&format!("{}#{}", self.label, self.dialed));
        self.tx
            .send(far)
            .map_err(|_| io::Error::new(io::ErrorKind::ConnectionRefused, "listener dropped"))?;
        Ok(near)
    }
}

impl InProcListener {
    /// Wait up to `timeout` for the dialer to connect.
    pub fn accept(&mut self, timeout: Duration) -> io::Result<InProcTransport> {
        match self.rx.recv_timeout(timeout) {
            Ok(t) => Ok(t),
            Err(RecvTimeoutError::Timeout) => {
                Err(io::Error::new(io::ErrorKind::TimedOut, "no incoming connection"))
            }
            Err(RecvTimeoutError::Disconnected) => {
                Err(io::Error::new(io::ErrorKind::ConnectionAborted, "dialer dropped"))
            }
        }
    }

    /// Diagnostic label.
    pub fn label(&self) -> String {
        self.label.clone()
    }
}

// ---------------------------------------------------------------------
// TCP
// ---------------------------------------------------------------------

/// Socket-level options for [`TcpTransport`].
#[derive(Debug, Clone, Default)]
pub struct TcpOptions {
    /// If set, `recv` fails with `TimedOut` after this long with no
    /// complete frame. Without it a stalled peer blocks `recv` forever,
    /// defeating failure detection. A timed-out `recv` leaves any
    /// partially read frame buffered; the next call resumes it.
    pub read_timeout: Option<Duration>,
    /// If set, blocked writes fail with `TimedOut` after this long.
    pub write_timeout: Option<Duration>,
}

impl TcpOptions {
    /// Options with the given read timeout.
    pub fn with_read_timeout(timeout: Duration) -> Self {
        TcpOptions { read_timeout: Some(timeout), write_timeout: None }
    }
}

/// A TCP transport endpoint.
///
/// The read path is an incremental parser: bytes accumulate in an internal
/// buffer until a full length-prefixed frame is present, so a read timeout
/// firing mid-frame never desynchronizes the stream.
pub struct TcpTransport {
    stream: TcpStream,
    peer: String,
    /// Bytes of the current frame read so far: 4-byte length prefix, then
    /// the body. Empty between frames.
    partial: Vec<u8>,
    /// The read timeout currently programmed on the socket (avoids a
    /// setsockopt per recv).
    socket_timeout: Option<Duration>,
    opts: TcpOptions,
}

impl TcpTransport {
    /// Connect to a listening peer with default options.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        Self::connect_with(addr, TcpOptions::default())
    }

    /// Connect to a listening peer.
    pub fn connect_with(addr: impl ToSocketAddrs, opts: TcpOptions) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        Self::from_stream_with(stream, opts)
    }

    /// Wrap an accepted stream with default options.
    pub fn from_stream(stream: TcpStream) -> io::Result<Self> {
        Self::from_stream_with(stream, TcpOptions::default())
    }

    /// Wrap an accepted stream.
    pub fn from_stream_with(stream: TcpStream, opts: TcpOptions) -> io::Result<Self> {
        stream.set_nodelay(true)?;
        stream.set_write_timeout(opts.write_timeout)?;
        let peer = stream.peer_addr().map(|a| a.to_string()).unwrap_or_else(|_| "?".into());
        Ok(TcpTransport { stream, peer, partial: Vec::new(), socket_timeout: None, opts })
    }

    /// Bind a listener and accept exactly one connection (convenience for
    /// tests and point-to-point deployments). Returns the bound address
    /// via the callback before blocking in accept.
    pub fn accept_one(listener: &TcpListener) -> io::Result<Self> {
        let (stream, _) = listener.accept()?;
        Self::from_stream(stream)
    }

    /// Like [`accept_one`](Self::accept_one), with options.
    pub fn accept_one_with(listener: &TcpListener, opts: TcpOptions) -> io::Result<Self> {
        let (stream, _) = listener.accept()?;
        Self::from_stream_with(stream, opts)
    }

    fn set_socket_timeout(&mut self, t: Option<Duration>) -> io::Result<()> {
        // `set_read_timeout(Some(0))` is an error; clamp up.
        let t = t.map(|d| d.max(Duration::from_millis(1)));
        if t != self.socket_timeout {
            self.stream.set_read_timeout(t)?;
            self.socket_timeout = t;
        }
        Ok(())
    }

    /// How many bytes the in-progress frame still needs before it is
    /// complete, and (once known) the body length.
    fn frame_want(&self) -> io::Result<usize> {
        if self.partial.len() < 4 {
            return Ok(4 - self.partial.len());
        }
        let len = u32::from_le_bytes([
            self.partial[0],
            self.partial[1],
            self.partial[2],
            self.partial[3],
        ]);
        if len > MAX_FRAME {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "frame length corrupt"));
        }
        Ok(4 + len as usize - self.partial.len())
    }

    /// One bounded read pass: accumulate until a full frame, EOF, or the
    /// programmed socket timeout.
    fn read_frame(&mut self) -> io::Result<Polled> {
        loop {
            let want = self.frame_want()?;
            if want == 0 {
                let body = Bytes::from(self.partial.split_off(4));
                self.partial.clear();
                return decode_frame(body).map(Polled::Frame).map_err(wire_err);
            }
            let mut chunk = [0u8; 16 * 1024];
            let cap = want.min(chunk.len());
            match self.stream.read(&mut chunk[..cap]) {
                Ok(0) => {
                    if self.partial.is_empty() {
                        return Ok(Polled::Eof);
                    }
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "peer closed mid-frame",
                    ));
                }
                Ok(n) => self.partial.extend_from_slice(&chunk[..n]),
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    return Ok(Polled::Idle);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }
}

impl Transport for TcpTransport {
    fn send(&mut self, frame: &Frame) -> io::Result<()> {
        let bytes = encode_frame(frame);
        self.send_encoded(&bytes)
    }

    fn send_encoded(&mut self, bytes: &Bytes) -> io::Result<()> {
        // Compare before narrowing: casting first would let an oversized
        // frame wrap around the u32 and slip past the check.
        if bytes.len() > MAX_FRAME as usize {
            return Err(io::Error::new(io::ErrorKind::InvalidInput, "frame too large"));
        }
        let len = (bytes.len() as u32).to_le_bytes();
        // Gather the length prefix and body into one vectored write so a
        // frame (even a large batch) normally costs a single syscall.
        let mut slices = [IoSlice::new(&len), IoSlice::new(bytes)];
        let mut bufs: &mut [IoSlice<'_>] = &mut slices;
        while !bufs.is_empty() {
            match self.stream.write_vectored(bufs) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "failed to write whole frame",
                    ));
                }
                Ok(n) => IoSlice::advance_slices(&mut bufs, n),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    fn recv(&mut self) -> io::Result<Option<Frame>> {
        self.set_socket_timeout(self.opts.read_timeout)?;
        match self.read_frame()? {
            Polled::Frame(f) => Ok(Some(f)),
            Polled::Eof => Ok(None),
            Polled::Idle => Err(io::Error::new(io::ErrorKind::TimedOut, "recv timed out")),
        }
    }

    fn recv_timeout(&mut self, timeout: Duration) -> io::Result<Polled> {
        self.set_socket_timeout(Some(timeout))?;
        self.read_frame()
    }

    fn label(&self) -> String {
        format!("tcp:{}", self.peer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mirror_core::event::{Event, FlightStatus};
    use mirror_core::timestamp::VectorTimestamp;
    use mirror_core::ControlMsg;

    fn ev(seq: u64) -> Frame {
        Frame::Data(std::sync::Arc::new(
            Event::delta_status(seq, 55, FlightStatus::Boarding).with_total_size(256),
        ))
    }

    #[test]
    fn inproc_roundtrip_both_directions() {
        let (mut a, mut b) = InProcTransport::pair("t");
        a.send(&ev(1)).unwrap();
        b.send(&ev(2)).unwrap();
        assert_eq!(b.recv().unwrap(), Some(ev(1)));
        assert_eq!(a.recv().unwrap(), Some(ev(2)));
    }

    #[test]
    fn inproc_eof_on_peer_drop() {
        let (mut a, b) = InProcTransport::pair("t");
        drop(b);
        assert!(a.send(&ev(1)).is_err());
        assert_eq!(a.recv().unwrap(), None);
    }

    #[test]
    fn inproc_preserves_order_across_threads() {
        let (mut a, mut b) = InProcTransport::pair("t");
        let h = std::thread::spawn(move || {
            for i in 0..500 {
                a.send(&ev(i)).unwrap();
            }
        });
        for i in 0..500 {
            assert_eq!(b.recv().unwrap(), Some(ev(i)));
        }
        h.join().unwrap();
    }

    #[test]
    fn tcp_roundtrip() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let mut t = TcpTransport::accept_one(&listener).unwrap();
            // Echo everything back until EOF.
            while let Some(f) = t.recv().unwrap() {
                t.send(&f).unwrap();
            }
        });
        let mut c = TcpTransport::connect(addr).unwrap();
        for i in 0..50 {
            c.send(&ev(i)).unwrap();
        }
        let ctrl = Frame::Control(ControlMsg::Chkpt {
            round: 9,
            stamp: VectorTimestamp::from_components(vec![1, 2, 3]),
            epoch: 0,
            term: 0,
        });
        c.send(&ctrl).unwrap();
        for i in 0..50 {
            assert_eq!(c.recv().unwrap(), Some(ev(i)));
        }
        assert_eq!(c.recv().unwrap(), Some(ctrl));
        drop(c);
        server.join().unwrap();
    }

    #[test]
    fn tcp_eof_is_clean() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let mut t = TcpTransport::accept_one(&listener).unwrap();
            assert_eq!(t.recv().unwrap(), None);
        });
        let c = TcpTransport::connect(addr).unwrap();
        drop(c);
        server.join().unwrap();
    }

    #[test]
    fn inproc_send_encoded_matches_send() {
        use crate::wire::encode_frame_shared;
        let (mut a, mut b) = InProcTransport::pair("enc");
        let f = ev(7);
        a.send_encoded(&encode_frame_shared(&f)).unwrap();
        assert_eq!(b.recv().unwrap(), Some(f));
    }

    #[test]
    fn tcp_send_encoded_batch_roundtrip() {
        use crate::wire::encode_frame_shared;
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let batch = Frame::Batch(vec![ev(1), ev(2), ev(3)]);
        let expect = batch.clone();
        let server = std::thread::spawn(move || {
            let mut t = TcpTransport::accept_one(&listener).unwrap();
            assert_eq!(t.recv().unwrap(), Some(expect));
            assert_eq!(t.recv().unwrap(), None);
        });
        let mut c = TcpTransport::connect(addr).unwrap();
        c.send_encoded(&encode_frame_shared(&batch)).unwrap();
        drop(c);
        server.join().unwrap();
    }

    #[test]
    fn labels_are_informative() {
        let (a, _b) = InProcTransport::pair("link");
        assert!(a.label().contains("link"));
    }
}
