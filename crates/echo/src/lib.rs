//! # mirror-echo — typed event-channel substrate
//!
//! The paper moves data with the **ECho** event communication
//! infrastructure \[Eisenhauer, Bustamante, Schwan — HPDC-9\]:
//! publish/subscribe *event channels*, with a *data* channel and a
//! bi-directional *control* channel between each pair of communicating
//! units. ECho is not available as open source, so this crate provides the
//! equivalent substrate:
//!
//! * [`wire`] — a compact, versioned binary wire format for events and
//!   control messages ([`bytes`]-based). The encoded size of an event is
//!   exactly [`mirror_core::event::Event::wire_size`], which is also what
//!   the cluster simulator charges to links — real and simulated byte
//!   accounting agree by construction.
//! * [`channel`] — in-process typed event channels with multiple
//!   subscribers ([`crossbeam`] under the hood), paired into
//!   [`channel::ChannelPair`]s (data + control) as the paper prescribes.
//! * [`trace`] — record/replay persistence for timed event streams (the
//!   "demo replay" capability the paper's experiments rely on);
//! * [`transport`] — a length-delimited framed TCP transport
//!   (`std::net`) carrying the same wire format between processes, plus a
//!   loopback in-process transport with identical semantics. Both provide
//!   reliable in-order delivery for as long as a connection lives.
//! * [`resilient`] — sequence numbers, cumulative acks, bounded
//!   retransmission and reconnect-with-backoff layered over any transport,
//!   lifting the paper's "reliable communication across mirror sites"
//!   assumption.
//! * [`faults`] — a deterministic, seedable fault-injection decorator
//!   (drops, duplicates, reorders, corruption, forced disconnects) so the
//!   resilient layer — and the whole cluster — can be tested under
//!   adversarial links.

#![warn(missing_docs)]

pub mod channel;
pub mod faults;
pub mod resilient;
pub mod trace;
pub mod transport;
pub mod wire;

pub use channel::{ChannelPair, EventChannel, Publisher, RecvStatus, Subscriber};
pub use faults::{
    FaultPlan, FaultState, FaultSummary, FaultyTransport, LinkFate, LinkProfile, LinkShaper,
    ThrottleSchedule,
};
pub use resilient::{
    Connector, LinkEvent, LinkHealth, LinkMonitor, ResilientTransport, RetryPolicy,
};
pub use transport::{
    inproc_rendezvous, InProcDialer, InProcListener, InProcTransport, Polled, TcpOptions,
    TcpTransport, Transport,
};
pub use wire::{
    decode_delta, decode_frame, encode_batch_from_encoded, encode_delta, encode_delta_reseed,
    encode_edge_event, encode_frame, encode_frame_shared, encode_reseed, encode_seq_envelope,
    Frame, SharedEvent, SubscriptionFilter, WireError, WIRE_VERSION,
};
