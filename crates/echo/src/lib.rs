//! # mirror-echo — typed event-channel substrate
//!
//! The paper moves data with the **ECho** event communication
//! infrastructure \[Eisenhauer, Bustamante, Schwan — HPDC-9\]:
//! publish/subscribe *event channels*, with a *data* channel and a
//! bi-directional *control* channel between each pair of communicating
//! units. ECho is not available as open source, so this crate provides the
//! equivalent substrate:
//!
//! * [`wire`] — a compact, versioned binary wire format for events and
//!   control messages ([`bytes`]-based). The encoded size of an event is
//!   exactly [`mirror_core::event::Event::wire_size`], which is also what
//!   the cluster simulator charges to links — real and simulated byte
//!   accounting agree by construction.
//! * [`channel`] — in-process typed event channels with multiple
//!   subscribers ([`crossbeam`] under the hood), paired into
//!   [`channel::ChannelPair`]s (data + control) as the paper prescribes.
//! * [`trace`] — record/replay persistence for timed event streams (the
//!   "demo replay" capability the paper's experiments rely on);
//! * [`transport`] — a length-delimited framed TCP transport
//!   (`std::net`) carrying the same wire format between processes, plus a
//!   loopback in-process transport with identical semantics. Both provide
//!   the reliable in-order delivery the checkpoint protocol assumes.

#![warn(missing_docs)]

pub mod channel;
pub mod trace;
pub mod transport;
pub mod wire;

pub use channel::{ChannelPair, EventChannel, Publisher, RecvStatus, Subscriber};
pub use transport::{InProcTransport, TcpTransport, Transport};
pub use wire::{decode_frame, encode_frame, Frame, WireError, WIRE_VERSION};
