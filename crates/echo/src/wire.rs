//! Binary wire format.
//!
//! Every frame is `[u8 version][u8 kind][payload…]`; transports additionally
//! length-prefix frames with a little-endian `u32`. Integers are
//! little-endian throughout. The format is hand-rolled (no reflection, no
//! text) because mirroring throughput is the whole point of the paper: an
//! event's encoded size equals [`Event::wire_size`] exactly, byte for byte.

use std::sync::{Arc, OnceLock};

use bytes::{Buf, BufMut, Bytes, BytesMut};
use mirror_core::adapt::MonitorReport;
use mirror_core::control::AdaptDirective;
use mirror_core::event::{Event, EventBody, FlightStatus, PositionFix};
use mirror_core::mirrorfn::MirrorFnKind;
use mirror_core::params::MirrorParams;
use mirror_core::partition::PartitionMap;
use mirror_core::timestamp::VectorTimestamp;
use mirror_core::ControlMsg;
use mirror_ede::{FlightView, Snapshot, StateDelta};

/// Wire-format version byte; bumped on incompatible change.
pub const WIRE_VERSION: u8 = 1;

/// Frame kinds.
const KIND_DATA: u8 = 0;
const KIND_CONTROL: u8 = 1;
const KIND_SEQ: u8 = 2;
const KIND_ACK: u8 = 3;
const KIND_HELLO: u8 = 4;
const KIND_BATCH: u8 = 5;
const KIND_SNAPSHOT: u8 = 6;
const KIND_SUBSCRIBE: u8 = 7;
const KIND_RESUME: u8 = 8;
const KIND_EDGE_EVENT: u8 = 9;
const KIND_RESEED: u8 = 10;
const KIND_DELTA: u8 = 11;
const KIND_DELTA_SNAPSHOT: u8 = 12;

/// Decoding/encoding failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Frame shorter than its headers claim.
    Truncated,
    /// Unknown version byte.
    BadVersion(u8),
    /// Unknown frame kind / body tag / enum discriminant.
    BadTag(u8),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "frame truncated"),
            WireError::BadVersion(v) => write!(f, "unsupported wire version {v}"),
            WireError::BadTag(t) => write!(f, "unknown tag {t}"),
        }
    }
}

impl std::error::Error for WireError {}

/// What subset of the flight map a subscriber wants pushed to it.
///
/// Carried on [`Frame::Subscribe`]; the edge tier uses it as first-class
/// routing state (the Gryphon information-flow view): an event for flight
/// `f` is delivered only to connections whose filter
/// [`matches`](Self::matches) `f`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubscriptionFilter {
    /// Deliver every flight's updates (the airport-lobby display).
    All,
    /// Deliver only the listed flight ids (a gate display).
    Flights(Vec<mirror_core::event::FlightId>),
}

impl SubscriptionFilter {
    /// Does this filter select events for `flight`?
    pub fn matches(&self, flight: mirror_core::event::FlightId) -> bool {
        match self {
            SubscriptionFilter::All => true,
            SubscriptionFilter::Flights(ids) => ids.contains(&flight),
        }
    }
}

/// A decoded frame: an application event, a control message, or one of the
/// reliability envelopes spoken by
/// [`ResilientTransport`](crate::resilient::ResilientTransport).
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Application data event. Shared (`Arc`) so a frame clone — e.g. into
    /// a retransmission window or across a fan-out of mirror links — bumps
    /// a reference count instead of deep-copying the event.
    Data(Arc<Event>),
    /// Checkpoint/adaptation control message.
    Control(ControlMsg),
    /// A sequence-numbered envelope around another frame. Sequence numbers
    /// start at 1 and increase by one per envelope on a given link
    /// direction; nesting an envelope inside an envelope is rejected.
    Seq {
        /// Per-link, per-direction sequence number (first frame is 1).
        seq: u64,
        /// The application frame being carried.
        inner: Box<Frame>,
    },
    /// Cumulative acknowledgment: every envelope with `seq <= cum` has been
    /// delivered to the receiving application.
    Ack {
        /// Highest contiguously delivered sequence number.
        cum: u64,
    },
    /// Sent by each side after (re)connecting: the next sequence number the
    /// sender expects to receive. The peer retransmits its unacknowledged
    /// window from that point.
    Hello {
        /// Next expected incoming sequence number.
        next: u64,
    },
    /// A batch of application frames transmitted as one unit: a burst of N
    /// events costs one length-prefixed transport frame (and, over TCP, one
    /// syscall) instead of N. Only [`Frame::Data`] and [`Frame::Control`]
    /// may appear inside; a batch may itself be wrapped in a single
    /// [`Frame::Seq`] envelope, in which case one ack covers the whole
    /// batch and the resilient layer's exactly-once ordering applies to the
    /// batch as a unit.
    Batch(Vec<Frame>),
    /// Edge-tier subscription request: the first frame a subscriber sends
    /// after connecting. `client` identifies the subscriber across
    /// reconnects (the edge keys its resume directory on it).
    Subscribe {
        /// Stable subscriber identity, chosen by the client.
        client: u64,
        /// Which flights to push.
        filter: SubscriptionFilter,
    },
    /// Edge-tier reconnection: resume delivery for a previously subscribed
    /// client from its last acknowledged publication sequence. The edge
    /// replays matching retained events after `last_seq`, or reseeds from a
    /// snapshot ([`Frame::Reseed`]) when `last_seq` has fallen out of the
    /// retained window.
    Resume {
        /// Stable subscriber identity from the original subscribe.
        client: u64,
        /// Highest publication sequence the client has durably consumed
        /// (0 = nothing yet).
        last_seq: u64,
    },
    /// Edge-tier delivery: one applied event stamped with the edge's global
    /// publication sequence. `pub_seq` is identical for every subscriber —
    /// that is what lets one encoding be shared across 100k write queues —
    /// so a conflating edge produces per-client *gaps* in `pub_seq`, never
    /// per-client renumbering. The payload embeds the event's
    /// [`Frame::Data`] encoding verbatim (see [`encode_edge_event`]).
    EdgeEvent {
        /// Global publication sequence (first published event is 1).
        pub_seq: u64,
        /// The applied event.
        event: Arc<Event>,
    },
    /// Edge-tier reseed: a full snapshot replacing the client's state when
    /// its resume point predates the retained window. The payload embeds an
    /// [`encode_snapshot`] frame verbatim and is kept as opaque bytes here
    /// so the cached encoding is forwarded zero-copy; clients decode it
    /// with [`decode_snapshot`]. Delivery continues after `pub_seq`.
    Reseed {
        /// Publication frontier the snapshot reflects: every event with
        /// `pub_seq <=` this value is folded into the snapshot.
        pub_seq: u64,
        /// Encoded snapshot ([`encode_snapshot`] output).
        snapshot: Bytes,
    },
    /// Delta reseed: the cheap sibling of [`Frame::Reseed`] for a client
    /// whose held state already covers the delta's base frontier — only the
    /// flights changed (and removed) since the base travel. The payload
    /// embeds an [`encode_delta`] frame verbatim, kept as opaque bytes so a
    /// cached encoding forwards zero-copy; clients decode it with
    /// [`decode_delta`]. Delivery continues after `pub_seq`.
    DeltaSnapshot {
        /// Publication frontier the delta reflects: every event with
        /// `pub_seq <=` this value is folded into the delta's `as_of` state.
        pub_seq: u64,
        /// Encoded delta ([`encode_delta`] output).
        delta: Bytes,
    },
}

/// Encode a frame (version + kind + payload) into a fresh buffer.
pub fn encode_frame(frame: &Frame) -> Bytes {
    let mut buf = BytesMut::with_capacity(frame_size_hint(frame));
    encode_frame_into(frame, &mut buf);
    buf.freeze()
}

/// Capacity to reserve before encoding `frame`, so the hot encode paths
/// (notably ~1 KiB padded data events) fill one right-sized allocation
/// instead of growing a small buffer through a realloc-and-copy chain.
/// Exact for data/seq/ack/hello frames ([`Event::wire_size`] is exact);
/// a floor for control and batch frames, which are off the hot path.
fn frame_size_hint(frame: &Frame) -> usize {
    2 + match frame {
        Frame::Data(e) => e.wire_size(),
        Frame::Seq { seq: _, inner } => 8 + frame_size_hint(inner),
        Frame::Ack { .. } | Frame::Hello { .. } => 8,
        Frame::Control(_) | Frame::Batch(_) => 62,
        Frame::Subscribe { filter, .. } => match filter {
            SubscriptionFilter::All => 9,
            SubscriptionFilter::Flights(ids) => 13 + ids.len() * 4,
        },
        Frame::Resume { .. } => 16,
        Frame::EdgeEvent { event, .. } => 8 + 2 + event.wire_size(),
        Frame::Reseed { snapshot, .. } => 8 + 4 + snapshot.len(),
        Frame::DeltaSnapshot { delta, .. } => 8 + 4 + delta.len(),
    }
}

/// Encode a frame once into a shareable buffer.
///
/// The returned [`Bytes`] is the encode-once handle of the zero-copy send
/// path: cloning it is a reference-count bump, so one encoding can be
/// handed to every outgoing mirror channel (and retained in a
/// retransmission window) without re-encoding or copying. Transports accept
/// it directly via [`crate::Transport::send_encoded`].
///
/// The byte layout is identical to [`encode_frame`].
pub fn encode_frame_shared(frame: &Frame) -> Bytes {
    encode_frame(frame)
}

/// Build the encoded form of `Frame::Seq { seq, inner }` by prepending the
/// envelope header to the inner frame's existing encoding.
///
/// A Seq envelope embeds its inner frame's encoding verbatim as a suffix,
/// so a sender that already holds `encode_frame(inner)` (e.g. from the
/// encode-once fan-out) can build the envelope with one small copy of the
/// 10-byte header instead of re-encoding the payload.
pub fn encode_seq_envelope(seq: u64, inner_encoded: &Bytes) -> Bytes {
    let mut buf = BytesMut::with_capacity(10 + inner_encoded.len());
    buf.put_u8(WIRE_VERSION);
    buf.put_u8(KIND_SEQ);
    buf.put_u64_le(seq);
    buf.put_slice(inner_encoded);
    buf.freeze()
}

/// Build the encoded form of `Frame::EdgeEvent { pub_seq, event }` by
/// prepending the publication-sequence header to the event's existing
/// [`Frame::Data`] encoding.
///
/// This is the edge tier's encode-once delivery path: the mirror's applied
/// event is encoded exactly once (the [`SharedEvent::encoded`] cache or a
/// single `encode_frame`), and every subscribed connection's write queue
/// holds the same `Bytes` — building the delivery frame costs one 10-byte
/// header copy, regardless of fan-out width.
pub fn encode_edge_event(pub_seq: u64, data_encoded: &Bytes) -> Bytes {
    let mut buf = BytesMut::with_capacity(10 + data_encoded.len());
    buf.put_u8(WIRE_VERSION);
    buf.put_u8(KIND_EDGE_EVENT);
    buf.put_u64_le(pub_seq);
    buf.put_slice(data_encoded);
    buf.freeze()
}

/// Build the encoded form of `Frame::Reseed { pub_seq, snapshot }` from an
/// already-encoded snapshot ([`encode_snapshot`] output — e.g. the §13
/// cache's shared encoding), copied once behind the 14-byte header.
pub fn encode_reseed(pub_seq: u64, snapshot_wire: &Bytes) -> Bytes {
    let mut buf = BytesMut::with_capacity(14 + snapshot_wire.len());
    buf.put_u8(WIRE_VERSION);
    buf.put_u8(KIND_RESEED);
    buf.put_u64_le(pub_seq);
    buf.put_u32_le(snapshot_wire.len() as u32);
    buf.put_slice(snapshot_wire);
    buf.freeze()
}

/// Build the encoded form of `Frame::DeltaSnapshot { pub_seq, delta }` from
/// an already-encoded delta ([`encode_delta`] output — e.g. the StateSync
/// cache's shared encoding), copied once behind the 14-byte header.
pub fn encode_delta_reseed(pub_seq: u64, delta_wire: &Bytes) -> Bytes {
    let mut buf = BytesMut::with_capacity(14 + delta_wire.len());
    buf.put_u8(WIRE_VERSION);
    buf.put_u8(KIND_DELTA_SNAPSHOT);
    buf.put_u64_le(pub_seq);
    buf.put_u32_le(delta_wire.len() as u32);
    buf.put_slice(delta_wire);
    buf.freeze()
}

/// Build the encoded form of `Frame::Batch` from already-encoded member
/// frames, without re-encoding any of them.
///
/// This is the hot path of the batching bridge writer: each member is the
/// cached [`SharedEvent::encoded`] (or any `encode_frame` output), and the
/// batch frame is their concatenation behind a count header.
pub fn encode_batch_from_encoded(parts: &[Bytes]) -> Bytes {
    let total: usize = parts.iter().map(|p| 4 + p.len()).sum();
    let mut buf = BytesMut::with_capacity(2 + 4 + total);
    buf.put_u8(WIRE_VERSION);
    buf.put_u8(KIND_BATCH);
    buf.put_u32_le(parts.len() as u32);
    for p in parts {
        buf.put_u32_le(p.len() as u32);
        buf.put_slice(p);
    }
    buf.freeze()
}

/// An event paired with a lazily computed, shared wire encoding.
///
/// This is the unit that flows through the runtime's data channels: cloning
/// it (once per subscriber per publish) costs two reference-count bumps.
/// The first caller of [`encoded`](Self::encoded) pays the encoding cost;
/// every other bridge/link reuses the same buffer — encode once, send
/// everywhere. In-process consumers touch only [`event`](Self::event) and
/// never pay for an encoding at all.
#[derive(Clone, Debug)]
pub struct SharedEvent {
    event: Arc<Event>,
    encoded: Arc<OnceLock<Bytes>>,
}

impl SharedEvent {
    /// Wrap an event for shared fan-out.
    pub fn new(event: Arc<Event>) -> Self {
        SharedEvent { event, encoded: Arc::new(OnceLock::new()) }
    }

    /// The event itself.
    pub fn event(&self) -> &Arc<Event> {
        &self.event
    }

    /// Unwrap into the shared event, dropping the encoding cache handle.
    pub fn into_event(self) -> Arc<Event> {
        self.event
    }

    /// The event's wire encoding as a [`Frame::Data`] frame, computed once
    /// across all clones of this `SharedEvent` and shared thereafter.
    pub fn encoded(&self) -> Bytes {
        self.encoded
            .get_or_init(|| encode_frame_shared(&Frame::Data(Arc::clone(&self.event))))
            .clone()
    }
}

impl From<Event> for SharedEvent {
    fn from(e: Event) -> Self {
        SharedEvent::new(Arc::new(e))
    }
}

impl From<Arc<Event>> for SharedEvent {
    fn from(e: Arc<Event>) -> Self {
        SharedEvent::new(e)
    }
}

impl PartialEq for SharedEvent {
    fn eq(&self, other: &Self) -> bool {
        self.event == other.event
    }
}

fn encode_frame_into(frame: &Frame, buf: &mut BytesMut) {
    buf.put_u8(WIRE_VERSION);
    match frame {
        Frame::Data(e) => {
            buf.put_u8(KIND_DATA);
            encode_event(e, buf);
        }
        Frame::Control(c) => {
            buf.put_u8(KIND_CONTROL);
            encode_control(c, buf);
        }
        Frame::Seq { seq, inner } => {
            buf.put_u8(KIND_SEQ);
            buf.put_u64_le(*seq);
            encode_frame_into(inner, buf);
        }
        Frame::Ack { cum } => {
            buf.put_u8(KIND_ACK);
            buf.put_u64_le(*cum);
        }
        Frame::Hello { next } => {
            buf.put_u8(KIND_HELLO);
            buf.put_u64_le(*next);
        }
        Frame::Batch(frames) => {
            buf.put_u8(KIND_BATCH);
            buf.put_u32_le(frames.len() as u32);
            for f in frames {
                let mut inner = BytesMut::with_capacity(frame_size_hint(f));
                encode_frame_into(f, &mut inner);
                buf.put_u32_le(inner.len() as u32);
                buf.put_slice(&inner);
            }
        }
        Frame::Subscribe { client, filter } => {
            buf.put_u8(KIND_SUBSCRIBE);
            buf.put_u64_le(*client);
            match filter {
                SubscriptionFilter::All => buf.put_u8(0),
                SubscriptionFilter::Flights(ids) => {
                    buf.put_u8(1);
                    buf.put_u32_le(ids.len() as u32);
                    for id in ids {
                        buf.put_u32_le(*id);
                    }
                }
            }
        }
        Frame::Resume { client, last_seq } => {
            buf.put_u8(KIND_RESUME);
            buf.put_u64_le(*client);
            buf.put_u64_le(*last_seq);
        }
        Frame::EdgeEvent { pub_seq, event } => {
            buf.put_u8(KIND_EDGE_EVENT);
            buf.put_u64_le(*pub_seq);
            // The embedded Data frame is byte-identical to its standalone
            // encoding, so `encode_edge_event` can prepend this header to a
            // cached encoding without re-encoding the event.
            buf.put_u8(WIRE_VERSION);
            buf.put_u8(KIND_DATA);
            encode_event(event, buf);
        }
        Frame::Reseed { pub_seq, snapshot } => {
            buf.put_u8(KIND_RESEED);
            buf.put_u64_le(*pub_seq);
            buf.put_u32_le(snapshot.len() as u32);
            buf.put_slice(snapshot);
        }
        Frame::DeltaSnapshot { pub_seq, delta } => {
            buf.put_u8(KIND_DELTA_SNAPSHOT);
            buf.put_u64_le(*pub_seq);
            buf.put_u32_le(delta.len() as u32);
            buf.put_slice(delta);
        }
    }
}

/// Decode a frame from a buffer (consumes it).
pub fn decode_frame(buf: Bytes) -> Result<Frame, WireError> {
    decode_frame_at(buf, 0)
}

fn decode_frame_at(mut buf: Bytes, depth: u8) -> Result<Frame, WireError> {
    if buf.remaining() < 2 {
        return Err(WireError::Truncated);
    }
    let version = buf.get_u8();
    if version != WIRE_VERSION {
        return Err(WireError::BadVersion(version));
    }
    match buf.get_u8() {
        KIND_DATA => Ok(Frame::Data(Arc::new(decode_event(&mut buf)?))),
        KIND_CONTROL => Ok(Frame::Control(decode_control(&mut buf)?)),
        // A Seq envelope may not carry another Seq envelope: one level of
        // nesting is all the protocol produces, and the cap keeps a corrupt
        // or hostile frame from driving unbounded recursion.
        KIND_SEQ if depth == 0 => {
            need(&buf, 8)?;
            let seq = buf.get_u64_le();
            let inner = decode_frame_at(buf, depth + 1)?;
            Ok(Frame::Seq { seq, inner: Box::new(inner) })
        }
        KIND_ACK if depth < 2 => {
            need(&buf, 8)?;
            Ok(Frame::Ack { cum: buf.get_u64_le() })
        }
        KIND_HELLO if depth < 2 => {
            need(&buf, 8)?;
            Ok(Frame::Hello { next: buf.get_u64_le() })
        }
        // A batch may stand alone or sit inside one Seq envelope; its
        // members (decoded at depth 2) may only be Data/Control frames —
        // no nested batches, no reliability frames smuggled inside.
        KIND_BATCH if depth <= 1 => {
            need(&buf, 4)?;
            let count = buf.get_u32_le() as usize;
            let mut frames = Vec::with_capacity(count.min(1024));
            for _ in 0..count {
                need(&buf, 4)?;
                let len = buf.get_u32_le() as usize;
                need(&buf, len)?;
                let part = buf.slice(..len);
                buf.advance(len);
                frames.push(decode_frame_at(part, 2)?);
            }
            Ok(Frame::Batch(frames))
        }
        // Edge-tier frames are top-level only: the edge protocol never
        // wraps them in Seq envelopes (pub_seq IS the sequencing) and never
        // batches them through Frame::Batch (delivery batching reuses the
        // shared Data encodings directly).
        KIND_SUBSCRIBE if depth == 0 => {
            need(&buf, 9)?;
            let client = buf.get_u64_le();
            let filter = match buf.get_u8() {
                0 => SubscriptionFilter::All,
                1 => {
                    need(&buf, 4)?;
                    let n = buf.get_u32_le() as usize;
                    need(&buf, n * 4)?;
                    let mut ids = Vec::with_capacity(n.min(65_536));
                    for _ in 0..n {
                        ids.push(buf.get_u32_le());
                    }
                    SubscriptionFilter::Flights(ids)
                }
                t => return Err(WireError::BadTag(t)),
            };
            Ok(Frame::Subscribe { client, filter })
        }
        KIND_RESUME if depth == 0 => {
            need(&buf, 16)?;
            let client = buf.get_u64_le();
            let last_seq = buf.get_u64_le();
            Ok(Frame::Resume { client, last_seq })
        }
        KIND_EDGE_EVENT if depth == 0 => {
            need(&buf, 8)?;
            let pub_seq = buf.get_u64_le();
            // The remainder is an embedded Data frame, verbatim; decoding
            // at depth 2 keeps reliability/edge frames from hiding inside.
            match decode_frame_at(buf, 2)? {
                Frame::Data(event) => Ok(Frame::EdgeEvent { pub_seq, event }),
                _ => Err(WireError::BadTag(KIND_EDGE_EVENT)),
            }
        }
        KIND_RESEED if depth == 0 => {
            need(&buf, 12)?;
            let pub_seq = buf.get_u64_le();
            let len = buf.get_u32_le() as usize;
            need(&buf, len)?;
            // Zero-copy: the snapshot stays a slice of the receive buffer
            // until the client decodes it with `decode_snapshot`.
            let snapshot = buf.slice(..len);
            buf.advance(len);
            Ok(Frame::Reseed { pub_seq, snapshot })
        }
        KIND_DELTA_SNAPSHOT if depth == 0 => {
            need(&buf, 12)?;
            let pub_seq = buf.get_u64_le();
            let len = buf.get_u32_le() as usize;
            need(&buf, len)?;
            // Zero-copy, like Reseed: decoded by the client with
            // `decode_delta` when it installs the catch-up.
            let delta = buf.slice(..len);
            buf.advance(len);
            Ok(Frame::DeltaSnapshot { pub_seq, delta })
        }
        t => Err(WireError::BadTag(t)),
    }
}

// ---------------------------------------------------------------------
// Events
// ---------------------------------------------------------------------

/// Encode an event. Layout (matching `EVENT_HEADER_WIRE_SIZE`): stream u16,
/// seq u64, flight u32, body-tag u8, stamp-count u16, padding-len u32,
/// ingress u64, stamp components, body fields, padding zeros.
pub fn encode_event(e: &Event, buf: &mut BytesMut) {
    buf.put_u16_le(e.stream);
    buf.put_u64_le(e.seq);
    buf.put_u32_le(e.flight);
    buf.put_u8(e.body.tag());
    buf.put_u16_le(e.stamp.width() as u16);
    buf.put_u32_le(e.padding);
    buf.put_u64_le(e.ingress_us);
    for &c in e.stamp.components() {
        buf.put_u64_le(c);
    }
    match &e.body {
        EventBody::Position(p) => encode_fix(p, buf),
        EventBody::Status(s) => buf.put_u8(*s as u8),
        EventBody::Boarding { boarded, expected } => {
            buf.put_u32_le(*boarded);
            buf.put_u32_le(*expected);
        }
        EventBody::Derived { status, collapsed } => {
            buf.put_u8(*status as u8);
            buf.put_u32_le(*collapsed);
        }
        EventBody::Coalesced { last, count } => {
            encode_fix(last, buf);
            buf.put_u32_le(*count);
        }
        EventBody::Opaque(b) => {
            buf.put_u32_le(b.len() as u32);
            buf.put_slice(b);
        }
        EventBody::Baggage { loaded, reconciled } => {
            buf.put_u32_le(*loaded);
            buf.put_u32_le(*reconciled);
        }
    }
    // Chunked zero fill instead of `put_bytes(0, n)`: padding dominates the
    // wire size of benchmark-scale events (~1 KiB), and `put_bytes` is
    // byte-at-a-time in minimal `BufMut` implementations, which made this
    // single call most of the whole encode cost. `put_slice` is a bulk copy
    // everywhere.
    let mut left = e.padding as usize;
    while left > 0 {
        let n = left.min(ZERO_PAD.len());
        buf.put_slice(&ZERO_PAD[..n]);
        left -= n;
    }
}

/// Source block for zero padding in [`encode_event`].
static ZERO_PAD: [u8; 1024] = [0; 1024];

/// Decode an event.
pub fn decode_event(buf: &mut Bytes) -> Result<Event, WireError> {
    const FIXED: usize = 2 + 8 + 4 + 1 + 2 + 4 + 8;
    if buf.remaining() < FIXED {
        return Err(WireError::Truncated);
    }
    let stream = buf.get_u16_le();
    let seq = buf.get_u64_le();
    let flight = buf.get_u32_le();
    let tag = buf.get_u8();
    let stamp_n = buf.get_u16_le() as usize;
    let padding = buf.get_u32_le();
    let ingress_us = buf.get_u64_le();
    if buf.remaining() < stamp_n * 8 {
        return Err(WireError::Truncated);
    }
    let mut comps = Vec::with_capacity(stamp_n);
    for _ in 0..stamp_n {
        comps.push(buf.get_u64_le());
    }
    let body = match tag {
        0 => EventBody::Position(decode_fix(buf)?),
        1 => EventBody::Status(decode_status(buf)?),
        2 => {
            need(buf, 8)?;
            EventBody::Boarding { boarded: buf.get_u32_le(), expected: buf.get_u32_le() }
        }
        3 => {
            need(buf, 5)?;
            let status = decode_status(buf)?;
            EventBody::Derived { status, collapsed: buf.get_u32_le() }
        }
        4 => {
            let last = decode_fix(buf)?;
            need(buf, 4)?;
            EventBody::Coalesced { last, count: buf.get_u32_le() }
        }
        5 => {
            need(buf, 4)?;
            let n = buf.get_u32_le() as usize;
            need(buf, n)?;
            // Zero-copy: the payload is a slice of the receive buffer.
            let b = buf.slice(..n);
            buf.advance(n);
            EventBody::Opaque(b)
        }
        6 => {
            need(buf, 8)?;
            EventBody::Baggage { loaded: buf.get_u32_le(), reconciled: buf.get_u32_le() }
        }
        t => return Err(WireError::BadTag(t)),
    };
    need(buf, padding as usize)?;
    buf.advance(padding as usize);
    Ok(Event {
        stream,
        seq,
        flight,
        body,
        stamp: VectorTimestamp::from_components(comps),
        padding,
        ingress_us,
    })
}

fn encode_fix(p: &PositionFix, buf: &mut BytesMut) {
    buf.put_f64_le(p.lat);
    buf.put_f64_le(p.lon);
    buf.put_f64_le(p.alt_ft);
    buf.put_f64_le(p.speed_kts);
    buf.put_f64_le(p.heading_deg);
}

fn decode_fix(buf: &mut Bytes) -> Result<PositionFix, WireError> {
    need(buf, PositionFix::WIRE_SIZE)?;
    Ok(PositionFix {
        lat: buf.get_f64_le(),
        lon: buf.get_f64_le(),
        alt_ft: buf.get_f64_le(),
        speed_kts: buf.get_f64_le(),
        heading_deg: buf.get_f64_le(),
    })
}

fn decode_status(buf: &mut Bytes) -> Result<FlightStatus, WireError> {
    need(buf, 1)?;
    let b = buf.get_u8();
    FlightStatus::from_u8(b).ok_or(WireError::BadTag(b))
}

fn need(buf: &Bytes, n: usize) -> Result<(), WireError> {
    if buf.remaining() < n {
        Err(WireError::Truncated)
    } else {
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Control messages
// ---------------------------------------------------------------------

const CTRL_CHKPT: u8 = 0;
const CTRL_REP: u8 = 1;
const CTRL_COMMIT: u8 = 2;

/// Encode a control message.
pub fn encode_control(c: &ControlMsg, buf: &mut BytesMut) {
    match c {
        ControlMsg::Chkpt { round, stamp, epoch, term } => {
            buf.put_u8(CTRL_CHKPT);
            buf.put_u64_le(*round);
            buf.put_u64_le(*term);
            buf.put_u64_le(*epoch);
            encode_stamp(stamp, buf);
        }
        ControlMsg::ChkptRep { round, site, stamp, monitor, term } => {
            buf.put_u8(CTRL_REP);
            buf.put_u64_le(*round);
            buf.put_u64_le(*term);
            buf.put_u16_le(*site);
            encode_stamp(stamp, buf);
            buf.put_u64_le(monitor.ready_len);
            buf.put_u64_le(monitor.backup_len);
            buf.put_u64_le(monitor.pending_requests);
        }
        ControlMsg::Commit { round, stamp, epoch, term, adapt } => {
            buf.put_u8(CTRL_COMMIT);
            buf.put_u64_le(*round);
            buf.put_u64_le(*term);
            buf.put_u64_le(*epoch);
            encode_stamp(stamp, buf);
            match adapt {
                None => buf.put_u8(0),
                Some(d) => {
                    buf.put_u8(1);
                    encode_params(&d.params, buf);
                    encode_kind(&d.mirror_fn, buf);
                    encode_partition(&d.partition, buf);
                }
            }
        }
    }
}

/// Decode a control message.
pub fn decode_control(buf: &mut Bytes) -> Result<ControlMsg, WireError> {
    need(buf, 1 + 8 + 8)?;
    let tag = buf.get_u8();
    let round = buf.get_u64_le();
    let term = buf.get_u64_le();
    match tag {
        CTRL_CHKPT => {
            need(buf, 8)?;
            let epoch = buf.get_u64_le();
            Ok(ControlMsg::Chkpt { round, stamp: decode_stamp(buf)?, epoch, term })
        }
        CTRL_REP => {
            need(buf, 2)?;
            let site = buf.get_u16_le();
            let stamp = decode_stamp(buf)?;
            need(buf, 24)?;
            let monitor = MonitorReport {
                ready_len: buf.get_u64_le(),
                backup_len: buf.get_u64_le(),
                pending_requests: buf.get_u64_le(),
            };
            Ok(ControlMsg::ChkptRep { round, site, stamp, monitor, term })
        }
        CTRL_COMMIT => {
            need(buf, 8)?;
            let epoch = buf.get_u64_le();
            let stamp = decode_stamp(buf)?;
            need(buf, 1)?;
            let adapt = match buf.get_u8() {
                0 => None,
                1 => Some(AdaptDirective {
                    params: decode_params(buf)?,
                    mirror_fn: decode_kind(buf)?,
                    partition: decode_partition(buf)?,
                }),
                t => return Err(WireError::BadTag(t)),
            };
            Ok(ControlMsg::Commit { round, stamp, epoch, term, adapt })
        }
        t => Err(WireError::BadTag(t)),
    }
}

fn encode_stamp(s: &VectorTimestamp, buf: &mut BytesMut) {
    buf.put_u16_le(s.width() as u16);
    for &c in s.components() {
        buf.put_u64_le(c);
    }
}

fn decode_stamp(buf: &mut Bytes) -> Result<VectorTimestamp, WireError> {
    need(buf, 2)?;
    let n = buf.get_u16_le() as usize;
    need(buf, n * 8)?;
    let mut comps = Vec::with_capacity(n);
    for _ in 0..n {
        comps.push(buf.get_u64_le());
    }
    Ok(VectorTimestamp::from_components(comps))
}

fn encode_partition(p: &Option<PartitionMap>, buf: &mut BytesMut) {
    match p {
        None => buf.put_u8(0),
        Some(pm) => {
            buf.put_u8(1);
            buf.put_u64_le(pm.epoch());
            let slots = pm.slot_table();
            buf.put_u16_le(slots.len() as u16);
            for &g in slots {
                buf.put_u16_le(g);
            }
        }
    }
}

fn decode_partition(buf: &mut Bytes) -> Result<Option<PartitionMap>, WireError> {
    need(buf, 1)?;
    match buf.get_u8() {
        0 => Ok(None),
        1 => {
            need(buf, 8 + 2)?;
            let epoch = buf.get_u64_le();
            let n = buf.get_u16_le() as usize;
            need(buf, n * 2)?;
            let mut slots = Vec::with_capacity(n);
            for _ in 0..n {
                slots.push(buf.get_u16_le());
            }
            // from_parts normalizes a wrong-length table instead of letting
            // a malformed frame panic the routing path.
            Ok(Some(PartitionMap::from_parts(epoch, slots)))
        }
        t => Err(WireError::BadTag(t)),
    }
}

fn encode_params(p: &MirrorParams, buf: &mut BytesMut) {
    buf.put_u8(p.coalesce as u8);
    buf.put_u32_le(p.coalesce_max);
    buf.put_u32_le(p.checkpoint_every);
    buf.put_u32_le(p.overwrite_max);
    buf.put_u64_le(p.generation);
}

fn decode_params(buf: &mut Bytes) -> Result<MirrorParams, WireError> {
    need(buf, 1 + 4 + 4 + 4 + 8)?;
    Ok(MirrorParams {
        coalesce: buf.get_u8() != 0,
        coalesce_max: buf.get_u32_le(),
        checkpoint_every: buf.get_u32_le(),
        overwrite_max: buf.get_u32_le(),
        generation: buf.get_u64_le(),
    })
}

fn encode_kind(k: &Option<MirrorFnKind>, buf: &mut BytesMut) {
    match k {
        None => buf.put_u8(0),
        Some(MirrorFnKind::None) => buf.put_u8(1),
        Some(MirrorFnKind::Simple) => buf.put_u8(2),
        Some(MirrorFnKind::Selective { overwrite }) => {
            buf.put_u8(3);
            buf.put_u32_le(*overwrite);
        }
        Some(MirrorFnKind::Coalescing { coalesce, checkpoint_every }) => {
            buf.put_u8(4);
            buf.put_u32_le(*coalesce);
            buf.put_u32_le(*checkpoint_every);
        }
        Some(MirrorFnKind::Overwriting { overwrite, checkpoint_every }) => {
            buf.put_u8(5);
            buf.put_u32_le(*overwrite);
            buf.put_u32_le(*checkpoint_every);
        }
    }
}

fn decode_kind(buf: &mut Bytes) -> Result<Option<MirrorFnKind>, WireError> {
    need(buf, 1)?;
    match buf.get_u8() {
        0 => Ok(None),
        1 => Ok(Some(MirrorFnKind::None)),
        2 => Ok(Some(MirrorFnKind::Simple)),
        3 => {
            need(buf, 4)?;
            Ok(Some(MirrorFnKind::Selective { overwrite: buf.get_u32_le() }))
        }
        4 => {
            need(buf, 8)?;
            Ok(Some(MirrorFnKind::Coalescing {
                coalesce: buf.get_u32_le(),
                checkpoint_every: buf.get_u32_le(),
            }))
        }
        5 => {
            need(buf, 8)?;
            Ok(Some(MirrorFnKind::Overwriting {
                overwrite: buf.get_u32_le(),
                checkpoint_every: buf.get_u32_le(),
            }))
        }
        t => Err(WireError::BadTag(t)),
    }
}

// ---------------------------------------------------------------------
// Snapshot codec
// ---------------------------------------------------------------------

/// Encode an initial-state [`Snapshot`] into a standalone wire frame.
///
/// Snapshots travel the *request* path (gateway → recovering display), not
/// the mirroring stream, so the codec is deliberately not a [`Frame`]
/// variant: data-path decoders never see `KIND_SNAPSHOT` and need no
/// changes. Layout: version u8, kind u8, flight-count u32, `as_of` stamp,
/// then one entry per flight **in ascending flight-id order** (canonical —
/// equal snapshots encode to equal bytes): id u32, status u8,
/// position-presence u8, position fix (40 B, when present), position-seq
/// u64, boarded u32, expected u32, bags-loaded u32, bags-reconciled u32,
/// updates u64.
///
/// The returned [`Bytes`] is the encode-once handle for storm serving: the
/// gateway's epoch cache encodes a snapshot once and hands the same buffer
/// (a reference-count bump per request) to every client of that epoch.
pub fn encode_snapshot(snap: &Snapshot) -> Bytes {
    let mut entries: Vec<_> = snap.iter().collect();
    entries.sort_unstable_by_key(|(id, _)| **id);
    let mut buf = BytesMut::with_capacity(snap.wire_size() + entries.len() * 10);
    buf.put_u8(WIRE_VERSION);
    buf.put_u8(KIND_SNAPSHOT);
    buf.put_u32_le(entries.len() as u32);
    encode_stamp(&snap.as_of, &mut buf);
    for (id, f) in entries {
        encode_flight_entry(*id, f, &mut buf);
    }
    buf.freeze()
}

/// One snapshot/delta flight entry: id u32, status u8, position-presence
/// u8, position fix (40 B, when present), position-seq u64, boarded u32,
/// expected u32, bags-loaded u32, bags-reconciled u32, updates u64.
/// Shared by [`encode_snapshot`] and [`encode_delta`], so a delta entry is
/// byte-identical to the same flight's full-snapshot entry.
fn encode_flight_entry(id: u32, f: &FlightView, buf: &mut BytesMut) {
    buf.put_u32_le(id);
    buf.put_u8(f.status as u8);
    match &f.position {
        Some(p) => {
            buf.put_u8(1);
            encode_fix(p, buf);
        }
        None => buf.put_u8(0),
    }
    buf.put_u64_le(f.position_seq);
    buf.put_u32_le(f.boarded);
    buf.put_u32_le(f.expected);
    buf.put_u32_le(f.bags_loaded);
    buf.put_u32_le(f.bags_reconciled);
    buf.put_u64_le(f.updates);
}

fn decode_flight_entry(buf: &mut Bytes) -> Result<(u32, FlightView), WireError> {
    need(buf, 4)?;
    let id = buf.get_u32_le();
    let status = decode_status(buf)?;
    need(buf, 1)?;
    let position = match buf.get_u8() {
        0 => None,
        1 => Some(decode_fix(buf)?),
        t => return Err(WireError::BadTag(t)),
    };
    need(buf, 8 + 4 + 4 + 4 + 4 + 8)?;
    let view = FlightView {
        status,
        position,
        position_seq: buf.get_u64_le(),
        boarded: buf.get_u32_le(),
        expected: buf.get_u32_le(),
        bags_loaded: buf.get_u32_le(),
        bags_reconciled: buf.get_u32_le(),
        updates: buf.get_u64_le(),
    };
    Ok((id, view))
}

/// Decode a snapshot frame produced by [`encode_snapshot`]. The restored
/// snapshot compares equal to the original (and `restore()` hashes
/// identically to the captured state).
pub fn decode_snapshot(mut buf: Bytes) -> Result<Snapshot, WireError> {
    need(&buf, 2)?;
    let version = buf.get_u8();
    if version != WIRE_VERSION {
        return Err(WireError::BadVersion(version));
    }
    let kind = buf.get_u8();
    if kind != KIND_SNAPSHOT {
        return Err(WireError::BadTag(kind));
    }
    need(&buf, 4)?;
    let count = buf.get_u32_le() as usize;
    let as_of = decode_stamp(&mut buf)?;
    let mut flights = mirror_ede::FlightMap::with_capacity_and_hasher(count, Default::default());
    for _ in 0..count {
        let (id, view) = decode_flight_entry(&mut buf)?;
        flights.insert(id, view);
    }
    Ok(Snapshot::from_parts(flights, as_of))
}

/// Encode a [`StateDelta`] into a standalone wire frame.
///
/// Like [`encode_snapshot`], the delta codec travels the state-transfer
/// path (StateSync provider → catching-up consumer), not the mirroring
/// stream, so it is not a [`Frame`] variant; the edge tier carries it
/// inside [`Frame::DeltaSnapshot`]. Layout: version u8, kind u8, `base`
/// stamp, `as_of` stamp, removed-count u32 + removed ids (ascending),
/// changed-count u32 + one snapshot-format flight entry per changed
/// flight **in ascending flight-id order** (canonical — equal deltas encode
/// to equal bytes).
pub fn encode_delta(delta: &StateDelta) -> Bytes {
    let mut entries: Vec<_> = delta.changed().iter().collect();
    entries.sort_unstable_by_key(|(id, _)| **id);
    let mut buf = BytesMut::with_capacity(delta.wire_size() + entries.len() * 10);
    buf.put_u8(WIRE_VERSION);
    buf.put_u8(KIND_DELTA);
    encode_stamp(&delta.base, &mut buf);
    encode_stamp(&delta.as_of, &mut buf);
    buf.put_u32_le(delta.removed().len() as u32);
    for id in delta.removed() {
        buf.put_u32_le(*id);
    }
    buf.put_u32_le(entries.len() as u32);
    for (id, f) in entries {
        encode_flight_entry(*id, f, &mut buf);
    }
    buf.freeze()
}

/// Decode a delta frame produced by [`encode_delta`]. The restored delta
/// compares equal to the original, so applying it converges the consumer to
/// the producer's `state_hash` exactly as the un-encoded delta would.
pub fn decode_delta(mut buf: Bytes) -> Result<StateDelta, WireError> {
    need(&buf, 2)?;
    let version = buf.get_u8();
    if version != WIRE_VERSION {
        return Err(WireError::BadVersion(version));
    }
    let kind = buf.get_u8();
    if kind != KIND_DELTA {
        return Err(WireError::BadTag(kind));
    }
    let base = decode_stamp(&mut buf)?;
    let as_of = decode_stamp(&mut buf)?;
    need(&buf, 4)?;
    let removed_n = buf.get_u32_le() as usize;
    need(&buf, removed_n * 4)?;
    let mut removed = Vec::with_capacity(removed_n.min(65_536));
    for _ in 0..removed_n {
        removed.push(buf.get_u32_le());
    }
    need(&buf, 4)?;
    let count = buf.get_u32_le() as usize;
    let mut changed = mirror_ede::FlightMap::with_capacity_and_hasher(count, Default::default());
    for _ in 0..count {
        let (id, view) = decode_flight_entry(&mut buf)?;
        changed.insert(id, view);
    }
    Ok(StateDelta::from_parts(changed, removed, base, as_of))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mirror_core::event::EVENT_HEADER_WIRE_SIZE;

    fn fix() -> PositionFix {
        PositionFix { lat: 33.6, lon: -84.4, alt_ft: 31000.0, speed_kts: 450.0, heading_deg: 271.5 }
    }

    fn stamped_event() -> Event {
        let mut e = Event::faa_position(42, 1234, fix()).with_total_size(1000).with_ingress_us(777);
        e.stamp.advance(0, 42);
        e.stamp.advance(1, 7);
        e
    }

    #[test]
    fn event_roundtrip() {
        let e = stamped_event();
        let bytes = encode_frame(&Frame::Data(Arc::new(e.clone())));
        match decode_frame(bytes).unwrap() {
            Frame::Data(d) => assert_eq!(*d, e),
            f => panic!("wrong frame {f:?}"),
        }
    }

    #[test]
    fn encoded_event_size_matches_wire_size_exactly() {
        for target in [0usize, 100, 1000, 8192] {
            let e = Event::faa_position(1, 2, fix()).with_total_size(target);
            let mut buf = BytesMut::new();
            encode_event(&e, &mut buf);
            assert_eq!(buf.len(), e.wire_size(), "target {target}");
        }
        // Sanity: header constant matches the fixed prefix we write.
        let e = Event::delta_status(1, 2, FlightStatus::Landed);
        let mut buf = BytesMut::new();
        encode_event(&e, &mut buf);
        assert_eq!(buf.len(), EVENT_HEADER_WIRE_SIZE + 1);
    }

    #[test]
    fn all_body_variants_roundtrip() {
        let bodies = vec![
            EventBody::Position(fix()),
            EventBody::Status(FlightStatus::AtGate),
            EventBody::Boarding { boarded: 7, expected: 180 },
            EventBody::Derived { status: FlightStatus::Arrived, collapsed: 3 },
            EventBody::Coalesced { last: fix(), count: 10 },
            EventBody::Opaque(vec![1u8, 2, 3, 4, 5].into()),
            EventBody::Baggage { loaded: 96, reconciled: 95 },
        ];
        for body in bodies {
            let mut e = Event::new(1, 9, 77, body);
            e.stamp.advance(1, 9);
            let bytes = encode_frame(&Frame::Data(Arc::new(e.clone())));
            assert_eq!(decode_frame(bytes).unwrap(), Frame::Data(Arc::new(e)));
        }
    }

    #[test]
    fn control_roundtrip_all_variants() {
        let stamp = VectorTimestamp::from_components(vec![5, 9]);
        let msgs = vec![
            ControlMsg::Chkpt { round: 1, stamp: stamp.clone(), epoch: 6, term: 4 },
            ControlMsg::ChkptRep {
                round: 2,
                site: 3,
                stamp: stamp.clone(),
                monitor: MonitorReport { ready_len: 1, backup_len: 2, pending_requests: 3 },
                term: u64::MAX,
            },
            ControlMsg::Commit { round: 3, stamp: stamp.clone(), epoch: 7, term: 0, adapt: None },
            ControlMsg::Commit {
                round: 4,
                stamp,
                epoch: u64::MAX,
                term: 9,
                adapt: Some(AdaptDirective {
                    params: MirrorParams::profile_degraded(),
                    mirror_fn: Some(MirrorFnKind::Coalescing {
                        coalesce: 20,
                        checkpoint_every: 100,
                    }),
                    partition: None,
                }),
            },
            ControlMsg::Commit {
                round: 5,
                stamp: VectorTimestamp::from_components(vec![5, 9]),
                epoch: 2,
                term: 9,
                adapt: Some(AdaptDirective {
                    params: MirrorParams::default(),
                    mirror_fn: None,
                    partition: Some({
                        let mut pm = PartitionMap::uniform(4);
                        pm.assign(7, 0); // a migrated slot survives the roundtrip
                        pm
                    }),
                }),
            },
        ];
        for m in msgs {
            let bytes = encode_frame(&Frame::Control(m.clone()));
            assert_eq!(decode_frame(bytes).unwrap(), Frame::Control(m));
        }
    }

    #[test]
    fn mirror_fn_kinds_roundtrip() {
        for k in [
            None,
            Some(MirrorFnKind::None),
            Some(MirrorFnKind::Simple),
            Some(MirrorFnKind::Selective { overwrite: 10 }),
            Some(MirrorFnKind::Coalescing { coalesce: 20, checkpoint_every: 100 }),
            Some(MirrorFnKind::Overwriting { overwrite: 20, checkpoint_every: 100 }),
        ] {
            let mut buf = BytesMut::new();
            encode_kind(&k, &mut buf);
            let mut b = buf.freeze();
            assert_eq!(decode_kind(&mut b).unwrap(), k);
        }
    }

    #[test]
    fn truncated_frames_error() {
        let e = stamped_event();
        let bytes = encode_frame(&Frame::Data(Arc::new(e)));
        for cut in [0, 1, 2, 5, 10, bytes.len() - 1] {
            let res = decode_frame(bytes.slice(..cut));
            assert!(res.is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn bad_version_and_tag_rejected() {
        let mut raw = BytesMut::new();
        raw.put_u8(99);
        raw.put_u8(KIND_DATA);
        assert_eq!(decode_frame(raw.freeze()), Err(WireError::BadVersion(99)));

        let mut raw = BytesMut::new();
        raw.put_u8(WIRE_VERSION);
        raw.put_u8(0xEE);
        assert_eq!(decode_frame(raw.freeze()), Err(WireError::BadTag(0xEE)));
    }

    #[test]
    fn seq_ack_hello_roundtrip() {
        let frames = vec![
            Frame::Seq { seq: 1, inner: Box::new(Frame::Data(Arc::new(stamped_event()))) },
            Frame::Seq {
                seq: u64::MAX,
                inner: Box::new(Frame::Control(ControlMsg::Chkpt {
                    round: 7,
                    stamp: VectorTimestamp::from_components(vec![1, 2]),
                    epoch: 2,
                    term: 3,
                })),
            },
            Frame::Ack { cum: 0 },
            Frame::Ack { cum: 123_456_789 },
            Frame::Hello { next: 1 },
            Frame::Hello { next: 42 },
        ];
        for f in frames {
            let bytes = encode_frame(&f);
            assert_eq!(decode_frame(bytes).unwrap(), f);
        }
    }

    #[test]
    fn nested_seq_envelopes_rejected() {
        let inner = Frame::Seq { seq: 2, inner: Box::new(Frame::Ack { cum: 1 }) };
        let outer = Frame::Seq { seq: 1, inner: Box::new(inner) };
        let bytes = encode_frame(&outer);
        assert_eq!(decode_frame(bytes), Err(WireError::BadTag(KIND_SEQ)));
    }

    #[test]
    fn truncated_seq_envelope_errors() {
        let f = Frame::Seq { seq: 9, inner: Box::new(Frame::Data(Arc::new(stamped_event()))) };
        let bytes = encode_frame(&f);
        for cut in [2, 5, 9, 10, 11, bytes.len() - 1] {
            assert!(decode_frame(bytes.slice(..cut)).is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn batch_roundtrip_bare_and_in_seq_envelope() {
        let members = vec![
            Frame::Data(Arc::new(stamped_event())),
            Frame::Control(ControlMsg::Chkpt {
                round: 1,
                stamp: VectorTimestamp::from_components(vec![3, 4]),
                epoch: 1,
                term: 1,
            }),
            Frame::Data(Arc::new(Event::delta_status(2, 8, FlightStatus::Landed))),
        ];
        let batch = Frame::Batch(members);
        assert_eq!(decode_frame(encode_frame(&batch)).unwrap(), batch);
        let env = Frame::Seq { seq: 77, inner: Box::new(batch) };
        assert_eq!(decode_frame(encode_frame(&env)).unwrap(), env);
    }

    #[test]
    fn batch_rejects_nested_batch_and_protocol_members() {
        let nested = Frame::Batch(vec![Frame::Batch(vec![])]);
        assert_eq!(decode_frame(encode_frame(&nested)), Err(WireError::BadTag(KIND_BATCH)));
        for bad in [
            Frame::Ack { cum: 3 },
            Frame::Hello { next: 9 },
            Frame::Seq { seq: 1, inner: Box::new(Frame::Ack { cum: 0 }) },
        ] {
            let tag = match &bad {
                Frame::Ack { .. } => KIND_ACK,
                Frame::Hello { .. } => KIND_HELLO,
                _ => KIND_SEQ,
            };
            let batch = Frame::Batch(vec![bad]);
            assert_eq!(decode_frame(encode_frame(&batch)), Err(WireError::BadTag(tag)));
        }
    }

    #[test]
    fn batch_from_encoded_matches_frame_encoding() {
        let frames =
            vec![Frame::Data(Arc::new(stamped_event())), Frame::Data(Arc::new(stamped_event()))];
        let parts: Vec<Bytes> = frames.iter().map(encode_frame_shared).collect();
        assert_eq!(encode_batch_from_encoded(&parts), encode_frame(&Frame::Batch(frames)));
    }

    #[test]
    fn seq_envelope_helper_matches_frame_encoding() {
        let inner = Frame::Data(Arc::new(stamped_event()));
        let encoded = encode_frame_shared(&inner);
        let expect = encode_frame(&Frame::Seq { seq: 99, inner: Box::new(inner) });
        assert_eq!(encode_seq_envelope(99, &encoded), expect);
    }

    #[test]
    fn shared_event_encodes_once_and_compares_by_event() {
        let e = stamped_event();
        let shared = SharedEvent::from(e.clone());
        let first = shared.encoded();
        let again = shared.clone().encoded();
        assert_eq!(first, again);
        assert_eq!(first, encode_frame(&Frame::Data(Arc::new(e.clone()))));
        assert_eq!(shared, SharedEvent::from(e));
    }

    fn snapshot_state() -> mirror_ede::OperationalState {
        let mut s = mirror_ede::OperationalState::new();
        for f in 0..25u32 {
            s.apply(&Event::faa_position(u64::from(f) + 1, f, fix()));
            s.apply(&Event::delta_status(u64::from(f) + 2, f, FlightStatus::EnRoute));
        }
        // One flight with no position fix at all (presence byte = 0).
        s.apply(&Event::delta_status(1, 999, FlightStatus::Scheduled));
        s
    }

    #[test]
    fn snapshot_roundtrips_and_preserves_state_hash() {
        let state = snapshot_state();
        let snap = Snapshot::capture(&state, VectorTimestamp::from_components(vec![7, 3, 9]));
        let decoded = decode_snapshot(encode_snapshot(&snap)).expect("decode");
        assert_eq!(decoded, snap);
        assert_eq!(decoded.as_of, snap.as_of);
        assert_eq!(decoded.restore().state_hash(), state.state_hash());
    }

    #[test]
    fn snapshot_encoding_is_canonical() {
        // Equal snapshots encode to identical bytes regardless of the hash
        // map's iteration order (entries are sorted by flight id).
        let state = snapshot_state();
        let snap = Snapshot::capture(&state, VectorTimestamp::from_components(vec![1]));
        assert_eq!(encode_snapshot(&snap), encode_snapshot(&snap.clone()));
        let rebuilt = Snapshot::capture(&snap.restore(), VectorTimestamp::from_components(vec![1]));
        assert_eq!(encode_snapshot(&snap), encode_snapshot(&rebuilt));
    }

    #[test]
    fn snapshot_decode_rejects_malformed_frames() {
        let snap = Snapshot::capture(&snapshot_state(), VectorTimestamp::from_components(vec![2]));
        let good = encode_snapshot(&snap);
        // Truncations at every prefix length fail cleanly.
        for len in 0..good.len() {
            assert!(decode_snapshot(good.slice(0..len)).is_err(), "prefix {len} must not decode");
        }
        // Wrong version byte and wrong kind byte.
        let mut bad = good.to_vec();
        bad[0] = WIRE_VERSION + 1;
        assert!(matches!(decode_snapshot(Bytes::from(bad)), Err(WireError::BadVersion(_))));
        let mut bad = good.to_vec();
        bad[1] = KIND_DATA;
        assert!(matches!(decode_snapshot(Bytes::from(bad)), Err(WireError::BadTag(_))));
    }

    #[test]
    fn edge_frames_roundtrip() {
        let snap = Snapshot::capture(&snapshot_state(), VectorTimestamp::from_components(vec![4]));
        let frames = vec![
            Frame::Subscribe { client: 1, filter: SubscriptionFilter::All },
            Frame::Subscribe { client: u64::MAX, filter: SubscriptionFilter::Flights(vec![]) },
            Frame::Subscribe {
                client: 42,
                filter: SubscriptionFilter::Flights(vec![7, 0, u32::MAX]),
            },
            Frame::Resume { client: 42, last_seq: 0 },
            Frame::Resume { client: 9, last_seq: u64::MAX },
            Frame::EdgeEvent { pub_seq: 1, event: Arc::new(stamped_event()) },
            Frame::EdgeEvent {
                pub_seq: u64::MAX,
                event: Arc::new(Event::delta_status(2, 8, FlightStatus::Landed)),
            },
            Frame::Reseed { pub_seq: 77, snapshot: encode_snapshot(&snap) },
        ];
        for f in frames {
            assert_eq!(decode_frame(encode_frame(&f)).unwrap(), f, "{f:?}");
        }
    }

    #[test]
    fn edge_event_helper_matches_frame_encoding() {
        let e = Arc::new(stamped_event());
        let data_encoded = encode_frame_shared(&Frame::Data(Arc::clone(&e)));
        let expect = encode_frame(&Frame::EdgeEvent { pub_seq: 314, event: e });
        assert_eq!(encode_edge_event(314, &data_encoded), expect);
    }

    #[test]
    fn reseed_helper_matches_frame_encoding_and_snapshot_survives() {
        let snap = Snapshot::capture(&snapshot_state(), VectorTimestamp::from_components(vec![8]));
        let wire = encode_snapshot(&snap);
        let expect = encode_frame(&Frame::Reseed { pub_seq: 12, snapshot: wire.clone() });
        assert_eq!(encode_reseed(12, &wire), expect);
        match decode_frame(encode_reseed(12, &wire)).unwrap() {
            Frame::Reseed { pub_seq, snapshot } => {
                assert_eq!(pub_seq, 12);
                assert_eq!(decode_snapshot(snapshot).unwrap(), snap);
            }
            f => panic!("wrong frame {f:?}"),
        }
    }

    fn sample_delta() -> StateDelta {
        let state = snapshot_state();
        let mut changed = mirror_ede::FlightMap::default();
        for id in [3u32, 11, 999] {
            changed.insert(id, state.flight(id).unwrap().clone());
        }
        StateDelta::from_parts(
            changed,
            vec![5, 17],
            VectorTimestamp::from_components(vec![4, 2]),
            VectorTimestamp::from_components(vec![9, 6]),
        )
    }

    #[test]
    fn delta_roundtrips_exactly() {
        let delta = sample_delta();
        let decoded = decode_delta(encode_delta(&delta)).expect("decode");
        assert_eq!(decoded, delta);
        assert_eq!(decoded.base, delta.base);
        assert_eq!(decoded.as_of, delta.as_of);
        // An empty delta roundtrips too.
        let empty = StateDelta::from_parts(
            mirror_ede::FlightMap::default(),
            Vec::new(),
            VectorTimestamp::empty(),
            VectorTimestamp::empty(),
        );
        assert_eq!(decode_delta(encode_delta(&empty)).unwrap(), empty);
    }

    #[test]
    fn delta_encoding_is_canonical() {
        // Equal deltas encode to identical bytes regardless of hash-map
        // iteration order (entries sorted by flight id, like snapshots).
        let delta = sample_delta();
        assert_eq!(encode_delta(&delta), encode_delta(&delta.clone()));
        let rebuilt = decode_delta(encode_delta(&delta)).unwrap();
        assert_eq!(encode_delta(&delta), encode_delta(&rebuilt));
    }

    #[test]
    fn delta_decode_rejects_malformed_frames() {
        let good = encode_delta(&sample_delta());
        for len in 0..good.len() {
            assert!(decode_delta(good.slice(0..len)).is_err(), "prefix {len} must not decode");
        }
        let mut bad = good.to_vec();
        bad[0] = WIRE_VERSION + 1;
        assert!(matches!(decode_delta(Bytes::from(bad)), Err(WireError::BadVersion(_))));
        let mut bad = good.to_vec();
        bad[1] = KIND_SNAPSHOT;
        assert!(matches!(decode_delta(Bytes::from(bad)), Err(WireError::BadTag(_))));
    }

    #[test]
    fn delta_snapshot_frame_roundtrips() {
        let wire = encode_delta(&sample_delta());
        let f = Frame::DeltaSnapshot { pub_seq: 88, delta: wire.clone() };
        assert_eq!(decode_frame(encode_frame(&f)).unwrap(), f);
        // Helper matches the Frame encoding, and the payload survives.
        assert_eq!(encode_delta_reseed(88, &wire), encode_frame(&f));
        match decode_frame(encode_delta_reseed(88, &wire)).unwrap() {
            Frame::DeltaSnapshot { pub_seq, delta } => {
                assert_eq!(pub_seq, 88);
                assert_eq!(decode_delta(delta).unwrap(), sample_delta());
            }
            f => panic!("wrong frame {f:?}"),
        }
    }

    #[test]
    fn delta_snapshot_frame_rejected_below_top_level_and_truncated() {
        let f = Frame::DeltaSnapshot { pub_seq: 5, delta: encode_delta(&sample_delta()) };
        let env = Frame::Seq { seq: 1, inner: Box::new(f.clone()) };
        assert_eq!(decode_frame(encode_frame(&env)), Err(WireError::BadTag(KIND_DELTA_SNAPSHOT)));
        let bytes = encode_frame(&f);
        for cut in [2, 5, 9, 10, bytes.len() - 1] {
            assert!(decode_frame(bytes.slice(..cut)).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn edge_frames_rejected_below_top_level() {
        // Edge frames may not hide inside Seq envelopes or batches.
        let sub = Frame::Subscribe { client: 1, filter: SubscriptionFilter::All };
        let env = Frame::Seq { seq: 1, inner: Box::new(sub.clone()) };
        assert_eq!(decode_frame(encode_frame(&env)), Err(WireError::BadTag(KIND_SUBSCRIBE)));
        let batch = Frame::Batch(vec![Frame::Resume { client: 1, last_seq: 2 }]);
        assert_eq!(decode_frame(encode_frame(&batch)), Err(WireError::BadTag(KIND_RESUME)));
        let ee = Frame::EdgeEvent { pub_seq: 5, event: Arc::new(stamped_event()) };
        let env = Frame::Seq { seq: 1, inner: Box::new(ee) };
        assert_eq!(decode_frame(encode_frame(&env)), Err(WireError::BadTag(KIND_EDGE_EVENT)));
    }

    #[test]
    fn edge_event_rejects_non_data_payload() {
        // Hand-craft an EdgeEvent whose embedded frame is an Ack.
        let mut raw = BytesMut::new();
        raw.put_u8(WIRE_VERSION);
        raw.put_u8(KIND_EDGE_EVENT);
        raw.put_u64_le(3);
        raw.put_slice(&encode_frame(&Frame::Ack { cum: 1 }));
        assert!(decode_frame(raw.freeze()).is_err());
    }

    #[test]
    fn truncated_edge_frames_error() {
        let snap = Snapshot::capture(&snapshot_state(), VectorTimestamp::from_components(vec![1]));
        let frames = vec![
            Frame::Subscribe { client: 3, filter: SubscriptionFilter::Flights(vec![1, 2, 3]) },
            Frame::Resume { client: 3, last_seq: 9 },
            Frame::EdgeEvent { pub_seq: 4, event: Arc::new(stamped_event()) },
            Frame::Reseed { pub_seq: 5, snapshot: encode_snapshot(&snap) },
        ];
        for f in frames {
            let bytes = encode_frame(&f);
            for cut in [2, 5, 9, 10, bytes.len() - 1] {
                assert!(decode_frame(bytes.slice(..cut)).is_err(), "{f:?} cut at {cut}");
            }
        }
    }

    #[test]
    fn subscription_filter_matches() {
        assert!(SubscriptionFilter::All.matches(7));
        let f = SubscriptionFilter::Flights(vec![1, 5]);
        assert!(f.matches(1) && f.matches(5) && !f.matches(2));
        assert!(!SubscriptionFilter::Flights(vec![]).matches(0));
    }

    #[test]
    fn garbage_bytes_never_panic() {
        // Decoding must fail cleanly on arbitrary inputs.
        let mut seed = 0x12345u64;
        for len in 0..200 {
            let mut v = Vec::with_capacity(len);
            for _ in 0..len {
                seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                v.push((seed >> 33) as u8);
            }
            let _ = decode_frame(Bytes::from(v));
        }
    }
}
