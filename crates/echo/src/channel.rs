//! Typed publish/subscribe event channels.
//!
//! ECho's core abstraction: a named channel to which any number of sources
//! publish and any number of sinks subscribe. Delivery is reliable and
//! per-subscriber FIFO (the checkpoint protocol of `mirror-core` depends on
//! exactly this contract). Channels are cheap: a publisher clones the
//! message once per subscriber; subscribers own independent unbounded
//! queues so a slow sink never blocks the publisher (back-pressure is the
//! application's job — it is precisely the monitored queue growth that
//! drives adaptive mirroring).

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use crossbeam::channel::{self, Receiver, RecvTimeoutError, Sender, TryRecvError};
use parking_lot::Mutex;

use mirror_core::event::Event;
use mirror_core::ControlMsg;

/// Shared state of one channel.
struct Shared<T> {
    name: String,
    subs: Mutex<Vec<Sender<T>>>,
    /// Lock-free counter: read by monitoring threads while publishers are
    /// hot, so it must not contend on the subscriber lock.
    published: AtomicU64,
    /// Lock-free subscriber count, maintained by `subscribe` and the
    /// publish-time prune. Read on apply hot paths (a mirror's per-update
    /// "anyone listening?" check) where taking the subscriber lock — or
    /// cloning the message first — would be a per-event tax paid even with
    /// no edge attached.
    sub_count: AtomicUsize,
}

/// A named, typed event channel.
pub struct EventChannel<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Clone for EventChannel<T> {
    fn clone(&self) -> Self {
        EventChannel { shared: Arc::clone(&self.shared) }
    }
}

impl<T: Clone + Send + 'static> EventChannel<T> {
    /// Create a channel with a diagnostic name.
    pub fn new(name: impl Into<String>) -> Self {
        EventChannel {
            shared: Arc::new(Shared {
                name: name.into(),
                subs: Mutex::new(Vec::new()),
                published: AtomicU64::new(0),
                sub_count: AtomicUsize::new(0),
            }),
        }
    }

    /// The channel's name.
    pub fn name(&self) -> &str {
        &self.shared.name
    }

    /// Create a publisher handle.
    pub fn publisher(&self) -> Publisher<T> {
        Publisher { shared: Arc::clone(&self.shared) }
    }

    /// Subscribe; returns a handle owning an independent FIFO of every
    /// message published after this call.
    pub fn subscribe(&self) -> Subscriber<T> {
        let (tx, rx) = channel::unbounded();
        let mut subs = self.shared.subs.lock();
        subs.push(tx);
        self.shared.sub_count.store(subs.len(), Ordering::Release);
        drop(subs);
        Subscriber { rx, name: self.shared.name.clone() }
    }

    /// Number of live subscribers.
    pub fn subscriber_count(&self) -> usize {
        self.shared.subs.lock().len()
    }

    /// Total messages published on this channel.
    pub fn published(&self) -> u64 {
        self.shared.published.load(Ordering::Relaxed)
    }
}

/// Publishing handle for a channel.
pub struct Publisher<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Clone for Publisher<T> {
    fn clone(&self) -> Self {
        Publisher { shared: Arc::clone(&self.shared) }
    }
}

impl<T: Clone + Send + 'static> Publisher<T> {
    /// Publish one message to every current subscriber. Subscribers whose
    /// receiving side has been dropped are pruned. Returns the number of
    /// subscribers reached.
    pub fn publish(&self, msg: T) -> usize {
        let mut subs = self.shared.subs.lock();
        let mut delivered = 0;
        subs.retain(|s| {
            // One clone per subscriber; the last one could move, but the
            // uniform path keeps the code simple and the clone is cheap
            // relative to the wire work this models.
            if s.send(msg.clone()).is_ok() {
                delivered += 1;
                true
            } else {
                false
            }
        });
        self.shared.sub_count.store(subs.len(), Ordering::Release);
        self.shared.published.fetch_add(1, Ordering::Relaxed);
        delivered
    }

    /// `true` while at least one subscriber is attached — without taking
    /// the subscriber lock. This is the hot-path guard that lets a site
    /// skip the per-update clone + publish entirely when nothing listens
    /// (the common case for a mirror with no edge tier attached). May
    /// briefly report `true` for subscribers that were dropped but not yet
    /// pruned by a publish; that costs one wasted publish, never a missed
    /// one.
    pub fn has_subscribers(&self) -> bool {
        self.shared.sub_count.load(Ordering::Acquire) > 0
    }

    /// The channel's name.
    pub fn name(&self) -> &str {
        &self.shared.name
    }
}

/// Outcome of [`Subscriber::recv_status`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvStatus<T> {
    /// A message arrived.
    Msg(T),
    /// Nothing arrived within the timeout; the channel is still open.
    Timeout,
    /// Every publisher is gone.
    Disconnected,
}

/// Subscription handle: an independent FIFO of published messages.
pub struct Subscriber<T> {
    rx: Receiver<T>,
    name: String,
}

impl<T> Subscriber<T> {
    /// Block until a message arrives or every publisher is gone.
    pub fn recv(&self) -> Option<T> {
        self.rx.recv().ok()
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<T> {
        match self.rx.try_recv() {
            Ok(v) => Some(v),
            Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => None,
        }
    }

    /// Receive with a timeout; `None` on timeout or disconnect.
    pub fn recv_timeout(&self, timeout: std::time::Duration) -> Option<T> {
        match self.rx.recv_timeout(timeout) {
            Ok(v) => Some(v),
            Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => None,
        }
    }

    /// Receive with a timeout, distinguishing timeout from channel
    /// shutdown — needed by pump threads that must keep polling a stop
    /// flag while the channel is quiet.
    pub fn recv_status(&self, timeout: std::time::Duration) -> RecvStatus<T> {
        match self.rx.recv_timeout(timeout) {
            Ok(v) => RecvStatus::Msg(v),
            Err(RecvTimeoutError::Timeout) => RecvStatus::Timeout,
            Err(RecvTimeoutError::Disconnected) => RecvStatus::Disconnected,
        }
    }

    /// Messages currently queued.
    pub fn backlog(&self) -> usize {
        self.rx.len()
    }

    /// Channel name this subscription belongs to.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Drain everything currently queued.
    pub fn drain(&self) -> Vec<T> {
        let mut out = Vec::with_capacity(self.rx.len());
        while let Ok(v) = self.rx.try_recv() {
            out.push(v);
        }
        out
    }
}

/// The paper's per-link channel pair: a *data* channel carrying
/// application events and a bi-directional *control* channel carrying
/// checkpoint/adaptation messages.
pub struct ChannelPair {
    /// Application events.
    pub data: EventChannel<Event>,
    /// Control traffic (both directions publish here; subscribers filter by
    /// message kind/addressing at the site layer).
    pub control: EventChannel<ControlMsg>,
}

impl ChannelPair {
    /// Create a named pair (`<name>.data` / `<name>.ctrl`).
    pub fn new(name: &str) -> Self {
        ChannelPair {
            data: EventChannel::new(format!("{name}.data")),
            control: EventChannel::new(format!("{name}.ctrl")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn fanout_reaches_all_subscribers() {
        let ch: EventChannel<u32> = EventChannel::new("t");
        let s1 = ch.subscribe();
        let s2 = ch.subscribe();
        let p = ch.publisher();
        assert_eq!(p.publish(7), 2);
        assert_eq!(s1.recv(), Some(7));
        assert_eq!(s2.recv(), Some(7));
        assert_eq!(ch.published(), 1);
    }

    #[test]
    fn per_subscriber_fifo_order() {
        let ch: EventChannel<u32> = EventChannel::new("t");
        let s = ch.subscribe();
        let p = ch.publisher();
        for i in 0..100 {
            p.publish(i);
        }
        let got = s.drain();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn dropped_subscriber_is_pruned() {
        let ch: EventChannel<u32> = EventChannel::new("t");
        let s1 = ch.subscribe();
        let s2 = ch.subscribe();
        drop(s2);
        let p = ch.publisher();
        assert_eq!(p.publish(1), 1);
        assert_eq!(s1.recv(), Some(1));
    }

    #[test]
    fn late_subscriber_misses_earlier_messages() {
        let ch: EventChannel<u32> = EventChannel::new("t");
        let p = ch.publisher();
        p.publish(1);
        let s = ch.subscribe();
        p.publish(2);
        assert_eq!(s.try_recv(), Some(2));
        assert_eq!(s.try_recv(), None);
    }

    #[test]
    fn recv_timeout_times_out() {
        let ch: EventChannel<u32> = EventChannel::new("t");
        let s = ch.subscribe();
        let _p = ch.publisher();
        assert_eq!(s.recv_timeout(Duration::from_millis(10)), None);
    }

    #[test]
    fn cross_thread_delivery() {
        let ch: EventChannel<u64> = EventChannel::new("t");
        let s = ch.subscribe();
        let p = ch.publisher();
        let h = std::thread::spawn(move || {
            for i in 0..1000u64 {
                p.publish(i);
            }
        });
        let mut sum = 0;
        for _ in 0..1000 {
            sum += s.recv().unwrap();
        }
        h.join().unwrap();
        assert_eq!(sum, 999 * 1000 / 2);
    }

    #[test]
    fn concurrent_publishers_deliver_everything() {
        let ch: EventChannel<u64> = EventChannel::new("t");
        let s = ch.subscribe();
        let mut handles = Vec::new();
        for p in 0..4u64 {
            let publisher = ch.publisher();
            handles.push(std::thread::spawn(move || {
                for i in 0..250u64 {
                    publisher.publish(p * 1000 + i);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let mut got = Vec::new();
        while let Some(v) = s.try_recv() {
            got.push(v);
        }
        assert_eq!(got.len(), 1000, "no message lost under concurrent publishers");
        // Per-publisher FIFO holds even when publishers interleave.
        for p in 0..4u64 {
            let mine: Vec<u64> = got.iter().copied().filter(|v| v / 1000 == p).collect();
            assert_eq!(mine, (0..250).map(|i| p * 1000 + i).collect::<Vec<_>>());
        }
        assert_eq!(ch.published(), 1000);
    }

    #[test]
    fn recv_status_distinguishes_timeout_from_disconnect() {
        let ch: EventChannel<u8> = EventChannel::new("t");
        let s = ch.subscribe();
        let p = ch.publisher();
        assert_eq!(s.recv_status(Duration::from_millis(5)), RecvStatus::Timeout);
        p.publish(9);
        assert_eq!(s.recv_status(Duration::from_millis(5)), RecvStatus::Msg(9));
        drop(p);
        drop(ch);
        assert_eq!(s.recv_status(Duration::from_millis(5)), RecvStatus::Disconnected);
    }

    #[test]
    fn has_subscribers_tracks_attach_and_prune() {
        let ch: EventChannel<u8> = EventChannel::new("t");
        let p = ch.publisher();
        assert!(!p.has_subscribers(), "fresh channel has no subscribers");
        let s = ch.subscribe();
        assert!(p.has_subscribers());
        drop(s);
        // Dropped-but-unpruned may still read true; a publish prunes.
        p.publish(1);
        assert!(!p.has_subscribers(), "prune must clear the flag");
    }

    #[test]
    fn channel_pair_names() {
        let pair = ChannelPair::new("central->m1");
        assert_eq!(pair.data.name(), "central->m1.data");
        assert_eq!(pair.control.name(), "central->m1.ctrl");
    }
}
