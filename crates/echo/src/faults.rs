//! Deterministic fault injection for transports.
//!
//! [`FaultyTransport`] decorates any [`Transport`] and misbehaves according
//! to a seedable [`FaultPlan`]: dropping, duplicating, delaying (reordering)
//! outbound frames, corrupting inbound frames, and forcibly disconnecting
//! after every N frames. Every decision is a pure function of the plan's
//! seed and a per-frame counter — never of wall-clock time or thread
//! interleaving — so a failing chaos run reproduces from its seed alone.
//!
//! The decision counters live in a shared [`FaultState`] (an
//! `Arc<Mutex<_>>`) that survives the transport it is attached to. A
//! reconnecting link wraps each fresh connection in a new `FaultyTransport`
//! around the *same* state, so the fault schedule continues across
//! reconnects instead of restarting.
//!
//! A one-way partition falls out of the design: wrap only one endpoint (or
//! only one direction's transport) and the other direction stays healthy.

use std::collections::VecDeque;
use std::io;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::transport::{Polled, Transport};
use crate::wire::Frame;

/// A seedable schedule of link misbehavior. Probabilities are per-mille
/// (parts per thousand) so plans stay integer-only and exactly
/// reproducible.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Seed for all fault decisions.
    pub seed: u64,
    /// Chance (‰) an outbound frame is silently dropped.
    pub drop_per_mille: u32,
    /// Chance (‰) an outbound frame is sent twice.
    pub dup_per_mille: u32,
    /// Chance (‰) an outbound frame is held and emitted after its
    /// successor (a one-slot reorder/delay).
    pub reorder_per_mille: u32,
    /// Chance (‰) an inbound frame is corrupted (surfaces as an
    /// `InvalidData` receive error, as a corrupt TCP stream would).
    pub corrupt_per_mille: u32,
    /// Force a disconnect error after every N outbound frames (0 = never).
    pub disconnect_every: u64,
    /// Chance (‰) that a bounded-wait read tick begins a stall run (see
    /// [`ThrottleSchedule`]); models a slow consumer whose socket reads
    /// fall behind rather than a lossy link.
    pub stall_per_mille: u32,
    /// Length of each stall run, in read ticks.
    pub stall_ticks: u32,
    /// WAN link shape (propagation latency, jitter, loss) applied to every
    /// outbound frame after the frame-level faults above; `None` means an
    /// ideal local link.
    pub link: Option<LinkProfile>,
}

impl FaultPlan {
    /// A plan with the given seed and no faults; enable faults with the
    /// builder methods.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            drop_per_mille: 0,
            dup_per_mille: 0,
            reorder_per_mille: 0,
            corrupt_per_mille: 0,
            disconnect_every: 0,
            stall_per_mille: 0,
            stall_ticks: 0,
            link: None,
        }
    }

    /// Drop outbound frames with probability `per_mille`/1000.
    pub fn drops(mut self, per_mille: u32) -> Self {
        self.drop_per_mille = per_mille;
        self
    }

    /// Duplicate outbound frames with probability `per_mille`/1000.
    pub fn dups(mut self, per_mille: u32) -> Self {
        self.dup_per_mille = per_mille;
        self
    }

    /// Reorder (delay by one frame) with probability `per_mille`/1000.
    pub fn reorders(mut self, per_mille: u32) -> Self {
        self.reorder_per_mille = per_mille;
        self
    }

    /// Corrupt inbound frames with probability `per_mille`/1000.
    pub fn corrupts(mut self, per_mille: u32) -> Self {
        self.corrupt_per_mille = per_mille;
        self
    }

    /// Force a disconnect after every `n` outbound frames (0 = never).
    pub fn disconnect_every(mut self, n: u64) -> Self {
        self.disconnect_every = n;
        self
    }

    /// Stall bounded-wait reads: each read tick starts a `ticks`-long stall
    /// run with probability `per_mille`/1000 (the slow-consumer fault).
    pub fn stalls(mut self, per_mille: u32, ticks: u32) -> Self {
        self.stall_per_mille = per_mille;
        self.stall_ticks = ticks;
        self
    }

    /// Shape every outbound frame through a WAN [`LinkProfile`]: fixed
    /// propagation latency plus seeded jitter, and seeded loss. Symmetric
    /// per-link: wrap both endpoints' transports with plans carrying the
    /// same profile to shape both directions.
    pub fn link(mut self, profile: LinkProfile) -> Self {
        self.link = Some(profile);
        self
    }

    /// The adversarial preset used by the chaos tests: 15% drops, 10%
    /// duplicates, 5% reorders, disconnect every 100 frames.
    pub fn chaos(seed: u64) -> Self {
        FaultPlan::new(seed).drops(150).dups(100).reorders(50).disconnect_every(100)
    }

    /// Wrap this plan in the shared state a [`FaultyTransport`] needs.
    pub fn state(self) -> Arc<Mutex<FaultState>> {
        Arc::new(Mutex::new(FaultState::new(self)))
    }
}

/// Counters of injected faults, for assertions and reproducibility checks.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultSummary {
    /// Outbound frames offered to the faulty link.
    pub sent: u64,
    /// Inbound frames that passed through the faulty link.
    pub received: u64,
    /// Frames silently dropped.
    pub dropped: u64,
    /// Frames sent twice.
    pub duplicated: u64,
    /// Frames delayed behind their successor.
    pub reordered: u64,
    /// Inbound frames corrupted.
    pub corrupted: u64,
    /// Forced disconnects.
    pub disconnects: u64,
    /// Bounded-wait read ticks swallowed by a stall run.
    pub stalled: u64,
    /// Frames lost by the WAN link profile.
    pub link_lost: u64,
    /// Frames delayed in flight by the WAN link profile.
    pub link_delayed: u64,
}

/// The shape of a (simulated) WAN link: fixed propagation latency, bounded
/// random jitter, and random loss. All randomness is seeded and per-frame
/// deterministic (see [`LinkShaper`]), so a WAN chaos run reproduces from
/// its seed. Loss is per-mille to match the rest of the fault plan.
///
/// A profile is *symmetric*: it describes one direction of a link, and the
/// harness applies the same profile to each direction it wraps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkProfile {
    /// Fixed one-way propagation delay applied to every delivered frame.
    pub latency_ms: u64,
    /// Maximum extra seeded delay; each frame draws uniformly from
    /// `0..=jitter_ms` on top of `latency_ms`.
    pub jitter_ms: u64,
    /// Chance (‰) a frame is lost in flight.
    pub loss_per_mille: u32,
}

impl LinkProfile {
    /// A profile with the given latency, jitter bound and loss rate.
    pub fn new(latency_ms: u64, jitter_ms: u64, loss_per_mille: u32) -> Self {
        LinkProfile { latency_ms, jitter_ms, loss_per_mille }
    }

    /// An ideal link: no latency, no jitter, no loss.
    pub fn ideal() -> Self {
        LinkProfile::new(0, 0, 0)
    }

    /// A cross-country WAN preset: 40 ms propagation, up to 10 ms jitter,
    /// 0.5% loss — the link class the geo-mirror benches run over.
    pub fn wan(loss_per_mille: u32) -> Self {
        LinkProfile::new(40, 10, loss_per_mille)
    }

    /// Does this profile shape anything at all?
    pub fn is_ideal(&self) -> bool {
        self.latency_ms == 0 && self.jitter_ms == 0 && self.loss_per_mille == 0
    }
}

/// The seeded fate of one frame crossing a shaped link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkFate {
    /// The frame is lost in flight; the sender never learns.
    Lost,
    /// The frame arrives after `delay` (propagation latency plus jitter).
    Deliver {
        /// How long the frame spends in flight.
        delay: Duration,
    },
}

/// Deterministic per-frame link shaping: each call to
/// [`fate`](Self::fate) rolls — purely from the seed and a frame counter —
/// whether the frame is lost and how long it spends in flight. Usable
/// standalone (the WAN mirror's update pump shapes its feed with one) or
/// wired into a [`FaultyTransport`] via [`FaultPlan::link`].
#[derive(Debug, Clone)]
pub struct LinkShaper {
    seed: u64,
    profile: LinkProfile,
    idx: u64,
}

impl LinkShaper {
    /// A shaper drawing its schedule from `seed` for `profile`.
    pub fn new(seed: u64, profile: LinkProfile) -> Self {
        LinkShaper { seed, profile, idx: 0 }
    }

    /// The profile this shaper draws from.
    pub fn profile(&self) -> LinkProfile {
        self.profile
    }

    /// Decide the fate of the next frame.
    pub fn fate(&mut self) -> LinkFate {
        self.idx += 1;
        let p = self.profile;
        if p.loss_per_mille > 0
            && roll_per_mille(self.seed, SALT_LINK_LOSS, self.idx) < p.loss_per_mille
        {
            return LinkFate::Lost;
        }
        let mut delay_ms = p.latency_ms;
        if p.jitter_ms > 0 {
            delay_ms += splitmix64(
                self.seed ^ SALT_LINK_JITTER.wrapping_mul(0xA076_1D64_78BD_642F) ^ self.idx,
            ) % (p.jitter_ms + 1);
        }
        LinkFate::Deliver { delay: Duration::from_millis(delay_ms) }
    }
}

/// A deterministic, seedable schedule of read stalls: the slow-consumer
/// half of the fault harness, usable standalone (an edge bench pacing its
/// simulated subscribers' reads) or wired into a [`FaultyTransport`] via
/// [`FaultPlan::stalls`].
///
/// Each call to [`stalled`](Self::stalled) is one *read tick*. A tick
/// either falls inside a stall run (returns `true`) or rolls — purely from
/// the seed and the tick counter — whether a new run of `stall_ticks`
/// consecutive stalled ticks begins. Like every other fault decision, the
/// schedule is a function of `(seed, tick)` alone, so a failing run
/// reproduces from its seed.
#[derive(Debug, Clone)]
pub struct ThrottleSchedule {
    seed: u64,
    stall_per_mille: u32,
    stall_ticks: u32,
    tick: u64,
    remaining: u32,
}

impl ThrottleSchedule {
    /// A schedule where each tick starts a `stall_ticks`-long run with
    /// probability `per_mille`/1000.
    pub fn new(seed: u64, per_mille: u32, stall_ticks: u32) -> Self {
        ThrottleSchedule { seed, stall_per_mille: per_mille, stall_ticks, tick: 0, remaining: 0 }
    }

    /// Advance one read tick; `true` means this tick is stalled (the
    /// consumer does not read).
    pub fn stalled(&mut self) -> bool {
        self.tick += 1;
        if self.remaining > 0 {
            self.remaining -= 1;
            return true;
        }
        if self.stall_per_mille == 0 {
            return false;
        }
        let roll = roll_per_mille(self.seed, SALT_STALL, self.tick);
        if roll < self.stall_per_mille {
            self.remaining = self.stall_ticks.saturating_sub(1);
            true
        } else {
            false
        }
    }
}

/// Shared, lock-protected fault schedule state; see the module docs for
/// why it outlives any single connection.
#[derive(Debug)]
pub struct FaultState {
    plan: FaultPlan,
    summary: FaultSummary,
    /// A frame held back by a reorder decision, emitted after the next
    /// successfully sent frame.
    held: Option<Frame>,
    /// Read-stall schedule, present when the plan enables stalls.
    throttle: Option<ThrottleSchedule>,
    /// WAN link shaper, present when the plan carries a [`LinkProfile`].
    shaper: Option<LinkShaper>,
    /// Frames in flight on the shaped link, with their delivery deadlines.
    /// Flushed (in due order) on every subsequent transport call, so the
    /// schedule — like the rest of the state — survives reconnect wraps.
    in_flight: VecDeque<(Instant, Frame)>,
}

impl FaultState {
    fn new(plan: FaultPlan) -> Self {
        let throttle = (plan.stall_per_mille > 0)
            .then(|| ThrottleSchedule::new(plan.seed, plan.stall_per_mille, plan.stall_ticks));
        let shaper = plan.link.filter(|p| !p.is_ideal()).map(|p| LinkShaper::new(plan.seed, p));
        FaultState {
            plan,
            summary: FaultSummary::default(),
            held: None,
            throttle,
            shaper,
            in_flight: VecDeque::new(),
        }
    }

    /// Snapshot the fault counters.
    pub fn summary(&self) -> FaultSummary {
        self.summary.clone()
    }

    /// Deterministic per-mille roll for frame `idx` and decision `salt`.
    fn roll(&self, salt: u64, idx: u64) -> u32 {
        roll_per_mille(self.plan.seed, salt, idx)
    }

    /// Earliest delivery deadline among frames in flight, if any.
    fn next_due(&self) -> Option<Instant> {
        self.in_flight.iter().map(|(due, _)| *due).min()
    }

    /// Remove and return the earliest in-flight frame already due at `now`.
    fn pop_due(&mut self, now: Instant) -> Option<Frame> {
        let pos = self
            .in_flight
            .iter()
            .enumerate()
            .filter(|(_, (due, _))| *due <= now)
            .min_by_key(|(_, (due, _))| *due)
            .map(|(i, _)| i);
        pos.and_then(|i| self.in_flight.remove(i)).map(|(_, f)| f)
    }
}

const SALT_DROP: u64 = 1;
const SALT_DUP: u64 = 2;
const SALT_REORDER: u64 = 3;
const SALT_CORRUPT: u64 = 4;
const SALT_STALL: u64 = 5;
const SALT_LINK_LOSS: u64 = 6;
const SALT_LINK_JITTER: u64 = 7;

/// Deterministic per-mille roll shared by every fault decision: a pure
/// function of `(seed, salt, idx)`.
fn roll_per_mille(seed: u64, salt: u64, idx: u64) -> u32 {
    (splitmix64(seed ^ salt.wrapping_mul(0xA076_1D64_78BD_642F) ^ idx) % 1000) as u32
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A [`Transport`] decorator that injects the faults its [`FaultPlan`]
/// prescribes. Once a forced disconnect fires, the instance is broken for
/// good (every call errors), exactly like a closed socket; reconnect by
/// wrapping a fresh inner transport via [`FaultyTransport::with_state`].
pub struct FaultyTransport<T: Transport> {
    inner: T,
    state: Arc<Mutex<FaultState>>,
    broken: bool,
}

impl<T: Transport> FaultyTransport<T> {
    /// Wrap `inner` with a fresh state for `plan`.
    pub fn new(inner: T, plan: FaultPlan) -> Self {
        Self::with_state(inner, plan.state())
    }

    /// Wrap `inner`, continuing an existing fault schedule.
    pub fn with_state(inner: T, state: Arc<Mutex<FaultState>>) -> Self {
        FaultyTransport { inner, state, broken: false }
    }

    /// The shared schedule state (for summaries and reconnect wrapping).
    pub fn state(&self) -> Arc<Mutex<FaultState>> {
        Arc::clone(&self.state)
    }

    fn check_broken(&self) -> io::Result<()> {
        if self.broken {
            return Err(io::Error::new(io::ErrorKind::BrokenPipe, "fault: link broken"));
        }
        Ok(())
    }

    fn filter_inbound(&mut self, frame: Frame) -> io::Result<Frame> {
        let mut st = self.state.lock().expect("fault state poisoned");
        st.summary.received += 1;
        let idx = st.summary.received;
        if st.plan.corrupt_per_mille > 0 && st.roll(SALT_CORRUPT, idx) < st.plan.corrupt_per_mille {
            st.summary.corrupted += 1;
            return Err(io::Error::new(io::ErrorKind::InvalidData, "fault: frame corrupted"));
        }
        Ok(frame)
    }

    /// Push one frame through the link stage: decide its fate under the
    /// lock, transmit (or queue, or swallow) outside it.
    fn link_transmit(&mut self, frame: &Frame) -> io::Result<()> {
        let fate = {
            let mut st = self.state.lock().expect("fault state poisoned");
            match st.shaper.as_mut() {
                None => None,
                Some(shaper) => {
                    let fate = shaper.fate();
                    match fate {
                        LinkFate::Lost => st.summary.link_lost += 1,
                        LinkFate::Deliver { delay } if !delay.is_zero() => {
                            st.summary.link_delayed += 1;
                            st.in_flight.push_back((Instant::now() + delay, frame.clone()));
                        }
                        LinkFate::Deliver { .. } => {}
                    }
                    Some(fate)
                }
            }
        };
        match fate {
            // No shaper, or a zero-delay delivery: straight through.
            None => self.inner.send(frame),
            Some(LinkFate::Deliver { delay }) if delay.is_zero() => self.inner.send(frame),
            Some(_) => Ok(()),
        }
    }

    /// Deliver every in-flight frame whose deadline has passed, earliest
    /// first (jitter may reorder relative to send order — that is the
    /// point).
    fn flush_link(&mut self) -> io::Result<()> {
        loop {
            let frame = {
                let mut st = self.state.lock().expect("fault state poisoned");
                st.pop_due(Instant::now())
            };
            match frame {
                Some(f) => self.inner.send(&f)?,
                None => return Ok(()),
            }
        }
    }
}

impl<T: Transport> Transport for FaultyTransport<T> {
    fn send(&mut self, frame: &Frame) -> io::Result<()> {
        self.check_broken()?;
        // Decide under the lock, transmit outside it.
        let (disconnect, drop, dup, hold, release) = {
            let mut st = self.state.lock().expect("fault state poisoned");
            st.summary.sent += 1;
            let idx = st.summary.sent;
            let disconnect =
                st.plan.disconnect_every > 0 && idx.is_multiple_of(st.plan.disconnect_every);
            let drop = !disconnect
                && st.plan.drop_per_mille > 0
                && st.roll(SALT_DROP, idx) < st.plan.drop_per_mille;
            let dup = !disconnect
                && !drop
                && st.plan.dup_per_mille > 0
                && st.roll(SALT_DUP, idx) < st.plan.dup_per_mille;
            let hold = !disconnect
                && !drop
                && st.held.is_none()
                && st.plan.reorder_per_mille > 0
                && st.roll(SALT_REORDER, idx) < st.plan.reorder_per_mille;
            if disconnect {
                st.summary.disconnects += 1;
            } else if drop {
                st.summary.dropped += 1;
            } else if hold {
                st.summary.reordered += 1;
                st.held = Some(frame.clone());
            } else if dup {
                st.summary.duplicated += 1;
            }
            let release = if !disconnect && !drop && !hold { st.held.take() } else { None };
            (disconnect, drop, dup, hold, release)
        };
        if disconnect {
            self.broken = true;
            return Err(io::Error::new(io::ErrorKind::ConnectionReset, "fault: forced disconnect"));
        }
        if drop || hold {
            // Swallowed (or delayed): the caller sees success, the peer
            // sees nothing (yet) — exactly what a lossy link looks like.
            self.flush_link()?;
            return Ok(());
        }
        self.link_transmit(frame)?;
        if dup {
            self.link_transmit(frame)?;
        }
        if let Some(h) = release {
            self.link_transmit(&h)?;
        }
        self.flush_link()
    }

    fn recv(&mut self) -> io::Result<Option<Frame>> {
        self.check_broken()?;
        self.flush_link()?;
        match self.inner.recv()? {
            Some(f) => self.filter_inbound(f).map(Some),
            None => Ok(None),
        }
    }

    fn recv_timeout(&mut self, timeout: Duration) -> io::Result<Polled> {
        self.check_broken()?;
        // A stalled tick swallows the whole wait: the consumer does not
        // read, as if its thread were descheduled. The decision is taken
        // under the lock, the (real-time) stall happens outside it.
        let stalled = {
            let mut st = self.state.lock().expect("fault state poisoned");
            let hit = st.throttle.as_mut().is_some_and(|t| t.stalled());
            if hit {
                st.summary.stalled += 1;
            }
            hit
        };
        if stalled {
            std::thread::sleep(timeout);
            return Ok(Polled::Idle);
        }
        let has_link = {
            let st = self.state.lock().expect("fault state poisoned");
            st.shaper.is_some()
        };
        if !has_link {
            return match self.inner.recv_timeout(timeout)? {
                Polled::Frame(f) => self.filter_inbound(f).map(Polled::Frame),
                other => Ok(other),
            };
        }
        // With a shaped link, slice the wait so frames coming due mid-wait
        // are flushed on time instead of after the full timeout.
        let deadline = Instant::now() + timeout;
        loop {
            self.flush_link()?;
            let now = Instant::now();
            if now >= deadline {
                return Ok(Polled::Idle);
            }
            let mut slice = deadline - now;
            let next_due = {
                let st = self.state.lock().expect("fault state poisoned");
                st.next_due()
            };
            if let Some(due) = next_due {
                if due > now {
                    slice = slice.min(due - now);
                }
            }
            match self.inner.recv_timeout(slice)? {
                Polled::Frame(f) => return self.filter_inbound(f).map(Polled::Frame),
                Polled::Eof => return Ok(Polled::Eof),
                Polled::Idle => continue,
            }
        }
    }

    fn label(&self) -> String {
        format!("faulty:{}", self.inner.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::InProcTransport;
    use mirror_core::event::{Event, FlightStatus};

    fn ev(seq: u64) -> Frame {
        Frame::Data(std::sync::Arc::new(Event::delta_status(seq, 7, FlightStatus::Boarding)))
    }

    fn run_schedule(plan: FaultPlan, frames: u64) -> (FaultSummary, Vec<Frame>) {
        let (near, mut far) = InProcTransport::pair("fault");
        let mut t = FaultyTransport::new(near, plan);
        for i in 1..=frames {
            match t.send(&ev(i)) {
                Ok(()) => {}
                Err(_) => break, // forced disconnect
            }
        }
        let state = t.state();
        drop(t);
        let mut got = Vec::new();
        while let Ok(Some(f)) = far.recv() {
            got.push(f);
        }
        let summary = state.lock().unwrap().summary();
        (summary, got)
    }

    #[test]
    fn no_faults_is_transparent() {
        let (summary, got) = run_schedule(FaultPlan::new(1), 100);
        assert_eq!(summary.dropped + summary.duplicated + summary.reordered, 0);
        assert_eq!(got.len(), 100);
        for (i, f) in got.iter().enumerate() {
            assert_eq!(*f, ev(i as u64 + 1));
        }
    }

    #[test]
    fn same_seed_same_schedule() {
        let (a, got_a) = run_schedule(FaultPlan::chaos(42), 500);
        let (b, got_b) = run_schedule(FaultPlan::chaos(42), 500);
        assert_eq!(a, b);
        assert_eq!(got_a, got_b);
        assert!(a.dropped > 0, "chaos plan should drop: {a:?}");
        assert!(a.duplicated > 0, "chaos plan should duplicate: {a:?}");
        assert!(a.disconnects > 0, "chaos plan should disconnect: {a:?}");
    }

    #[test]
    fn different_seed_different_schedule() {
        let (a, _) = run_schedule(FaultPlan::chaos(1), 500);
        let (b, _) = run_schedule(FaultPlan::chaos(2), 500);
        assert_ne!(a, b);
    }

    #[test]
    fn drop_rate_is_roughly_honored() {
        let (summary, got) = run_schedule(FaultPlan::new(7).drops(200), 2000);
        assert_eq!(summary.sent, 2000);
        let rate = summary.dropped as f64 / 2000.0;
        assert!((0.15..0.25).contains(&rate), "drop rate {rate} out of band");
        assert_eq!(got.len() as u64, 2000 - summary.dropped);
    }

    #[test]
    fn forced_disconnect_breaks_until_rewrapped() {
        let (near, _far) = InProcTransport::pair("fault");
        let plan = FaultPlan::new(3).disconnect_every(5);
        let mut t = FaultyTransport::new(near, plan);
        for i in 1..5 {
            t.send(&ev(i)).unwrap();
        }
        assert!(t.send(&ev(5)).is_err());
        assert!(t.send(&ev(6)).is_err(), "stays broken after disconnect");
        assert!(t.recv().is_err(), "recv is broken too");
        // A new wrap over the same state continues the schedule: sends
        // 6..=9 pass, the 10th overall (disconnect_every=5) breaks again.
        let state = t.state();
        let (near2, _far2) = InProcTransport::pair("fault2");
        let mut t2 = FaultyTransport::with_state(near2, state);
        for i in 6..10 {
            t2.send(&ev(i)).unwrap();
        }
        assert!(t2.send(&ev(10)).is_err());
    }

    #[test]
    fn reorder_swaps_adjacent_frames() {
        // With 100% reorder, frame 1 is held; frame 2 cannot be held (slot
        // taken) so it goes out, releasing frame 1 after it, and so on.
        let (summary, got) = run_schedule(FaultPlan::new(5).reorders(1000), 10);
        assert!(summary.reordered > 0);
        // All frames arrive exactly once (barring one still held at the
        // end), just not in order.
        let mut seqs: Vec<u64> = got
            .iter()
            .map(|f| match f {
                Frame::Data(e) => e.seq,
                _ => unreachable!(),
            })
            .collect();
        assert_ne!(seqs, (1..=seqs.len() as u64).collect::<Vec<_>>(), "should be out of order");
        seqs.sort_unstable();
        seqs.dedup();
        assert!(seqs.len() >= 9, "at most the final held frame may be missing");
    }

    #[test]
    fn throttle_schedule_is_deterministic_and_runs_in_bursts() {
        let mut a = ThrottleSchedule::new(9, 100, 5);
        let mut b = ThrottleSchedule::new(9, 100, 5);
        let ticks_a: Vec<bool> = (0..2000).map(|_| a.stalled()).collect();
        let ticks_b: Vec<bool> = (0..2000).map(|_| b.stalled()).collect();
        assert_eq!(ticks_a, ticks_b, "same seed, same schedule");
        let stalled = ticks_a.iter().filter(|s| **s).count();
        assert!(stalled > 0, "schedule should stall sometimes");
        // Runs are at least stall_ticks long: every maximal run of `true`
        // that ends before the tail has length >= 5.
        let mut run = 0usize;
        for (i, s) in ticks_a.iter().enumerate() {
            if *s {
                run += 1;
            } else {
                assert!(run == 0 || run >= 5, "short stall run of {run} ending at tick {i}");
                run = 0;
            }
        }
        let mut c = ThrottleSchedule::new(10, 100, 5);
        assert_ne!(ticks_a, (0..2000).map(|_| c.stalled()).collect::<Vec<_>>());
        let mut never = ThrottleSchedule::new(9, 0, 5);
        assert!((0..100).all(|_| !never.stalled()));
    }

    #[test]
    fn stalled_reads_delay_but_never_lose() {
        let (mut near, far) = InProcTransport::pair("stall");
        // Heavy stalling (50% chance of a 2-tick run): the frame arrives
        // late, after some deterministically stalled Idle ticks, but it
        // always arrives — stalls are delay, not loss.
        let mut t = FaultyTransport::new(far, FaultPlan::new(21).stalls(500, 2));
        for i in 1..=50 {
            near.send(&ev(i)).unwrap();
        }
        let mut idles = 0u64;
        let mut got = Vec::new();
        while got.len() < 50 {
            match t.recv_timeout(Duration::from_millis(1)).unwrap() {
                Polled::Frame(f) => got.push(f),
                Polled::Idle => idles += 1,
                Polled::Eof => panic!("unexpected eof"),
            }
            assert!(idles < 1000, "stall schedule never yielded a read");
        }
        assert_eq!(got, (1..=50).map(ev).collect::<Vec<_>>(), "in order, nothing lost");
        let summary = t.state().lock().unwrap().summary();
        assert_eq!(summary.stalled, idles, "every idle tick was a stall");
        assert!(summary.stalled > 0, "50 ticks at 50% should stall at least once");
    }

    #[test]
    fn link_shaper_is_deterministic() {
        let profile = LinkProfile::wan(100);
        let mut a = LinkShaper::new(17, profile);
        let mut b = LinkShaper::new(17, profile);
        let fates_a: Vec<LinkFate> = (0..2000).map(|_| a.fate()).collect();
        let fates_b: Vec<LinkFate> = (0..2000).map(|_| b.fate()).collect();
        assert_eq!(fates_a, fates_b, "same seed, same schedule");
        let lost = fates_a.iter().filter(|f| **f == LinkFate::Lost).count();
        let rate = lost as f64 / 2000.0;
        assert!((0.05..0.15).contains(&rate), "loss rate {rate} out of band for 10%");
        for f in &fates_a {
            if let LinkFate::Deliver { delay } = f {
                let ms = delay.as_millis() as u64;
                assert!(
                    (profile.latency_ms..=profile.latency_ms + profile.jitter_ms).contains(&ms),
                    "delay {ms}ms outside latency+jitter band"
                );
            }
        }
        let mut c = LinkShaper::new(18, profile);
        assert_ne!(fates_a, (0..2000).map(|_| c.fate()).collect::<Vec<_>>());
        let mut ideal = LinkShaper::new(17, LinkProfile::ideal());
        assert_eq!(ideal.fate(), LinkFate::Deliver { delay: Duration::ZERO });
    }

    #[test]
    fn link_latency_delays_frames() {
        let (near, mut far) = InProcTransport::pair("wan");
        let plan = FaultPlan::new(13).link(LinkProfile::new(20, 0, 0));
        let mut t = FaultyTransport::new(near, plan);
        let start = Instant::now();
        t.send(&ev(1)).unwrap();
        // The frame is in flight: the peer must not have it yet.
        assert_eq!(far.recv_timeout(Duration::from_millis(1)).unwrap(), Polled::Idle);
        // Waiting on the shaped transport flushes the frame once due.
        assert_eq!(t.recv_timeout(Duration::from_millis(200)).unwrap(), Polled::Idle);
        let got = far.recv().unwrap().expect("frame delivered after latency");
        assert_eq!(got, ev(1));
        assert!(start.elapsed() >= Duration::from_millis(20), "delivered before latency elapsed");
        let summary = t.state().lock().unwrap().summary();
        assert_eq!(summary.link_delayed, 1);
        assert_eq!(summary.link_lost, 0);
    }

    #[test]
    fn link_loss_swallows_frames() {
        let (near, mut far) = InProcTransport::pair("wan");
        let plan = FaultPlan::new(29).link(LinkProfile::new(0, 0, 1000));
        let mut t = FaultyTransport::new(near, plan);
        for i in 1..=20 {
            t.send(&ev(i)).unwrap();
        }
        assert_eq!(far.recv_timeout(Duration::from_millis(5)).unwrap(), Polled::Idle);
        let summary = t.state().lock().unwrap().summary();
        assert_eq!(summary.link_lost, 20, "total loss swallows every frame");
        assert_eq!(summary.link_delayed, 0);
    }

    #[test]
    fn ideal_link_profile_is_transparent() {
        let (summary, got) = run_schedule(FaultPlan::new(1).link(LinkProfile::ideal()), 50);
        assert_eq!(got.len(), 50);
        assert_eq!(summary.link_lost + summary.link_delayed, 0);
    }

    #[test]
    fn corruption_surfaces_as_invalid_data() {
        let (near, far) = InProcTransport::pair("fault");
        let mut sender = near;
        let mut t = FaultyTransport::new(far, FaultPlan::new(11).corrupts(1000));
        sender.send(&ev(1)).unwrap();
        let err = t.recv().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert_eq!(t.state().lock().unwrap().summary().corrupted, 1);
    }
}
