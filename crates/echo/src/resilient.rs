//! Reliable delivery over unreliable links.
//!
//! The paper assumes "reliable communication across mirror sites" and
//! names link/node failure handling as future work. [`ResilientTransport`]
//! lifts that assumption: it wraps any inner [`Transport`] (fresh ones
//! minted by a [`Connector`] on every reconnect) and layers on
//!
//! * **per-frame sequence numbers** — every outbound frame travels in a
//!   [`Frame::Seq`] envelope, numbered from 1;
//! * **cumulative acks** — the receiver acknowledges the highest
//!   contiguously delivered sequence number ([`Frame::Ack`]);
//! * **a bounded retransmit window** — unacknowledged frames are retained
//!   as their wire encoding, shared with the fan-out path so a frame is
//!   encoded once per link lifetime
//!   (the transport-level analogue of the paper's backup queue) and
//!   replayed when the peer announces what it has via [`Frame::Hello`];
//! * **reconnect with exponential backoff + jitter** under a retry
//!   budget — transient outages heal invisibly, exhausted budgets mark the
//!   link *dead* so `suspect_after` failure detection and the dead-mirror /
//!   central-failover paths can take over;
//! * **duplicate suppression** — redelivered sequence numbers below the
//!   receive cursor are dropped and re-acked.
//!
//! The result: every frame accepted by [`send`](ResilientTransport::send)
//! is delivered to the peer's application **exactly once, in order**, for
//! as long as the link stays within its retry budget.
//!
//! The engine is single-threaded and polling: acks and retransmit requests
//! are serviced opportunistically during `send` and during (bounded-wait)
//! `recv`. Idle links should be ticked via
//! [`recv_timeout`](Transport::recv_timeout) so protocol frames keep
//! flowing when no application traffic does — the runtime bridge does this
//! from its forwarder threads.

use std::collections::{BTreeMap, VecDeque};
use std::io;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;

use crate::transport::{Polled, Transport};
use crate::wire::{encode_frame_shared, encode_seq_envelope, Frame};

/// Default retransmit-window bound (frames retained awaiting ack).
pub const DEFAULT_WINDOW: usize = 8192;

/// Bound on the receiver's out-of-order reassembly buffer.
const MAX_OOO: usize = 4096;

/// How long a blocking [`recv`](Transport::recv) waits per poll cycle.
const RECV_POLL: Duration = Duration::from_millis(25);

/// Consecutive idle service passes with an outstanding window before the
/// sender re-offers it unprompted (see `note_idle`).
const STALL_PUMPS: u32 = 20;

/// Produces a fresh connection on demand. Implemented for closures so
/// callers can write `move || Ok(Box::new(TcpTransport::connect(addr)?) as _)`.
pub trait Connector: Send {
    /// Establish a new inner transport.
    fn connect(&mut self) -> io::Result<Box<dyn Transport>>;
}

impl<F> Connector for F
where
    F: FnMut() -> io::Result<Box<dyn Transport>> + Send,
{
    fn connect(&mut self) -> io::Result<Box<dyn Transport>> {
        self()
    }
}

/// Reconnect policy: exponential backoff with deterministic jitter under a
/// bounded attempt budget.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Connection attempts per outage before the link is declared dead.
    pub max_attempts: u32,
    /// First backoff; doubles per attempt.
    pub base_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
    /// Seed for the jitter sequence (deterministic for reproducible runs).
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 10,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(500),
            jitter_seed: 0x5EED,
        }
    }
}

impl RetryPolicy {
    /// A fast policy for tests: tight backoffs, small budget.
    pub fn fast(max_attempts: u32) -> Self {
        RetryPolicy {
            max_attempts,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(20),
            jitter_seed: 0x5EED,
        }
    }

    fn backoff(&self, attempt: u32, jitter_state: &mut u64) -> Duration {
        let exp = self
            .base_backoff
            .saturating_mul(1u32 << attempt.saturating_sub(1).min(16))
            .min(self.max_backoff);
        *jitter_state = splitmix64(*jitter_state);
        let base_ms = self.base_backoff.as_millis().max(1) as u64;
        exp + Duration::from_millis(*jitter_state % base_ms)
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Link lifecycle transitions, surfaced to an observer callback (the
/// runtime control task) as they happen.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinkEvent {
    /// The connection dropped; reconnection will be attempted.
    Down,
    /// A connection is established (initial or re-established).
    Up,
    /// The retry budget is exhausted; the link will not recover.
    Dead,
}

/// Shared, lock-free view of a link's health, readable from any thread
/// while the engine runs. Obtain via [`ResilientTransport::monitor`].
#[derive(Debug, Default)]
pub struct LinkMonitor {
    up: AtomicBool,
    dead: AtomicBool,
    connects: AtomicU64,
    disconnects: AtomicU64,
    retransmitted: AtomicU64,
    duplicates_dropped: AtomicU64,
    delivered: AtomicU64,
    acked: AtomicU64,
}

impl LinkMonitor {
    /// Snapshot the counters.
    pub fn health(&self) -> LinkHealth {
        LinkHealth {
            up: self.up.load(Ordering::Relaxed),
            dead: self.dead.load(Ordering::Relaxed),
            connects: self.connects.load(Ordering::Relaxed),
            disconnects: self.disconnects.load(Ordering::Relaxed),
            retransmitted: self.retransmitted.load(Ordering::Relaxed),
            duplicates_dropped: self.duplicates_dropped.load(Ordering::Relaxed),
            delivered: self.delivered.load(Ordering::Relaxed),
            acked: self.acked.load(Ordering::Relaxed),
        }
    }

    /// Whether the link is currently connected.
    pub fn is_up(&self) -> bool {
        self.up.load(Ordering::Relaxed)
    }

    /// Whether the retry budget has been exhausted.
    pub fn is_dead(&self) -> bool {
        self.dead.load(Ordering::Relaxed)
    }
}

/// A point-in-time copy of [`LinkMonitor`] counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LinkHealth {
    /// Connected right now.
    pub up: bool,
    /// Retry budget exhausted; permanently down.
    pub dead: bool,
    /// Successful connection establishments (initial + re-).
    pub connects: u64,
    /// Times the connection dropped.
    pub disconnects: u64,
    /// Frames retransmitted from the window.
    pub retransmitted: u64,
    /// Incoming duplicate frames suppressed.
    pub duplicates_dropped: u64,
    /// Frames delivered to the application, in order, exactly once.
    pub delivered: u64,
    /// Highest cumulative ack received from the peer.
    pub acked: u64,
}

type EventHook = Box<dyn Fn(&LinkEvent) + Send>;

/// Reliable-delivery decorator over reconnectable transports. See the
/// module docs for the protocol.
pub struct ResilientTransport {
    connector: Box<dyn Connector>,
    policy: RetryPolicy,
    jitter_state: u64,
    inner: Option<Box<dyn Transport>>,
    /// Next sequence number to assign to an outbound frame.
    send_next: u64,
    /// Unacknowledged outbound frames, oldest first, kept as their wire
    /// encoding (unenveloped): each frame is encoded exactly once per
    /// link lifetime, and retransmission replays the stored bytes with a
    /// fresh [`Frame::Seq`] header prepended — no re-encoding ever.
    window: VecDeque<(u64, Bytes)>,
    max_window: usize,
    /// Next expected inbound sequence number.
    recv_next: u64,
    /// Failed connection attempts in the current outage (resets on
    /// success); the retry budget compares against this.
    attempts: u32,
    /// The `recv_next` value we last requested a retransmit for, to avoid
    /// a Hello per out-of-order frame.
    gap_signaled: u64,
    /// Frames received ahead of the cursor, held until the gap fills
    /// (selective-repeat reassembly; keeps one loss from forcing the
    /// whole window to be retransmitted and re-received repeatedly).
    ooo: BTreeMap<u64, Frame>,
    /// Consecutive idle service passes with unacked frames outstanding;
    /// crossing [`STALL_PUMPS`] re-offers the window unprompted.
    stalled_pumps: u32,
    /// Delivered application frames awaiting `recv`.
    inbox: VecDeque<Frame>,
    monitor: Arc<LinkMonitor>,
    stop: Arc<AtomicBool>,
    on_event: Option<EventHook>,
    label: String,
}

impl ResilientTransport {
    /// Build an engine over `connector`; no connection is attempted until
    /// the first send/recv.
    pub fn new(connector: impl Connector + 'static, policy: RetryPolicy, label: &str) -> Self {
        let jitter_state = policy.jitter_seed;
        ResilientTransport {
            connector: Box::new(connector),
            policy,
            jitter_state,
            inner: None,
            send_next: 1,
            window: VecDeque::new(),
            max_window: DEFAULT_WINDOW,
            recv_next: 1,
            attempts: 0,
            gap_signaled: 0,
            ooo: BTreeMap::new(),
            stalled_pumps: 0,
            inbox: VecDeque::new(),
            monitor: Arc::new(LinkMonitor::default()),
            stop: Arc::new(AtomicBool::new(false)),
            on_event: None,
            label: label.to_string(),
        }
    }

    /// Cap the retransmit window at `frames` (default [`DEFAULT_WINDOW`]).
    pub fn with_window(mut self, frames: usize) -> Self {
        self.max_window = frames.max(1);
        self
    }

    /// Install an observer for [`LinkEvent`] transitions.
    pub fn on_event(mut self, hook: impl Fn(&LinkEvent) + Send + 'static) -> Self {
        self.on_event = Some(Box::new(hook));
        self
    }

    /// The shared health monitor for this link.
    pub fn monitor(&self) -> Arc<LinkMonitor> {
        Arc::clone(&self.monitor)
    }

    /// A flag that makes the engine stop reconnecting and report EOF;
    /// flip it from another thread for prompt shutdown.
    pub fn stop_handle(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.stop)
    }

    /// Connect now instead of lazily on first use.
    pub fn connect_now(&mut self) -> io::Result<()> {
        self.ensure_connected()
    }

    /// Service the protocol (acks, retransmit requests, inbound frames)
    /// for up to `timeout` without delivering anything; equivalent to
    /// `recv_timeout` with the inbox left untouched. At most one
    /// reconnection attempt is made per tick.
    pub fn tick(&mut self, timeout: Duration) {
        if let Ok(true) = self.connect_step() {
            self.pump(timeout);
        }
    }

    fn stopped(&self) -> bool {
        self.stop.load(Ordering::Relaxed)
    }

    fn emit(&self, ev: LinkEvent) {
        if let Some(hook) = &self.on_event {
            hook(&ev);
        }
    }

    fn fail_link(&mut self) {
        if self.inner.take().is_some() {
            self.monitor.up.store(false, Ordering::Relaxed);
            self.monitor.disconnects.fetch_add(1, Ordering::Relaxed);
            self.emit(LinkEvent::Down);
        }
    }

    /// One reconnection step under the retry budget.
    ///
    /// * `Ok(true)` — connected (or already was);
    /// * `Ok(false)` — this attempt failed and its backoff has been slept;
    ///   budget remains, call again;
    /// * `Err(_)` — the link is dead (budget exhausted) or stopped.
    ///
    /// One-attempt-per-call matters: a receiver mid-outage must regularly
    /// return control to its caller instead of camping inside a full
    /// budget's worth of blocking connect attempts.
    fn connect_step(&mut self) -> io::Result<bool> {
        if self.stopped() {
            return Err(io::Error::new(io::ErrorKind::BrokenPipe, "link stopped"));
        }
        if self.monitor.is_dead() {
            return Err(io::Error::new(io::ErrorKind::BrokenPipe, "link dead"));
        }
        if self.inner.is_some() {
            return Ok(true);
        }
        if self.attempts >= self.policy.max_attempts {
            self.monitor.dead.store(true, Ordering::Relaxed);
            self.monitor.up.store(false, Ordering::Relaxed);
            self.emit(LinkEvent::Dead);
            return Err(io::Error::new(io::ErrorKind::TimedOut, "reconnect budget exhausted"));
        }
        self.attempts += 1;
        if let Ok(mut t) = self.connector.connect() {
            // Announce what we have; the peer retransmits from here. A
            // failed hello counts as a failed attempt.
            if t.send(&Frame::Hello { next: self.recv_next }).is_ok() {
                self.inner = Some(t);
                self.attempts = 0;
                self.monitor.up.store(true, Ordering::Relaxed);
                self.monitor.connects.fetch_add(1, Ordering::Relaxed);
                self.emit(LinkEvent::Up);
                return Ok(true);
            }
        }
        if !self.stopped() {
            let d = self.policy.backoff(self.attempts, &mut self.jitter_state);
            std::thread::sleep(d);
        }
        Ok(false)
    }

    /// Block (re)connecting until up, dead, or stopped — the sender-side
    /// contract: a send either enters a live window or fails for good.
    fn ensure_connected(&mut self) -> io::Result<()> {
        while !self.connect_step()? {}
        Ok(())
    }

    fn wire_send(&mut self, frame: &Frame) -> io::Result<()> {
        match self.inner.as_mut() {
            Some(t) => {
                if let Err(e) = t.send(frame) {
                    self.fail_link();
                    return Err(e);
                }
                Ok(())
            }
            None => Err(io::Error::new(io::ErrorKind::NotConnected, "not connected")),
        }
    }

    fn wire_send_encoded(&mut self, bytes: &Bytes) -> io::Result<()> {
        match self.inner.as_mut() {
            Some(t) => {
                if let Err(e) = t.send_encoded(bytes) {
                    self.fail_link();
                    return Err(e);
                }
                Ok(())
            }
            None => Err(io::Error::new(io::ErrorKind::NotConnected, "not connected")),
        }
    }

    fn deliver(&mut self, frame: Frame) {
        self.recv_next += 1;
        self.monitor.delivered.fetch_add(1, Ordering::Relaxed);
        self.inbox.push_back(frame);
    }

    /// Process one inbound protocol frame.
    fn on_frame(&mut self, frame: Frame) {
        match frame {
            Frame::Seq { seq, inner } => {
                if seq == self.recv_next {
                    self.deliver(*inner);
                    // Drain whatever the gap was holding back.
                    while let Some(f) = self.ooo.remove(&self.recv_next) {
                        self.deliver(f);
                    }
                    self.gap_signaled = 0;
                    let ack = Frame::Ack { cum: self.recv_next - 1 };
                    let _ = self.wire_send(&ack);
                } else if seq < self.recv_next {
                    // Duplicate (retransmit overlap or injected dup):
                    // suppress, but re-ack so the sender can prune.
                    self.monitor.duplicates_dropped.fetch_add(1, Ordering::Relaxed);
                    let ack = Frame::Ack { cum: self.recv_next - 1 };
                    let _ = self.wire_send(&ack);
                } else {
                    // Ahead of the cursor: something before `seq` was lost
                    // in flight. Hold the frame for reassembly and ask for
                    // a retransmit (once per cursor position).
                    if self.ooo.contains_key(&seq) {
                        self.monitor.duplicates_dropped.fetch_add(1, Ordering::Relaxed);
                    } else if self.ooo.len() < MAX_OOO {
                        self.ooo.insert(seq, *inner);
                    }
                    if self.gap_signaled != self.recv_next {
                        self.gap_signaled = self.recv_next;
                        let hello = Frame::Hello { next: self.recv_next };
                        let _ = self.wire_send(&hello);
                    }
                }
            }
            Frame::Ack { cum } => {
                while self.window.front().is_some_and(|(s, _)| *s <= cum) {
                    self.window.pop_front();
                }
                self.monitor.acked.fetch_max(cum, Ordering::Relaxed);
                self.stalled_pumps = 0;
            }
            Frame::Hello { next } => {
                // Peer (re)connected or detected a gap: everything below
                // `next` is delivered; retransmit the rest of the window.
                while self.window.front().is_some_and(|(s, _)| *s < next) {
                    self.window.pop_front();
                }
                self.stalled_pumps = 0;
                self.retransmit_window();
            }
            // A non-resilient peer speaking plain frames: pass through
            // (no sequencing, no dedup — legacy interop).
            other => {
                self.inbox.push_back(other);
            }
        }
    }

    /// Re-offer every unacknowledged frame to the wire, replaying the
    /// stored encodings (cheap clones of refcounted byte buffers).
    fn retransmit_window(&mut self) {
        let pending: Vec<(u64, Bytes)> = self.window.iter().cloned().collect();
        let n = pending.len() as u64;
        for (seq, bytes) in pending {
            let env = encode_seq_envelope(seq, &bytes);
            if self.wire_send_encoded(&env).is_err() {
                break;
            }
        }
        self.monitor.retransmitted.fetch_add(n, Ordering::Relaxed);
    }

    /// A service pass ended with nothing inbound while unacked frames are
    /// outstanding. That is normal for a few passes (acks in flight), but
    /// a *persistently* silent peer means both our retransmissions and
    /// the peer's gap signal were lost without a disconnect to force a
    /// fresh Hello handshake — a lossy-but-connected link. Re-offer the
    /// window unprompted after [`STALL_PUMPS`] consecutive such passes.
    fn note_idle(&mut self) {
        if self.window.is_empty() {
            self.stalled_pumps = 0;
            return;
        }
        self.stalled_pumps += 1;
        if self.stalled_pumps >= STALL_PUMPS {
            self.stalled_pumps = 0;
            self.retransmit_window();
        }
    }

    /// One bounded service pass: wait up to `timeout` for a frame, then
    /// drain whatever else is immediately available (bounded).
    fn pump(&mut self, timeout: Duration) {
        let mut wait = timeout;
        for _ in 0..256 {
            let polled = match self.inner.as_mut() {
                Some(t) => t.recv_timeout(wait),
                None => return,
            };
            match polled {
                Ok(Polled::Frame(f)) => {
                    self.on_frame(f);
                    wait = Duration::ZERO;
                }
                Ok(Polled::Idle) => {
                    self.note_idle();
                    return;
                }
                Ok(Polled::Eof) | Err(_) => {
                    // EOF, injected corruption, or transport error: the
                    // connection is unusable; reconnect on next use.
                    self.fail_link();
                    return;
                }
            }
        }
    }
}

impl Transport for ResilientTransport {
    fn send(&mut self, frame: &Frame) -> io::Result<()> {
        self.send_encoded(&encode_frame_shared(frame))
    }

    fn send_encoded(&mut self, bytes: &Bytes) -> io::Result<()> {
        self.ensure_connected()?;
        // Backpressure: a full window means the peer isn't acking. Give
        // the protocol a bounded chance to drain before refusing.
        let mut spins = 0;
        while self.window.len() >= self.max_window {
            self.pump(Duration::from_millis(5));
            self.ensure_connected()?;
            spins += 1;
            if spins > 400 {
                return Err(io::Error::new(
                    io::ErrorKind::WouldBlock,
                    "retransmit window full (peer not acking)",
                ));
            }
        }
        let seq = self.send_next;
        self.send_next += 1;
        self.window.push_back((seq, bytes.clone()));
        let env = encode_seq_envelope(seq, bytes);
        if self.wire_send_encoded(&env).is_err() {
            // The frame is safely windowed; reconnect (or die trying) and
            // let the Hello exchange trigger its retransmission.
            self.ensure_connected()?;
        }
        // Opportunistically service acks so the window stays pruned.
        self.pump(Duration::ZERO);
        Ok(())
    }

    fn recv(&mut self) -> io::Result<Option<Frame>> {
        loop {
            if let Some(f) = self.inbox.pop_front() {
                return Ok(Some(f));
            }
            // A dead or stopped link is a clean EOF to the caller: the
            // escalation already happened via LinkEvent::Dead.
            match self.connect_step() {
                Err(_) => return Ok(None),
                Ok(true) => self.pump(RECV_POLL),
                Ok(false) => {} // backoff already slept; retry
            }
        }
    }

    fn recv_timeout(&mut self, timeout: Duration) -> io::Result<Polled> {
        if let Some(f) = self.inbox.pop_front() {
            return Ok(Polled::Frame(f));
        }
        match self.connect_step() {
            Err(_) => return Ok(Polled::Eof),
            Ok(true) => self.pump(timeout),
            Ok(false) => return Ok(Polled::Idle),
        }
        match self.inbox.pop_front() {
            Some(f) => Ok(Polled::Frame(f)),
            None => Ok(Polled::Idle),
        }
    }

    fn label(&self) -> String {
        match &self.inner {
            Some(t) => format!("resilient:{}", t.label()),
            None => format!("resilient:{}(disconnected)", self.label),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::{FaultPlan, FaultyTransport};
    use crate::transport::{inproc_rendezvous, InProcListener};
    use mirror_core::event::{Event, FlightStatus};

    fn ev(seq: u64) -> Frame {
        Frame::Data(Arc::new(Event::delta_status(seq, 7, FlightStatus::Boarding)))
    }

    fn listener_connector(mut l: InProcListener) -> impl Connector {
        // Short accept timeout: in single-threaded tests the dialer only
        // gets to redial between our attempts, so each attempt must yield
        // quickly.
        move || l.accept(Duration::from_millis(10)).map(|t| Box::new(t) as Box<dyn Transport>)
    }

    /// Drive `n` events from a dialer-side engine (through `plan`'s faults)
    /// to a listener-side engine, single-threaded, until all arrive or the
    /// deadline passes. Returns received frames.
    fn run_link(plan: FaultPlan, n: u64) -> (Vec<Frame>, LinkHealth, LinkHealth) {
        let (mut dialer, listener) = inproc_rendezvous("link");
        let state = plan.state();
        let fault_state = Arc::clone(&state);
        let sender_conn = move || {
            let raw = dialer.dial()?;
            Ok(Box::new(FaultyTransport::with_state(raw, Arc::clone(&fault_state)))
                as Box<dyn Transport>)
        };
        let mut tx = ResilientTransport::new(sender_conn, RetryPolicy::fast(10), "tx");
        let mut rx = ResilientTransport::new(
            listener_connector(listener),
            RetryPolicy::fast(1_000_000),
            "rx",
        );

        let mut got = Vec::new();
        let mut sent = 0u64;
        let deadline = std::time::Instant::now() + Duration::from_secs(20);
        while got.len() < n as usize && std::time::Instant::now() < deadline {
            if sent < n {
                sent += 1;
                tx.send(&ev(sent)).unwrap();
            } else {
                tx.tick(Duration::from_millis(1));
            }
            while let Ok(Polled::Frame(f)) = rx.recv_timeout(Duration::from_millis(1)) {
                got.push(f);
            }
        }
        (got, tx.monitor().health(), rx.monitor().health())
    }

    #[test]
    fn clean_link_delivers_in_order() {
        let (got, tx_h, _) = run_link(FaultPlan::new(1), 200);
        assert_eq!(got.len(), 200);
        for (i, f) in got.iter().enumerate() {
            assert_eq!(*f, ev(i as u64 + 1));
        }
        assert_eq!(tx_h.connects, 1);
        assert_eq!(tx_h.disconnects, 0);
    }

    #[test]
    fn chaos_link_still_delivers_exactly_once_in_order() {
        let (got, tx_h, rx_h) = run_link(FaultPlan::chaos(42), 500);
        assert_eq!(got.len(), 500, "tx={tx_h:?} rx={rx_h:?}");
        for (i, f) in got.iter().enumerate() {
            assert_eq!(*f, ev(i as u64 + 1), "order violated at {i}");
        }
        assert!(tx_h.connects > 1, "should have reconnected: {tx_h:?}");
        assert!(tx_h.retransmitted > 0, "should have retransmitted: {tx_h:?}");
        assert_eq!(rx_h.delivered, 500);
    }

    #[test]
    fn chaos_is_deterministic_per_seed() {
        let (_, a_tx, a_rx) = run_link(FaultPlan::chaos(7), 300);
        let (_, b_tx, b_rx) = run_link(FaultPlan::chaos(7), 300);
        // Timing-free counters must match exactly run to run.
        assert_eq!(a_rx.delivered, b_rx.delivered);
        assert_eq!(a_tx.connects, b_tx.connects);
    }

    #[test]
    fn duplicates_are_suppressed() {
        let (got, _, rx_h) = run_link(FaultPlan::new(3).dups(400), 300);
        assert_eq!(got.len(), 300);
        assert!(rx_h.duplicates_dropped > 0, "dups should be seen and dropped: {rx_h:?}");
    }

    #[test]
    fn dead_connector_exhausts_budget_and_reports_dead() {
        let mut events: Vec<LinkEvent> = Vec::new();
        let log = Arc::new(std::sync::Mutex::new(Vec::new()));
        let log2 = Arc::clone(&log);
        let conn =
            || Err::<Box<dyn Transport>, _>(io::Error::new(io::ErrorKind::ConnectionRefused, "no"));
        let mut t = ResilientTransport::new(conn, RetryPolicy::fast(3), "doomed")
            .on_event(move |e| log2.lock().unwrap().push(e.clone()));
        let err = t.send(&ev(1)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
        assert!(t.monitor().is_dead());
        assert_eq!(t.recv().unwrap(), None, "dead link is clean EOF");
        events.extend(log.lock().unwrap().drain(..));
        assert_eq!(events, vec![LinkEvent::Dead]);
    }

    #[test]
    fn stop_handle_halts_reconnection() {
        let (mut dialer, listener) = inproc_rendezvous("stop");
        drop(listener); // dialing will fail forever
        let conn = move || dialer.dial().map(|t| Box::new(t) as Box<dyn Transport>);
        let mut t = ResilientTransport::new(conn, RetryPolicy::fast(1_000_000), "stopped");
        t.stop_handle().store(true, Ordering::Relaxed);
        assert_eq!(t.recv().unwrap(), None);
    }

    #[test]
    fn plain_peer_frames_pass_through() {
        // A resilient endpoint facing a legacy (non-resilient) peer still
        // delivers the peer's plain frames.
        let (mut dialer, mut listener) = inproc_rendezvous("legacy");
        let conn = move || dialer.dial().map(|t| Box::new(t) as Box<dyn Transport>);
        let mut t = ResilientTransport::new(conn, RetryPolicy::fast(3), "legacy");
        t.connect_now().unwrap();
        let mut peer = listener.accept(Duration::from_secs(1)).unwrap();
        // Drain the hello, then speak plain frames.
        assert!(matches!(peer.recv().unwrap(), Some(Frame::Hello { next: 1 })));
        peer.send(&ev(9)).unwrap();
        assert_eq!(t.recv().unwrap(), Some(ev(9)));
    }
}
