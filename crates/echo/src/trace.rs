//! Event-trace persistence: record a timed event stream to a file and
//! replay it later, byte-identically.
//!
//! The paper's experiments replay "a demo replay of original FAA streams";
//! this module provides that capability for our own captures — a workload
//! generated once (or recorded off a live cluster) can be saved and
//! replayed across machines and versions, making experiments portable
//! artifacts rather than in-memory accidents.
//!
//! Format: `MTRC` magic, a format version byte, then records of
//! `u64 time_us (LE) | u32 frame_len (LE) | frame bytes`, where the frame
//! bytes are the standard [`crate::wire`] encoding of a data frame.

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

use bytes::Bytes;

use mirror_core::event::Event;

use crate::transport::MAX_FRAME;
use crate::wire::{decode_frame, encode_frame, Frame};

/// File magic.
pub const TRACE_MAGIC: &[u8; 4] = b"MTRC";
/// Trace format version.
pub const TRACE_VERSION: u8 = 1;

/// Write a timed event stream to `w`.
pub fn write_trace<W: Write>(mut w: W, events: &[(u64, Event)]) -> io::Result<()> {
    w.write_all(TRACE_MAGIC)?;
    w.write_all(&[TRACE_VERSION])?;
    for (t, e) in events {
        let frame = encode_frame(&Frame::Data(std::sync::Arc::new(e.clone())));
        w.write_all(&t.to_le_bytes())?;
        w.write_all(&(frame.len() as u32).to_le_bytes())?;
        w.write_all(&frame)?;
    }
    Ok(())
}

/// Read a timed event stream from `r`.
pub fn read_trace<R: Read>(mut r: R) -> io::Result<Vec<(u64, Event)>> {
    let mut magic = [0u8; 5];
    r.read_exact(&mut magic)?;
    if &magic[..4] != TRACE_MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "not a trace file"));
    }
    if magic[4] != TRACE_VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported trace version {}", magic[4]),
        ));
    }
    let mut out = Vec::new();
    loop {
        // Distinguish clean end-of-trace (no bytes at a record boundary)
        // from a truncated record (some but not all of the time prefix).
        let mut first = [0u8; 1];
        if r.read(&mut first)? == 0 {
            break;
        }
        let mut t_buf = [0u8; 8];
        t_buf[0] = first[0];
        r.read_exact(&mut t_buf[1..])?;
        let mut len_buf = [0u8; 4];
        r.read_exact(&mut len_buf)?;
        let len = u32::from_le_bytes(len_buf);
        if len > MAX_FRAME {
            // A corrupt length prefix must not become an allocation bomb.
            return Err(io::Error::new(io::ErrorKind::InvalidData, "trace record length corrupt"));
        }
        let len = len as usize;
        let mut frame = vec![0u8; len];
        r.read_exact(&mut frame)?;
        match decode_frame(Bytes::from(frame)) {
            Ok(Frame::Data(e)) => out.push((
                u64::from_le_bytes(t_buf),
                std::sync::Arc::try_unwrap(e).unwrap_or_else(|a| (*a).clone()),
            )),
            Ok(_) => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "non-data frame in event trace",
                ))
            }
            Err(e) => return Err(io::Error::new(io::ErrorKind::InvalidData, e)),
        }
    }
    Ok(out)
}

/// Save a timed event stream to a file.
pub fn save(path: impl AsRef<Path>, events: &[(u64, Event)]) -> io::Result<()> {
    write_trace(BufWriter::new(File::create(path)?), events)
}

/// Load a timed event stream from a file.
pub fn load(path: impl AsRef<Path>) -> io::Result<Vec<(u64, Event)>> {
    read_trace(BufReader::new(File::open(path)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mirror_core::event::{FlightStatus, PositionFix};

    fn sample() -> Vec<(u64, Event)> {
        let fix = PositionFix {
            lat: 33.6,
            lon: -84.4,
            alt_ft: 30_000.0,
            speed_kts: 440.0,
            heading_deg: 270.0,
        };
        (1..=50u64)
            .map(|seq| {
                let mut e = if seq % 5 == 0 {
                    Event::delta_status(seq, (seq % 7) as u32, FlightStatus::EnRoute)
                } else {
                    Event::faa_position(seq, (seq % 7) as u32, fix)
                }
                .with_total_size(256 + (seq as usize % 128))
                .with_ingress_us(seq * 1000);
                e.stamp.advance(0, seq);
                e
            })
            .map(|e| (e.ingress_us, e))
            .collect()
    }

    #[test]
    fn roundtrip_in_memory() {
        let events = sample();
        let mut buf = Vec::new();
        write_trace(&mut buf, &events).unwrap();
        let back = read_trace(&buf[..]).unwrap();
        assert_eq!(back, events);
    }

    #[test]
    fn roundtrip_via_file() {
        let events = sample();
        let path = std::env::temp_dir().join(format!("mirror-trace-{}.mtrc", std::process::id()));
        save(&path, &events).unwrap();
        let back = load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(back, events);
    }

    #[test]
    fn rejects_bad_magic_and_version() {
        assert!(read_trace(&b"XXXX\x01"[..]).is_err());
        assert!(read_trace(&b"MTRC\x63"[..]).is_err());
    }

    #[test]
    fn rejects_truncated_record() {
        let events = sample();
        let mut buf = Vec::new();
        write_trace(&mut buf, &events).unwrap();
        for cut in [6, 10, buf.len() - 3] {
            assert!(read_trace(&buf[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn corrupt_length_prefix_is_rejected_not_allocated() {
        let mut buf = Vec::new();
        buf.extend_from_slice(TRACE_MAGIC);
        buf.push(TRACE_VERSION);
        buf.extend_from_slice(&42u64.to_le_bytes()); // time
        buf.extend_from_slice(&u32::MAX.to_le_bytes()); // absurd length
        let err = read_trace(&buf[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn empty_trace_is_valid() {
        let mut buf = Vec::new();
        write_trace(&mut buf, &[]).unwrap();
        assert_eq!(read_trace(&buf[..]).unwrap(), Vec::new());
    }
}
