//! A coherent operational day.
//!
//! The individual generators ([`crate::faa`], [`crate::delta`]) produce
//! structurally realistic but independent streams. A [`Scenario`] ties the
//! day together the way an airline's actually works: flights fly in
//! *banks*, aircraft *rotate* (the tail arriving as one flight departs as
//! another), passengers *connect* between banks, crews are assigned to
//! legs, and baggage is reconciled before departure. The scenario emits
//! one merged timed event stream plus the operational *plans* (rotations,
//! connections, crew assignments) a downstream operations monitor needs to
//! interpret it.
//!
//! Determinism: the same seed yields the same day, byte for byte.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use mirror_core::event::{streams, Event, EventBody, FlightId, FlightStatus, PositionFix};

use crate::TimedEvent;

/// A planned passenger connection (workload-level mirror of
/// `mirror_ede::ops::ConnectionPlan`, kept dependency-free).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlannedConnection {
    /// Connecting passenger group id.
    pub group: u32,
    /// Inbound flight.
    pub from: FlightId,
    /// Outbound flight.
    pub to: FlightId,
    /// Passengers in the group.
    pub passengers: u32,
}

/// A crew assignment: crew id, flight, duty start (µs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrewAssignment {
    /// Crew pairing id.
    pub crew: u32,
    /// Assigned flight.
    pub flight: FlightId,
    /// Duty start (µs).
    pub start_us: u64,
}

/// Scenario configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioConfig {
    /// Number of flight banks (waves of departures/arrivals).
    pub banks: u32,
    /// Flights per bank.
    pub flights_per_bank: u32,
    /// Duration of one bank (µs).
    pub bank_span_us: u64,
    /// Position fixes per flight.
    pub positions_per_flight: u32,
    /// Passengers per flight.
    pub passengers: u32,
    /// Checked bags per flight.
    pub bags: u32,
    /// Fraction (0–100) of second-bank flights whose inbound connection is
    /// *tight or missed* (the inbound arrives late).
    pub late_inbound_pct: u32,
    /// Target wire size per event.
    pub event_size: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            banks: 2,
            flights_per_bank: 10,
            bank_span_us: 4_000_000,
            positions_per_flight: 20,
            passengers: 150,
            bags: 80,
            late_inbound_pct: 20,
            event_size: 768,
            seed: 0xDA7,
        }
    }
}

/// A generated operational day.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Merged, time-ordered event stream (FAA + Delta interleaved).
    pub events: Vec<TimedEvent>,
    /// Tail rotations: (inbound flight, outbound flight).
    pub rotations: Vec<(FlightId, FlightId)>,
    /// Planned passenger connections between banks.
    pub connections: Vec<PlannedConnection>,
    /// Crew assignments.
    pub crews: Vec<CrewAssignment>,
    /// Total flights in the day.
    pub flights: u32,
    /// Flights whose inbound legs were deliberately late (ground truth for
    /// asserting the ops monitor's alerts).
    pub late_inbounds: Vec<FlightId>,
}

/// Generate a scenario.
pub fn generate(cfg: &ScenarioConfig) -> Scenario {
    assert!(cfg.banks >= 1 && cfg.flights_per_bank >= 1);
    assert!(cfg.bank_span_us >= 1_000, "bank_span_us must be at least 1ms");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut events: Vec<TimedEvent> = Vec::new();
    let mut faa_seq = 0u64;
    let mut delta_seq = 0u64;
    let mut rotations = Vec::new();
    let mut connections = Vec::new();
    let mut crews = Vec::new();
    let mut late_inbounds = Vec::new();

    let push_status = |events: &mut Vec<TimedEvent>,
                       delta_seq: &mut u64,
                       t: u64,
                       f: FlightId,
                       body: EventBody| {
        *delta_seq += 1;
        let e = Event::new(streams::DELTA, *delta_seq, f, body)
            .with_total_size(cfg.event_size)
            .with_ingress_us(t);
        events.push((t, e));
    };

    for bank in 0..cfg.banks {
        let bank_start = bank as u64 * cfg.bank_span_us;
        for i in 0..cfg.flights_per_bank {
            let flight: FlightId = bank * cfg.flights_per_bank + i;
            // Late inbounds: the flight's lifecycle stretches past its
            // bank, landing around (or after) its connecting outbound's
            // departure — putting the connection at risk.
            let late = bank + 1 < cfg.banks && rng.gen_range(0..100) < cfg.late_inbound_pct;
            if late {
                late_inbounds.push(flight);
            }
            let start = bank_start + rng.gen_range(0..cfg.bank_span_us / 20);
            let end = if late {
                bank_start + (cfg.bank_span_us as f64 * rng.gen_range(1.25..1.55)) as u64
            } else {
                bank_start + (cfg.bank_span_us as f64 * 0.95) as u64
            };
            let at = |frac: f64| start + ((end - start) as f64 * frac) as u64;

            // Crew on duty from boarding.
            crews.push(CrewAssignment { crew: 1000 + flight, flight, start_us: at(0.0) });

            push_status(
                &mut events,
                &mut delta_seq,
                at(0.00),
                flight,
                EventBody::Status(FlightStatus::Boarding),
            );
            push_status(
                &mut events,
                &mut delta_seq,
                at(0.04),
                flight,
                EventBody::Boarding { boarded: cfg.passengers / 2, expected: cfg.passengers },
            );
            push_status(
                &mut events,
                &mut delta_seq,
                at(0.08),
                flight,
                EventBody::Boarding { boarded: cfg.passengers, expected: cfg.passengers },
            );
            push_status(
                &mut events,
                &mut delta_seq,
                at(0.10),
                flight,
                EventBody::Baggage { loaded: cfg.bags, reconciled: cfg.bags },
            );
            push_status(
                &mut events,
                &mut delta_seq,
                at(0.12),
                flight,
                EventBody::Status(FlightStatus::Departed),
            );
            push_status(
                &mut events,
                &mut delta_seq,
                at(0.15),
                flight,
                EventBody::Status(FlightStatus::EnRoute),
            );
            // Cruise positions.
            for p in 0..cfg.positions_per_flight {
                faa_seq += 1;
                let frac = 0.15 + 0.65 * (p as f64 + 1.0) / cfg.positions_per_flight as f64;
                let t = at(frac);
                let fix = PositionFix {
                    lat: 25.0 + rng.gen_range(0.0..20.0),
                    lon: -120.0 + rng.gen_range(0.0..40.0),
                    alt_ft: 31_000.0 + rng.gen_range(-2000.0..2000.0),
                    speed_kts: 430.0 + rng.gen_range(-30.0..30.0),
                    heading_deg: rng.gen_range(0.0..360.0),
                };
                let e = Event::faa_position(faa_seq, flight, fix)
                    .with_total_size(cfg.event_size)
                    .with_ingress_us(t);
                events.push((t, e));
            }
            for (frac, s) in [
                (0.85, FlightStatus::Landed),
                (0.90, FlightStatus::AtRunway),
                (0.95, FlightStatus::AtGate),
            ] {
                push_status(&mut events, &mut delta_seq, at(frac), flight, EventBody::Status(s));
            }

            // Wiring to the next bank: the tail rotates onto the same slot,
            // and a passenger group connects.
            if bank + 1 < cfg.banks {
                let outbound = (bank + 1) * cfg.flights_per_bank + i;
                rotations.push((flight, outbound));
                connections.push(PlannedConnection {
                    group: 5000 + flight,
                    from: flight,
                    to: outbound,
                    passengers: rng.gen_range(4..25),
                });
            }
        }
    }

    // Order by time; renumber per-stream seqs to match arrival order.
    events.sort_by_key(|(t, e)| (*t, e.stream, e.seq));
    let mut faa_n = 0u64;
    let mut delta_n = 0u64;
    for (_, e) in events.iter_mut() {
        if e.stream == streams::FAA {
            faa_n += 1;
            e.seq = faa_n;
        } else {
            delta_n += 1;
            e.seq = delta_n;
        }
    }

    Scenario {
        events,
        rotations,
        connections,
        crews,
        flights: cfg.banks * cfg.flights_per_bank,
        late_inbounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let cfg = ScenarioConfig::default();
        assert_eq!(generate(&cfg), generate(&cfg));
        let other = generate(&ScenarioConfig { seed: 1, ..cfg });
        assert_ne!(generate(&ScenarioConfig::default()).events, other.events);
    }

    #[test]
    fn day_structure_is_complete() {
        let cfg = ScenarioConfig { banks: 3, flights_per_bank: 5, ..Default::default() };
        let s = generate(&cfg);
        assert_eq!(s.flights, 15);
        // Rotations/connections bridge every non-final bank slot.
        assert_eq!(s.rotations.len(), 10);
        assert_eq!(s.connections.len(), 10);
        assert_eq!(s.crews.len(), 15);
        // Every flight runs its full lifecycle.
        for f in 0..15u32 {
            let statuses: Vec<FlightStatus> = s
                .events
                .iter()
                .filter(|(_, e)| e.flight == f)
                .filter_map(|(_, e)| match &e.body {
                    EventBody::Status(st) => Some(*st),
                    _ => None,
                })
                .collect();
            assert_eq!(statuses.first(), Some(&FlightStatus::Boarding), "flight {f}");
            assert_eq!(statuses.last(), Some(&FlightStatus::AtGate), "flight {f}");
        }
    }

    #[test]
    fn stream_seqs_are_arrival_ordered_per_stream() {
        let s = generate(&ScenarioConfig::default());
        let mut last_faa = 0;
        let mut last_delta = 0;
        let mut last_t = 0;
        for (t, e) in &s.events {
            assert!(*t >= last_t);
            last_t = *t;
            if e.stream == streams::FAA {
                assert_eq!(e.seq, last_faa + 1);
                last_faa = e.seq;
            } else {
                assert_eq!(e.seq, last_delta + 1);
                last_delta = e.seq;
            }
        }
    }

    #[test]
    fn late_inbounds_land_into_the_next_bank() {
        let cfg = ScenarioConfig {
            banks: 2,
            flights_per_bank: 20,
            late_inbound_pct: 50,
            seed: 42,
            ..Default::default()
        };
        let s = generate(&cfg);
        assert!(!s.late_inbounds.is_empty(), "50% late rate must hit some flights");
        for &late in &s.late_inbounds {
            let landed_t = s
                .events
                .iter()
                .find(|(_, e)| {
                    e.flight == late && matches!(e.body, EventBody::Status(FlightStatus::Landed))
                })
                .map(|(t, _)| *t)
                .unwrap();
            assert!(
                landed_t > cfg.bank_span_us,
                "late inbound {late} landed at {landed_t}, within its own bank"
            );
        }
    }

    #[test]
    fn sizes_and_counts_add_up() {
        let cfg = ScenarioConfig { banks: 2, flights_per_bank: 4, ..Default::default() };
        let s = generate(&cfg);
        let per_flight_delta = 1 /*boarding*/ + 2 /*gate reader*/ + 1 /*bags*/
            + 2 /*departed, enroute*/ + 3 /*landing triple*/;
        let expected = 8 * (per_flight_delta + cfg.positions_per_flight as usize);
        assert_eq!(s.events.len(), expected);
        for (_, e) in &s.events {
            assert_eq!(e.wire_size(), cfg.event_size);
        }
    }
}
