//! # mirror-workload — synthetic streams and request loads
//!
//! The paper's experiments replay "a demo replay of original FAA streams"
//! containing flight-position entries, interleave Delta-internal status
//! events, and load the server with httperf-generated client requests. We
//! have neither the FAA capture nor httperf's environment; this crate
//! generates the equivalents:
//!
//! * [`faa`] — a seeded synthetic FAA position stream: per-flight great-
//!   circle-ish trajectories sampled at a configurable rate, padded to the
//!   experiment's target event size. What the experiments exploit is the
//!   stream's *structure* — many same-flight position events whose later
//!   entries supersede earlier ones — and the generator reproduces exactly
//!   that.
//! * [`delta`] — the Delta status stream: lifecycle transitions
//!   (boarding → departed → … → at gate) and gate-reader boarding records
//!   keyed to the same flights.
//! * [`requests`] — open-loop client-request arrival schedules mirroring
//!   httperf's constant-rate mode, plus the bursty on/off pattern of §4.3
//!   and a "terminal power-up" recovery storm.
//! * [`scenario`] — a coherent *operational day*: banks of flights with
//!   tail rotations, passenger connections, crew assignments and baggage
//!   reconciliation, plus the plans a downstream operations monitor needs.
//!
//! All generators are deterministic given a seed ([`rand`] with a fixed
//! PCG-family generator), so every figure regenerates bit-identically.

#![warn(missing_docs)]

pub mod delta;
pub mod faa;
pub mod requests;
pub mod scenario;

pub use delta::DeltaStreamConfig;
pub use faa::FaaStreamConfig;
pub use requests::{RequestPattern, RequestSchedule};
pub use scenario::{Scenario, ScenarioConfig};

use mirror_core::event::Event;

/// A timed arrival: (virtual time µs, event).
pub type TimedEvent = (u64, Event);

/// Merge several event schedules into one, ordered by time (stable across
/// inputs: ties preserve the input ordering faa-before-delta as listed).
pub fn merge_schedules(mut schedules: Vec<Vec<TimedEvent>>) -> Vec<TimedEvent> {
    let mut out: Vec<TimedEvent> = schedules.drain(..).flatten().collect();
    out.sort_by_key(|(t, e)| (*t, e.stream, e.seq));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mirror_core::event::FlightStatus;

    #[test]
    fn merge_orders_by_time_then_stream() {
        let a = vec![(5, Event::faa_position(1, 1, faa::cruise_fix()))];
        let b = vec![
            (5, Event::delta_status(1, 1, FlightStatus::Boarding)),
            (1, Event::delta_status(2, 1, FlightStatus::Departed)),
        ];
        let merged = merge_schedules(vec![a, b]);
        assert_eq!(merged.len(), 3);
        assert_eq!(merged[0].0, 1);
        assert_eq!(merged[1].1.stream, 0, "FAA (stream 0) before Delta on tie");
    }
}
