//! Synthetic Delta-internal status stream.
//!
//! Gate readers, crew systems and ground operations produce the second
//! event stream of §3.3: lifecycle status transitions and passenger
//! boarding records for the same flights the FAA stream tracks. Each
//! flight's events are laid out over its share of the run: boarding
//! records early, then departure, then the landing / at-runway / at-gate
//! triple near the end — the sequence the paper's complex-tuple rule
//! collapses into `flight arrived`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use mirror_core::event::{streams, Event, EventBody, FlightId, FlightStatus};

use crate::TimedEvent;

/// Configuration of the synthetic Delta stream.
#[derive(Debug, Clone, PartialEq)]
pub struct DeltaStreamConfig {
    /// Number of flights (should match the FAA stream's universe).
    pub flights: u32,
    /// First flight id.
    pub first_flight: FlightId,
    /// Duration over which flight lifecycles are spread (µs).
    pub span_us: u64,
    /// Boarding (gate-reader) records per flight before departure.
    pub boarding_records: u32,
    /// Passengers per flight.
    pub passengers: u32,
    /// Checked bags per flight (baggage reconciliation reports accompany
    /// boarding; the final report reconciles everything — departures are
    /// clean unless a scenario injects a mismatch).
    pub bags: u32,
    /// Target total wire size per event.
    pub event_size: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DeltaStreamConfig {
    fn default() -> Self {
        DeltaStreamConfig {
            flights: 100,
            first_flight: 0,
            span_us: 14_000_000,
            boarding_records: 4,
            passengers: 160,
            bags: 90,
            event_size: 512,
            seed: 0xDE17A,
        }
    }
}

/// Generate the Delta stream arrival schedule.
pub fn generate(cfg: &DeltaStreamConfig) -> Vec<TimedEvent> {
    assert!(cfg.flights > 0);
    assert!(cfg.span_us >= 1_000, "span_us must be at least 1ms");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut out: Vec<TimedEvent> = Vec::new();
    let mut seq = 0u64;
    let push =
        |out: &mut Vec<TimedEvent>, seq: &mut u64, t: u64, flight: FlightId, body: EventBody| {
            *seq += 1;
            let ev = Event::new(streams::DELTA, *seq, flight, body)
                .with_total_size(cfg.event_size)
                .with_ingress_us(t);
            out.push((t, ev));
        };

    for i in 0..cfg.flights {
        let flight = cfg.first_flight + i;
        // Each flight's lifecycle occupies a random sub-window of the span.
        let start = rng.gen_range(0..cfg.span_us / 4);
        let end = rng.gen_range(cfg.span_us * 3 / 4..cfg.span_us);
        let at = |frac: f64| start + ((end - start) as f64 * frac) as u64;

        push(&mut out, &mut seq, at(0.00), flight, EventBody::Status(FlightStatus::Boarding));
        for b in 1..=cfg.boarding_records {
            let boarded = cfg.passengers * b / cfg.boarding_records;
            push(
                &mut out,
                &mut seq,
                at(0.02 + 0.10 * b as f64 / cfg.boarding_records as f64),
                flight,
                EventBody::Boarding { boarded, expected: cfg.passengers },
            );
        }
        if cfg.bags > 0 {
            push(
                &mut out,
                &mut seq,
                at(0.12),
                flight,
                EventBody::Baggage { loaded: cfg.bags, reconciled: cfg.bags / 2 },
            );
            push(
                &mut out,
                &mut seq,
                at(0.14),
                flight,
                EventBody::Baggage { loaded: cfg.bags, reconciled: cfg.bags },
            );
        }
        push(&mut out, &mut seq, at(0.15), flight, EventBody::Status(FlightStatus::Departed));
        push(&mut out, &mut seq, at(0.20), flight, EventBody::Status(FlightStatus::EnRoute));
        push(&mut out, &mut seq, at(0.85), flight, EventBody::Status(FlightStatus::Landed));
        push(&mut out, &mut seq, at(0.90), flight, EventBody::Status(FlightStatus::AtRunway));
        push(&mut out, &mut seq, at(0.95), flight, EventBody::Status(FlightStatus::AtGate));
    }
    // Stream events must arrive in seq order within the stream; sort by
    // time but renumber so seq follows arrival order.
    out.sort_by_key(|(t, e)| (*t, e.seq));
    for (i, (_, e)) in out.iter_mut().enumerate() {
        e.seq = i as u64 + 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let cfg = DeltaStreamConfig { flights: 20, ..Default::default() };
        assert_eq!(generate(&cfg), generate(&cfg));
    }

    #[test]
    fn per_flight_lifecycle_is_ordered_and_complete() {
        let cfg = DeltaStreamConfig { flights: 5, ..Default::default() };
        let evs = generate(&cfg);
        for f in 0..5u32 {
            let statuses: Vec<FlightStatus> = evs
                .iter()
                .filter(|(_, e)| e.flight == f)
                .filter_map(|(_, e)| match &e.body {
                    EventBody::Status(s) => Some(*s),
                    _ => None,
                })
                .collect();
            assert_eq!(
                statuses,
                vec![
                    FlightStatus::Boarding,
                    FlightStatus::Departed,
                    FlightStatus::EnRoute,
                    FlightStatus::Landed,
                    FlightStatus::AtRunway,
                    FlightStatus::AtGate,
                ],
                "flight {f}"
            );
        }
    }

    #[test]
    fn boarding_reaches_full_count() {
        let cfg = DeltaStreamConfig { flights: 3, passengers: 120, ..Default::default() };
        let evs = generate(&cfg);
        for f in 0..3u32 {
            let max_boarded = evs
                .iter()
                .filter(|(_, e)| e.flight == f)
                .filter_map(|(_, e)| match &e.body {
                    EventBody::Boarding { boarded, .. } => Some(*boarded),
                    _ => None,
                })
                .max()
                .unwrap();
            assert_eq!(max_boarded, 120);
        }
    }

    #[test]
    fn baggage_reports_precede_departure_and_reconcile() {
        let cfg = DeltaStreamConfig { flights: 4, bags: 60, ..Default::default() };
        let evs = generate(&cfg);
        for f in 0..4u32 {
            let flight_events: Vec<&EventBody> =
                evs.iter().filter(|(_, e)| e.flight == f).map(|(_, e)| &e.body).collect();
            let bag_idx: Vec<usize> = flight_events
                .iter()
                .enumerate()
                .filter(|(_, b)| matches!(b, EventBody::Baggage { .. }))
                .map(|(i, _)| i)
                .collect();
            let departed_idx = flight_events
                .iter()
                .position(|b| matches!(b, EventBody::Status(FlightStatus::Departed)))
                .unwrap();
            assert_eq!(bag_idx.len(), 2, "flight {f}");
            assert!(bag_idx.iter().all(|&i| i < departed_idx), "bags before departure");
            // The final report reconciles everything.
            match flight_events[bag_idx[1]] {
                EventBody::Baggage { loaded, reconciled } => assert_eq!(loaded, reconciled),
                _ => unreachable!(),
            }
        }
    }

    #[test]
    fn seqs_follow_arrival_order() {
        let evs = generate(&DeltaStreamConfig::default());
        for (i, w) in evs.windows(2).enumerate() {
            assert!(w[0].0 <= w[1].0, "time order at {i}");
            assert!(w[0].1.seq < w[1].1.seq, "seq order at {i}");
        }
        assert_eq!(evs[0].1.seq, 1);
    }

    #[test]
    fn events_fit_within_span() {
        let cfg = DeltaStreamConfig { span_us: 5_000_000, ..Default::default() };
        let evs = generate(&cfg);
        assert!(evs.iter().all(|(t, _)| *t <= 5_000_000));
    }
}
