//! Client request-load generation.
//!
//! The paper drives its servers with httperf 0.8 at fixed request rates
//! (Figures 6–8) and with a "bursty clients requests pattern" for the
//! adaptation experiment (Figure 9). Requests here are *initial-state*
//! requests — the dominant, expensive kind (thin-client recovery). The
//! generator is open-loop: arrival times are fixed in advance, exactly like
//! httperf's constant-rate mode, so an overloaded server accumulates
//! backlog instead of silently throttling the load.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One client request arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Arrival time (µs).
    pub at_us: u64,
    /// Request id (unique per schedule).
    pub id: u64,
}

/// The shape of the request arrival process.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RequestPattern {
    /// No client requests.
    None,
    /// httperf-style constant rate.
    Constant {
        /// Requests per second.
        rate: f64,
    },
    /// On/off bursts: `base` req/s normally, `peak` req/s during bursts of
    /// `burst_us` every `period_us` (§4.3's bursty pattern).
    Bursty {
        /// Background rate (req/s).
        base: f64,
        /// Rate during a burst (req/s).
        peak: f64,
        /// Burst duration (µs).
        burst_us: u64,
        /// Burst period (µs).
        period_us: u64,
    },
    /// A recovery storm: `count` simultaneous initializations (an airport
    /// terminal powering back up) spread over `spread_us` starting at `at_us`.
    RecoveryStorm {
        /// Storm start (µs).
        at_us: u64,
        /// Number of thin clients re-initializing.
        count: u32,
        /// Arrival spread (µs).
        spread_us: u64,
    },
}

/// A generated request schedule.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RequestSchedule {
    /// Arrivals in non-decreasing time order.
    pub requests: Vec<Request>,
}

impl RequestSchedule {
    /// Generate the schedule for `pattern` over `[0, horizon_us)`.
    pub fn generate(pattern: RequestPattern, horizon_us: u64, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut requests = Vec::new();
        let mut id = 0u64;
        let push = |requests: &mut Vec<Request>, id: &mut u64, at_us: u64| {
            *id += 1;
            requests.push(Request { at_us, id: *id });
        };
        match pattern {
            RequestPattern::None => {}
            RequestPattern::Constant { rate } => {
                assert!(rate.is_finite() && rate >= 0.0, "rate must be finite and non-negative");
                if rate > 0.0 {
                    let inter = 1_000_000.0 / rate;
                    let mut t = 0.0;
                    while (t as u64) < horizon_us {
                        // Small deterministic jitter keeps arrivals aperiodic.
                        t += inter * rng.gen_range(0.8..1.2);
                        if (t as u64) < horizon_us {
                            push(&mut requests, &mut id, t as u64);
                        }
                    }
                }
            }
            RequestPattern::Bursty { base, peak, burst_us, period_us } => {
                assert!(period_us > 0 && burst_us <= period_us, "burst must fit in period");
                assert!(
                    base.is_finite() && peak.is_finite() && base >= 0.0 && peak >= 0.0,
                    "rates must be finite and non-negative"
                );
                let mut t = 0.0f64;
                loop {
                    let now = t as u64;
                    if now >= horizon_us {
                        break;
                    }
                    let phase = now % period_us;
                    let in_burst = phase < burst_us;
                    let rate = if in_burst { peak } else { base };
                    let phase_end = now - phase + if in_burst { burst_us } else { period_us };
                    if rate <= 0.0 {
                        t = phase_end as f64;
                        continue;
                    }
                    t += (1_000_000.0 / rate) * rng.gen_range(0.8..1.2);
                    if t as u64 >= phase_end {
                        // The next arrival would fall in a different-rate
                        // phase: re-evaluate from the boundary instead of
                        // leaking this phase's rate across it.
                        t = phase_end as f64;
                        continue;
                    }
                    if (t as u64) < horizon_us {
                        push(&mut requests, &mut id, t as u64);
                    }
                }
            }
            RequestPattern::RecoveryStorm { at_us, count, spread_us } => {
                for _ in 0..count {
                    let t = at_us + rng.gen_range(0..=spread_us);
                    push(&mut requests, &mut id, t);
                }
                requests.sort_by_key(|r| r.at_us);
            }
        }
        RequestSchedule { requests }
    }

    /// Number of requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// True when the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Partition arrivals round-robin across `n` sites (the paper's
    /// "request load evenly distributed across mirror sites").
    pub fn balance_across(&self, n: usize) -> Vec<Vec<Request>> {
        assert!(n > 0);
        let mut out = vec![Vec::new(); n];
        for (i, r) in self.requests.iter().enumerate() {
            out[i % n].push(*r);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_rate_hits_target_count() {
        let s = RequestSchedule::generate(RequestPattern::Constant { rate: 100.0 }, 10_000_000, 1);
        // 100 req/s over 10s ≈ 1000 (±jitter).
        assert!((900..=1100).contains(&s.len()), "{}", s.len());
        for w in s.requests.windows(2) {
            assert!(w[0].at_us <= w[1].at_us);
        }
    }

    #[test]
    fn zero_rate_and_none_are_empty() {
        assert!(RequestSchedule::generate(RequestPattern::Constant { rate: 0.0 }, 1_000_000, 1)
            .is_empty());
        assert!(RequestSchedule::generate(RequestPattern::None, 1_000_000, 1).is_empty());
    }

    #[test]
    fn bursty_pattern_concentrates_arrivals() {
        let s = RequestSchedule::generate(
            RequestPattern::Bursty {
                base: 10.0,
                peak: 400.0,
                burst_us: 1_000_000,
                period_us: 5_000_000,
            },
            15_000_000,
            42,
        );
        let in_burst = s.requests.iter().filter(|r| r.at_us % 5_000_000 < 1_000_000).count();
        let off_burst = s.len() - in_burst;
        assert!(in_burst > 3 * off_burst, "bursts must dominate: {in_burst} vs {off_burst}");
    }

    #[test]
    fn bursty_with_zero_base_still_bursts() {
        let s = RequestSchedule::generate(
            RequestPattern::Bursty {
                base: 0.0,
                peak: 100.0,
                burst_us: 500_000,
                period_us: 2_000_000,
            },
            8_000_000,
            7,
        );
        assert!(!s.is_empty());
        assert!(s.requests.iter().all(|r| r.at_us % 2_000_000 < 500_000));
    }

    #[test]
    fn recovery_storm_is_tight_and_complete() {
        let s = RequestSchedule::generate(
            RequestPattern::RecoveryStorm { at_us: 5_000_000, count: 250, spread_us: 100_000 },
            20_000_000,
            9,
        );
        assert_eq!(s.len(), 250);
        assert!(s.requests.iter().all(|r| (5_000_000..=5_100_000).contains(&r.at_us)));
    }

    #[test]
    fn balance_across_distributes_evenly() {
        let s = RequestSchedule::generate(RequestPattern::Constant { rate: 100.0 }, 4_000_000, 3);
        let parts = s.balance_across(4);
        let sizes: Vec<usize> = parts.iter().map(|p| p.len()).collect();
        let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
        assert!(max - min <= 1, "{sizes:?}");
        let total: usize = sizes.iter().sum();
        assert_eq!(total, s.len());
    }

    #[test]
    fn deterministic_given_seed() {
        let p = RequestPattern::Constant { rate: 50.0 };
        assert_eq!(
            RequestSchedule::generate(p, 1_000_000, 5),
            RequestSchedule::generate(p, 1_000_000, 5)
        );
    }
}
