//! Synthetic FAA flight-position stream.
//!
//! Each flight follows a simple kinematic trajectory (origin, heading,
//! cruise altitude with climb/descent phases); fixes are emitted round-robin
//! across active flights at a configurable aggregate rate. Later fixes for
//! a flight supersede earlier ones — the property the paper's overwrite
//! and coalescing rules exploit.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use mirror_core::event::{Event, FlightId, PositionFix};

use crate::TimedEvent;

/// Configuration of the synthetic FAA stream.
#[derive(Debug, Clone, PartialEq)]
pub struct FaaStreamConfig {
    /// Number of concurrently tracked flights.
    pub flights: u32,
    /// Total position events to emit.
    pub total_events: u64,
    /// Aggregate arrival rate (events/second).
    pub events_per_sec: f64,
    /// Target total wire size per event (padding added to reach it).
    pub event_size: usize,
    /// RNG seed (same seed ⇒ identical stream).
    pub seed: u64,
    /// First flight id to use (lets FAA/Delta share a flight universe).
    pub first_flight: FlightId,
}

impl Default for FaaStreamConfig {
    fn default() -> Self {
        FaaStreamConfig {
            flights: 100,
            total_events: 10_000,
            events_per_sec: 700.0,
            event_size: 1000,
            seed: 0xFAA,
            first_flight: 0,
        }
    }
}

/// A representative cruise fix (used by tests across the workspace).
pub fn cruise_fix() -> PositionFix {
    PositionFix { lat: 33.64, lon: -84.43, alt_ft: 33000.0, speed_kts: 460.0, heading_deg: 75.0 }
}

/// Per-flight kinematic state.
#[derive(Debug, Clone, Copy)]
struct Trajectory {
    lat: f64,
    lon: f64,
    alt_ft: f64,
    speed_kts: f64,
    heading_deg: f64,
    climb_fpm: f64,
}

impl Trajectory {
    fn sample(rng: &mut StdRng) -> Self {
        Trajectory {
            lat: rng.gen_range(24.0..49.0),
            lon: rng.gen_range(-125.0..-67.0),
            alt_ft: rng.gen_range(2_000.0..12_000.0),
            speed_kts: rng.gen_range(280.0..520.0),
            heading_deg: rng.gen_range(0.0..360.0),
            climb_fpm: rng.gen_range(500.0..2500.0),
        }
    }

    /// Advance by `dt_s` seconds of flight.
    fn advance(&mut self, dt_s: f64) {
        let dist_nm = self.speed_kts * dt_s / 3600.0;
        let rad = self.heading_deg.to_radians();
        self.lat += dist_nm * rad.cos() / 60.0;
        self.lon += dist_nm * rad.sin() / (60.0 * self.lat.to_radians().cos().abs().max(0.2));
        // Climb toward cruise, then hold.
        if self.alt_ft < 33_000.0 {
            self.alt_ft = (self.alt_ft + self.climb_fpm * dt_s / 60.0).min(33_000.0);
        }
    }

    fn fix(&self) -> PositionFix {
        PositionFix {
            lat: self.lat,
            lon: self.lon,
            alt_ft: self.alt_ft,
            speed_kts: self.speed_kts,
            heading_deg: self.heading_deg,
        }
    }
}

/// Generate the arrival schedule for the configured stream.
pub fn generate(cfg: &FaaStreamConfig) -> Vec<TimedEvent> {
    assert!(cfg.flights > 0, "need at least one flight");
    assert!(cfg.events_per_sec > 0.0, "rate must be positive");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut trajectories: Vec<Trajectory> =
        (0..cfg.flights).map(|_| Trajectory::sample(&mut rng)).collect();
    let mut last_emit_us = vec![0u64; cfg.flights as usize];

    let inter_us = 1_000_000.0 / cfg.events_per_sec;
    let mut out = Vec::with_capacity(cfg.total_events as usize);
    let mut t = 0.0f64;
    for seq in 1..=cfg.total_events {
        // Exponential-ish jitter around the nominal inter-arrival keeps
        // arrivals aperiodic without changing the aggregate rate.
        t += inter_us * rng.gen_range(0.5..1.5);
        let now = t as u64;
        let idx = (seq as usize - 1) % cfg.flights as usize;
        let dt_s = (now - last_emit_us[idx]) as f64 / 1_000_000.0;
        last_emit_us[idx] = now;
        trajectories[idx].advance(dt_s * 60.0); // compress: 1 sim-sec ≈ 1 min of flight
        let flight = cfg.first_flight + idx as FlightId;
        let ev = Event::faa_position(seq, flight, trajectories[idx].fix())
            .with_total_size(cfg.event_size)
            .with_ingress_us(now);
        out.push((now, ev));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let cfg = FaaStreamConfig { total_events: 500, ..Default::default() };
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a, b);
        let c = generate(&FaaStreamConfig { seed: 1, ..cfg });
        assert_ne!(a, c);
    }

    #[test]
    fn respects_count_size_and_rate() {
        let cfg = FaaStreamConfig {
            total_events: 1000,
            events_per_sec: 500.0,
            event_size: 2048,
            ..Default::default()
        };
        let evs = generate(&cfg);
        assert_eq!(evs.len(), 1000);
        for (t, e) in &evs {
            assert_eq!(e.wire_size(), 2048);
            assert_eq!(e.ingress_us, *t);
        }
        // 1000 events at 500/s ≈ 2s of arrivals (±jitter).
        let span = evs.last().unwrap().0 - evs.first().unwrap().0;
        assert!((1_500_000..=2_500_000).contains(&span), "span {span}");
    }

    #[test]
    fn arrival_times_are_nondecreasing_and_seqs_unique() {
        let evs = generate(&FaaStreamConfig { total_events: 300, ..Default::default() });
        for w in evs.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1.seq < w[1].1.seq);
        }
    }

    #[test]
    fn flights_cycle_round_robin() {
        let cfg = FaaStreamConfig { flights: 7, total_events: 70, ..Default::default() };
        let evs = generate(&cfg);
        for (i, (_, e)) in evs.iter().enumerate() {
            assert_eq!(e.flight, (i % 7) as u32);
        }
    }

    #[test]
    fn positions_evolve_over_time() {
        let cfg = FaaStreamConfig { flights: 1, total_events: 50, ..Default::default() };
        let evs = generate(&cfg);
        let first = match &evs.first().unwrap().1.body {
            mirror_core::event::EventBody::Position(p) => *p,
            _ => panic!(),
        };
        let last = match &evs.last().unwrap().1.body {
            mirror_core::event::EventBody::Position(p) => *p,
            _ => panic!(),
        };
        assert!(first.lat != last.lat || first.lon != last.lon, "flight must move");
    }
}
