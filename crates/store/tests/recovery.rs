//! Crash-recovery property tests for the durable event log.
//!
//! The acceptance property: truncating a log segment at an *arbitrary* byte
//! offset (simulating a crash mid-write, a torn page, or a partial flush)
//! and reopening must recover exactly the durable prefix — every frame whose
//! bytes fully survive, and nothing after the cut.

use std::fs::{self, OpenOptions};
use std::path::PathBuf;
use std::sync::Arc;

use proptest::prelude::*;

use mirror_core::event::{Event, PositionFix};
use mirror_core::timestamp::VectorTimestamp;
use mirror_echo::wire::{encode_frame, Frame};
use mirror_store::{EventLog, FsyncPolicy, LogConfig};

fn test_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("mirror-store-prop-{}-{}", std::process::id(), tag));
    let _ = fs::remove_dir_all(&d);
    d
}

fn event(seq: u64) -> Arc<Event> {
    let mut e = Event::faa_position(
        seq,
        (seq % 6) as u32,
        PositionFix {
            lat: (seq as f64).sin(),
            lon: (seq as f64).cos(),
            alt_ft: 1000.0 + seq as f64,
            speed_kts: 300.0,
            heading_deg: 90.0,
        },
    );
    let mut st = VectorTimestamp::new(2);
    st.advance(0, seq);
    e.stamp = st;
    Arc::new(e)
}

/// Write `n` events into a single-segment log and return the byte offset at
/// which each frame *ends* (frame i fully durable iff file length >= ends[i]).
fn write_log(dir: &PathBuf, n: u64) -> Vec<u64> {
    let cfg = LogConfig { fsync: FsyncPolicy::OnCommit, segment_bytes: u64::MAX };
    let mut log = EventLog::open(dir, cfg).unwrap();
    let mut ends = Vec::new();
    let mut running = 0u64;
    for i in 1..=n {
        let wire = encode_frame(&Frame::Data(event(i)));
        log.append(i, &wire).unwrap();
        running += 8 + 8 + wire.len() as u64; // header + idx + frame bytes
        ends.push(running);
    }
    log.sync().unwrap();
    ends
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Truncate the segment at an arbitrary offset; reopening must yield
    /// exactly the frames that ended at or before the cut.
    #[test]
    fn truncation_recovers_exactly_the_durable_prefix(
        n in 1u64..40,
        cut_frac in 0.0f64..1.0,
    ) {
        let dir = test_dir(&format!("trunc-{n}-{}", (cut_frac * 1e6) as u64));
        let ends = write_log(&dir, n);
        let total = *ends.last().unwrap();
        let cut = (total as f64 * cut_frac) as u64;

        // Single segment: first frame has idx 1, so the file is wal-…1.seg.
        let seg = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .find(|p| p.extension().is_some_and(|x| x == "seg"))
            .expect("segment file exists");
        OpenOptions::new().write(true).open(&seg).unwrap().set_len(cut).unwrap();

        let expected: Vec<u64> = ends
            .iter()
            .enumerate()
            .filter(|(_, &end)| end <= cut)
            .map(|(i, _)| (i + 1) as u64)
            .collect();

        let mut log = EventLog::open(&dir, LogConfig::default()).unwrap();
        let got: Vec<u64> = log.replay_from(0).unwrap().iter().map(|(i, _)| *i).collect();
        prop_assert_eq!(&got, &expected, "cut at {} of {}", cut, total);
        prop_assert_eq!(log.last_idx(), expected.last().copied());

        // The recovered log must accept further appends and replay them.
        drop(log);
        let mut log = EventLog::open(&dir, LogConfig::default()).unwrap();
        let next = expected.last().copied().unwrap_or(0) + 1;
        let wire = encode_frame(&Frame::Data(event(next)));
        log.append(next, &wire).unwrap();
        log.sync().unwrap();
        let after: Vec<u64> = log.replay_from(0).unwrap().iter().map(|(i, _)| *i).collect();
        let mut want = expected.clone();
        want.push(next);
        prop_assert_eq!(after, want);

        fs::remove_dir_all(&dir).unwrap();
    }

    /// Corrupting one byte anywhere in the file must never surface bogus
    /// frames: recovery yields a prefix of what was written (frames before
    /// the corrupted one), never altered payloads.
    #[test]
    fn single_byte_corruption_yields_a_clean_prefix(
        n in 2u64..30,
        pos_frac in 0.0f64..1.0,
    ) {
        let dir = test_dir(&format!("flip-{n}-{}", (pos_frac * 1e6) as u64));
        let ends = write_log(&dir, n);
        let total = *ends.last().unwrap();
        let pos = ((total.saturating_sub(1)) as f64 * pos_frac) as usize;

        let seg = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .find(|p| p.extension().is_some_and(|x| x == "seg"))
            .unwrap();
        let mut bytes = fs::read(&seg).unwrap();
        bytes[pos] ^= 0xA5;
        fs::write(&seg, &bytes).unwrap();

        // The corrupted byte lives in frame k (first frame whose end is
        // beyond pos); frames before k must survive intact.
        let k = ends.iter().position(|&end| (pos as u64) < end).unwrap();

        let mut log = EventLog::open(&dir, LogConfig::default()).unwrap();
        let got = log.replay_from(0).unwrap();
        // Everything strictly before the corrupted frame survives…
        prop_assert!(got.len() >= k, "lost intact frames before the corruption");
        // …and whatever is recovered is a prefix with intact contents.
        for (j, (idx, ev)) in got.iter().enumerate() {
            prop_assert_eq!(*idx, (j + 1) as u64);
            prop_assert_eq!(ev.stamp.get(0), *idx);
        }

        fs::remove_dir_all(&dir).unwrap();
    }
}

/// Multi-segment variant: the cut may land in the middle segment, in which
/// case the whole later segment must be discarded too.
#[test]
fn truncation_in_middle_segment_discards_later_segments() {
    let dir = test_dir("midseg");
    let cfg = LogConfig { fsync: FsyncPolicy::OnCommit, segment_bytes: 200 };
    let mut log = EventLog::open(&dir, cfg).unwrap();
    for i in 1..=30u64 {
        let wire = encode_frame(&Frame::Data(event(i)));
        log.append(i, &wire).unwrap();
    }
    log.sync().unwrap();
    assert!(log.segment_count() >= 3, "need at least three segments");
    drop(log);

    // Chop the second segment in half.
    let mut segs: Vec<PathBuf> = fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "seg"))
        .collect();
    segs.sort();
    let victim = &segs[1];
    let len = fs::metadata(victim).unwrap().len();
    OpenOptions::new().write(true).open(victim).unwrap().set_len(len / 2).unwrap();

    let mut log = EventLog::open(&dir, cfg).unwrap();
    let got: Vec<u64> = log.replay_from(0).unwrap().iter().map(|(i, _)| *i).collect();
    assert!(!got.is_empty());
    // Contiguous prefix starting at 1, ending before segment 3's first idx.
    for (j, idx) in got.iter().enumerate() {
        assert_eq!(*idx, (j + 1) as u64);
    }
    assert!(*got.last().unwrap() < 30, "frames past the cut must not survive");
    fs::remove_dir_all(&dir).unwrap();
}
