//! # mirror-store — durable event log + snapshot persistence
//!
//! The paper's protocol ("Adaptable Mirroring in Cluster Servers") assumes
//! sites never lose state: events are retained in the in-memory
//! `BackupQueue` only until the next checkpoint commit, so the runtime can
//! heal outages shorter than one commit interval but nothing longer, and a
//! cold mirror start needs a live snapshot from the central EDE. This crate
//! closes that gap with the standard durability discipline of recoverable
//! replication middleware:
//!
//! - [`log::EventLog`] — a segmented append-only write-ahead log. The
//!   central sending task journals each `(send_idx, event)` as it enters
//!   the backup queue, reusing the `SharedEvent` cached wire encoding so a
//!   journal entry costs one `write`, not a second encode. Checkpoint
//!   commit advances a durable truncation watermark (the on-disk twin of
//!   `BackupQueue::prune`) and garbage-collects whole segments below it.
//! - [`snapshot::SnapshotStore`] — atomic, checksummed persistence for EDE
//!   snapshots, giving recovery a bounded replay suffix.
//! - [`recover`] — cold-start recovery: load the snapshot (if any), replay
//!   the retained log suffix on top, and return the reconstructed
//!   operational state plus its checkpoint frontier. Over-replay is safe:
//!   the EDE's per-flight guards (monotone position sequence numbers,
//!   status-regression rejection, monotone counters) absorb stale events,
//!   so replaying from before the snapshot converges to the same state
//!   hash as live peers.
//!
//! Everything is `std::fs` only — no new dependencies.

pub mod crc;
pub mod log;
pub mod snapshot;

pub use crate::log::{EventLog, FsyncPolicy, LogConfig};
pub use crate::snapshot::{PersistedSnapshot, SnapshotStore};

use std::io;
use std::path::Path;
use std::sync::Arc;

use mirror_core::event::Event;
use mirror_core::timestamp::VectorTimestamp;
use mirror_ede::state::OperationalState;

/// The result of [`recover`]: reconstructed state plus replay bookkeeping.
#[derive(Debug)]
pub struct Recovered {
    /// EDE state after snapshot restore + log replay.
    pub state: OperationalState,
    /// Checkpoint frontier: the snapshot's `as_of` merged with the stamps
    /// of every replayed event. Suitable for seeding a rejoining mirror.
    pub frontier: VectorTimestamp,
    /// Number of log entries replayed on top of the snapshot.
    pub replayed: usize,
    /// Highest send index replayed, if the log held any entries.
    pub last_replayed_idx: Option<u64>,
}

/// Rebuild EDE state from a store directory: snapshot (if present and
/// intact) plus a full replay of the retained log suffix.
///
/// **Requires exclusive access to `dir`.** [`EventLog::open`] runs
/// destructive crash repair (truncating torn tails, deleting segments past
/// a hole); running it on a directory a live `EventLog` is still appending
/// to can truncate the live writer's active segment out from under it and
/// permanently corrupt the log. An embedding that holds a live log must
/// recover *through* it (replay under its lock, e.g. the runtime's
/// `Journal::recover`) and call [`rebuild`] on the result instead.
///
/// The entire retained log is replayed, not just the part after the
/// snapshot's frontier — computing the exact cut would need a per-entry
/// stamp comparison, and the EDE's idempotent guards make over-replay free
/// of harm. A torn/corrupt snapshot reads as absent and recovery degrades
/// to pure log replay.
pub fn recover(dir: impl AsRef<Path>) -> io::Result<Recovered> {
    let dir = dir.as_ref();
    let snapshot = SnapshotStore::open(dir)?.load()?;
    let mut log = EventLog::open(dir, LogConfig::default())?;
    let entries = log.replay_from(0)?;
    Ok(rebuild(snapshot, entries))
}

/// Assemble recovered state from already-loaded pieces: restore `snapshot`
/// (if any), then replay `entries` on top. Pure in-memory — no file access
/// — so it composes with any way of obtaining the log suffix, in
/// particular a replay served by a live, lock-protected log.
pub fn rebuild(snapshot: Option<PersistedSnapshot>, entries: Vec<(u64, Arc<Event>)>) -> Recovered {
    let (mut state, mut frontier) = match snapshot {
        Some(snap) => {
            let as_of = snap.as_of.clone();
            (snap.into_state(), as_of)
        }
        None => (OperationalState::new(), VectorTimestamp::empty()),
    };
    let replayed = entries.len();
    let mut last_replayed_idx = None;
    for (idx, ev) in entries {
        state.apply(&ev);
        frontier.merge(&ev.stamp);
        last_replayed_idx = Some(idx);
    }
    Recovered { state, frontier, replayed, last_replayed_idx }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;
    use std::sync::Arc;

    use mirror_core::event::{Event, PositionFix};
    use mirror_echo::wire::{encode_frame, Frame};

    fn test_dir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("mirror-recover-{}-{}", std::process::id(), tag));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn event(seq: u64) -> Arc<Event> {
        let mut e = Event::faa_position(
            seq,
            (seq % 4) as u32,
            PositionFix {
                lat: seq as f64,
                lon: 0.5,
                alt_ft: 31000.0,
                speed_kts: 420.0,
                heading_deg: 90.0,
            },
        );
        let mut st = VectorTimestamp::new(2);
        st.advance(0, seq);
        e.stamp = st;
        Arc::new(e)
    }

    #[test]
    fn recover_from_empty_dir_is_fresh_state() {
        let dir = test_dir("empty");
        let r = recover(&dir).unwrap();
        assert_eq!(r.replayed, 0);
        assert_eq!(r.state.flights().len(), 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_plus_log_replay_matches_live_state() {
        let dir = test_dir("snaplog");

        // "Live" reference: apply all 40 events directly.
        let mut live = OperationalState::new();
        let events: Vec<Arc<Event>> = (1..=40).map(event).collect();
        for e in &events {
            live.apply(e);
        }

        // Durable twin: snapshot at 25, log holds 20..=40 (overlap on
        // purpose — replay over the snapshot must be idempotent).
        let mut snap_state = OperationalState::new();
        for e in &events[..25] {
            snap_state.apply(e);
        }
        let mut as_of = VectorTimestamp::new(2);
        as_of.advance(0, 25);
        SnapshotStore::open(&dir).unwrap().save(&snap_state, &as_of).unwrap();

        let mut log = EventLog::open(&dir, LogConfig::default()).unwrap();
        for (i, e) in events.iter().enumerate().skip(19) {
            let wire = encode_frame(&Frame::Data(Arc::clone(e)));
            log.append((i + 1) as u64, &wire).unwrap();
        }
        drop(log);

        let r = recover(&dir).unwrap();
        assert_eq!(r.state.state_hash(), live.state_hash());
        assert_eq!(r.replayed, 21);
        assert_eq!(r.last_replayed_idx, Some(40));
        assert_eq!(r.frontier.get(0), 40);
        fs::remove_dir_all(&dir).unwrap();
    }
}
