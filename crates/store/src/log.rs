//! Segmented append-only write-ahead log for mirrored events.
//!
//! ## On-disk format
//!
//! A log is a directory of segment files named `wal-<first_idx>.seg`, where
//! `<first_idx>` is the zero-padded send index of the segment's first frame.
//! Each segment is a sequence of frames:
//!
//! ```text
//! [u32 len (LE)] [u32 crc32 (LE)] [payload: len bytes]
//! payload = [u64 send_idx (LE)] [wire-encoded Frame bytes]
//! ```
//!
//! The CRC covers the payload only; `len` is validated against the remaining
//! file size before the payload is read, so a torn tail (partial header or
//! partial payload from a crash mid-write) is detected without reading past
//! the end. The wire bytes are exactly what [`mirror_echo::wire::SharedEvent`]
//! caches for the fan-out path, so journaling an event costs one buffered
//! write, never a second encode. Appends accumulate in a user-space buffer
//! and reach the file in ~64 KiB `write`s (any sync barrier, segment roll,
//! replay, or drop flushes first); under [`FsyncPolicy::EveryN`] the
//! `fdatasync` itself runs on a background flusher thread, so the hot path
//! pays neither the per-append syscall nor the disk latency.
//!
//! Alongside the segments lives a `watermark` file holding the durable
//! truncation floor: the oldest send index a recovering mirror may still
//! need. It is advanced only at checkpoint commit (mirroring the in-memory
//! `BackupQueue::prune`) and written atomically (tmp + rename + dir fsync).
//!
//! ## Recovery
//!
//! [`EventLog::open`] scans segments in index order, verifying each frame's
//! length, CRC, and index monotonicity. At the first torn or corrupt frame
//! the segment is truncated to the last valid frame boundary and any later
//! segments are discarded: everything after a hole is beyond the durable
//! prefix. What survives is exactly the set of frames whose bytes were fully
//! persisted — the crash-recovery property tests drive this with arbitrary
//! byte-offset truncations.

use std::collections::BTreeMap;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;

use bytes::Bytes;
use mirror_core::event::Event;
use mirror_echo::wire::{decode_frame, Frame};

use crate::crc::crc32;

/// When appended frames are forced to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fdatasync` after every append. Durable to the last event; slowest.
    PerWrite,
    /// Schedule an `fdatasync` every N appends, serviced by a background
    /// flusher thread so the append path never blocks on the disk (group
    /// commit). Loss is bounded by N-1 events plus whatever the flusher has
    /// not yet serviced; commits and segment rolls still sync
    /// synchronously, and a failed background sync poisons the log (every
    /// later [`EventLog::sync`]/[`EventLog::commit`] errors). The default
    /// trade-off.
    EveryN(u32),
    /// `fdatasync` only when the checkpoint watermark advances. Cheapest;
    /// loss bounded by one commit interval — exactly the window the
    /// in-memory `BackupQueue` already covers.
    OnCommit,
}

/// Tuning for an [`EventLog`].
#[derive(Debug, Clone, Copy)]
pub struct LogConfig {
    /// Fsync discipline for appends.
    pub fsync: FsyncPolicy,
    /// Roll to a new segment once the active one exceeds this many bytes.
    pub segment_bytes: u64,
}

impl Default for LogConfig {
    /// Fsync every 64 appends; 64 MiB segments. Segment size follows WAL
    /// practice (etcd uses 64 MB): closing a segment costs a synchronous
    /// `fdatasync` on the append path, so small segments turn a steady
    /// stream into periodic multi-millisecond stalls, while truncation
    /// only reclaims whole segments either way.
    fn default() -> Self {
        Self { fsync: FsyncPolicy::EveryN(64), segment_bytes: 64 * 1024 * 1024 }
    }
}

/// Asynchronous fsync scheduler for [`FsyncPolicy::EveryN`]. Appends hand
/// the active segment's (duped) file handle to this thread and continue;
/// `fdatasync` covers every byte written to the file so far, so only the
/// latest request matters and a slow disk coalesces requests instead of
/// stalling the append path — the group-commit trick, without holding
/// appends hostage to disk latency.
struct Flusher {
    shared: Arc<FlushShared>,
    thread: Option<thread::JoinHandle<()>>,
}

struct FlushShared {
    slot: Mutex<FlushSlot>,
    cv: Condvar,
    /// Sticky: a failed background sync poisons the log, because there is
    /// no caller on the async path to hand the error to and pretending the
    /// prefix is durable would be worse.
    failed: AtomicBool,
}

#[derive(Default)]
struct FlushSlot {
    pending: Option<File>,
    shutdown: bool,
}

impl Flusher {
    fn spawn() -> Self {
        let shared = Arc::new(FlushShared {
            slot: Mutex::new(FlushSlot::default()),
            cv: Condvar::new(),
            failed: AtomicBool::new(false),
        });
        let sh = Arc::clone(&shared);
        let thread = thread::Builder::new()
            .name("mirror-store-flush".into())
            .spawn(move || loop {
                let file = {
                    let mut slot = sh.slot.lock().unwrap();
                    loop {
                        if let Some(f) = slot.pending.take() {
                            break f;
                        }
                        if slot.shutdown {
                            return;
                        }
                        slot = sh.cv.wait(slot).unwrap();
                    }
                };
                if file.sync_data().is_err() {
                    sh.failed.store(true, Ordering::Release);
                }
            })
            .expect("spawn mirror-store flusher");
        Self { shared, thread: Some(thread) }
    }

    /// Replace the pending request with `file` (latest wins).
    fn request(&self, file: File) {
        self.shared.slot.lock().unwrap().pending = Some(file);
        self.shared.cv.notify_one();
    }

    fn check(&self) -> io::Result<()> {
        if self.shared.failed.load(Ordering::Acquire) {
            return Err(io::Error::other("background fdatasync failed; log is poisoned"));
        }
        Ok(())
    }
}

impl Drop for Flusher {
    fn drop(&mut self) {
        self.shared.slot.lock().unwrap().shutdown = true;
        self.shared.cv.notify_one();
        if let Some(t) = self.thread.take() {
            let _ = t.join(); // drains any pending request first
        }
    }
}

/// Frame header: `u32` length + `u32` CRC.
const HEADER: u64 = 8;
const WATERMARK_FILE: &str = "watermark";
const WATERMARK_TMP: &str = "watermark.tmp";

fn segment_path(dir: &Path, first_idx: u64) -> PathBuf {
    dir.join(format!("wal-{first_idx:020}.seg"))
}

fn parse_segment_name(name: &str) -> Option<u64> {
    let stem = name.strip_prefix("wal-")?.strip_suffix(".seg")?;
    stem.parse().ok()
}

/// One valid frame yielded by a segment scan.
struct ScannedFrame {
    idx: u64,
    /// Wire-encoded `Frame` bytes (the payload minus the 8-byte index).
    wire: Bytes,
    /// Offset of the byte *after* this frame in the segment.
    end: u64,
}

/// Read every valid frame from `path`, stopping (without error) at the first
/// torn or corrupt one. Returns the frames and the offset of the valid
/// prefix's end.
fn scan_segment(path: &Path) -> io::Result<(Vec<ScannedFrame>, u64)> {
    let mut buf = Vec::new();
    File::open(path)?.read_to_end(&mut buf)?;
    let bytes = Bytes::from(buf);
    let mut frames = Vec::new();
    let mut off = 0usize;
    loop {
        if off + HEADER as usize > bytes.len() {
            break; // torn header
        }
        let len = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(bytes[off + 4..off + 8].try_into().unwrap());
        let start = off + HEADER as usize;
        // A payload always carries at least the 8-byte index; an absurd
        // length (e.g. from a corrupted header) fails either this bound or
        // the CRC below.
        if len < 8 || start + len > bytes.len() {
            break; // torn or corrupt length
        }
        let payload = &bytes[start..start + len];
        if crc32(payload) != crc {
            break; // corrupt payload (or header corruption aliasing into it)
        }
        let idx = u64::from_le_bytes(payload[..8].try_into().unwrap());
        if let Some(last) = frames.last() {
            let last: &ScannedFrame = last;
            if idx <= last.idx {
                break; // index regression: treat as corruption
            }
        }
        let end = (start + len) as u64;
        frames.push(ScannedFrame { idx, wire: bytes.slice(start + 8..start + len), end });
        off = end as usize;
    }
    let valid_end = frames.last().map_or(0, |f| f.end);
    Ok((frames, valid_end))
}

fn write_atomic(dir: &Path, tmp_name: &str, final_name: &str, contents: &[u8]) -> io::Result<()> {
    let tmp = dir.join(tmp_name);
    let fin = dir.join(final_name);
    let mut f = File::create(&tmp)?;
    f.write_all(contents)?;
    f.sync_data()?;
    fs::rename(&tmp, &fin)?;
    // Persist the rename itself.
    File::open(dir)?.sync_all()?;
    Ok(())
}

/// Segmented append-only event log with commit-driven truncation.
pub struct EventLog {
    dir: PathBuf,
    cfg: LogConfig,
    /// Closed segments, keyed by first frame index. Never includes `active`.
    closed: BTreeMap<u64, PathBuf>,
    /// The segment currently being appended to, if any frame has ever been
    /// written (a fresh log creates its first segment lazily, named after
    /// the first index it receives).
    active: Option<ActiveSegment>,
    /// Highest index ever appended (or recovered). Appends must exceed it.
    last_idx: Option<u64>,
    /// Durable truncation floor: oldest index a recovering site may need.
    watermark: u64,
    /// Appends since the last fsync (for [`FsyncPolicy::EveryN`]).
    unsynced: u32,
    /// Background fsync thread, spawned lazily on the first `EveryN`
    /// schedule.
    flusher: Option<Flusher>,
    /// Crash simulation: the log has been [`abandon`](EventLog::abandon)ed —
    /// every further mutation is a no-op and `Drop` does not write out the
    /// append buffer.
    abandoned: bool,
}

struct ActiveSegment {
    first_idx: u64,
    path: PathBuf,
    file: File,
    /// Logical segment length: bytes in the file plus bytes still buffered.
    len: u64,
    /// Appends accumulate here and reach the file in [`FLUSH_BYTES`]-sized
    /// `write`s (or earlier, at any sync barrier): the per-append syscall,
    /// not the fsync, is what would otherwise dominate the hot path.
    buf: Vec<u8>,
}

/// Flush the append buffer to the file once it reaches this size.
const FLUSH_BYTES: usize = 64 * 1024;

impl ActiveSegment {
    /// Push buffered bytes into the file (one `write`); logical length is
    /// unchanged. Every durability barrier and every on-disk read flushes
    /// first.
    fn flush(&mut self) -> io::Result<()> {
        if !self.buf.is_empty() {
            self.file.write_all(&self.buf)?;
            self.buf.clear();
        }
        Ok(())
    }
}

impl EventLog {
    /// Open (or create) the log in `dir`, running crash recovery: segments
    /// are scanned in order, the first torn/corrupt frame truncates its
    /// segment, and all later segments are deleted.
    pub fn open(dir: impl Into<PathBuf>, cfg: LogConfig) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;

        let watermark = read_watermark(&dir)?.unwrap_or(1);

        let mut names: Vec<(u64, PathBuf)> = Vec::new();
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            if let Some(first) = entry.file_name().to_str().and_then(parse_segment_name) {
                names.push((first, entry.path()));
            }
        }
        names.sort_by_key(|(first, _)| *first);

        let mut closed = BTreeMap::new();
        let mut last_idx = None;
        let mut tail: Option<(u64, PathBuf, u64)> = None; // (first, path, valid_len)
        let mut hole = false;
        for (i, (first, path)) in names.iter().enumerate() {
            if hole {
                // Beyond the durable prefix: a prior segment had a hole, so
                // nothing after it can be trusted (or reached) — drop it.
                fs::remove_file(path)?;
                continue;
            }
            let (mut frames, mut valid_end) = scan_segment(path)?;
            // Monotonicity across the segment boundary: scan_segment only
            // checks within one file, so a corrupt/misnamed segment whose
            // first frame does not exceed the previous segment's last index
            // would otherwise replay overlapping or out-of-order indices.
            // Treat the regression like any other corruption: discard this
            // segment entirely (and, via `hole`, everything after it).
            if last_idx.is_some_and(|last| frames.first().is_some_and(|f| f.idx <= last)) {
                frames.clear();
                valid_end = 0;
            }
            let file_len = fs::metadata(path)?.len();
            if valid_end < file_len {
                // Torn/corrupt tail: truncate to the last valid frame.
                OpenOptions::new().write(true).open(path)?.set_len(valid_end)?;
                hole = true;
            }
            if let Some(f) = frames.last() {
                last_idx = Some(f.idx);
            }
            if frames.is_empty() && valid_end == 0 && i + 1 < names.len() && !hole {
                // An empty non-tail segment (crash between roll and first
                // append). Harmless, but remove it so the name map stays
                // consistent with "first_idx = first frame's index".
                fs::remove_file(path)?;
                continue;
            }
            if hole || i + 1 == names.len() {
                tail = Some((*first, path.clone(), valid_end));
            } else {
                closed.insert(*first, path.clone());
            }
        }
        // If a hole forced an early tail, every later name was deleted by
        // the `hole` short-circuit above, so `closed` holds only segments
        // strictly before the (possibly truncated) tail.

        let active = match tail {
            // A tail with no surviving frames would leave a segment whose
            // name no longer matches its first frame; drop it and let the
            // next append create a correctly named one.
            Some((_, path, 0)) => {
                fs::remove_file(&path)?;
                None
            }
            Some((first, path, len)) => {
                let mut file = OpenOptions::new().read(true).write(true).open(&path)?;
                file.seek(SeekFrom::Start(len))?;
                Some(ActiveSegment {
                    first_idx: first,
                    path,
                    file,
                    len,
                    buf: Vec::with_capacity(FLUSH_BYTES * 2),
                })
            }
            None => None,
        };

        Ok(Self {
            dir,
            cfg,
            closed,
            active,
            last_idx,
            watermark,
            unsynced: 0,
            flusher: None,
            abandoned: false,
        })
    }

    /// Simulate a process crash: drop the log on the floor mid-write.
    ///
    /// A torn prefix of the append buffer is pushed into the active segment
    /// file (a real crash can land anywhere inside a `write`); the rest of
    /// the buffered tail is lost. Every later mutation is a no-op and `Drop`
    /// skips the clean-shutdown flush, so the on-disk state is exactly what
    /// the next [`EventLog::open`]'s torn-write repair must cope with.
    pub fn abandon(&mut self) {
        self.abandoned = true;
        if let Some(a) = &mut self.active {
            if !a.buf.is_empty() {
                let torn = a.buf.len() / 2;
                use std::io::Write as _;
                let _ = a.file.write_all(&a.buf[..torn]);
                a.buf.clear();
            }
        }
    }

    /// Whether [`abandon`](EventLog::abandon) has been called.
    pub fn is_abandoned(&self) -> bool {
        self.abandoned
    }

    /// The durable truncation floor (oldest index a recovery may need).
    pub fn watermark(&self) -> u64 {
        self.watermark
    }

    /// Highest index appended or recovered, if any.
    pub fn last_idx(&self) -> Option<u64> {
        self.last_idx
    }

    /// Oldest send index physically present in the log, if any frame is.
    /// `replay_from(i)` is complete iff `i >= first_retained_idx()`.
    pub fn first_retained_idx(&self) -> Option<u64> {
        self.closed
            .keys()
            .next()
            .copied()
            .or_else(|| self.active.as_ref().map(|a| a.first_idx))
            .filter(|_| self.last_idx.is_some())
    }

    /// Append one event frame. `wire` must be the wire encoding of a
    /// [`Frame`] (as produced by `encode_frame`/`SharedEvent::encoded`);
    /// `idx` must exceed every previously appended index.
    pub fn append(&mut self, idx: u64, wire: &[u8]) -> io::Result<()> {
        if self.abandoned {
            return Ok(());
        }
        if let Some(last) = self.last_idx {
            assert!(idx > last, "log indices must be monotone: {idx} after {last}");
        }
        let frame_len = HEADER + 8 + wire.len() as u64;
        let roll = match &self.active {
            Some(a) => a.len + frame_len > self.cfg.segment_bytes && a.len > 0,
            None => false,
        };
        if roll {
            let mut a = self.active.take().unwrap();
            // Bound loss to the active segment: a closed segment is always
            // fully durable, whatever the append-time policy.
            a.flush()?;
            a.file.sync_data()?;
            self.closed.insert(a.first_idx, a.path);
        }
        if self.active.is_none() {
            let path = segment_path(&self.dir, idx);
            let file = OpenOptions::new().create_new(true).read(true).write(true).open(&path)?;
            self.active = Some(ActiveSegment {
                first_idx: idx,
                path,
                file,
                len: 0,
                buf: Vec::with_capacity(FLUSH_BYTES * 2),
            });
        }

        // Build the record straight into the append buffer — no temporary
        // allocations on the hot path. The CRC slot is patched once the
        // payload is in place.
        let a = self.active.as_mut().unwrap();
        let start = a.buf.len();
        a.buf.extend_from_slice(&((8 + wire.len()) as u32).to_le_bytes());
        a.buf.extend_from_slice(&[0u8; 4]);
        a.buf.extend_from_slice(&idx.to_le_bytes());
        a.buf.extend_from_slice(wire);
        let crc = crc32(&a.buf[start + HEADER as usize..]);
        a.buf[start + 4..start + 8].copy_from_slice(&crc.to_le_bytes());
        a.len += frame_len;
        self.last_idx = Some(idx);

        match self.cfg.fsync {
            FsyncPolicy::PerWrite => {
                a.flush()?;
                a.file.sync_data()?;
            }
            FsyncPolicy::EveryN(n) => {
                self.unsynced += 1;
                if self.unsynced >= n.max(1) {
                    a.flush()?;
                    let clone = a.file.try_clone()?;
                    self.flusher.get_or_insert_with(Flusher::spawn).request(clone);
                    self.unsynced = 0;
                }
            }
            FsyncPolicy::OnCommit => {}
        }
        if a.buf.len() >= FLUSH_BYTES {
            a.flush()?;
        }
        Ok(())
    }

    /// Force everything appended so far to stable storage (a synchronous
    /// barrier, whatever the append policy). Errors if a background sync
    /// previously failed.
    pub fn sync(&mut self) -> io::Result<()> {
        if self.abandoned {
            return Ok(());
        }
        if let Some(f) = &self.flusher {
            f.check()?;
        }
        if let Some(a) = &mut self.active {
            a.flush()?;
            a.file.sync_data()?;
        }
        self.unsynced = 0;
        Ok(())
    }

    /// Checkpoint commit: make the log durable up to now, advance the
    /// truncation watermark to `floor` (the backup queue's oldest retained
    /// index after the prune), and delete whole segments every frame of
    /// which is below it. The watermark only moves forward.
    pub fn commit(&mut self, floor: u64) -> io::Result<()> {
        if self.abandoned {
            return Ok(());
        }
        // Durability point: whatever the append policy, a commit makes the
        // suffix the mirrors just acknowledged recoverable.
        self.sync()?;
        if floor > self.watermark {
            write_atomic(&self.dir, WATERMARK_TMP, WATERMARK_FILE, &encode_watermark(floor))?;
            self.watermark = floor;
        }
        // A closed segment [first, next_first) is disposable iff the next
        // segment starts at or below the floor (every frame < floor).
        loop {
            let mut keys = self.closed.keys();
            let (Some(&first), next) = (keys.next(), keys.next()) else { break };
            let next_first = next.copied().or_else(|| self.active.as_ref().map(|a| a.first_idx));
            match next_first {
                Some(nf) if nf <= self.watermark && first < self.watermark => {
                    let path = self.closed.remove(&first).unwrap();
                    fs::remove_file(path)?;
                }
                _ => break,
            }
        }
        Ok(())
    }

    /// Decode and return every retained event with `send_idx >= from_idx`,
    /// in index order. Complete iff `from_idx >= first_retained_idx()`.
    pub fn replay_from(&mut self, from_idx: u64) -> io::Result<Vec<(u64, Arc<Event>)>> {
        let mut paths: Vec<(u64, PathBuf)> =
            self.closed.iter().map(|(k, v)| (*k, v.clone())).collect();
        if let Some(a) = &mut self.active {
            // The scan reads the file; buffered appends must be in it.
            a.flush()?;
            paths.push((a.first_idx, a.path.clone()));
        }
        // Skip segments that end before `from_idx`: a segment's frames are
        // all below its successor's first index.
        let mut out = Vec::new();
        for (i, (_first, path)) in paths.iter().enumerate() {
            if let Some((next_first, _)) = paths.get(i + 1) {
                if *next_first <= from_idx {
                    continue;
                }
            }
            let (frames, _) = scan_segment(path)?;
            for f in frames {
                if f.idx < from_idx {
                    continue;
                }
                let frame = decode_frame(f.wire).map_err(|e| {
                    io::Error::new(io::ErrorKind::InvalidData, format!("wire decode: {e:?}"))
                })?;
                match frame {
                    Frame::Data(ev) => out.push((f.idx, ev)),
                    other => {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!("non-data frame in event log: {other:?}"),
                        ))
                    }
                }
            }
        }
        Ok(out)
    }

    /// Number of segment files currently on disk.
    pub fn segment_count(&self) -> usize {
        self.closed.len() + usize::from(self.active.is_some())
    }
}

impl Drop for EventLog {
    /// A clean shutdown writes out the append buffer (no fsync — the OS
    /// gets the bytes, the policy's durability bound is unchanged), so only
    /// a crash can lose buffered frames.
    fn drop(&mut self) {
        if self.abandoned {
            return;
        }
        if let Some(a) = &mut self.active {
            let _ = a.flush();
        }
    }
}

fn encode_watermark(v: u64) -> Vec<u8> {
    let body = v.to_le_bytes();
    let mut out = Vec::with_capacity(12);
    out.extend_from_slice(&body);
    out.extend_from_slice(&crc32(&body).to_le_bytes());
    out
}

fn read_watermark(dir: &Path) -> io::Result<Option<u64>> {
    let path = dir.join(WATERMARK_FILE);
    let mut buf = Vec::new();
    match File::open(&path) {
        Ok(mut f) => f.read_to_end(&mut buf)?,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    if buf.len() != 12 {
        return Ok(None); // torn watermark write: fall back to the default
    }
    let v = u64::from_le_bytes(buf[..8].try_into().unwrap());
    let crc = u32::from_le_bytes(buf[8..12].try_into().unwrap());
    if crc32(&buf[..8]) != crc {
        return Ok(None);
    }
    Ok(Some(v))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mirror_core::event::{Event, PositionFix};
    use mirror_core::timestamp::VectorTimestamp;
    use mirror_echo::wire::encode_frame;

    fn test_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("mirror-store-{}-{}", std::process::id(), tag));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn event(seq: u64) -> Arc<Event> {
        let mut e = Event::faa_position(
            seq,
            (seq % 5) as u32,
            PositionFix {
                lat: 1.0,
                lon: 2.0,
                alt_ft: 30000.0,
                speed_kts: 450.0,
                heading_deg: 90.0,
            },
        );
        let mut st = VectorTimestamp::new(2);
        st.advance(0, seq);
        e.stamp = st;
        Arc::new(e)
    }

    fn wire_bytes(seq: u64) -> (Arc<Event>, Bytes) {
        let ev = event(seq);
        let b = encode_frame(&Frame::Data(Arc::clone(&ev)));
        (ev, b)
    }

    /// Diagnostic, not a gate: per-append cost of the hot path under each
    /// policy. Run with `--ignored --nocapture` when tuning.
    #[test]
    #[ignore]
    fn append_throughput_diagnostic() {
        use std::time::Instant;
        let payload = vec![0xABu8; 1024];
        for (name, fsync) in
            [("OnCommit", FsyncPolicy::OnCommit), ("EveryN(64)", FsyncPolicy::EveryN(64))]
        {
            let dir = test_dir(&format!("diag-{name}"));
            let mut log = EventLog::open(&dir, LogConfig { fsync, ..Default::default() }).unwrap();
            let start = Instant::now();
            for i in 1..=20_000u64 {
                log.append(i, &payload).unwrap();
            }
            let us = start.elapsed().as_micros() as f64 / 20_000.0;
            println!("  {name:<12} {us:.2} us/append");
            drop(log);
            let _ = fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn append_reopen_replay_roundtrip() {
        let dir = test_dir("roundtrip");
        let mut log = EventLog::open(&dir, LogConfig::default()).unwrap();
        for i in 1..=10u64 {
            let (_, b) = wire_bytes(i);
            log.append(i, &b).unwrap();
        }
        drop(log);
        let mut log = EventLog::open(&dir, LogConfig::default()).unwrap();
        let got = log.replay_from(1).unwrap();
        assert_eq!(got.len(), 10);
        assert_eq!(got.first().unwrap().0, 1);
        assert_eq!(got.last().unwrap().0, 10);
        assert_eq!(log.last_idx(), Some(10));
        let tail = log.replay_from(7).unwrap();
        assert_eq!(tail.iter().map(|(i, _)| *i).collect::<Vec<_>>(), vec![7, 8, 9, 10]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_on_open() {
        let dir = test_dir("torn");
        let mut log = EventLog::open(&dir, LogConfig::default()).unwrap();
        for i in 1..=5u64 {
            let (_, b) = wire_bytes(i);
            log.append(i, &b).unwrap();
        }
        log.sync().unwrap();
        let seg = segment_path(&dir, 1);
        drop(log);
        // Chop 3 bytes off the last frame: a torn write.
        let len = fs::metadata(&seg).unwrap().len();
        OpenOptions::new().write(true).open(&seg).unwrap().set_len(len - 3).unwrap();

        let mut log = EventLog::open(&dir, LogConfig::default()).unwrap();
        let got = log.replay_from(1).unwrap();
        assert_eq!(got.len(), 4, "last frame was torn; first four survive");
        assert_eq!(log.last_idx(), Some(4));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_byte_truncates_from_that_frame() {
        let dir = test_dir("corrupt");
        let mut log = EventLog::open(&dir, LogConfig::default()).unwrap();
        let mut offsets = Vec::new();
        let mut running = 0u64;
        for i in 1..=5u64 {
            let (_, b) = wire_bytes(i);
            log.append(i, &b).unwrap();
            running += HEADER + 8 + b.len() as u64;
            offsets.push(running);
        }
        log.sync().unwrap();
        drop(log);
        // Flip a byte inside frame 3's payload.
        let seg = segment_path(&dir, 1);
        let mut bytes = fs::read(&seg).unwrap();
        let target = offsets[1] as usize + HEADER as usize + 4;
        bytes[target] ^= 0xFF;
        fs::write(&seg, &bytes).unwrap();

        let mut log = EventLog::open(&dir, LogConfig::default()).unwrap();
        assert_eq!(log.last_idx(), Some(2), "frames 3..5 follow the corruption");
        assert_eq!(log.replay_from(1).unwrap().len(), 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn overlapping_segment_is_discarded_as_corruption() {
        let dir = test_dir("overlap");
        let mut log = EventLog::open(&dir, LogConfig::default()).unwrap();
        for i in 1..=5u64 {
            let (_, b) = wire_bytes(i);
            log.append(i, &b).unwrap();
        }
        drop(log);
        // A second segment claiming to start at 6 but holding frames 1..=5
        // again: its first frame regresses below the predecessor's last
        // index, so the whole segment must be treated as corruption.
        fs::copy(segment_path(&dir, 1), segment_path(&dir, 6)).unwrap();

        let mut log = EventLog::open(&dir, LogConfig::default()).unwrap();
        assert_eq!(log.last_idx(), Some(5), "overlap must not extend the log");
        let got = log.replay_from(1).unwrap();
        assert_eq!(got.iter().map(|(i, _)| *i).collect::<Vec<_>>(), vec![1, 2, 3, 4, 5]);
        assert_eq!(log.segment_count(), 1, "the overlapping segment is deleted");
        assert!(!segment_path(&dir, 6).exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn commit_deletes_whole_segments_below_watermark() {
        let dir = test_dir("commitgc");
        // Tiny segments: every ~2 frames rolls.
        let cfg = LogConfig { fsync: FsyncPolicy::OnCommit, segment_bytes: 160 };
        let mut log = EventLog::open(&dir, cfg).unwrap();
        for i in 1..=12u64 {
            let (_, b) = wire_bytes(i);
            log.append(i, &b).unwrap();
        }
        assert!(log.segment_count() > 2, "expected multiple segments");
        let before = log.segment_count();
        log.commit(9).unwrap();
        assert!(log.segment_count() < before, "commit must GC full segments");
        assert_eq!(log.watermark(), 9);
        // Everything >= 9 must still replay.
        let got = log.replay_from(9).unwrap();
        assert_eq!(got.iter().map(|(i, _)| *i).collect::<Vec<_>>(), vec![9, 10, 11, 12]);
        assert!(log.first_retained_idx().unwrap() <= 9);
        drop(log);
        // Watermark survives reopen.
        let log = EventLog::open(&dir, cfg).unwrap();
        assert_eq!(log.watermark(), 9);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn watermark_never_regresses() {
        let dir = test_dir("wm");
        let mut log = EventLog::open(&dir, LogConfig::default()).unwrap();
        let (_, b) = wire_bytes(1);
        log.append(1, &b).unwrap();
        log.commit(5).unwrap();
        log.commit(3).unwrap();
        assert_eq!(log.watermark(), 5);
        fs::remove_dir_all(&dir).unwrap();
    }
}
