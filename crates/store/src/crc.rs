//! CRC-32 (IEEE 802.3 polynomial, reflected) over byte slices.
//!
//! Hand-rolled so the store stays `std`-only: the workspace bans new
//! dependencies. The inner loop uses slicing-by-8 — eight 256-entry tables
//! computed at compile time, consuming 8 input bytes per iteration — because
//! the CRC sits on the journaling hot path and the classic byte-at-a-time
//! loop (~2.5 cycles/byte) was its single biggest cost. The polynomial
//! (0xEDB88320 reversed) and presentation are the same as zip/gzip/Ethernet,
//! so externally generated fixtures can be cross-checked with any standard
//! tool, and the on-disk format is unchanged from a plain table CRC.

/// `TABLES[0]` is the classic byte-at-a-time table; `TABLES[k]` maps a byte
/// processed `k` positions early (i.e. followed by `k` zero bytes).
const fn build_tables() -> [[u32; 256]; 8] {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        tables[0][i] = c;
        i += 1;
    }
    let mut t = 1;
    while t < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[t - 1][i];
            tables[t][i] = tables[0][(prev & 0xFF) as usize] ^ (prev >> 8);
            i += 1;
        }
        t += 1;
    }
    tables
}

static TABLES: [[u32; 256]; 8] = build_tables();

/// CRC-32 of `data` (init `!0`, final xor `!0` — the standard presentation).
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = !0u32;
    let mut chunks = data.chunks_exact(8);
    for chunk in &mut chunks {
        let lo = u32::from_le_bytes(chunk[0..4].try_into().unwrap()) ^ c;
        let hi = u32::from_le_bytes(chunk[4..8].try_into().unwrap());
        c = TABLES[7][(lo & 0xFF) as usize]
            ^ TABLES[6][((lo >> 8) & 0xFF) as usize]
            ^ TABLES[5][((lo >> 16) & 0xFF) as usize]
            ^ TABLES[4][((lo >> 24) & 0xFF) as usize]
            ^ TABLES[3][(hi & 0xFF) as usize]
            ^ TABLES[2][((hi >> 8) & 0xFF) as usize]
            ^ TABLES[1][((hi >> 16) & 0xFF) as usize]
            ^ TABLES[0][((hi >> 24) & 0xFF) as usize];
    }
    for &b in chunks.remainder() {
        c = TABLES[0][((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The byte-at-a-time reference the sliced loop must agree with.
    fn crc32_reference(data: &[u8]) -> u32 {
        let mut c = !0u32;
        for &b in data {
            c = TABLES[0][((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
        }
        !c
    }

    #[test]
    fn known_vectors() {
        // The canonical check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn sliced_matches_reference_at_every_length() {
        let data: Vec<u8> = (0..1024u32).map(|i| (i.wrapping_mul(31) >> 3) as u8).collect();
        for len in 0..=data.len() {
            assert_eq!(crc32(&data[..len]), crc32_reference(&data[..len]), "len={len}");
        }
    }

    #[test]
    fn sensitive_to_single_bit_flip() {
        let a = crc32(b"hello world");
        let b = crc32(b"hello worle");
        assert_ne!(a, b);
    }
}
