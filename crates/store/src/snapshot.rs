//! Atomic, checksummed persistence for EDE snapshots.
//!
//! A persisted snapshot is the durable twin of [`mirror_ede::Snapshot`]: the
//! full per-flight view map plus the vector timestamp (`as_of`) it is
//! consistent with. One file, written atomically (tmp + rename + dir fsync)
//! so a crash mid-save leaves the previous snapshot intact, and guarded by a
//! trailing CRC-32 so a partially persisted file reads as "no snapshot"
//! rather than as corrupt state.
//!
//! ## Layout (all integers little-endian)
//!
//! ```text
//! magic  "MSNP"  version u8=1
//! u32 stamp_width, then width × u64 stamp components
//! u32 flight_count, then per flight:
//!   u32 id   u8 status   u8 has_position
//!   [f64 lat, lon, alt_ft, speed_kts, heading_deg]  (only if has_position)
//!   u64 position_seq
//!   u32 boarded  u32 expected  u32 bags_loaded  u32 bags_reconciled
//!   u64 updates
//! u32 crc32 over everything above
//! ```

use std::fs::{self, File};
use std::io::{self, Read, Write};
use std::path::PathBuf;

use mirror_core::event::{FlightId, FlightStatus, PositionFix};
use mirror_core::timestamp::VectorTimestamp;
use mirror_ede::flight::FlightView;
use mirror_ede::state::OperationalState;

use crate::crc::crc32;

const MAGIC: &[u8; 4] = b"MSNP";
const VERSION: u8 = 1;
const FILE: &str = "snapshot.bin";
const TMP: &str = "snapshot.tmp";

/// A snapshot read back from disk: the flight map plus the vector timestamp
/// it is consistent with.
#[derive(Debug, Clone)]
pub struct PersistedSnapshot {
    /// Per-flight operational views at capture time.
    pub flights: mirror_ede::FlightMap,
    /// Checkpoint frontier the snapshot is consistent with.
    pub as_of: VectorTimestamp,
}

impl PersistedSnapshot {
    /// Rebuild an [`OperationalState`] holding exactly these flights.
    pub fn into_state(self) -> OperationalState {
        let mut state = OperationalState::new();
        state.install(self.flights);
        state
    }
}

/// Snapshot persistence rooted at one directory (shared with the event log).
pub struct SnapshotStore {
    dir: PathBuf,
}

impl SnapshotStore {
    /// Create the store, ensuring `dir` exists.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(Self { dir })
    }

    /// Atomically persist `state` as a snapshot consistent with `as_of`,
    /// replacing any previous snapshot.
    pub fn save(&self, state: &OperationalState, as_of: &VectorTimestamp) -> io::Result<()> {
        let mut buf = Vec::with_capacity(64 + state.flights().len() * 64);
        buf.extend_from_slice(MAGIC);
        buf.push(VERSION);
        let comps = as_of.components();
        buf.extend_from_slice(&(comps.len() as u32).to_le_bytes());
        for &c in comps {
            buf.extend_from_slice(&c.to_le_bytes());
        }
        // Deterministic order: ids sorted, so identical states produce
        // byte-identical files (handy for test diffing).
        let mut ids: Vec<FlightId> = state.flights().keys().copied().collect();
        ids.sort_unstable();
        buf.extend_from_slice(&(ids.len() as u32).to_le_bytes());
        for id in ids {
            let v = &state.flights()[&id];
            buf.extend_from_slice(&id.to_le_bytes());
            buf.push(v.status as u8);
            match &v.position {
                Some(p) => {
                    buf.push(1);
                    for f in [p.lat, p.lon, p.alt_ft, p.speed_kts, p.heading_deg] {
                        buf.extend_from_slice(&f.to_le_bytes());
                    }
                }
                None => buf.push(0),
            }
            buf.extend_from_slice(&v.position_seq.to_le_bytes());
            for n in [v.boarded, v.expected, v.bags_loaded, v.bags_reconciled] {
                buf.extend_from_slice(&n.to_le_bytes());
            }
            buf.extend_from_slice(&v.updates.to_le_bytes());
        }
        let crc = crc32(&buf);
        buf.extend_from_slice(&crc.to_le_bytes());

        let tmp = self.dir.join(TMP);
        let fin = self.dir.join(FILE);
        let mut f = File::create(&tmp)?;
        f.write_all(&buf)?;
        f.sync_data()?;
        fs::rename(&tmp, &fin)?;
        File::open(&self.dir)?.sync_all()?;
        Ok(())
    }

    /// Load the persisted snapshot. `Ok(None)` if no snapshot exists or the
    /// file fails its integrity check (a torn save is treated as absent, not
    /// as an error — the caller falls back to full log replay).
    pub fn load(&self) -> io::Result<Option<PersistedSnapshot>> {
        let mut buf = Vec::new();
        match File::open(self.dir.join(FILE)) {
            Ok(mut f) => f.read_to_end(&mut buf)?,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e),
        };
        if buf.len() < MAGIC.len() + 1 + 4 {
            return Ok(None);
        }
        let (body, tail) = buf.split_at(buf.len() - 4);
        let stored_crc = u32::from_le_bytes(tail.try_into().unwrap());
        if crc32(body) != stored_crc || &body[..4] != MAGIC || body[4] != VERSION {
            return Ok(None);
        }

        let mut r = Cursor { buf: &body[5..] };
        let width = r.u32()? as usize;
        let mut comps = Vec::with_capacity(width);
        for _ in 0..width {
            comps.push(r.u64()?);
        }
        let as_of = VectorTimestamp::from_components(comps);
        let count = r.u32()? as usize;
        let mut flights =
            mirror_ede::FlightMap::with_capacity_and_hasher(count, Default::default());
        for _ in 0..count {
            let id = r.u32()?;
            let status = FlightStatus::from_u8(r.u8()?)
                .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad status"))?;
            let position = if r.u8()? == 1 {
                Some(PositionFix {
                    lat: r.f64()?,
                    lon: r.f64()?,
                    alt_ft: r.f64()?,
                    speed_kts: r.f64()?,
                    heading_deg: r.f64()?,
                })
            } else {
                None
            };
            let view = FlightView {
                status,
                position,
                position_seq: r.u64()?,
                boarded: r.u32()?,
                expected: r.u32()?,
                bags_loaded: r.u32()?,
                bags_reconciled: r.u32()?,
                updates: r.u64()?,
            };
            flights.insert(id, view);
        }
        Ok(Some(PersistedSnapshot { flights, as_of }))
    }

    /// Whether a snapshot file currently exists (integrity not checked).
    pub fn exists(&self) -> bool {
        self.dir.join(FILE).exists()
    }
}

/// Minimal little-endian reader over a byte slice.
struct Cursor<'a> {
    buf: &'a [u8],
}

impl Cursor<'_> {
    fn take(&mut self, n: usize) -> io::Result<&[u8]> {
        if self.buf.len() < n {
            return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "short snapshot"));
        }
        let (head, rest) = self.buf.split_at(n);
        self.buf = rest;
        Ok(head)
    }
    fn u8(&mut self) -> io::Result<u8> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn f64(&mut self) -> io::Result<f64> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mirror_core::event::Event;

    fn test_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("mirror-snap-{}-{}", std::process::id(), tag));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn populated_state() -> OperationalState {
        let mut s = OperationalState::new();
        for seq in 1..=50u64 {
            let e = Event::faa_position(
                seq,
                (seq % 7) as u32,
                PositionFix {
                    lat: seq as f64,
                    lon: -(seq as f64),
                    alt_ft: 100.0 * seq as f64,
                    speed_kts: 400.0,
                    heading_deg: 90.0,
                },
            );
            s.apply(&e);
        }
        s
    }

    #[test]
    fn save_load_roundtrip_preserves_state_hash() {
        let dir = test_dir("roundtrip");
        let state = populated_state();
        let mut as_of = VectorTimestamp::new(2);
        as_of.advance(0, 50);

        let store = SnapshotStore::open(&dir).unwrap();
        store.save(&state, &as_of).unwrap();
        let loaded = store.load().unwrap().expect("snapshot present");
        assert_eq!(loaded.as_of, as_of);
        let restored = loaded.into_state();
        assert_eq!(restored.state_hash(), state.state_hash());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_and_corrupt_snapshots_read_as_none() {
        let dir = test_dir("corrupt");
        let store = SnapshotStore::open(&dir).unwrap();
        assert!(store.load().unwrap().is_none());

        let state = populated_state();
        store.save(&state, &VectorTimestamp::new(2)).unwrap();
        assert!(store.load().unwrap().is_some());

        // Flip one byte: the CRC must reject the file.
        let path = dir.join(FILE);
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        fs::write(&path, &bytes).unwrap();
        assert!(store.load().unwrap().is_none(), "corrupt snapshot must read as absent");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn save_replaces_previous_snapshot() {
        let dir = test_dir("replace");
        let store = SnapshotStore::open(&dir).unwrap();
        let mut s1 = OperationalState::new();
        s1.apply(&Event::faa_position(
            1,
            1,
            PositionFix { lat: 0.0, lon: 0.0, alt_ft: 0.0, speed_kts: 0.0, heading_deg: 90.0 },
        ));
        store.save(&s1, &VectorTimestamp::new(1)).unwrap();

        let s2 = populated_state();
        let mut as_of = VectorTimestamp::new(1);
        as_of.advance(0, 50);
        store.save(&s2, &as_of).unwrap();

        let loaded = store.load().unwrap().unwrap();
        assert_eq!(loaded.into_state().state_hash(), s2.state_hash());
        fs::remove_dir_all(&dir).unwrap();
    }
}
