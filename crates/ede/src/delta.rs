//! Delta snapshots: the state that changed since a known base frontier.
//!
//! A full [`Snapshot`](crate::Snapshot) ships every flight; a [`StateDelta`]
//! ships only the flights whose views changed — plus the ids removed — since
//! a **base** frontier the producer previously captured at. The consumer
//! must hold state equivalent to the base (restored from the base snapshot,
//! or the base plus any prefix of the subsequent update stream — entries
//! are authoritative whole-flight views, so re-applying a change the
//! consumer already absorbed is idempotent); applying the delta then makes
//! it `state_hash`-equal to the producer at the delta's `as_of`.
//!
//! Deltas are what make routine cross-site catch-up cheap: a WAN mirror
//! that diverged by 5% of flights moves ~5% of the bytes a full snapshot
//! would, which is the whole case for the geo tier (TerraServer's
//! operations lesson; MigratoryData's delta/resume design).

use mirror_core::event::FlightId;
use mirror_core::timestamp::VectorTimestamp;

use crate::state::FlightMap;

/// A delta snapshot: everything that changed between two capture frontiers.
#[derive(Debug, Clone, PartialEq)]
pub struct StateDelta {
    /// Flights created or modified since `base`, as authoritative whole
    /// views at `as_of` (insert-or-overwrite on apply).
    changed: FlightMap,
    /// Flights removed since `base` (partition-migration purges).
    removed: Vec<FlightId>,
    /// The base frontier this delta builds on: the consumer must hold state
    /// derived from a capture at exactly this frontier.
    pub base: VectorTimestamp,
    /// The frontier the delta brings the consumer up to; becomes the
    /// consumer's next delta base.
    pub as_of: VectorTimestamp,
}

impl StateDelta {
    /// Assemble a delta from its parts (producer capture, wire decoding).
    pub fn from_parts(
        changed: FlightMap,
        removed: Vec<FlightId>,
        base: VectorTimestamp,
        as_of: VectorTimestamp,
    ) -> Self {
        StateDelta { changed, removed, base, as_of }
    }

    /// The changed flights (authoritative views at `as_of`).
    pub fn changed(&self) -> &FlightMap {
        &self.changed
    }

    /// The removed flight ids.
    pub fn removed(&self) -> &[FlightId] {
        &self.removed
    }

    /// Number of changed flights carried.
    pub fn changed_count(&self) -> usize {
        self.changed.len()
    }

    /// Does this delta carry no changes at all?
    pub fn is_empty(&self) -> bool {
        self.changed.is_empty() && self.removed.is_empty()
    }

    /// Bytes this delta occupies on a link, exactly matching the encoder:
    /// version + kind + two stamp widths + two entry counts (14 bytes of
    /// framing), the stamps, the removed ids and the per-flight entries —
    /// the same per-entry footprint as a full snapshot, but only over the
    /// changed subset. Used by the WAN catch-up accounting.
    pub fn wire_size(&self) -> usize {
        14 + self.base.wire_size()
            + self.as_of.wire_size()
            + self.removed.len() * 4
            + self.changed.values().map(crate::flight::FlightView::wire_size).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flight::FlightView;
    use crate::state::OperationalState;
    use mirror_core::event::{Event, FlightStatus, PositionFix};

    fn fix(alt: f64) -> PositionFix {
        PositionFix { lat: 1.0, lon: 2.0, alt_ft: alt, speed_kts: 400.0, heading_deg: 45.0 }
    }

    #[test]
    fn delta_applies_changes_and_removals() {
        let mut base = OperationalState::new();
        for f in 0..10u32 {
            base.apply(&Event::faa_position(1, f, fix(1000.0)));
        }
        let mut target = base.clone();
        target.apply(&Event::faa_position(2, 3, fix(2000.0)));
        target.apply(&Event::delta_status(1, 7, FlightStatus::Landed));
        target.retain_flights(|id| id != 9);

        let mut changed = FlightMap::default();
        for id in [3u32, 7] {
            changed.insert(id, target.flight(id).unwrap().clone());
        }
        let delta = StateDelta::from_parts(
            changed,
            vec![9],
            VectorTimestamp::empty(),
            VectorTimestamp::empty(),
        );
        assert!(!delta.is_empty());
        assert_eq!(delta.changed_count(), 2);
        assert_eq!(delta.removed(), &[9]);

        base.apply_delta(&delta);
        assert_eq!(base.state_hash(), target.state_hash());
    }

    #[test]
    fn wire_size_tracks_contents() {
        let empty = StateDelta::from_parts(
            FlightMap::default(),
            Vec::new(),
            VectorTimestamp::empty(),
            VectorTimestamp::empty(),
        );
        assert!(empty.is_empty());
        let mut one = FlightMap::default();
        one.insert(1, FlightView::default());
        let d = StateDelta::from_parts(
            one,
            vec![2, 3],
            VectorTimestamp::empty(),
            VectorTimestamp::empty(),
        );
        // One fix-less changed entry plus two removed ids.
        assert_eq!(d.wire_size() - empty.wire_size(), FlightView::default().wire_size() + 8);
        // A position-carrying view is exactly the cost-model constant.
        let full = FlightView {
            position: Some(PositionFix {
                lat: 0.0,
                lon: 0.0,
                alt_ft: 0.0,
                speed_kts: 0.0,
                heading_deg: 0.0,
            }),
            ..Default::default()
        };
        assert_eq!(full.wire_size(), crate::snapshot::SNAPSHOT_FLIGHT_WIRE_SIZE);
    }
}
