//! Initial-state snapshots for thin clients.
//!
//! The paper's dominant client-request type: "clients request new initial
//! states when airport or gate displays are brought back online after
//! failures" (§1). A recovering thin client cannot interpret the event
//! stream without a base state, so a mirror site builds a [`Snapshot`] of
//! its operational state and ships it; the client then applies subsequent
//! events on top.
//!
//! Snapshot construction and transfer cost scale with the number of
//! flights — this is why a burst of simultaneous initializations loads a
//! site heavily, and why spreading them across mirrors (and shedding
//! mirroring overhead via adaptation) buys predictability.

use mirror_core::event::FlightId;
use mirror_core::timestamp::VectorTimestamp;

use crate::flight::FlightView;
use crate::state::{FlightMap, OperationalState};

/// On-wire footprint of one position-carrying flight entry in a snapshot
/// or delta: id (4), status (1), position-presence tag (1), fix (40),
/// position-seq (8), boarded (4), expected (4), bags loaded (4), bags
/// reconciled (4), updates (8). The steady-state common case — cost models
/// use this constant; exact accounting uses [`FlightView::wire_size`],
/// which is smaller for entries with no fix yet.
pub const SNAPSHOT_FLIGHT_WIRE_SIZE: usize = 4 + 1 + 1 + 40 + 8 + 4 + 4 + 4 + 4 + 8;

/// A client-initialization snapshot: a consistent copy of the operational
/// state plus the timestamp frontier it reflects.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    flights: FlightMap,
    /// Frontier of events reflected in this snapshot; the client resumes
    /// interpreting stream events from here.
    pub as_of: VectorTimestamp,
}

impl Snapshot {
    /// Capture the given state at the given frontier.
    pub fn capture(state: &OperationalState, as_of: VectorTimestamp) -> Self {
        Snapshot { flights: state.flights().clone(), as_of }
    }

    /// Number of flights in the snapshot.
    pub fn flight_count(&self) -> usize {
        self.flights.len()
    }

    /// Bytes this snapshot occupies on a client link, exactly matching the
    /// encoder: version + kind + entry count + stamp width (8 bytes of
    /// framing), the frontier stamp, then the per-flight entries. Used by
    /// both the request-servicing cost model and the real server's
    /// accounting.
    pub fn wire_size(&self) -> usize {
        8 + self.as_of.wire_size() + self.flights.values().map(FlightView::wire_size).sum::<usize>()
    }

    /// Install the snapshot into a fresh state store (client-side
    /// initialization). The returned store hashes identically to the
    /// source at capture time.
    pub fn restore(&self) -> OperationalState {
        let mut s = OperationalState::new();
        s.install(self.flights.clone());
        s
    }

    /// By-value [`restore`](Self::restore): consumes the snapshot and moves
    /// the flight map into the new store, skipping the second clone. The
    /// right call for one-shot recovery (a rejoining mirror, a cold-started
    /// site, a display initializing from its fetched snapshot).
    pub fn into_state(self) -> OperationalState {
        let mut s = OperationalState::new();
        s.install(self.flights);
        s
    }

    /// Look up one flight.
    pub fn flight(&self, id: FlightId) -> Option<&FlightView> {
        self.flights.get(&id)
    }

    /// Iterate flight entries in unspecified order (wire encoders sort).
    pub fn iter(&self) -> impl Iterator<Item = (&FlightId, &FlightView)> {
        self.flights.iter()
    }

    /// Reassemble a snapshot from its parts (wire decoding).
    pub fn from_parts(flights: FlightMap, as_of: VectorTimestamp) -> Self {
        Snapshot { flights, as_of }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mirror_core::event::{Event, FlightStatus, PositionFix};

    fn fix() -> PositionFix {
        PositionFix { lat: 1.0, lon: 2.0, alt_ft: 30000.0, speed_kts: 450.0, heading_deg: 10.0 }
    }

    fn populated_state(n: u32) -> OperationalState {
        let mut s = OperationalState::new();
        for f in 0..n {
            s.apply(&Event::faa_position(1, f, fix()));
            s.apply(&Event::delta_status(1, f, FlightStatus::EnRoute));
        }
        s
    }

    #[test]
    fn capture_restore_roundtrip_preserves_hash() {
        let s = populated_state(50);
        let snap = Snapshot::capture(&s, VectorTimestamp::from_components(vec![50, 50]));
        let restored = snap.restore();
        assert_eq!(restored.state_hash(), s.state_hash());
        assert_eq!(snap.flight_count(), 50);
    }

    #[test]
    fn wire_size_scales_with_flights() {
        let small = Snapshot::capture(&populated_state(10), VectorTimestamp::empty());
        let large = Snapshot::capture(&populated_state(100), VectorTimestamp::empty());
        assert!(large.wire_size() > small.wire_size());
        assert_eq!(large.wire_size() - small.wire_size(), 90 * SNAPSHOT_FLIGHT_WIRE_SIZE);
    }

    #[test]
    fn client_recovery_snapshot_plus_replay() {
        // The full thin-client recovery flow: snapshot, then replay events
        // newer than the frontier; client converges to server state.
        let mut server = populated_state(5);
        let snap = Snapshot::capture(&server, VectorTimestamp::from_components(vec![1, 1]));

        // Server keeps processing after the snapshot.
        let late1 = Event::faa_position(2, 3, fix());
        let late2 = Event::delta_status(2, 4, FlightStatus::Landed);
        server.apply(&late1);
        server.apply(&late2);

        // Client restores and replays exactly the post-frontier events.
        let mut client = snap.restore();
        client.apply(&late1);
        client.apply(&late2);
        assert_eq!(client.state_hash(), server.state_hash());
    }

    #[test]
    fn snapshot_lookup() {
        let s = populated_state(3);
        let snap = Snapshot::capture(&s, VectorTimestamp::empty());
        assert!(snap.flight(2).is_some());
        assert!(snap.flight(99).is_none());
    }
}
