//! The deterministic operational state store.
//!
//! "All mirrors produce the same output events, and produce identical
//! modifications to their locally maintained application states" (§3.1).
//! [`OperationalState`] is that application state: the set of
//! [`FlightView`]s. Applying the same event sequence always yields the same
//! store, and [`state_hash`](OperationalState::state_hash) produces a
//! canonical digest (iteration-order independent) with which tests and the
//! experiment harness verify cross-mirror consistency.

use std::collections::HashMap;

use mirror_core::event::{Event, EventBody, FlightId, FlightStatus};

use crate::flight::FlightView;

// The flight-id hasher lives in `mirror_core::hashing` so partition
// routing, intra-site sharding, and the edge subscription index all derive
// from the same Fibonacci mix; re-exported here for the table aliases below.
pub use mirror_core::hashing::{BuildFlightHasher, FlightIdHasher};

/// The flight table: flight id → view, keyed with the cheap
/// [`FlightIdHasher`].
pub type FlightMap = HashMap<FlightId, FlightView, BuildFlightHasher>;

/// The operational state of the OIS: one view per known flight.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OperationalState {
    flights: FlightMap,
    /// Events applied (including ones absorbed as stale).
    pub applied: u64,
    /// Store version: bumped on every apply that changed the store
    /// (including creating a flight entry) and on [`install`](Self::install).
    /// A *local* cache-invalidation counter — deliberately excluded from
    /// [`state_hash`](Self::state_hash), so it never participates in
    /// cross-mirror consistency checks.
    epoch: u64,
}

impl OperationalState {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Apply one event deterministically. Stale/regressive updates are
    /// absorbed (the store never errors — see `flight` module docs).
    /// Returns `true` if the event changed state.
    pub fn apply(&mut self, event: &Event) -> bool {
        self.applied += 1;
        let flights_before = self.flights.len();
        let view = self.flights.entry(event.flight).or_default();
        let changed = match &event.body {
            EventBody::Position(p) => view.apply_position(event.seq, *p),
            EventBody::Coalesced { last, count: _ } => view.apply_position(event.seq, *last),
            EventBody::Status(s) => view.transition(*s).is_ok(),
            EventBody::Derived { status, .. } => view.transition(*status).is_ok(),
            EventBody::Boarding { boarded, expected } => {
                // `apply_boarding` returns the *completion edge*, not
                // "changed" — compare the replicated fields instead, so a
                // stale/duplicate gate report doesn't bump the epoch (and
                // invalidate snapshot caches) for a no-op.
                let before = (view.boarded, view.expected);
                view.apply_boarding(*boarded, *expected);
                (view.boarded, view.expected) != before
            }
            EventBody::Baggage { loaded, reconciled } => view.apply_baggage(*loaded, *reconciled),
            EventBody::Opaque(_) => false,
        };
        // A freshly created entry changes the hash even when the body was
        // absorbed, so it must invalidate snapshot caches too.
        if changed || self.flights.len() != flights_before {
            self.epoch += 1;
        }
        changed
    }

    /// Current store version (see the field docs): compare two readings to
    /// tell whether the state changed in between. Local bookkeeping — two
    /// mirrors applying *equivalent but differently coalesced* streams may
    /// disagree on epochs while agreeing on `state_hash`.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Look up a flight.
    pub fn flight(&self, id: FlightId) -> Option<&FlightView> {
        self.flights.get(&id)
    }

    /// Number of flights tracked.
    pub fn flight_count(&self) -> usize {
        self.flights.len()
    }

    /// Iterate flights in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&FlightId, &FlightView)> {
        self.flights.iter()
    }

    /// Flights currently airborne.
    pub fn airborne_count(&self) -> usize {
        self.flights.values().filter(|f| f.airborne()).count()
    }

    /// Flights in a given status.
    pub fn count_in_status(&self, status: FlightStatus) -> usize {
        self.flights.values().filter(|f| f.status == status).count()
    }

    /// Canonical digest of the store: FNV-1a over flights serialized in
    /// ascending flight-id order. Two mirrors hold identical application
    /// state iff their hashes agree.
    pub fn state_hash(&self) -> u64 {
        let mut ids: Vec<FlightId> = self.flights.keys().copied().collect();
        ids.sort_unstable();
        hash_sorted_flights(ids.iter().map(|id| (*id, &self.flights[id])))
    }

    /// Replace this store's contents (used when installing a snapshot).
    pub fn install(&mut self, flights: FlightMap) {
        self.flights = flights;
        self.epoch += 1;
    }

    /// Insert-or-overwrite flights from another store (the partition
    /// migration merge: the incoming views are the source group's
    /// authoritative copies). Bumps the epoch once when anything landed.
    pub fn merge_flights<'a>(
        &mut self,
        incoming: impl Iterator<Item = (FlightId, &'a FlightView)>,
    ) {
        let mut any = false;
        for (id, view) in incoming {
            self.flights.insert(id, view.clone());
            any = true;
        }
        if any {
            self.epoch += 1;
        }
    }

    /// Drop every flight for which `keep` returns false (the migration
    /// source's purge). Returns the number removed; bumps the epoch when
    /// anything was removed (the hash changed, caches must refresh).
    pub fn retain_flights(&mut self, keep: impl Fn(FlightId) -> bool) -> usize {
        let before = self.flights.len();
        self.flights.retain(|id, _| keep(*id));
        let removed = before - self.flights.len();
        if removed > 0 {
            self.epoch += 1;
        }
        removed
    }

    /// Pin the epoch (engine-internal: keeps it monotone across
    /// [`Ede::install_state`](crate::Ede::install_state)).
    pub(crate) fn force_epoch(&mut self, epoch: u64) {
        self.epoch = epoch;
    }

    /// Clone out the flight map (snapshot construction).
    pub fn flights(&self) -> &FlightMap {
        &self.flights
    }
}

/// The canonical FNV-1a digest over flight views presented in **ascending
/// flight-id order**. Shared by [`OperationalState::state_hash`], the
/// sharded store's merged hash (`sharded`), and the partitioned cluster's
/// union hash: partitioning the flight map — per-shard or per-group — is
/// invisible to the digest because every consumer feeds this function the
/// same globally sorted sequence.
pub fn hash_sorted_flights<'a>(sorted: impl Iterator<Item = (FlightId, &'a FlightView)>) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf29ce484222325;
    const FNV_PRIME: u64 = 0x100000001b3;
    let mut h = FNV_OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
    };
    for (id, f) in sorted {
        eat(&id.to_le_bytes());
        eat(&[f.status as u8]);
        eat(&f.position_seq.to_le_bytes());
        if let Some(p) = &f.position {
            eat(&p.lat.to_bits().to_le_bytes());
            eat(&p.lon.to_bits().to_le_bytes());
            eat(&p.alt_ft.to_bits().to_le_bytes());
        }
        eat(&f.boarded.to_le_bytes());
        eat(&f.expected.to_le_bytes());
        eat(&f.bags_loaded.to_le_bytes());
        eat(&f.bags_reconciled.to_le_bytes());
    }
    h
}

/// Canonical digest of the **union** of disjoint stores: every flight from
/// every store, globally sorted, fed to [`hash_sorted_flights`]. When the
/// stores partition the flight space (each flight lives in exactly one),
/// this equals the [`OperationalState::state_hash`] of a single store that
/// applied the whole stream — the equivalence the partitioned cluster's
/// acceptance assert checks.
pub fn union_state_hash<'a>(states: impl Iterator<Item = &'a OperationalState>) -> u64 {
    let mut all: Vec<(FlightId, &FlightView)> = Vec::new();
    for s in states {
        all.extend(s.flights.iter().map(|(id, v)| (*id, v)));
    }
    all.sort_unstable_by_key(|(id, _)| *id);
    hash_sorted_flights(all.into_iter())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mirror_core::event::PositionFix;

    fn fix(alt: f64) -> PositionFix {
        PositionFix { lat: 10.0, lon: 20.0, alt_ft: alt, speed_kts: 400.0, heading_deg: 90.0 }
    }

    fn sample_events() -> Vec<Event> {
        vec![
            Event::delta_status(1, 100, FlightStatus::Boarding),
            Event::faa_position(1, 100, fix(0.0)),
            Event::new(1, 2, 100, EventBody::Boarding { boarded: 150, expected: 150 }),
            Event::delta_status(3, 100, FlightStatus::Departed),
            Event::faa_position(2, 100, fix(31000.0)),
            Event::delta_status(4, 200, FlightStatus::Cancelled),
            Event::faa_position(3, 300, fix(5000.0)),
        ]
    }

    #[test]
    fn apply_builds_consistent_views() {
        let mut s = OperationalState::new();
        for e in sample_events() {
            s.apply(&e);
        }
        assert_eq!(s.flight_count(), 3);
        let f = s.flight(100).unwrap();
        assert_eq!(f.status, FlightStatus::Departed);
        assert_eq!(f.position.unwrap().alt_ft, 31000.0);
        assert!(f.boarding_complete());
        assert_eq!(s.flight(200).unwrap().status, FlightStatus::Cancelled);
        assert_eq!(s.count_in_status(FlightStatus::Cancelled), 1);
        assert_eq!(s.airborne_count(), 1);
    }

    #[test]
    fn same_sequence_same_hash() {
        let mut a = OperationalState::new();
        let mut b = OperationalState::new();
        for e in sample_events() {
            a.apply(&e);
            b.apply(&e);
        }
        assert_eq!(a.state_hash(), b.state_hash());
        assert_eq!(a, b);
    }

    #[test]
    fn hash_is_insertion_order_independent() {
        // Different arrival order of *independent* flights must hash equal.
        let e1 = Event::delta_status(1, 1, FlightStatus::Boarding);
        let e2 = Event::delta_status(1, 2, FlightStatus::Landed);
        let mut a = OperationalState::new();
        a.apply(&e1);
        a.apply(&e2);
        let mut b = OperationalState::new();
        b.apply(&e2);
        b.apply(&e1);
        assert_eq!(a.state_hash(), b.state_hash());
    }

    #[test]
    fn hash_detects_divergence() {
        let mut a = OperationalState::new();
        let mut b = OperationalState::new();
        a.apply(&Event::delta_status(1, 1, FlightStatus::Landed));
        b.apply(&Event::delta_status(1, 1, FlightStatus::Arrived));
        assert_ne!(a.state_hash(), b.state_hash());
    }

    #[test]
    fn stale_events_do_not_change_state() {
        let mut s = OperationalState::new();
        s.apply(&Event::faa_position(5, 1, fix(1000.0)));
        let h = s.state_hash();
        assert!(!s.apply(&Event::faa_position(2, 1, fix(9999.0))), "stale seq absorbed");
        assert_eq!(s.state_hash(), h);
    }

    #[test]
    fn stale_boarding_does_not_change_state_or_epoch() {
        // Regression: the Boarding arm used to report `true`
        // unconditionally (apply_boarding returns the completion edge, not
        // "changed"), so duplicate gate reports bumped the epoch and
        // invalidated snapshot caches for no state change.
        let mut s = OperationalState::new();
        assert!(s.apply(&Event::new(1, 1, 7, EventBody::Boarding { boarded: 80, expected: 100 })));
        let (h, epoch) = (s.state_hash(), s.epoch());
        // Exact duplicate: no change.
        assert!(!s.apply(&Event::new(1, 2, 7, EventBody::Boarding { boarded: 80, expected: 100 })));
        // Stale (lower) count: monotone absorb, no change.
        assert!(!s.apply(&Event::new(1, 3, 7, EventBody::Boarding { boarded: 50, expected: 100 })));
        assert_eq!((s.state_hash(), s.epoch()), (h, epoch));
        assert_eq!(s.applied, 3, "absorbed events still count as applied");
        // A genuinely newer report changes state and bumps the epoch again.
        assert!(s.apply(&Event::new(1, 4, 7, EventBody::Boarding { boarded: 100, expected: 100 })));
        assert_ne!(s.state_hash(), h);
        assert_eq!(s.epoch(), epoch + 1);
    }

    #[test]
    fn baggage_reports_change_state_and_hash() {
        let mut s = OperationalState::new();
        s.apply(&Event::delta_status(1, 7, FlightStatus::Boarding));
        let before = s.state_hash();
        assert!(s.apply(&Event::new(1, 2, 7, EventBody::Baggage { loaded: 90, reconciled: 45 })));
        assert_ne!(s.state_hash(), before, "baggage must be part of replicated state");
        let f = s.flight(7).unwrap();
        assert_eq!((f.bags_loaded, f.bags_reconciled), (90, 45));
        // A stale report neither changes state nor the hash.
        let h = s.state_hash();
        assert!(!s.apply(&Event::new(1, 3, 7, EventBody::Baggage { loaded: 10, reconciled: 5 })));
        assert_eq!(s.state_hash(), h);
    }

    #[test]
    fn epoch_tracks_state_changes_not_applies() {
        let mut s = OperationalState::new();
        assert_eq!(s.epoch(), 0);
        s.apply(&Event::faa_position(5, 1, fix(1000.0)));
        assert_eq!(s.epoch(), 1);
        // Stale update on an existing flight: absorbed, no epoch bump.
        s.apply(&Event::faa_position(2, 1, fix(9999.0)));
        assert_eq!(s.epoch(), 1);
        assert_eq!(s.applied, 2);
        // An absorbed body can still *create* a flight entry — that changes
        // the hash, so it must bump the epoch.
        let before = s.state_hash();
        s.apply(&Event::new(1, 1, 42, EventBody::Opaque(vec![1, 2, 3].into())));
        assert_ne!(s.state_hash(), before);
        assert_eq!(s.epoch(), 2);
        // Installing a snapshot replaces the store wholesale.
        let flights = s.flights().clone();
        s.install(flights);
        assert_eq!(s.epoch(), 3);
    }

    #[test]
    fn epoch_stays_out_of_the_state_hash() {
        // Two stores that converge to the same hashed state via different
        // update histories disagree on epoch — proof the epoch is local
        // bookkeeping, not part of the replicated digest.
        let mut a = OperationalState::new();
        let mut b = OperationalState::new();
        a.apply(&Event::faa_position(3, 9, fix(12000.0)));
        b.apply(&Event::faa_position(1, 9, fix(500.0)));
        b.apply(&Event::faa_position(3, 9, fix(12000.0)));
        assert_eq!(a.state_hash(), b.state_hash());
        assert_ne!(a.epoch(), b.epoch());
    }

    #[test]
    fn coalesced_events_apply_like_their_last_fix() {
        let mut direct = OperationalState::new();
        direct.apply(&Event::faa_position(10, 1, fix(22000.0)));

        let mut via_coalesced = OperationalState::new();
        let mut c = Event::new(0, 10, 1, EventBody::Coalesced { last: fix(22000.0), count: 10 });
        c.stamp.advance(0, 10);
        via_coalesced.apply(&c);

        assert_eq!(direct.state_hash(), via_coalesced.state_hash());
    }
}
