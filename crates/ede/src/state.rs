//! The deterministic operational state store.
//!
//! "All mirrors produce the same output events, and produce identical
//! modifications to their locally maintained application states" (§3.1).
//! [`OperationalState`] is that application state: the set of
//! [`FlightView`]s. Applying the same event sequence always yields the same
//! store, and [`state_hash`](OperationalState::state_hash) produces a
//! canonical digest (iteration-order independent) with which tests and the
//! experiment harness verify cross-mirror consistency.

use std::collections::{HashMap, VecDeque};

use mirror_core::event::{Event, EventBody, FlightId, FlightStatus};
use mirror_core::timestamp::{StampOrdering, VectorTimestamp};

use crate::delta::StateDelta;
use crate::flight::FlightView;

// The flight-id hasher lives in `mirror_core::hashing` so partition
// routing, intra-site sharding, and the edge subscription index all derive
// from the same Fibonacci mix; re-exported here for the table aliases below.
pub use mirror_core::hashing::{BuildFlightHasher, FlightIdHasher};

/// The flight table: flight id → view, keyed with the cheap
/// [`FlightIdHasher`].
pub type FlightMap = HashMap<FlightId, FlightView, BuildFlightHasher>;

/// Per-flight change-epoch table (same cheap hasher as the flight table).
type EpochMap = HashMap<FlightId, u64, BuildFlightHasher>;

/// How many capture frontiers the store remembers as valid delta bases.
/// A consumer whose base fell out of this window gets a full snapshot
/// instead — the window bounds the tombstone set and the log itself.
pub const DELTA_BASE_WINDOW: usize = 64;

/// The operational state of the OIS: one view per known flight.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OperationalState {
    flights: FlightMap,
    /// Events applied (including ones absorbed as stale).
    pub applied: u64,
    /// Store version: bumped on every apply that changed the store
    /// (including creating a flight entry) and on [`install`](Self::install).
    /// A *local* cache-invalidation counter — deliberately excluded from
    /// [`state_hash`](Self::state_hash), so it never participates in
    /// cross-mirror consistency checks.
    epoch: u64,
    /// Epoch at which each live flight last changed — the index a
    /// [`capture_delta`](Self::capture_delta) scan filters against.
    changed_at: EpochMap,
    /// Flights removed (migration purges) and the epoch of their removal,
    /// retained while any remembered base predates the removal.
    tombstones: EpochMap,
    /// Capture frontiers this store can serve deltas against: stamp → epoch
    /// at capture time, appended by [`mark_frontier`](Self::mark_frontier),
    /// bounded to [`DELTA_BASE_WINDOW`] entries.
    frontier_log: VecDeque<(VectorTimestamp, u64)>,
}

impl OperationalState {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Apply one event deterministically. Stale/regressive updates are
    /// absorbed (the store never errors — see `flight` module docs).
    /// Returns `true` if the event changed state.
    pub fn apply(&mut self, event: &Event) -> bool {
        self.applied += 1;
        let flights_before = self.flights.len();
        let view = self.flights.entry(event.flight).or_default();
        let changed = match &event.body {
            EventBody::Position(p) => view.apply_position(event.seq, *p),
            EventBody::Coalesced { last, count: _ } => view.apply_position(event.seq, *last),
            EventBody::Status(s) => view.transition(*s).is_ok(),
            EventBody::Derived { status, .. } => view.transition(*status).is_ok(),
            EventBody::Boarding { boarded, expected } => {
                // `apply_boarding` returns the *completion edge*, not
                // "changed" — compare the replicated fields instead, so a
                // stale/duplicate gate report doesn't bump the epoch (and
                // invalidate snapshot caches) for a no-op.
                let before = (view.boarded, view.expected);
                view.apply_boarding(*boarded, *expected);
                (view.boarded, view.expected) != before
            }
            EventBody::Baggage { loaded, reconciled } => view.apply_baggage(*loaded, *reconciled),
            EventBody::Opaque(_) => false,
        };
        // A freshly created entry changes the hash even when the body was
        // absorbed, so it must invalidate snapshot caches too.
        if changed || self.flights.len() != flights_before {
            self.epoch += 1;
            self.changed_at.insert(event.flight, self.epoch);
            if self.flights.len() != flights_before {
                // Re-created after a migration purge: the removal is moot.
                self.tombstones.remove(&event.flight);
            }
        }
        changed
    }

    /// Current store version (see the field docs): compare two readings to
    /// tell whether the state changed in between. Local bookkeeping — two
    /// mirrors applying *equivalent but differently coalesced* streams may
    /// disagree on epochs while agreeing on `state_hash`.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Look up a flight.
    pub fn flight(&self, id: FlightId) -> Option<&FlightView> {
        self.flights.get(&id)
    }

    /// Number of flights tracked.
    pub fn flight_count(&self) -> usize {
        self.flights.len()
    }

    /// Iterate flights in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&FlightId, &FlightView)> {
        self.flights.iter()
    }

    /// Flights currently airborne.
    pub fn airborne_count(&self) -> usize {
        self.flights.values().filter(|f| f.airborne()).count()
    }

    /// Flights in a given status.
    pub fn count_in_status(&self, status: FlightStatus) -> usize {
        self.flights.values().filter(|f| f.status == status).count()
    }

    /// Canonical digest of the store: FNV-1a over flights serialized in
    /// ascending flight-id order. Two mirrors hold identical application
    /// state iff their hashes agree.
    pub fn state_hash(&self) -> u64 {
        let mut ids: Vec<FlightId> = self.flights.keys().copied().collect();
        ids.sort_unstable();
        hash_sorted_flights(ids.iter().map(|id| (*id, &self.flights[id])))
    }

    /// Replace this store's contents (used when installing a snapshot).
    /// The new store derives from none of the previously remembered capture
    /// frontiers, so the delta base window resets: the first deltas become
    /// servable again after the next [`mark_frontier`](Self::mark_frontier).
    pub fn install(&mut self, flights: FlightMap) {
        self.flights = flights;
        self.epoch += 1;
        self.changed_at = self.flights.keys().map(|id| (*id, self.epoch)).collect();
        self.tombstones.clear();
        self.frontier_log.clear();
    }

    /// Insert-or-overwrite flights from another store (the partition
    /// migration merge: the incoming views are the source group's
    /// authoritative copies). Bumps the epoch once when anything landed.
    pub fn merge_flights<'a>(
        &mut self,
        incoming: impl Iterator<Item = (FlightId, &'a FlightView)>,
    ) {
        let mut landed: Vec<FlightId> = Vec::new();
        for (id, view) in incoming {
            self.flights.insert(id, view.clone());
            landed.push(id);
        }
        if !landed.is_empty() {
            self.epoch += 1;
            for id in landed {
                self.changed_at.insert(id, self.epoch);
                self.tombstones.remove(&id);
            }
        }
    }

    /// Drop every flight for which `keep` returns false (the migration
    /// source's purge). Returns the number removed; bumps the epoch when
    /// anything was removed (the hash changed, caches must refresh).
    pub fn retain_flights(&mut self, keep: impl Fn(FlightId) -> bool) -> usize {
        let before = self.flights.len();
        let mut gone: Vec<FlightId> = Vec::new();
        self.flights.retain(|id, _| {
            let k = keep(*id);
            if !k {
                gone.push(*id);
            }
            k
        });
        let removed = before - self.flights.len();
        if removed > 0 {
            self.epoch += 1;
            for id in gone {
                self.changed_at.remove(&id);
                self.tombstones.insert(id, self.epoch);
            }
        }
        removed
    }

    /// Remember the current epoch as the delta base for a capture taken at
    /// frontier `as_of`. Every snapshot capture calls this, turning the
    /// capture into a frontier later consumers can hand back to
    /// [`capture_delta`](Self::capture_delta). A stamp already in the log
    /// keeps its original (older) entry: serving a delta against the older
    /// epoch can only resend changes the consumer already holds, which the
    /// authoritative whole-view entries absorb idempotently.
    pub fn mark_frontier(&mut self, as_of: &VectorTimestamp) {
        if self.lookup_base(as_of).is_some() {
            return;
        }
        self.frontier_log.push_back((as_of.clone(), self.epoch));
        if self.frontier_log.len() > DELTA_BASE_WINDOW {
            self.frontier_log.pop_front();
            // Tombstones at or before the oldest remembered base are folded
            // into every servable delta's base state already.
            if let Some(&(_, oldest)) = self.frontier_log.front() {
                self.tombstones.retain(|_, &mut e| e > oldest);
            }
        }
    }

    fn lookup_base(&self, since: &VectorTimestamp) -> Option<u64> {
        self.frontier_log
            .iter()
            .rev()
            .find(|(stamp, _)| stamp.compare(since) == StampOrdering::Equal)
            .map(|&(_, epoch)| epoch)
    }

    /// Capture everything that changed since the capture at frontier
    /// `since`: flights whose views moved past the base epoch plus the ids
    /// purged since. Returns `None` when `since` is not a remembered base
    /// (fell out of the [`DELTA_BASE_WINDOW`], or was never marked) — the
    /// caller falls back to a full snapshot. `as_of` is the frontier the
    /// delta brings its consumer to, read *before* the store was frozen
    /// (the same frontier-before-freeze discipline as full captures).
    pub fn capture_delta(
        &self,
        since: &VectorTimestamp,
        as_of: VectorTimestamp,
    ) -> Option<StateDelta> {
        let base_epoch = self.lookup_base(since)?;
        let mut changed = FlightMap::default();
        for (id, &at) in &self.changed_at {
            if at > base_epoch {
                changed.insert(*id, self.flights[id].clone());
            }
        }
        let mut removed: Vec<FlightId> =
            self.tombstones.iter().filter(|&(_, &e)| e > base_epoch).map(|(id, _)| *id).collect();
        removed.sort_unstable();
        Some(StateDelta::from_parts(changed, removed, since.clone(), as_of))
    }

    /// Fold a delta into this store: changed flights overwrite wholesale
    /// (they are the producer's authoritative views), removed flights drop.
    /// The caller is responsible for holding state derived from the delta's
    /// base (see [`StateDelta`] docs). Bumps the epoch when anything moved.
    pub fn apply_delta(&mut self, delta: &StateDelta) {
        if delta.is_empty() {
            return;
        }
        self.epoch += 1;
        for (id, view) in delta.changed() {
            self.flights.insert(*id, view.clone());
            self.changed_at.insert(*id, self.epoch);
            self.tombstones.remove(id);
        }
        for id in delta.removed() {
            if self.flights.remove(id).is_some() {
                self.changed_at.remove(id);
                self.tombstones.insert(*id, self.epoch);
            }
        }
    }

    /// Pin the epoch (engine-internal: keeps it monotone across
    /// [`Ede::install_state`](crate::Ede::install_state)).
    pub(crate) fn force_epoch(&mut self, epoch: u64) {
        self.epoch = epoch;
    }

    /// Clone out the flight map (snapshot construction).
    pub fn flights(&self) -> &FlightMap {
        &self.flights
    }
}

/// The canonical FNV-1a digest over flight views presented in **ascending
/// flight-id order**. Shared by [`OperationalState::state_hash`], the
/// sharded store's merged hash (`sharded`), and the partitioned cluster's
/// union hash: partitioning the flight map — per-shard or per-group — is
/// invisible to the digest because every consumer feeds this function the
/// same globally sorted sequence.
pub fn hash_sorted_flights<'a>(sorted: impl Iterator<Item = (FlightId, &'a FlightView)>) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf29ce484222325;
    const FNV_PRIME: u64 = 0x100000001b3;
    let mut h = FNV_OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
    };
    for (id, f) in sorted {
        eat(&id.to_le_bytes());
        eat(&[f.status as u8]);
        eat(&f.position_seq.to_le_bytes());
        if let Some(p) = &f.position {
            eat(&p.lat.to_bits().to_le_bytes());
            eat(&p.lon.to_bits().to_le_bytes());
            eat(&p.alt_ft.to_bits().to_le_bytes());
        }
        eat(&f.boarded.to_le_bytes());
        eat(&f.expected.to_le_bytes());
        eat(&f.bags_loaded.to_le_bytes());
        eat(&f.bags_reconciled.to_le_bytes());
    }
    h
}

/// Canonical digest of the **union** of disjoint stores: every flight from
/// every store, globally sorted, fed to [`hash_sorted_flights`]. When the
/// stores partition the flight space (each flight lives in exactly one),
/// this equals the [`OperationalState::state_hash`] of a single store that
/// applied the whole stream — the equivalence the partitioned cluster's
/// acceptance assert checks.
pub fn union_state_hash<'a>(states: impl Iterator<Item = &'a OperationalState>) -> u64 {
    let mut all: Vec<(FlightId, &FlightView)> = Vec::new();
    for s in states {
        all.extend(s.flights.iter().map(|(id, v)| (*id, v)));
    }
    all.sort_unstable_by_key(|(id, _)| *id);
    hash_sorted_flights(all.into_iter())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mirror_core::event::PositionFix;

    fn fix(alt: f64) -> PositionFix {
        PositionFix { lat: 10.0, lon: 20.0, alt_ft: alt, speed_kts: 400.0, heading_deg: 90.0 }
    }

    fn sample_events() -> Vec<Event> {
        vec![
            Event::delta_status(1, 100, FlightStatus::Boarding),
            Event::faa_position(1, 100, fix(0.0)),
            Event::new(1, 2, 100, EventBody::Boarding { boarded: 150, expected: 150 }),
            Event::delta_status(3, 100, FlightStatus::Departed),
            Event::faa_position(2, 100, fix(31000.0)),
            Event::delta_status(4, 200, FlightStatus::Cancelled),
            Event::faa_position(3, 300, fix(5000.0)),
        ]
    }

    #[test]
    fn apply_builds_consistent_views() {
        let mut s = OperationalState::new();
        for e in sample_events() {
            s.apply(&e);
        }
        assert_eq!(s.flight_count(), 3);
        let f = s.flight(100).unwrap();
        assert_eq!(f.status, FlightStatus::Departed);
        assert_eq!(f.position.unwrap().alt_ft, 31000.0);
        assert!(f.boarding_complete());
        assert_eq!(s.flight(200).unwrap().status, FlightStatus::Cancelled);
        assert_eq!(s.count_in_status(FlightStatus::Cancelled), 1);
        assert_eq!(s.airborne_count(), 1);
    }

    #[test]
    fn same_sequence_same_hash() {
        let mut a = OperationalState::new();
        let mut b = OperationalState::new();
        for e in sample_events() {
            a.apply(&e);
            b.apply(&e);
        }
        assert_eq!(a.state_hash(), b.state_hash());
        assert_eq!(a, b);
    }

    #[test]
    fn hash_is_insertion_order_independent() {
        // Different arrival order of *independent* flights must hash equal.
        let e1 = Event::delta_status(1, 1, FlightStatus::Boarding);
        let e2 = Event::delta_status(1, 2, FlightStatus::Landed);
        let mut a = OperationalState::new();
        a.apply(&e1);
        a.apply(&e2);
        let mut b = OperationalState::new();
        b.apply(&e2);
        b.apply(&e1);
        assert_eq!(a.state_hash(), b.state_hash());
    }

    #[test]
    fn hash_detects_divergence() {
        let mut a = OperationalState::new();
        let mut b = OperationalState::new();
        a.apply(&Event::delta_status(1, 1, FlightStatus::Landed));
        b.apply(&Event::delta_status(1, 1, FlightStatus::Arrived));
        assert_ne!(a.state_hash(), b.state_hash());
    }

    #[test]
    fn stale_events_do_not_change_state() {
        let mut s = OperationalState::new();
        s.apply(&Event::faa_position(5, 1, fix(1000.0)));
        let h = s.state_hash();
        assert!(!s.apply(&Event::faa_position(2, 1, fix(9999.0))), "stale seq absorbed");
        assert_eq!(s.state_hash(), h);
    }

    #[test]
    fn stale_boarding_does_not_change_state_or_epoch() {
        // Regression: the Boarding arm used to report `true`
        // unconditionally (apply_boarding returns the completion edge, not
        // "changed"), so duplicate gate reports bumped the epoch and
        // invalidated snapshot caches for no state change.
        let mut s = OperationalState::new();
        assert!(s.apply(&Event::new(1, 1, 7, EventBody::Boarding { boarded: 80, expected: 100 })));
        let (h, epoch) = (s.state_hash(), s.epoch());
        // Exact duplicate: no change.
        assert!(!s.apply(&Event::new(1, 2, 7, EventBody::Boarding { boarded: 80, expected: 100 })));
        // Stale (lower) count: monotone absorb, no change.
        assert!(!s.apply(&Event::new(1, 3, 7, EventBody::Boarding { boarded: 50, expected: 100 })));
        assert_eq!((s.state_hash(), s.epoch()), (h, epoch));
        assert_eq!(s.applied, 3, "absorbed events still count as applied");
        // A genuinely newer report changes state and bumps the epoch again.
        assert!(s.apply(&Event::new(1, 4, 7, EventBody::Boarding { boarded: 100, expected: 100 })));
        assert_ne!(s.state_hash(), h);
        assert_eq!(s.epoch(), epoch + 1);
    }

    #[test]
    fn baggage_reports_change_state_and_hash() {
        let mut s = OperationalState::new();
        s.apply(&Event::delta_status(1, 7, FlightStatus::Boarding));
        let before = s.state_hash();
        assert!(s.apply(&Event::new(1, 2, 7, EventBody::Baggage { loaded: 90, reconciled: 45 })));
        assert_ne!(s.state_hash(), before, "baggage must be part of replicated state");
        let f = s.flight(7).unwrap();
        assert_eq!((f.bags_loaded, f.bags_reconciled), (90, 45));
        // A stale report neither changes state nor the hash.
        let h = s.state_hash();
        assert!(!s.apply(&Event::new(1, 3, 7, EventBody::Baggage { loaded: 10, reconciled: 5 })));
        assert_eq!(s.state_hash(), h);
    }

    #[test]
    fn epoch_tracks_state_changes_not_applies() {
        let mut s = OperationalState::new();
        assert_eq!(s.epoch(), 0);
        s.apply(&Event::faa_position(5, 1, fix(1000.0)));
        assert_eq!(s.epoch(), 1);
        // Stale update on an existing flight: absorbed, no epoch bump.
        s.apply(&Event::faa_position(2, 1, fix(9999.0)));
        assert_eq!(s.epoch(), 1);
        assert_eq!(s.applied, 2);
        // An absorbed body can still *create* a flight entry — that changes
        // the hash, so it must bump the epoch.
        let before = s.state_hash();
        s.apply(&Event::new(1, 1, 42, EventBody::Opaque(vec![1, 2, 3].into())));
        assert_ne!(s.state_hash(), before);
        assert_eq!(s.epoch(), 2);
        // Installing a snapshot replaces the store wholesale.
        let flights = s.flights().clone();
        s.install(flights);
        assert_eq!(s.epoch(), 3);
    }

    #[test]
    fn epoch_stays_out_of_the_state_hash() {
        // Two stores that converge to the same hashed state via different
        // update histories disagree on epoch — proof the epoch is local
        // bookkeeping, not part of the replicated digest.
        let mut a = OperationalState::new();
        let mut b = OperationalState::new();
        a.apply(&Event::faa_position(3, 9, fix(12000.0)));
        b.apply(&Event::faa_position(1, 9, fix(500.0)));
        b.apply(&Event::faa_position(3, 9, fix(12000.0)));
        assert_eq!(a.state_hash(), b.state_hash());
        assert_ne!(a.epoch(), b.epoch());
    }

    #[test]
    fn delta_capture_matches_full_replay() {
        let mut s = OperationalState::new();
        for f in 0..20u32 {
            s.apply(&Event::faa_position(1, f, fix(1000.0)));
        }
        let base_stamp = VectorTimestamp::from_components(vec![20]);
        s.mark_frontier(&base_stamp);
        let base = s.clone();

        // Diverge: touch a few flights, purge one.
        s.apply(&Event::faa_position(2, 3, fix(2000.0)));
        s.apply(&Event::delta_status(1, 7, FlightStatus::Landed));
        s.retain_flights(|id| id != 11);
        let as_of = VectorTimestamp::from_components(vec![23]);

        let delta = s.capture_delta(&base_stamp, as_of.clone()).expect("base in window");
        assert_eq!(delta.changed_count(), 2);
        assert_eq!(delta.removed(), &[11]);
        assert_eq!(delta.as_of, as_of);

        let mut caught_up = base;
        caught_up.apply_delta(&delta);
        assert_eq!(caught_up.state_hash(), s.state_hash());
    }

    #[test]
    fn delta_base_out_of_window_is_none() {
        let mut s = OperationalState::new();
        let old = VectorTimestamp::from_components(vec![1]);
        s.mark_frontier(&old);
        for i in 0..super::DELTA_BASE_WINDOW as u64 {
            s.apply(&Event::faa_position(i + 2, (i % 5) as u32, fix(i as f64)));
            s.mark_frontier(&VectorTimestamp::from_components(vec![i + 2]));
        }
        assert!(s.capture_delta(&old, VectorTimestamp::empty()).is_none(), "evicted base");
        assert!(
            s.capture_delta(&VectorTimestamp::from_components(vec![99]), VectorTimestamp::empty())
                .is_none(),
            "never-marked base"
        );
    }

    #[test]
    fn delta_recreated_flight_clears_tombstone() {
        let mut s = OperationalState::new();
        s.apply(&Event::faa_position(1, 5, fix(100.0)));
        let base_stamp = VectorTimestamp::from_components(vec![1]);
        s.mark_frontier(&base_stamp);
        let base = s.clone();
        s.retain_flights(|id| id != 5);
        s.apply(&Event::faa_position(2, 5, fix(200.0)));
        let delta =
            s.capture_delta(&base_stamp, VectorTimestamp::from_components(vec![2])).unwrap();
        assert!(delta.removed().is_empty(), "re-created flight must not carry a tombstone");
        let mut caught_up = base;
        caught_up.apply_delta(&delta);
        assert_eq!(caught_up.state_hash(), s.state_hash());
    }

    #[test]
    fn install_resets_delta_bases() {
        let mut s = OperationalState::new();
        s.apply(&Event::faa_position(1, 5, fix(100.0)));
        let stamp = VectorTimestamp::from_components(vec![1]);
        s.mark_frontier(&stamp);
        assert!(s.capture_delta(&stamp, VectorTimestamp::empty()).is_some());
        let flights = s.flights().clone();
        s.install(flights);
        assert!(
            s.capture_delta(&stamp, VectorTimestamp::empty()).is_none(),
            "installed store derives from none of the old bases"
        );
    }

    #[test]
    fn coalesced_events_apply_like_their_last_fix() {
        let mut direct = OperationalState::new();
        direct.apply(&Event::faa_position(10, 1, fix(22000.0)));

        let mut via_coalesced = OperationalState::new();
        let mut c = Event::new(0, 10, 1, EventBody::Coalesced { last: fix(22000.0), count: 10 });
        c.stamp.advance(0, 10);
        via_coalesced.apply(&c);

        assert_eq!(direct.state_hash(), via_coalesced.state_hash());
    }
}
