//! # mirror-ede — the Event Derivation Engine substrate
//!
//! The paper's OIS server runs an *Event Derivation Engine* (EDE): code
//! that "performs transactional and analytical processing of newly arrived
//! data events, according to a set of business rules", produces output
//! events for clients, and "provides clients with initial views of the
//! states of operational data on demand" (§2). Delta Air Lines' actual EDE
//! is proprietary; this crate implements an airline-operations engine with
//! the behaviours the evaluation depends on:
//!
//! * a per-flight **lifecycle state machine** ([`flight`]) fed by FAA
//!   position fixes and Delta status events, tolerant of the out-of-order
//!   and superseded updates that selective mirroring produces;
//! * **business rules** ([`engine`]) that derive new application-level
//!   events from combinations of inputs (the paper's examples: "all
//!   passengers of a flight have boarded" from gate-reader records, and
//!   `flight arrived` from `landed`/`at runway`/`at gate`);
//! * a deterministic **operational state store** ([`state`]) — every mirror
//!   applying the same event sequence reaches an identical state, checkable
//!   via a canonical [`state::OperationalState::state_hash`];
//! * **initial-state snapshots** ([`snapshot`]) for thin clients, whose
//!   construction cost scales with state size — the client-request load
//!   whose burstiness motivates adaptive mirroring;
//! * **operations monitoring** ([`ops`]) — the "complex web-based" end of
//!   the paper's client spectrum: crew duty, passenger connections and
//!   aircraft turnarounds derived downstream from the update stream.

#![warn(missing_docs)]

pub mod delta;
pub mod engine;
pub mod flight;
pub mod ops;
pub mod sharded;
pub mod snapshot;
pub mod state;

pub use delta::StateDelta;
pub use engine::{Ede, EdeOutput};
pub use flight::{FlightView, TransitionError};
pub use ops::{OpsAlert, OpsMonitor};
pub use sharded::{ShardMap, ShardedEde};
pub use snapshot::{Snapshot, SNAPSHOT_FLIGHT_WIRE_SIZE};
pub use state::{
    hash_sorted_flights, union_state_hash, BuildFlightHasher, FlightMap, OperationalState,
    DELTA_BASE_WINDOW,
};
