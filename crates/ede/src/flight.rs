//! Per-flight lifecycle state.
//!
//! A [`FlightView`] is the EDE's record of one flight: current lifecycle
//! status, last known position, and boarding progress. Status transitions
//! follow the lifecycle order; *regressions are ignored rather than
//! applied* — under selective mirroring a mirror may receive a stale or
//! coalesced event after a newer status, and determinism across mirrors
//! requires that such events be absorbed idempotently, not flip state
//! backwards.

use serde::{Deserialize, Serialize};

use mirror_core::event::{FlightStatus, PositionFix};

/// Rejected status transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransitionError {
    /// The proposed status is behind (or equal to) the current one.
    Regression {
        /// Status the flight already holds.
        current: FlightStatus,
        /// The stale proposal.
        proposed: FlightStatus,
    },
    /// The flight is cancelled; only position noise may follow.
    Cancelled,
}

/// The EDE's view of one flight.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlightView {
    /// Current lifecycle status.
    pub status: FlightStatus,
    /// Last applied position fix.
    pub position: Option<PositionFix>,
    /// Sequence number of the newest position applied (stale fixes with
    /// older sequence numbers are ignored).
    pub position_seq: u64,
    /// Passengers boarded so far.
    pub boarded: u32,
    /// Passengers expected.
    pub expected: u32,
    /// Bags loaded into the hold.
    pub bags_loaded: u32,
    /// Bags reconciled against boarded passengers.
    pub bags_reconciled: u32,
    /// Count of updates applied to this flight (any kind).
    pub updates: u64,
}

impl Default for FlightView {
    fn default() -> Self {
        FlightView {
            status: FlightStatus::Scheduled,
            position: None,
            position_seq: 0,
            boarded: 0,
            expected: 0,
            bags_loaded: 0,
            bags_reconciled: 0,
            updates: 0,
        }
    }
}

impl FlightView {
    /// A freshly scheduled flight.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bytes this view occupies as one snapshot/delta wire entry: id (4),
    /// status (1), position-presence tag (1), position fix (40 when
    /// present), position-seq (8), boarded (4), expected (4), bags loaded
    /// (4), bags reconciled (4), updates (8). Matches the echo-layer
    /// flight-entry encoder byte for byte.
    pub fn wire_size(&self) -> usize {
        4 + 1 + 1 + if self.position.is_some() { 40 } else { 0 } + 8 + 4 + 4 + 4 + 4 + 8
    }

    /// Apply a status transition. Forward transitions succeed; regressions
    /// and post-cancellation updates are rejected (callers treat rejection
    /// as "ignore", not as an error to propagate — see module docs).
    pub fn transition(&mut self, to: FlightStatus) -> Result<(), TransitionError> {
        if self.status == FlightStatus::Cancelled {
            return Err(TransitionError::Cancelled);
        }
        if to == FlightStatus::Cancelled {
            self.status = to;
            self.updates += 1;
            return Ok(());
        }
        if to <= self.status {
            return Err(TransitionError::Regression { current: self.status, proposed: to });
        }
        self.status = to;
        self.updates += 1;
        Ok(())
    }

    /// Apply a position fix carried by stream sequence `seq`; stale fixes
    /// (and all fixes after arrival/cancellation) are ignored. Returns
    /// whether the fix was applied.
    pub fn apply_position(&mut self, seq: u64, fix: PositionFix) -> bool {
        if seq <= self.position_seq
            || matches!(self.status, FlightStatus::Arrived | FlightStatus::Cancelled)
        {
            return false;
        }
        self.position = Some(fix);
        self.position_seq = seq;
        self.updates += 1;
        true
    }

    /// Record a gate-reader boarding report (monotone in `boarded`).
    /// Returns `true` when this report completes boarding — the paper's
    /// "all passengers of a flight have boarded" derivation point.
    pub fn apply_boarding(&mut self, boarded: u32, expected: u32) -> bool {
        let was_complete = self.boarding_complete();
        if expected > 0 {
            self.expected = expected;
        }
        if boarded > self.boarded {
            self.boarded = boarded;
        }
        self.updates += 1;
        !was_complete && self.boarding_complete()
    }

    /// Have all expected passengers boarded?
    pub fn boarding_complete(&self) -> bool {
        self.expected > 0 && self.boarded >= self.expected
    }

    /// Record a baggage-system report (counts are monotone). Returns
    /// whether state changed.
    pub fn apply_baggage(&mut self, loaded: u32, reconciled: u32) -> bool {
        let before = (self.bags_loaded, self.bags_reconciled);
        self.bags_loaded = self.bags_loaded.max(loaded);
        self.bags_reconciled = self.bags_reconciled.max(reconciled).min(self.bags_loaded);
        let changed = before != (self.bags_loaded, self.bags_reconciled);
        if changed {
            self.updates += 1;
        }
        changed
    }

    /// Positive passenger-bag match: every loaded bag reconciled.
    pub fn baggage_reconciled(&self) -> bool {
        self.bags_reconciled >= self.bags_loaded
    }

    /// Is the flight in the air (between departure and landing)?
    pub fn airborne(&self) -> bool {
        matches!(self.status, FlightStatus::Departed | FlightStatus::EnRoute)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fix(alt: f64) -> PositionFix {
        PositionFix { lat: 0.0, lon: 0.0, alt_ft: alt, speed_kts: 0.0, heading_deg: 0.0 }
    }

    #[test]
    fn forward_transitions_succeed() {
        let mut f = FlightView::new();
        for s in [
            FlightStatus::Boarding,
            FlightStatus::Departed,
            FlightStatus::EnRoute,
            FlightStatus::Landed,
            FlightStatus::AtRunway,
            FlightStatus::AtGate,
            FlightStatus::Arrived,
        ] {
            assert!(f.transition(s).is_ok(), "to {s:?}");
        }
        assert_eq!(f.status, FlightStatus::Arrived);
        assert_eq!(f.updates, 7);
    }

    #[test]
    fn skipping_statuses_is_legal() {
        // Selective mirroring may drop intermediate statuses.
        let mut f = FlightView::new();
        assert!(f.transition(FlightStatus::Landed).is_ok());
        assert!(f.transition(FlightStatus::Arrived).is_ok());
    }

    #[test]
    fn regressions_are_rejected() {
        let mut f = FlightView::new();
        f.transition(FlightStatus::Landed).unwrap();
        assert_eq!(
            f.transition(FlightStatus::Departed),
            Err(TransitionError::Regression {
                current: FlightStatus::Landed,
                proposed: FlightStatus::Departed
            })
        );
        assert_eq!(
            f.transition(FlightStatus::Landed),
            Err(TransitionError::Regression {
                current: FlightStatus::Landed,
                proposed: FlightStatus::Landed
            })
        );
        assert_eq!(f.status, FlightStatus::Landed);
    }

    #[test]
    fn cancellation_is_terminal() {
        let mut f = FlightView::new();
        f.transition(FlightStatus::Boarding).unwrap();
        f.transition(FlightStatus::Cancelled).unwrap();
        assert_eq!(f.transition(FlightStatus::Departed), Err(TransitionError::Cancelled));
        assert!(!f.apply_position(1, fix(100.0)));
    }

    #[test]
    fn stale_positions_ignored() {
        let mut f = FlightView::new();
        assert!(f.apply_position(5, fix(1000.0)));
        assert!(!f.apply_position(5, fix(2000.0)));
        assert!(!f.apply_position(3, fix(2000.0)));
        assert_eq!(f.position.unwrap().alt_ft, 1000.0);
        assert!(f.apply_position(9, fix(3000.0)));
        assert_eq!(f.position.unwrap().alt_ft, 3000.0);
    }

    #[test]
    fn positions_stop_after_arrival() {
        let mut f = FlightView::new();
        f.transition(FlightStatus::Arrived).unwrap();
        assert!(!f.apply_position(1, fix(0.0)));
    }

    #[test]
    fn boarding_completion_fires_once() {
        let mut f = FlightView::new();
        assert!(!f.apply_boarding(50, 100));
        assert!(!f.boarding_complete());
        assert!(f.apply_boarding(100, 100), "completion edge");
        assert!(f.boarding_complete());
        // Duplicate/late reports do not re-fire.
        assert!(!f.apply_boarding(100, 100));
        // Counts are monotone.
        assert!(!f.apply_boarding(80, 100));
        assert_eq!(f.boarded, 100);
    }

    #[test]
    fn baggage_counts_are_monotone_and_capped() {
        let mut f = FlightView::new();
        assert!(f.apply_baggage(10, 4));
        assert_eq!((f.bags_loaded, f.bags_reconciled), (10, 4));
        assert!(!f.baggage_reconciled());
        // Reconciled can never exceed loaded.
        assert!(f.apply_baggage(10, 50));
        assert_eq!(f.bags_reconciled, 10);
        assert!(f.baggage_reconciled());
        // Stale lower counts are absorbed.
        assert!(!f.apply_baggage(5, 2));
        assert_eq!((f.bags_loaded, f.bags_reconciled), (10, 10));
    }

    #[test]
    fn airborne_window() {
        let mut f = FlightView::new();
        assert!(!f.airborne());
        f.transition(FlightStatus::Departed).unwrap();
        assert!(f.airborne());
        f.transition(FlightStatus::Landed).unwrap();
        assert!(!f.airborne());
    }
}
