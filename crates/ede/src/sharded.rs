//! The sharded operational store: per-flight parallelism for the apply
//! path.
//!
//! Every piece of EDE state is **per-flight** ([`FlightView`]), and vector
//! timestamps only order events *within* a stream — so applies to
//! different flights commute: any interleaving that preserves each
//! flight's own order yields the same [`state_hash`](ShardedEde::state_hash)
//! (the property tests prove this across shard counts and interleavings).
//! [`ShardedEde`] exploits that: flights are partitioned by
//! [`ShardMap::shard_of`] into N independently locked [`Ede`] engines, so
//! non-conflicting flights apply concurrently while same-flight events
//! still serialize (same flight → same shard → same lock).
//!
//! Cross-shard reads need a *consistent* view. [`freeze`](ShardedEde::freeze)
//! locks every shard in index order (the crate-wide lock order — no other
//! path takes two shard locks), reads the global epoch under all locks,
//! and merges the flight maps: exactly the snapshot a single-lock store
//! would produce, so the snapshot-cache / persist / `state_hash` semantics
//! layered on top are unchanged.
//!
//! The **global epoch** is bumped inside the owning shard's lock *after*
//! a state-changing apply, so a lock-free epoch read may trail the state
//! by in-flight applies but never lead it — the safe direction for the
//! bounded-staleness snapshot cache (it can only under-report freshness,
//! triggering a spurious capture, never serve a state newer than its
//! epoch claims... and under all shard locks the trailing window is
//! empty, which is what makes `freeze` exact).
//!
//! One deliberate divergence: each shard derives events with its own
//! `derived_seq`, so derived-event sequence numbers differ between shard
//! counts. They are engine-local bookkeeping — status transitions ignore
//! them — so the replicated digest is unaffected (covered by the
//! equivalence property tests).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, MutexGuard};

use mirror_core::event::{Event, FlightId};
use mirror_core::timestamp::VectorTimestamp;

use crate::delta::StateDelta;
use crate::engine::Ede;
use crate::flight::FlightView;
use crate::snapshot::Snapshot;
use crate::state::{hash_sorted_flights, FlightMap, OperationalState};

/// Deterministic flight → shard assignment.
///
/// Uses a Fibonacci multiplicative hash of the flight id: flight ids are
/// typically small and sequential, and taking `id % n` directly would put
/// consecutive flights in consecutive shards — fine for balance, but a
/// multiplicative mix also balances strided and clustered id patterns.
/// The map is pure data (`Copy`), so the dispatcher and every worker can
/// route without sharing state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardMap {
    shards: usize,
}

impl ShardMap {
    /// A map over `shards` shards (clamped to at least 1).
    pub fn new(shards: usize) -> Self {
        ShardMap { shards: shards.max(1) }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning `flight`. Deterministic: the same flight always
    /// lands on the same shard, so per-flight event order is preserved by
    /// per-shard FIFO processing.
    pub fn shard_of(&self, flight: FlightId) -> usize {
        // The same Fibonacci mix the cluster-level partition map and the
        // flight-table hasher use (`mirror_core::hashing`): one constant,
        // one bucketing rule, no way for the layers to disagree.
        mirror_core::hashing::fib_slot(flight as u64, self.shards)
    }
}

/// Pad each shard to a cache line so neighbouring shard locks don't
/// false-share under concurrent applies.
#[repr(align(64))]
struct Padded<T>(T);

/// An [`Ede`] partitioned into independently locked shards by flight id.
///
/// Writers route each event to its flight's shard
/// ([`process_shard`](Self::process_shard)); readers needing a
/// cross-flight view take all shard locks in index order
/// ([`freeze`](Self::freeze), [`state_hash`](Self::state_hash),
/// [`install_state`](Self::install_state)).
pub struct ShardedEde {
    map: ShardMap,
    shards: Box<[Padded<Mutex<Ede>>]>,
    /// Global store version (see module docs): bumped under the owning
    /// shard's lock after every state-changing apply and on installs.
    /// Shared (`Arc`) so gateways can poll staleness lock-free.
    epoch: Arc<AtomicU64>,
    /// Per-shard applied-event counters (lock-free reads for stats).
    applied: Box<[AtomicU64]>,
}

impl std::fmt::Debug for ShardedEde {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedEde")
            .field("shards", &self.map.shards())
            .field("epoch", &self.epoch.load(Ordering::Relaxed))
            .finish()
    }
}

impl ShardedEde {
    /// A fresh store partitioned into `shards` shards (clamped ≥ 1).
    pub fn new(shards: usize) -> Self {
        let map = ShardMap::new(shards);
        ShardedEde {
            map,
            shards: (0..map.shards()).map(|_| Padded(Mutex::new(Ede::new()))).collect(),
            epoch: Arc::new(AtomicU64::new(0)),
            applied: (0..map.shards()).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// The flight → shard assignment (copy it into dispatchers/workers).
    pub fn shard_map(&self) -> ShardMap {
        self.map
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.map.shards()
    }

    /// The shared epoch cell, for lock-free staleness polling (gateway
    /// snapshot caches). The value trails in-flight applies; see module
    /// docs.
    pub fn epoch_handle(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.epoch)
    }

    /// Current global epoch (lock-free; may trail in-flight applies).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Process one event on the shard owning its flight, computed via the
    /// shard map. See [`process_shard`](Self::process_shard).
    pub fn process(
        &self,
        event: &Event,
        on_update: impl FnMut(&Event),
        on_derived: impl FnMut(&Event),
    ) {
        self.process_shard(self.map.shard_of(event.flight), event, on_update, on_derived);
    }

    /// Process one event on shard `shard` (callers that pre-routed via
    /// [`ShardMap::shard_of`] skip recomputing it). The shard **must** be
    /// the one owning `event.flight` — routing a flight to a foreign shard
    /// would split its view across shards and corrupt the merged digest.
    /// Callbacks run under the shard lock; keep them short.
    pub fn process_shard(
        &self,
        shard: usize,
        event: &Event,
        on_update: impl FnMut(&Event),
        on_derived: impl FnMut(&Event),
    ) {
        debug_assert_eq!(shard, self.map.shard_of(event.flight), "event routed to foreign shard");
        let mut ede = self.shards[shard].0.lock();
        let before = ede.epoch();
        ede.process_with(event, on_update, on_derived);
        if ede.epoch() != before {
            // Under the shard lock: the global epoch is already advanced
            // when the lock is released, so epoch trails state only by
            // applies whose shard lock is still held — exactly the applies
            // `freeze` waits out.
            self.epoch.fetch_add(1, Ordering::AcqRel);
        }
        // Still under the shard lock, so a plain load+store is race-free —
        // the lock serialises writers and cheaper than an atomic RMW on
        // the apply hot path. Readers only ever see a slightly stale count.
        self.applied[shard]
            .store(self.applied[shard].load(Ordering::Relaxed) + 1, Ordering::Relaxed);
        drop(ede);
    }

    /// Lock every shard (in index order) and return the guards, for
    /// multi-step consistent reads.
    fn lock_all(&self) -> Vec<MutexGuard<'_, Ede>> {
        self.shards.iter().map(|s| s.0.lock()).collect()
    }

    /// Capture a consistent snapshot of the merged store at the given
    /// frontier, returning it with the epoch it reflects. All shard locks
    /// are held for the duration: the capture is point-in-time exact, just
    /// like a single-lock store's. Every freeze also records `as_of` as a
    /// delta base on every shard (under the same locks, so the per-shard
    /// frontier logs stay in lockstep) — a consumer holding this snapshot
    /// can later catch up via [`capture_delta`](Self::capture_delta)
    /// instead of a second full snapshot.
    pub fn freeze(&self, as_of: VectorTimestamp) -> (Snapshot, u64) {
        let mut guards = self.lock_all();
        let epoch = self.epoch.load(Ordering::Acquire);
        for g in guards.iter_mut() {
            g.mark_frontier(&as_of);
        }
        let total: usize = guards.iter().map(|g| g.state().flight_count()).sum();
        let mut flights = FlightMap::with_capacity_and_hasher(total, Default::default());
        for g in guards.iter() {
            flights.extend(g.state().flights().iter().map(|(id, v)| (*id, v.clone())));
        }
        (Snapshot::from_parts(flights, as_of), epoch)
    }

    /// Capture the merged changes since the capture at frontier `since`,
    /// or `None` when any shard no longer remembers the base (the caller
    /// falls back to [`freeze`](Self::freeze)). All shard locks are held:
    /// like `freeze`, the capture is point-in-time exact, and `as_of` is
    /// recorded as the next delta base on every shard so repeated catch-ups
    /// chain (`resync → delta → resync → delta …`). Returns the delta and
    /// the global epoch it reflects.
    pub fn capture_delta(
        &self,
        since: &VectorTimestamp,
        as_of: VectorTimestamp,
    ) -> Option<(StateDelta, u64)> {
        let mut guards = self.lock_all();
        let epoch = self.epoch.load(Ordering::Acquire);
        let mut changed = FlightMap::default();
        let mut removed: Vec<FlightId> = Vec::new();
        for g in guards.iter() {
            // Shards mark frontiers in lockstep (freeze/capture hold all
            // locks), so one miss means they all miss; bail to full.
            let part = g.capture_delta(since, as_of.clone())?;
            let (part_changed, part_removed) = (part.changed().clone(), part.removed().to_vec());
            changed.extend(part_changed);
            removed.extend(part_removed);
        }
        for g in guards.iter_mut() {
            g.mark_frontier(&as_of);
        }
        removed.sort_unstable();
        Some((StateDelta::from_parts(changed, removed, since.clone(), as_of), epoch))
    }

    /// Fold a delta captured at another site into this store: each changed
    /// flight overwrites in its owning shard, removed flights drop. All
    /// shard locks are held (point-in-time install, same as
    /// [`install_state`](Self::install_state)); callers needing "buffered
    /// events replay on top" semantics must quiesce appliers first. The
    /// global epoch is bumped once.
    pub fn apply_delta(&self, delta: &StateDelta) {
        let mut parts: Vec<(FlightMap, Vec<FlightId>)> =
            (0..self.map.shards()).map(|_| (FlightMap::default(), Vec::new())).collect();
        for (id, view) in delta.changed() {
            parts[self.map.shard_of(*id)].0.insert(*id, view.clone());
        }
        for id in delta.removed() {
            parts[self.map.shard_of(*id)].1.push(*id);
        }
        let mut guards = self.lock_all();
        for (g, (changed, removed)) in guards.iter_mut().zip(parts) {
            let sub =
                StateDelta::from_parts(changed, removed, delta.base.clone(), delta.as_of.clone());
            g.apply_delta(&sub);
        }
        self.epoch.fetch_add(1, Ordering::AcqRel);
    }

    /// Canonical digest of the merged store — identical to the hash an
    /// unsharded [`OperationalState`] holding the same flights produces
    /// (the digest sorts globally by flight id, so the partition is
    /// invisible).
    pub fn state_hash(&self) -> u64 {
        let guards = self.lock_all();
        let mut entries: Vec<(FlightId, &FlightView)> = guards
            .iter()
            .flat_map(|g| g.state().flights().iter().map(|(id, v)| (*id, v)))
            .collect();
        entries.sort_unstable_by_key(|(id, _)| *id);
        hash_sorted_flights(entries.into_iter())
    }

    /// Replace the store's contents from a recovered state (seed install /
    /// promotion): flights are partitioned by the shard map, and both the
    /// per-shard and global epochs stay strictly monotone across the swap
    /// (a recovered snapshot must never make stale cache entries look
    /// fresh). All shard locks are held across the install, so concurrent
    /// appliers and freezers see either the old store or the new one,
    /// never a mix. Appliers racing this install can interleave their
    /// events before or after it wholesale — callers that need the seed
    /// semantics of "buffered events replay on top" must quiesce appliers
    /// first (the apply pool's seed path does).
    pub fn install_state(&self, state: OperationalState) {
        let incoming_epoch = state.epoch();
        let mut parts: Vec<FlightMap> =
            (0..self.map.shards()).map(|_| FlightMap::default()).collect();
        for (id, view) in state.flights() {
            parts[self.map.shard_of(*id)].insert(*id, view.clone());
        }
        let mut guards = self.lock_all();
        for (g, part) in guards.iter_mut().zip(parts) {
            let mut s = OperationalState::new();
            s.install(part);
            g.install_state(s);
        }
        // max() + 1 under all locks: monotone even when the incoming
        // snapshot carries a larger epoch than this store has reached.
        let floor = self.epoch.load(Ordering::Acquire).max(incoming_epoch) + 1;
        self.epoch.store(floor, Ordering::Release);
    }

    /// Merge a recovered state **into** the store without replacing what is
    /// already there: each incoming flight is inserted (or overwritten —
    /// the incoming view is the migration source's authoritative copy) in
    /// its owning shard. This is the partition-migration seed primitive:
    /// unlike [`install_state`](Self::install_state), flights the store
    /// already owns survive. All shard locks are held across the merge and
    /// the global epoch stays strictly monotone, for the same
    /// cache-invalidation reasons as install. Callers needing "buffered
    /// events replay on top" semantics must quiesce appliers first.
    pub fn merge_state(&self, state: OperationalState) {
        let incoming_epoch = state.epoch();
        let mut parts: Vec<Vec<(FlightId, &FlightView)>> =
            (0..self.map.shards()).map(|_| Vec::new()).collect();
        for (id, view) in state.flights() {
            parts[self.map.shard_of(*id)].push((*id, view));
        }
        let mut guards = self.lock_all();
        for (g, part) in guards.iter_mut().zip(parts) {
            g.state_mut().merge_flights(part.into_iter());
        }
        let floor = self.epoch.load(Ordering::Acquire).max(incoming_epoch) + 1;
        self.epoch.store(floor, Ordering::Release);
    }

    /// Drop every flight for which `keep` returns false, returning how many
    /// were removed. This is the migration source's hand-off: after a slot's
    /// flights are merged into the new owner group, the old owner purges
    /// them so per-site memory stays flat and the cluster-wide union of
    /// per-group states remains a partition (each flight in exactly one
    /// group). All shard locks are held; the epoch is bumped when anything
    /// was removed (the store's hash changed, caches must refresh).
    pub fn retain_flights(&self, keep: impl Fn(FlightId) -> bool) -> usize {
        let mut guards = self.lock_all();
        let mut removed = 0;
        for g in guards.iter_mut() {
            removed += g.state_mut().retain_flights(&keep);
        }
        if removed > 0 {
            self.epoch.fetch_add(1, Ordering::AcqRel);
        }
        removed
    }

    /// Events applied per shard (lock-free; index = shard).
    pub fn applied_per_shard(&self) -> Vec<u64> {
        self.applied.iter().map(|a| a.load(Ordering::Relaxed)).collect()
    }

    /// Total events applied across shards.
    pub fn applied(&self) -> u64 {
        self.applied.iter().map(|a| a.load(Ordering::Relaxed)).sum()
    }

    /// Shard imbalance: the busiest shard's applied count over the
    /// per-shard mean (1.0 = perfectly even, `shards` = everything on one
    /// shard, 0.0 before any apply). The §3.2.2-style monitored variable
    /// for whether flight-id hashing is spreading apply load.
    pub fn imbalance(&self) -> f64 {
        let counts = self.applied_per_shard();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let mean = total as f64 / counts.len() as f64;
        let max = counts.iter().copied().max().unwrap_or(0) as f64;
        max / mean
    }

    /// Number of flights tracked across all shards.
    pub fn flight_count(&self) -> usize {
        self.lock_all().iter().map(|g| g.state().flight_count()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mirror_core::event::{EventBody, FlightStatus, PositionFix};

    fn fix(alt: f64) -> PositionFix {
        PositionFix { lat: 10.0, lon: 20.0, alt_ft: alt, speed_kts: 400.0, heading_deg: 90.0 }
    }

    fn stream(flights: u32, per_flight: u64) -> Vec<Event> {
        let mut evs = Vec::new();
        for seq in 1..=per_flight {
            for f in 0..flights {
                let mut e = if seq % 4 == 0 {
                    Event::delta_status(
                        seq,
                        f,
                        match seq {
                            4 => FlightStatus::Boarding,
                            8 => FlightStatus::Departed,
                            12 => FlightStatus::Landed,
                            _ => FlightStatus::AtGate,
                        },
                    )
                } else {
                    Event::faa_position(seq, f, fix(1000.0 * seq as f64))
                };
                e.stamp.advance(0, seq);
                evs.push(e);
            }
        }
        evs
    }

    fn unsharded_hash(events: &[Event]) -> u64 {
        let mut ede = Ede::new();
        for e in events {
            ede.process(e);
        }
        ede.state_hash()
    }

    #[test]
    fn shard_map_is_deterministic_and_total() {
        let m = ShardMap::new(8);
        for f in 0..1000u32 {
            let s = m.shard_of(f);
            assert!(s < 8);
            assert_eq!(s, m.shard_of(f), "stable");
        }
        assert_eq!(ShardMap::new(0).shards(), 1, "clamped");
    }

    #[test]
    fn sharded_matches_unsharded_across_shard_counts() {
        let events = stream(16, 16);
        let want = unsharded_hash(&events);
        for shards in [1, 2, 3, 8, 64] {
            let s = ShardedEde::new(shards);
            for e in &events {
                s.process(e, |_| {}, |_| {});
            }
            assert_eq!(s.state_hash(), want, "{shards} shards");
            assert_eq!(s.applied(), events.len() as u64);
        }
    }

    #[test]
    fn freeze_restores_to_same_hash() {
        let events = stream(10, 8);
        let s = ShardedEde::new(4);
        for e in &events {
            s.process(e, |_| {}, |_| {});
        }
        let (snap, epoch) = s.freeze(VectorTimestamp::empty());
        assert!(epoch > 0);
        assert_eq!(snap.flight_count(), 10);
        assert_eq!(snap.into_state().state_hash(), s.state_hash());
    }

    #[test]
    fn epoch_bumps_only_on_state_changes() {
        let s = ShardedEde::new(4);
        let mut e = Event::faa_position(5, 1, fix(1000.0));
        e.stamp.advance(0, 5);
        s.process(&e, |_| {}, |_| {});
        let after_first = s.epoch();
        assert!(after_first > 0);
        // Stale fix on the same flight: absorbed, no epoch bump.
        let mut stale = Event::faa_position(2, 1, fix(9999.0));
        stale.stamp.advance(0, 2);
        s.process(&stale, |_| {}, |_| {});
        assert_eq!(s.epoch(), after_first);
        assert_eq!(s.applied(), 2, "absorbed events still count as applied");
    }

    #[test]
    fn install_partitions_and_keeps_epoch_monotone() {
        let events = stream(12, 6);
        let mut source = OperationalState::new();
        for e in &events {
            source.apply(e);
        }
        let want = source.state_hash();

        let s = ShardedEde::new(5);
        s.process(&Event::faa_position(1, 99, fix(1.0)), |_| {}, |_| {});
        let before = s.epoch();
        s.install_state(source);
        assert_eq!(s.state_hash(), want, "install replaces wholesale");
        assert!(s.epoch() > before, "epoch stays monotone across install");
        assert_eq!(s.flight_count(), 12);
    }

    #[test]
    fn parallel_appliers_converge_to_serial_hash() {
        // Real threads, one per shard-group of flights: the determinism
        // argument in the module docs, exercised with actual concurrency.
        let events = stream(8, 32);
        let want = unsharded_hash(&events);
        let s = Arc::new(ShardedEde::new(4));
        let mut by_shard: Vec<Vec<Event>> = (0..4).map(|_| Vec::new()).collect();
        for e in &events {
            by_shard[s.shard_map().shard_of(e.flight)].push(e.clone());
        }
        let handles: Vec<_> = by_shard
            .into_iter()
            .enumerate()
            .map(|(shard, evs)| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    for e in evs {
                        s.process_shard(shard, &e, |_| {}, |_| {});
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.state_hash(), want);
        assert_eq!(s.applied(), events.len() as u64);
        assert!(s.imbalance() >= 1.0);
    }

    #[test]
    fn sharded_delta_roundtrip_matches_full() {
        let events = stream(16, 12);
        let split = events.len() / 2;
        let s = ShardedEde::new(4);
        for e in &events[..split] {
            s.process(e, |_| {}, |_| {});
        }
        let base_stamp = VectorTimestamp::from_components(vec![6]);
        let (base_snap, _) = s.freeze(base_stamp.clone());

        for e in &events[split..] {
            s.process(e, |_| {}, |_| {});
        }
        let as_of = VectorTimestamp::from_components(vec![12]);
        let (delta, epoch) = s.capture_delta(&base_stamp, as_of.clone()).expect("base in window");
        assert!(epoch > 0);
        assert!(delta.changed_count() <= 16);

        // A differently-sharded consumer restores the base and catches up
        // via the delta: digest-identical to the producer.
        let t = ShardedEde::new(8);
        t.install_state(base_snap.into_state());
        t.apply_delta(&delta);
        assert_eq!(t.state_hash(), s.state_hash());

        // The delta's as_of chains: it is now a valid base itself.
        let (next, _) = s
            .capture_delta(&as_of, VectorTimestamp::from_components(vec![13]))
            .expect("as_of became a base");
        assert!(next.is_empty(), "nothing changed since the capture");
    }

    #[test]
    fn sharded_delta_unknown_base_falls_back() {
        let s = ShardedEde::new(4);
        s.process(&Event::faa_position(1, 1, fix(1.0)), |_| {}, |_| {});
        assert!(s
            .capture_delta(&VectorTimestamp::from_components(vec![77]), VectorTimestamp::empty())
            .is_none());
    }

    #[test]
    fn derived_rules_fire_in_sharded_store() {
        let s = ShardedEde::new(3);
        let mut derived = Vec::new();
        let mut e1 = Event::new(1, 1, 9, EventBody::Boarding { boarded: 20, expected: 20 });
        e1.stamp.advance(0, 1);
        s.process(&e1, |_| {}, |d| derived.push(d.clone()));
        assert_eq!(derived.len(), 1, "boarding-complete derivation");
        let mut updates = 0;
        let mut g = Event::delta_status(2, 9, FlightStatus::AtGate);
        g.stamp.advance(0, 2);
        s.process(&g, |_| updates += 1, |d| derived.push(d.clone()));
        assert_eq!(derived.len(), 2, "arrival derivation");
        assert_eq!(updates, 2, "AtGate + derived Arrived both reach clients");
    }
}
