//! Downstream operations monitoring — the "complex" end of the paper's
//! client spectrum.
//!
//! §2: the outputs of the central server "are used by a myriad of clients,
//! ranging from simple airport flight displays to complex web-based
//! reservation systems", and captured operational information includes
//! "crew dispositions, passengers, airplanes". [`OpsMonitor`] is such a
//! complex client: it consumes the very update-event stream the cluster
//! publishes (or mirrors) and maintains *derived operational state* —
//! crew duty exposure, passenger connections, aircraft turnarounds —
//! raising [`OpsAlert`]s as the day unfolds.
//!
//! Like the EDE itself, the monitor is deterministic: the same update
//! stream produces the same alerts, so an operations client recovered from
//! a mirror snapshot and replaying the stream reaches the same picture.

use std::collections::HashMap;

use mirror_core::event::{Event, FlightId, FlightStatus};

/// Identifier of a crew (pilot/cabin) pairing.
pub type CrewId = u32;

/// Identifier of a group of connecting passengers.
pub type PaxGroupId = u32;

/// A planned passenger connection between two flights.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConnectionPlan {
    /// The connecting passenger group.
    pub group: PaxGroupId,
    /// Inbound flight.
    pub from: FlightId,
    /// Outbound flight.
    pub to: FlightId,
    /// Passengers in the group.
    pub passengers: u32,
}

/// An alert raised by the operations monitor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OpsAlert {
    /// A crew's flight pushed them past their duty window.
    CrewDutyExceeded {
        /// The crew pairing affected.
        crew: CrewId,
        /// The flight they were working.
        flight: FlightId,
        /// Duty time at the triggering event (µs).
        duty_us: u64,
    },
    /// An outbound flight departed while an inbound with connecting
    /// passengers had not yet arrived.
    MissedConnection {
        /// The stranded group.
        group: PaxGroupId,
        /// Inbound flight (still en route / not arrived).
        from: FlightId,
        /// Outbound flight that left without them.
        to: FlightId,
        /// Passengers affected.
        passengers: u32,
    },
    /// A connection became tight: the inbound landed only after the
    /// outbound began boarding.
    TightConnection {
        /// The group at risk.
        group: PaxGroupId,
        /// Inbound flight.
        from: FlightId,
        /// Outbound flight.
        to: FlightId,
    },
    /// An aircraft completed its turnaround (arrived, then the next leg on
    /// the same tail departed).
    TurnaroundComplete {
        /// Arriving leg.
        inbound: FlightId,
        /// Departing leg on the same aircraft.
        outbound: FlightId,
    },
    /// A flight departed with unreconciled bags in the hold — a positive
    /// passenger-bag-match violation.
    BaggageMismatch {
        /// The departing flight.
        flight: FlightId,
        /// Bags loaded.
        loaded: u32,
        /// Bags reconciled against boarded passengers.
        reconciled: u32,
    },
}

/// Per-crew duty state.
#[derive(Debug, Clone, Copy)]
struct CrewDuty {
    flight: FlightId,
    started_us: u64,
    alerted: bool,
}

/// The operations monitor: derived crew/connection/turnaround state over
/// the update-event stream.
#[derive(Debug, Default)]
pub struct OpsMonitor {
    /// Maximum crew duty window (µs) before an alert; 0 disables.
    duty_limit_us: u64,
    crews: HashMap<CrewId, CrewDuty>,
    connections: Vec<ConnectionPlan>,
    /// Tail rotations: inbound flight → outbound flight on the same
    /// aircraft.
    rotations: HashMap<FlightId, FlightId>,
    /// Latest observed status per flight.
    status: HashMap<FlightId, FlightStatus>,
    /// Latest baggage counts per flight: (loaded, reconciled).
    baggage: HashMap<FlightId, (u32, u32)>,
    /// Groups already alerted (each connection alerts at most once).
    alerted_groups: std::collections::HashSet<PaxGroupId>,
    /// Alerts raised so far (monotone log).
    pub alerts: Vec<OpsAlert>,
}

impl OpsMonitor {
    /// A monitor with no plans registered.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the crew duty window (µs since assignment) after which a still
    /// en-route flight raises [`OpsAlert::CrewDutyExceeded`].
    pub fn set_duty_limit_us(&mut self, limit: u64) {
        self.duty_limit_us = limit;
    }

    /// Register a crew pairing working `flight`, on duty since `start_us`.
    pub fn assign_crew(&mut self, crew: CrewId, flight: FlightId, start_us: u64) {
        self.crews.insert(crew, CrewDuty { flight, started_us: start_us, alerted: false });
    }

    /// Register a planned passenger connection.
    pub fn plan_connection(&mut self, plan: ConnectionPlan) {
        self.connections.push(plan);
    }

    /// Register a tail rotation: the aircraft arriving as `inbound` next
    /// departs as `outbound`.
    pub fn plan_rotation(&mut self, inbound: FlightId, outbound: FlightId) {
        self.rotations.insert(inbound, outbound);
    }

    /// Latest status the monitor has seen for a flight.
    pub fn status(&self, flight: FlightId) -> Option<FlightStatus> {
        self.status.get(&flight).copied()
    }

    /// Has a flight reached (at least) the given status?
    fn reached(&self, flight: FlightId, status: FlightStatus) -> bool {
        self.status
            .get(&flight)
            .map(|s| *s >= status && *s != FlightStatus::Cancelled)
            .unwrap_or(false)
    }

    /// Feed one update event; returns the alerts this event raised (also
    /// appended to [`alerts`](Self::alerts)).
    pub fn observe(&mut self, event: &Event) -> Vec<OpsAlert> {
        let mut raised = Vec::new();
        // Baggage reports update reconciliation state.
        if let mirror_core::event::EventBody::Baggage { loaded, reconciled } = &event.body {
            let entry = self.baggage.entry(event.flight).or_insert((0, 0));
            entry.0 = entry.0.max(*loaded);
            entry.1 = entry.1.max(*reconciled);
        }
        let Some(status) = event.status_value() else {
            // Position fixes don't change derived ops state, but duty
            // clocks keep ticking: check limits on every event.
            self.check_duty(event, &mut raised);
            return raised;
        };
        self.status.insert(event.flight, status);

        match status {
            FlightStatus::Departed => {
                // Missed connections: outbound left while an inbound with
                // connecting passengers has not arrived.
                let missed: Vec<ConnectionPlan> = self
                    .connections
                    .iter()
                    .filter(|p| {
                        p.to == event.flight && !self.reached(p.from, FlightStatus::Arrived)
                    })
                    .copied()
                    .collect();
                for plan in missed {
                    if self.alerted_groups.insert(plan.group) {
                        raised.push(OpsAlert::MissedConnection {
                            group: plan.group,
                            from: plan.from,
                            to: plan.to,
                            passengers: plan.passengers,
                        });
                    }
                }
                // Positive passenger-bag match: departing with unreconciled
                // bags is a violation.
                if let Some(&(loaded, reconciled)) = self.baggage.get(&event.flight) {
                    if reconciled < loaded {
                        raised.push(OpsAlert::BaggageMismatch {
                            flight: event.flight,
                            loaded,
                            reconciled,
                        });
                    }
                }
                // Turnaround: the inbound leg of this tail arrived earlier.
                if let Some((&inbound, _)) =
                    self.rotations.iter().find(|(_, &out)| out == event.flight)
                {
                    if self.reached(inbound, FlightStatus::Arrived) {
                        raised
                            .push(OpsAlert::TurnaroundComplete { inbound, outbound: event.flight });
                    }
                }
            }
            FlightStatus::Landed | FlightStatus::Arrived => {
                // Tight connections: inbound only landing while outbound is
                // already boarding.
                let tight: Vec<ConnectionPlan> = self
                    .connections
                    .iter()
                    .filter(|p| {
                        p.from == event.flight
                            && self.reached(p.to, FlightStatus::Boarding)
                            && !self.reached(p.to, FlightStatus::Departed)
                    })
                    .copied()
                    .collect();
                for plan in tight {
                    if self.alerted_groups.insert(plan.group) {
                        raised.push(OpsAlert::TightConnection {
                            group: plan.group,
                            from: plan.from,
                            to: plan.to,
                        });
                    }
                }
                // Crew comes off duty when their flight arrives.
                if status == FlightStatus::Arrived {
                    self.crews.retain(|_, duty| duty.flight != event.flight);
                }
            }
            _ => {}
        }
        self.check_duty(event, &mut raised);
        self.alerts.extend(raised.iter().cloned());
        raised
    }

    fn check_duty(&mut self, event: &Event, raised: &mut Vec<OpsAlert>) {
        if self.duty_limit_us == 0 {
            return;
        }
        let now = event.ingress_us;
        for (&crew, duty) in self.crews.iter_mut() {
            if duty.alerted {
                continue;
            }
            let elapsed = now.saturating_sub(duty.started_us);
            let flight_open =
                self.status.get(&duty.flight).map(|s| *s < FlightStatus::Arrived).unwrap_or(true);
            if flight_open && elapsed > self.duty_limit_us {
                duty.alerted = true;
                raised.push(OpsAlert::CrewDutyExceeded {
                    crew,
                    flight: duty.flight,
                    duty_us: elapsed,
                });
            }
        }
        // Duty alerts raised here are appended by `observe` only for the
        // status branch; append directly for the position branch.
        if event.status_value().is_none() {
            self.alerts.extend(raised.iter().cloned());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mirror_core::event::{Event, PositionFix};

    fn status(seq: u64, flight: FlightId, s: FlightStatus, at_us: u64) -> Event {
        Event::delta_status(seq, flight, s).with_ingress_us(at_us)
    }

    fn pos(seq: u64, flight: FlightId, at_us: u64) -> Event {
        Event::faa_position(
            seq,
            flight,
            PositionFix { lat: 0.0, lon: 0.0, alt_ft: 30000.0, speed_kts: 450.0, heading_deg: 0.0 },
        )
        .with_ingress_us(at_us)
    }

    #[test]
    fn missed_connection_fires_when_outbound_departs_first() {
        let mut ops = OpsMonitor::new();
        ops.plan_connection(ConnectionPlan { group: 1, from: 10, to: 20, passengers: 12 });
        // Inbound en route, outbound departs.
        ops.observe(&status(1, 10, FlightStatus::EnRoute, 100));
        let raised = ops.observe(&status(2, 20, FlightStatus::Departed, 200));
        assert_eq!(
            raised,
            vec![OpsAlert::MissedConnection { group: 1, from: 10, to: 20, passengers: 12 }]
        );
    }

    #[test]
    fn connection_made_when_inbound_arrives_first() {
        let mut ops = OpsMonitor::new();
        ops.plan_connection(ConnectionPlan { group: 1, from: 10, to: 20, passengers: 12 });
        ops.observe(&status(1, 10, FlightStatus::Arrived, 100));
        let raised = ops.observe(&status(2, 20, FlightStatus::Departed, 200));
        assert!(raised.is_empty(), "arrived inbound ⇒ no missed connection");
    }

    #[test]
    fn tight_connection_on_late_landing() {
        let mut ops = OpsMonitor::new();
        ops.plan_connection(ConnectionPlan { group: 7, from: 1, to: 2, passengers: 3 });
        ops.observe(&status(1, 2, FlightStatus::Boarding, 50));
        let raised = ops.observe(&status(2, 1, FlightStatus::Landed, 100));
        assert_eq!(raised, vec![OpsAlert::TightConnection { group: 7, from: 1, to: 2 }]);
        // Once the outbound has departed it is a miss, not merely tight.
        let mut ops2 = OpsMonitor::new();
        ops2.plan_connection(ConnectionPlan { group: 7, from: 1, to: 2, passengers: 3 });
        ops2.observe(&status(1, 2, FlightStatus::Departed, 50));
        let raised = ops2.observe(&status(2, 1, FlightStatus::Landed, 100));
        assert!(raised.is_empty());
    }

    #[test]
    fn crew_duty_alert_fires_once_and_clears_on_arrival() {
        let mut ops = OpsMonitor::new();
        ops.set_duty_limit_us(1_000);
        ops.assign_crew(5, 9, 0);
        ops.observe(&status(1, 9, FlightStatus::EnRoute, 100));
        assert!(ops.alerts.is_empty());
        // A position fix past the limit trips the alert…
        let raised = ops.observe(&pos(2, 9, 2_000));
        assert_eq!(raised.len(), 1);
        assert!(matches!(
            raised[0],
            OpsAlert::CrewDutyExceeded { crew: 5, flight: 9, duty_us: 2_000 }
        ));
        // …exactly once.
        assert!(ops.observe(&pos(3, 9, 3_000)).is_empty());
        // A different crew still on duty alerts independently.
        ops.assign_crew(6, 9, 2_900);
        ops.observe(&status(4, 9, FlightStatus::Arrived, 3_100));
        // Crew released on arrival: no further duty alerts even far later.
        assert!(ops.observe(&pos(5, 9, 10_000_000)).is_empty());
    }

    #[test]
    fn turnaround_completes_in_order_only() {
        let mut ops = OpsMonitor::new();
        ops.plan_rotation(100, 200);
        // Outbound departs before the inbound arrived: no turnaround.
        assert!(ops.observe(&status(1, 200, FlightStatus::Departed, 10)).is_empty());

        let mut ops2 = OpsMonitor::new();
        ops2.plan_rotation(100, 200);
        ops2.observe(&status(1, 100, FlightStatus::Arrived, 10));
        let raised = ops2.observe(&status(2, 200, FlightStatus::Departed, 20));
        assert_eq!(raised, vec![OpsAlert::TurnaroundComplete { inbound: 100, outbound: 200 }]);
    }

    #[test]
    fn baggage_mismatch_fires_on_departure_only() {
        use mirror_core::event::EventBody;
        let mut ops = OpsMonitor::new();
        let bag = |seq, loaded, reconciled, at| {
            Event::new(1, seq, 5, EventBody::Baggage { loaded, reconciled }).with_ingress_us(at)
        };
        ops.observe(&bag(1, 80, 40, 10));
        assert!(ops.alerts.is_empty(), "no alert before departure");
        let raised = ops.observe(&status(2, 5, FlightStatus::Departed, 20));
        assert_eq!(
            raised,
            vec![OpsAlert::BaggageMismatch { flight: 5, loaded: 80, reconciled: 40 }]
        );

        // Fully reconciled flights depart silently.
        let mut clean = OpsMonitor::new();
        clean.observe(&bag(1, 80, 80, 10));
        assert!(clean.observe(&status(2, 5, FlightStatus::Departed, 20)).is_empty());
    }

    #[test]
    fn monitor_is_deterministic_over_a_stream() {
        let events: Vec<Event> = vec![
            status(1, 1, FlightStatus::Boarding, 10),
            status(2, 2, FlightStatus::Boarding, 20),
            pos(3, 1, 30),
            status(4, 1, FlightStatus::Departed, 40),
            status(5, 1, FlightStatus::Landed, 50),
            status(6, 2, FlightStatus::Departed, 60),
        ];
        let build = || {
            let mut ops = OpsMonitor::new();
            ops.set_duty_limit_us(25);
            ops.assign_crew(1, 1, 0);
            ops.plan_connection(ConnectionPlan { group: 1, from: 1, to: 2, passengers: 5 });
            ops
        };
        let mut a = build();
        let mut b = build();
        for e in &events {
            assert_eq!(a.observe(e), b.observe(e));
        }
        assert_eq!(a.alerts, b.alerts);
        assert!(!a.alerts.is_empty());
    }
}
