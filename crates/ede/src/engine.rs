//! The Event Derivation Engine proper.
//!
//! [`Ede::process`] is the main unit's business logic: it applies each
//! incoming event to the operational state, evaluates derivation rules, and
//! emits (a) *update events* for regular clients — the continuous output
//! stream whose timeliness the paper's predictability requirement governs —
//! and (b) *derived events* (new application-level facts such as
//! `boarding complete` or `flight arrived`).
//!
//! The engine is deterministic: mirrors processing the same input sequence
//! produce byte-identical outputs and state (verified by property tests).

use mirror_core::event::{streams, Event, EventBody, FlightStatus};

use crate::state::OperationalState;

/// What processing one event produced.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EdeOutput {
    /// State updates to push to regular clients (at least the triggering
    /// event when it changed state).
    pub client_updates: Vec<Event>,
    /// Newly derived application-level events.
    pub derived: Vec<Event>,
}

impl EdeOutput {
    /// Did processing produce anything?
    pub fn is_empty(&self) -> bool {
        self.client_updates.is_empty() && self.derived.is_empty()
    }
}

/// The Event Derivation Engine: operational state + derivation rules.
#[derive(Debug, Default)]
pub struct Ede {
    state: OperationalState,
    /// Monotone sequence for derived events (kept per-engine; derived
    /// events are deterministic functions of the input sequence).
    derived_seq: u64,
    /// Events processed.
    pub processed: u64,
    /// Derived events emitted.
    pub derivations: u64,
}

impl Ede {
    /// A fresh engine with empty state.
    pub fn new() -> Self {
        Self::default()
    }

    /// The operational state (read-only).
    pub fn state(&self) -> &OperationalState {
        &self.state
    }

    /// Install externally built state (snapshot recovery). The engine's
    /// epoch stays strictly monotone across the swap — a recovered state
    /// carrying a smaller epoch must not make stale snapshot-cache entries
    /// look fresh.
    pub fn install_state(&mut self, state: OperationalState) {
        let floor = self.state.epoch().max(state.epoch()) + 1;
        self.state = state;
        self.state.force_epoch(floor);
    }

    /// Mutable state access for the partition-migration merge/purge paths
    /// (epoch discipline is enforced by the [`OperationalState`] methods
    /// those paths use).
    pub(crate) fn state_mut(&mut self) -> &mut OperationalState {
        &mut self.state
    }

    /// Current state epoch (see [`OperationalState::epoch`]).
    pub fn epoch(&self) -> u64 {
        self.state.epoch()
    }

    /// Remember the current epoch as a delta base for a capture taken at
    /// frontier `as_of` (see [`OperationalState::mark_frontier`]).
    pub fn mark_frontier(&mut self, as_of: &mirror_core::timestamp::VectorTimestamp) {
        self.state.mark_frontier(as_of);
    }

    /// Capture the changes since the capture at `since`, or `None` when the
    /// base fell out of the delta window (caller ships a full snapshot).
    pub fn capture_delta(
        &self,
        since: &mirror_core::timestamp::VectorTimestamp,
        as_of: mirror_core::timestamp::VectorTimestamp,
    ) -> Option<crate::delta::StateDelta> {
        self.state.capture_delta(since, as_of)
    }

    /// Fold a delta produced by another engine's
    /// [`capture_delta`](Self::capture_delta) into this state.
    pub fn apply_delta(&mut self, delta: &crate::delta::StateDelta) {
        self.state.apply_delta(delta);
    }

    /// Canonical digest of the engine's application state.
    pub fn state_hash(&self) -> u64 {
        self.state.state_hash()
    }

    /// Process one incoming event through the business rules.
    pub fn process(&mut self, event: &Event) -> EdeOutput {
        let mut out = EdeOutput::default();
        let EdeOutput { client_updates, derived } = &mut out;
        self.process_with(event, |e| client_updates.push(e.clone()), |e| derived.push(e.clone()));
        out
    }

    /// The allocation-free core of [`process`](Self::process): identical
    /// business logic, but outputs are *borrowed* to the callbacks instead
    /// of cloned into an [`EdeOutput`]. `on_update` sees every event a
    /// regular client must receive (state-changing inputs and derived
    /// events that changed state); `on_derived` sees every newly derived
    /// application-level fact. The hot apply path uses this to process
    /// millions of events per second without a `Vec` allocation or an
    /// `Event` clone per event — callers that need owned events clone
    /// inside their callback.
    pub fn process_with(
        &mut self,
        event: &Event,
        mut on_update: impl FnMut(&Event),
        mut on_derived: impl FnMut(&Event),
    ) {
        self.processed += 1;

        // Pre-state needed by edge-triggered rules.
        let was_boarding_complete =
            self.state.flight(event.flight).map(|f| f.boarding_complete()).unwrap_or(false);

        let changed = self.state.apply(event);
        if changed {
            // Regular clients receive every state-changing update.
            on_update(event);
        }

        // Rule 1 — boarding completion: "determine from multiple events
        // received from gate readers that all passengers of a flight have
        // boarded" (§2). Edge-triggered: fires exactly once per flight.
        if let EventBody::Boarding { .. } = &event.body {
            let now_complete =
                self.state.flight(event.flight).map(|f| f.boarding_complete()).unwrap_or(false);
            if now_complete && !was_boarding_complete {
                let d = self.derive(event, FlightStatus::Boarding, 1);
                on_derived(&d);
            }
        }

        // Rule 2 — arrival derivation: landing at the gate completes the
        // flight. (When the mirroring layer's complex-tuple rule already
        // collapsed the sequence, the incoming event is itself Derived and
        // this rule is a no-op thanks to the status regression guard.)
        if event.status_value() == Some(FlightStatus::AtGate) {
            let arrived = self.derive(event, FlightStatus::Arrived, 3);
            if self.state.apply(&arrived) {
                on_update(&arrived);
                on_derived(&arrived);
            }
        }
    }

    /// Build a derived event attributed to the triggering event's flight
    /// and timing (the update-delay metric follows the trigger).
    fn derive(&mut self, trigger: &Event, status: FlightStatus, collapsed: u32) -> Event {
        self.derived_seq += 1;
        self.derivations += 1;
        let mut e = Event::new(
            streams::DELTA,
            self.derived_seq,
            trigger.flight,
            EventBody::Derived { status, collapsed },
        );
        e.stamp = trigger.stamp.clone();
        e.ingress_us = trigger.ingress_us;
        e
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mirror_core::event::PositionFix;

    fn fix() -> PositionFix {
        PositionFix { lat: 0.0, lon: 0.0, alt_ft: 30000.0, speed_kts: 450.0, heading_deg: 0.0 }
    }

    #[test]
    fn state_changing_events_become_client_updates() {
        let mut ede = Ede::new();
        let out = ede.process(&Event::faa_position(1, 7, fix()));
        assert_eq!(out.client_updates.len(), 1);
        assert!(out.derived.is_empty());
    }

    #[test]
    fn stale_events_produce_no_updates() {
        let mut ede = Ede::new();
        ede.process(&Event::faa_position(5, 7, fix()));
        let out = ede.process(&Event::faa_position(3, 7, fix()));
        assert!(out.is_empty(), "stale position absorbed silently");
        assert_eq!(ede.processed, 2);
    }

    #[test]
    fn boarding_completion_derivation_fires_once() {
        let mut ede = Ede::new();
        let partial = Event::new(1, 1, 9, EventBody::Boarding { boarded: 10, expected: 20 });
        assert!(ede.process(&partial).derived.is_empty());
        let full = Event::new(1, 2, 9, EventBody::Boarding { boarded: 20, expected: 20 });
        let out = ede.process(&full);
        assert_eq!(out.derived.len(), 1);
        // Duplicate completion report: no re-derivation.
        let dup = Event::new(1, 3, 9, EventBody::Boarding { boarded: 20, expected: 20 });
        assert!(ede.process(&dup).derived.is_empty());
        assert_eq!(ede.derivations, 1);
    }

    #[test]
    fn at_gate_derives_arrival() {
        let mut ede = Ede::new();
        ede.process(&Event::delta_status(1, 4, FlightStatus::Landed));
        let out = ede.process(&Event::delta_status(2, 4, FlightStatus::AtGate));
        assert_eq!(out.derived.len(), 1);
        assert_eq!(out.derived[0].status_value(), Some(FlightStatus::Arrived));
        assert_eq!(ede.state().flight(4).unwrap().status, FlightStatus::Arrived);
        // The derived event also went to regular clients.
        assert_eq!(out.client_updates.len(), 2);
    }

    #[test]
    fn collapsed_tuple_input_is_idempotent() {
        // A mirror receiving the already-derived Arrived event (tuple rule
        // collapsed upstream) lands in the same state as one that derived
        // it locally.
        let mut local = Ede::new();
        local.process(&Event::delta_status(1, 4, FlightStatus::Landed));
        local.process(&Event::delta_status(2, 4, FlightStatus::AtGate));

        let mut remote = Ede::new();
        remote.process(&Event::delta_status(1, 4, FlightStatus::Landed));
        let mut derived = Event::new(
            streams::DELTA,
            2,
            4,
            EventBody::Derived { status: FlightStatus::Arrived, collapsed: 3 },
        );
        derived.stamp.advance(1, 2);
        remote.process(&derived);

        assert_eq!(
            local.state().flight(4).unwrap().status,
            remote.state().flight(4).unwrap().status
        );
    }

    #[test]
    fn derived_events_inherit_trigger_timing() {
        let mut ede = Ede::new();
        let mut gate = Event::delta_status(2, 4, FlightStatus::AtGate).with_ingress_us(12345);
        gate.stamp.advance(1, 2);
        let out = ede.process(&gate);
        assert_eq!(out.derived[0].ingress_us, 12345);
        assert_eq!(out.derived[0].stamp, gate.stamp);
    }

    #[test]
    fn deterministic_across_engines() {
        let events: Vec<Event> = (1..=30)
            .map(|i| {
                if i % 5 == 0 {
                    Event::delta_status(i, (i % 3) as u32, FlightStatus::Landed)
                } else {
                    Event::faa_position(i, (i % 3) as u32, fix())
                }
            })
            .collect();
        let mut a = Ede::new();
        let mut b = Ede::new();
        for e in &events {
            let oa = a.process(e);
            let ob = b.process(e);
            assert_eq!(oa, ob);
        }
        assert_eq!(a.state_hash(), b.state_hash());
    }
}
