//! Criterion micro-benchmarks for the middleware's hot primitives:
//! the wire codec, semantic-rule evaluation, queue operations, coalescing,
//! the checkpoint round-trip, and EDE event processing.
#![allow(clippy::field_reassign_with_default)]

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use mirror_core::adapt::MonitorReport;
use mirror_core::checkpoint::{CentralCheckpointer, MainUnitResponder};
use mirror_core::event::{Event, EventType, PositionFix};
use mirror_core::mirrorfn::{CoalescingMirror, MirrorFn};
use mirror_core::params::MirrorParams;
use mirror_core::queue::{BackupQueue, ReadyQueue};
use mirror_core::rules::{Rule, RuleSet};
use mirror_core::status::StatusTable;
use mirror_core::timestamp::VectorTimestamp;
use mirror_core::ControlMsg;
use mirror_echo::wire::{
    decode_frame, encode_batch_from_encoded, encode_frame, encode_frame_shared, Frame, SharedEvent,
};
use mirror_ede::Ede;

use std::sync::Arc;

fn fix() -> PositionFix {
    PositionFix { lat: 33.6, lon: -84.4, alt_ft: 31000.0, speed_kts: 450.0, heading_deg: 270.0 }
}

fn stamped(seq: u64, flight: u32, size: usize) -> Event {
    let mut e = Event::faa_position(seq, flight, fix()).with_total_size(size);
    e.stamp.advance(0, seq);
    e
}

fn bench_wire(c: &mut Criterion) {
    let mut g = c.benchmark_group("wire");
    for size in [256usize, 1024, 8192] {
        let ev = Arc::new(stamped(42, 7, size));
        g.throughput(Throughput::Bytes(ev.wire_size() as u64));
        g.bench_with_input(BenchmarkId::new("encode", size), &ev, |b, ev| {
            b.iter(|| encode_frame(black_box(&Frame::Data(Arc::clone(ev)))))
        });
        let bytes = encode_frame(&Frame::Data(ev));
        g.bench_with_input(BenchmarkId::new("decode", size), &bytes, |b, bytes| {
            b.iter(|| decode_frame(black_box(bytes.clone())).unwrap())
        });
    }
    g.finish();
}

/// Batch framing: packing a burst of events into one [`Frame::Batch`] —
/// both the generic path (re-encoding every member) and the zero-copy
/// bridge path ([`encode_batch_from_encoded`], header-only work over
/// cached member encodings) — plus decoding the batch back out.
fn bench_batch(c: &mut Criterion) {
    let mut g = c.benchmark_group("batch");
    for n in [8usize, 64] {
        let members: Vec<Frame> =
            (1..=n as u64).map(|s| Frame::Data(Arc::new(stamped(s, 7, 1024)))).collect();
        let batch = Frame::Batch(members.clone());
        let parts: Vec<bytes::Bytes> = members.iter().map(encode_frame_shared).collect();
        let payload: u64 = parts.iter().map(|p| p.len() as u64).sum();
        g.throughput(Throughput::Bytes(payload));
        g.bench_with_input(BenchmarkId::new("encode_full", n), &batch, |b, batch| {
            b.iter(|| encode_frame(black_box(batch)))
        });
        g.bench_with_input(BenchmarkId::new("encode_from_encoded", n), &parts, |b, parts| {
            b.iter(|| encode_batch_from_encoded(black_box(parts)))
        });
        let bytes = encode_frame(&batch);
        g.bench_with_input(BenchmarkId::new("decode", n), &bytes, |b, bytes| {
            b.iter(|| decode_frame(black_box(bytes.clone())).unwrap())
        });
    }
    g.finish();
}

/// Channel fan-out: one publish cloned to N subscribers. `deep` clones a
/// whole 1 KiB event per subscriber (the pre-zero-copy data path);
/// `shared` bumps two reference counts per subscriber ([`SharedEvent`]).
fn bench_fanout(c: &mut Criterion) {
    use mirror_echo::channel::EventChannel;
    let mut g = c.benchmark_group("fanout");
    for subs in [2usize, 8] {
        g.bench_with_input(BenchmarkId::new("deep_1KiB", subs), &subs, |b, &subs| {
            let ch: EventChannel<Event> = EventChannel::new("bench.deep");
            let taps: Vec<_> = (0..subs).map(|_| ch.subscribe()).collect();
            let p = ch.publisher();
            let ev = stamped(1, 7, 1024);
            b.iter(|| {
                p.publish(black_box(ev.clone()));
                for t in &taps {
                    black_box(t.try_recv());
                }
            })
        });
        g.bench_with_input(BenchmarkId::new("shared_1KiB", subs), &subs, |b, &subs| {
            let ch: EventChannel<SharedEvent> = EventChannel::new("bench.shared");
            let taps: Vec<_> = (0..subs).map(|_| ch.subscribe()).collect();
            let p = ch.publisher();
            let ev = SharedEvent::from(stamped(1, 7, 1024));
            b.iter(|| {
                p.publish(black_box(ev.clone()));
                for t in &taps {
                    black_box(t.try_recv());
                }
            })
        });
    }
    g.finish();
}

fn bench_rules(c: &mut Criterion) {
    let mut g = c.benchmark_group("rules");
    g.bench_function("overwrite_eval", |b| {
        let mut rs =
            RuleSet::new().with(Rule::Overwrite { ty: EventType::FaaPosition, max_len: 10 });
        let mut table = StatusTable::new();
        let mut seq = 0u64;
        b.iter(|| {
            seq += 1;
            let e = stamped(seq, (seq % 100) as u32, 256);
            table.observe(&e);
            black_box(rs.evaluate(e, &mut table))
        })
    });
    g.bench_function("empty_ruleset_eval", |b| {
        let mut rs = RuleSet::new();
        let mut table = StatusTable::new();
        let mut seq = 0u64;
        b.iter(|| {
            seq += 1;
            let e = stamped(seq, (seq % 100) as u32, 256);
            table.observe(&e);
            black_box(rs.evaluate(e, &mut table))
        })
    });
    g.finish();
}

fn bench_queues(c: &mut Criterion) {
    let mut g = c.benchmark_group("queues");
    g.bench_function("ready_push_pop", |b| {
        let mut q = ReadyQueue::new();
        let mut seq = 0u64;
        b.iter(|| {
            seq += 1;
            q.push(stamped(seq, 1, 256));
            black_box(q.pop())
        })
    });
    g.bench_function("backup_push_prune_50", |b| {
        b.iter(|| {
            let mut q = BackupQueue::new();
            for seq in 1..=50 {
                q.push(stamped(seq, 1, 256));
            }
            let commit = q.last_stamp().clone();
            black_box(q.prune(&commit))
        })
    });
    g.finish();
}

fn bench_coalescing(c: &mut Criterion) {
    c.bench_function("coalesce_fold_10", |b| {
        let mut m = CoalescingMirror::new();
        let mut p = MirrorParams::default();
        p.coalesce = true;
        p.coalesce_max = 10;
        let mut seq = 0u64;
        b.iter(|| {
            seq += 1;
            black_box(m.prepare(vec![stamped(seq, (seq % 4) as u32, 256)], &p))
        })
    });
}

fn bench_checkpoint(c: &mut Criterion) {
    c.bench_function("checkpoint_round_4_mirrors", |b| {
        let mut central = CentralCheckpointer::new(vec![1, 2, 3, 4]);
        let mut mains: Vec<MainUnitResponder> =
            (0..5).map(|s| MainUnitResponder::new(s as u16)).collect();
        let mut seq = 0u64;
        b.iter(|| {
            seq += 1;
            let mut stamp = VectorTimestamp::new(1);
            stamp.advance(0, seq);
            for m in &mut mains {
                m.record_processed(&stamp);
            }
            central.begin(stamp.clone());
            for site in [1u16, 2, 3, 4] {
                central.on_reply(central.rounds_started, site, stamp.clone(), 0);
            }
            black_box(central.on_reply(central.rounds_started, 0, stamp, 0))
        })
    });
    c.bench_function("chkpt_rep_encode_decode", |b| {
        let msg = ControlMsg::ChkptRep {
            round: 9,
            site: 3,
            stamp: VectorTimestamp::from_components(vec![100, 200]),
            monitor: MonitorReport { ready_len: 5, backup_len: 50, pending_requests: 12 },
            term: 1,
        };
        b.iter(|| {
            let bytes = encode_frame(black_box(&Frame::Control(msg.clone())));
            decode_frame(bytes).unwrap()
        })
    });
}

fn bench_ede(c: &mut Criterion) {
    c.bench_function("ede_process_position", |b| {
        let mut ede = Ede::new();
        let mut seq = 0u64;
        b.iter(|| {
            seq += 1;
            black_box(ede.process(&stamped(seq, (seq % 100) as u32, 256)))
        })
    });
    c.bench_function("ede_state_hash_1000_flights", |b| {
        let mut ede = Ede::new();
        for f in 0..1000u32 {
            ede.process(&stamped(f as u64 + 1, f, 256));
        }
        b.iter(|| black_box(ede.state_hash()))
    });
}

criterion_group!(
    benches,
    bench_wire,
    bench_batch,
    bench_fanout,
    bench_rules,
    bench_queues,
    bench_coalescing,
    bench_checkpoint,
    bench_ede
);
criterion_main!(benches);
