//! Criterion benchmarks of whole-cluster simulation throughput: how many
//! application events per second the experiment harness pushes through a
//! simulated cluster under each mirroring configuration. These guard the
//! harness itself against regressions (slow figures are unrunnable
//! figures).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use mirror_core::mirrorfn::MirrorFnKind;
use mirror_ois::experiment::{run, ExperimentConfig};
use mirror_workload::faa::FaaStreamConfig;

fn small_stream(n: u64) -> FaaStreamConfig {
    FaaStreamConfig {
        flights: 50,
        total_events: n,
        events_per_sec: 2_500.0,
        event_size: 1000,
        seed: 0xFAA,
        first_flight: 0,
    }
}

fn bench_experiment(c: &mut Criterion) {
    let mut g = c.benchmark_group("experiment");
    g.sample_size(20);
    let n = 2_000u64;
    for (label, kind, mirrors) in [
        ("no-mirroring", MirrorFnKind::None, 0usize),
        ("simple-1", MirrorFnKind::Simple, 1),
        ("simple-4", MirrorFnKind::Simple, 4),
        ("selective-1", MirrorFnKind::Selective { overwrite: 10 }, 1),
        ("coalescing-1", MirrorFnKind::Coalescing { coalesce: 10, checkpoint_every: 50 }, 1),
    ] {
        g.throughput(Throughput::Elements(n));
        g.bench_with_input(BenchmarkId::new("run", label), &kind, |b, &kind| {
            b.iter(|| {
                black_box(run(&ExperimentConfig {
                    mirrors,
                    kind,
                    faa: small_stream(n),
                    ..Default::default()
                }))
            })
        });
    }
    g.finish();
}

criterion_group!(sim_benches, bench_experiment);
criterion_main!(sim_benches);
