//! # mirror-bench — figure regeneration and micro-benchmarks
//!
//! One binary per figure of the paper's evaluation (§4):
//!
//! | binary | paper figure | what it sweeps |
//! |---|---|---|
//! | `fig4` | Figure 4 | event size × {no, simple, selective} mirroring, 1 mirror site |
//! | `fig5` | Figure 5 | number of mirror sites (1–8) at constant event size |
//! | `fig6` | Figure 6 | event size × {1,2,4} mirrors under 100 req/s balanced load |
//! | `fig7` | Figure 7 | request rate × {simple, selective, selective+½ chkpt} |
//! | `fig8` | Figure 8 | request rate × {simple, selective}: mean update delay |
//! | `fig9` | Figure 9 | update-delay time series, bursty requests, adaptation on/off |
//! | `ablations` | (beyond paper) | coalesce depth, checkpoint interval, hysteresis, backup growth |
//!
//! Each binary prints the series the paper plots plus a shape check
//! (who wins, by what factor, where crossovers fall). Criterion
//! micro-benchmarks for the hot primitives live in `benches/`, and the
//! [`sweep`] module powers a compose-your-own-grid CSV runner
//! (`--bin sweep`).

#![warn(missing_docs)]

pub mod sweep;

use mirror_workload::faa::FaaStreamConfig;

/// The standard experiment event sequence: 10 000 FAA position events over
/// 100 flights, nominally captured over ~4 s (the demo-replay stand-in).
pub fn paper_stream(event_size: usize) -> FaaStreamConfig {
    FaaStreamConfig {
        flights: 100,
        total_events: 10_000,
        events_per_sec: 2_500.0,
        event_size,
        seed: 0xFAA,
        first_flight: 0,
    }
}

/// A slower-paced variant for the delay experiments (Figures 8–9): same
/// sequence stretched so the server is *near* saturation rather than past
/// it, which is where queueing delays discriminate between policies.
pub fn paced_stream(event_size: usize, events_per_sec: f64, total_events: u64) -> FaaStreamConfig {
    FaaStreamConfig {
        flights: 100,
        total_events,
        events_per_sec,
        event_size,
        seed: 0xFAA,
        first_flight: 0,
    }
}

/// Render one table row with fixed-width columns.
pub fn row(cells: &[String]) -> String {
    cells.iter().map(|c| format!("{c:>12}")).collect::<Vec<_>>().join(" ")
}

/// Format seconds to two decimals.
pub fn secs(v: f64) -> String {
    format!("{v:.2}")
}

/// Format a ratio as a signed percentage.
pub fn pct(ratio: f64) -> String {
    format!("{:+.1}%", (ratio - 1.0) * 100.0)
}

/// Print a titled table: header row + body rows.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    println!("{}", row(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>()));
    for r in rows {
        println!("{}", row(r));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_stream_is_the_documented_sequence() {
        let s = paper_stream(1000);
        assert_eq!(s.total_events, 10_000);
        assert_eq!(s.flights, 100);
        assert_eq!(s.event_size, 1000);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(secs(1.234), "1.23");
        assert_eq!(pct(1.15), "+15.0%");
        assert_eq!(pct(0.9), "-10.0%");
        assert!(row(&["a".into(), "b".into()]).contains('a'));
    }
}
