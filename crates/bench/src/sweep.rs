//! A parameterized experiment runner behind the `sweep` binary:
//! compose your own experiment grid from the command line and get CSV out.
//!
//! ```text
//! cargo run --release -p mirror-bench --bin sweep -- \
//!     --mirrors 1,2,4 --sizes 500,1000,4000 --kind selective:10 \
//!     --rate 100 --targets mirrors --events 10000 --paced
//! ```

use mirror_core::mirrorfn::MirrorFnKind;
use mirror_ois::experiment::{run, ExperimentConfig, Ingest, RequestTargets};
use mirror_workload::faa::FaaStreamConfig;
use mirror_workload::requests::RequestPattern;

/// A parsed sweep specification.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSpec {
    /// Mirror counts to sweep.
    pub mirrors: Vec<usize>,
    /// Event sizes (bytes) to sweep.
    pub sizes: Vec<usize>,
    /// Mirroring configuration.
    pub kind: MirrorFnKind,
    /// Client request rate (req/s); 0 = none.
    pub rate: f64,
    /// Which sites serve requests.
    pub targets: RequestTargets,
    /// Total events in the sequence.
    pub events: u64,
    /// Paced (capture-time) vs backlog ingest.
    pub paced: bool,
    /// Override the checkpoint interval.
    pub checkpoint_every: Option<u32>,
}

impl Default for SweepSpec {
    fn default() -> Self {
        SweepSpec {
            mirrors: vec![1],
            sizes: vec![1000],
            kind: MirrorFnKind::Simple,
            rate: 0.0,
            targets: RequestTargets::AllSites,
            events: 10_000,
            paced: false,
            checkpoint_every: None,
        }
    }
}

/// Error from argument parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub String);

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}
impl std::error::Error for ParseError {}

fn parse_list<T: std::str::FromStr>(v: &str, what: &str) -> Result<Vec<T>, ParseError> {
    v.split(',')
        .map(|p| p.trim().parse::<T>().map_err(|_| ParseError(format!("bad {what}: {p:?}"))))
        .collect()
}

/// Parse a `--kind` value: `none`, `simple`, `selective:L`,
/// `coalescing:N:F`, `overwriting:L:F`.
pub fn parse_kind(v: &str) -> Result<MirrorFnKind, ParseError> {
    let parts: Vec<&str> = v.split(':').collect();
    let num = |i: usize| -> Result<u32, ParseError> {
        parts
            .get(i)
            .and_then(|p| p.parse().ok())
            .ok_or_else(|| ParseError(format!("kind {v:?}: missing/bad numeric arg {i}")))
    };
    match parts[0] {
        "none" => Ok(MirrorFnKind::None),
        "simple" => Ok(MirrorFnKind::Simple),
        "selective" => Ok(MirrorFnKind::Selective { overwrite: num(1)? }),
        "coalescing" => {
            Ok(MirrorFnKind::Coalescing { coalesce: num(1)?, checkpoint_every: num(2)? })
        }
        "overwriting" => {
            Ok(MirrorFnKind::Overwriting { overwrite: num(1)?, checkpoint_every: num(2)? })
        }
        other => Err(ParseError(format!(
            "unknown kind {other:?} (none|simple|selective:L|coalescing:N:F|overwriting:L:F)"
        ))),
    }
}

/// Parse command-line arguments (without the program name).
pub fn parse_args<I: IntoIterator<Item = String>>(args: I) -> Result<SweepSpec, ParseError> {
    let mut spec = SweepSpec::default();
    let mut it = args.into_iter();
    while let Some(flag) = it.next() {
        let mut value =
            || it.next().ok_or_else(|| ParseError(format!("flag {flag} needs a value")));
        match flag.as_str() {
            "--mirrors" => spec.mirrors = parse_list(&value()?, "mirror count")?,
            "--sizes" => spec.sizes = parse_list(&value()?, "size")?,
            "--kind" => spec.kind = parse_kind(&value()?)?,
            "--rate" => {
                spec.rate = value()?.parse().map_err(|_| ParseError("bad --rate".into()))?
            }
            "--events" => {
                spec.events = value()?.parse().map_err(|_| ParseError("bad --events".into()))?
            }
            "--checkpoint-every" => {
                spec.checkpoint_every = Some(
                    value()?.parse().map_err(|_| ParseError("bad --checkpoint-every".into()))?,
                )
            }
            "--targets" => {
                spec.targets = match value()?.as_str() {
                    "all" => RequestTargets::AllSites,
                    "mirrors" => RequestTargets::MirrorsOnly,
                    other => {
                        return Err(ParseError(format!(
                            "unknown --targets {other:?} (all|mirrors)"
                        )))
                    }
                }
            }
            "--paced" => spec.paced = true,
            "--help" | "-h" => {
                return Err(ParseError(USAGE.to_string()));
            }
            other => return Err(ParseError(format!("unknown flag {other:?}\n{USAGE}"))),
        }
    }
    if spec.mirrors.is_empty() || spec.sizes.is_empty() {
        return Err(ParseError("need at least one mirror count and one size".into()));
    }
    Ok(spec)
}

/// Usage string for the sweep binary.
pub const USAGE: &str = "\
usage: sweep [--mirrors 1,2,4] [--sizes 500,1000,4000]
             [--kind none|simple|selective:L|coalescing:N:F|overwriting:L:F]
             [--rate REQ_PER_SEC] [--targets all|mirrors] [--events N]
             [--checkpoint-every F] [--paced]";

/// Run the sweep, emitting one CSV row per (mirrors, size) cell.
pub fn run_sweep(spec: &SweepSpec, mut out: impl std::io::Write) -> std::io::Result<()> {
    writeln!(
        out,
        "mirrors,size_bytes,total_s,mean_update_delay_us,requests_served,\
         mirrored_events,mirrored_kb,central_utilization,consistent"
    )?;
    for &m in &spec.mirrors {
        for &size in &spec.sizes {
            let r = run(&ExperimentConfig {
                mirrors: m,
                kind: spec.kind,
                faa: FaaStreamConfig {
                    flights: 100,
                    total_events: spec.events,
                    events_per_sec: 2_500.0,
                    event_size: size,
                    seed: 0xFAA,
                    first_flight: 0,
                },
                requests: if spec.rate > 0.0 {
                    RequestPattern::Constant { rate: spec.rate }
                } else {
                    RequestPattern::None
                },
                request_horizon_us: 5_000_000,
                targets: spec.targets,
                ingest: if spec.paced { Ingest::Paced } else { Ingest::Backlog },
                checkpoint_every_override: spec.checkpoint_every,
                ..Default::default()
            });
            let consistent =
                r.state_hashes.len() <= 2 || r.state_hashes[1..].windows(2).all(|w| w[0] == w[1]);
            writeln!(
                out,
                "{m},{size},{:.3},{:.1},{},{},{},{:.3},{}",
                r.total_time_s,
                r.update_delay.mean_us(),
                r.requests_served,
                r.central.mirrored,
                r.mirrored_bytes / 1024,
                r.utilization.first().copied().unwrap_or(0.0),
                consistent
            )?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_a_full_command_line() {
        let spec = parse_args(args(
            "--mirrors 1,2,4 --sizes 500,1000 --kind selective:10 --rate 100 \
             --targets mirrors --events 5000 --paced --checkpoint-every 25",
        ))
        .unwrap();
        assert_eq!(spec.mirrors, vec![1, 2, 4]);
        assert_eq!(spec.sizes, vec![500, 1000]);
        assert_eq!(spec.kind, MirrorFnKind::Selective { overwrite: 10 });
        assert_eq!(spec.rate, 100.0);
        assert_eq!(spec.targets, RequestTargets::MirrorsOnly);
        assert_eq!(spec.events, 5000);
        assert!(spec.paced);
        assert_eq!(spec.checkpoint_every, Some(25));
    }

    #[test]
    fn defaults_are_sensible() {
        let spec = parse_args(Vec::<String>::new()).unwrap();
        assert_eq!(spec, SweepSpec::default());
    }

    #[test]
    fn kind_parsing_covers_all_variants() {
        assert_eq!(parse_kind("none").unwrap(), MirrorFnKind::None);
        assert_eq!(parse_kind("simple").unwrap(), MirrorFnKind::Simple);
        assert_eq!(
            parse_kind("coalescing:10:50").unwrap(),
            MirrorFnKind::Coalescing { coalesce: 10, checkpoint_every: 50 }
        );
        assert_eq!(
            parse_kind("overwriting:20:100").unwrap(),
            MirrorFnKind::Overwriting { overwrite: 20, checkpoint_every: 100 }
        );
        assert!(parse_kind("bogus").is_err());
        assert!(parse_kind("selective").is_err(), "missing numeric arg");
        assert!(parse_kind("coalescing:10").is_err());
    }

    #[test]
    fn rejects_unknown_flags_and_missing_values() {
        assert!(parse_args(args("--bogus 1")).is_err());
        assert!(parse_args(args("--mirrors")).is_err());
        assert!(parse_args(args("--targets sideways")).is_err());
    }

    #[test]
    fn sweep_produces_csv_rows() {
        let spec =
            SweepSpec { mirrors: vec![1, 2], sizes: vec![500], events: 300, ..Default::default() };
        let mut buf = Vec::new();
        run_sweep(&spec, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3, "header + 2 cells: {text}");
        assert!(lines[0].starts_with("mirrors,size_bytes"));
        assert!(lines[1].starts_with("1,500,"));
        assert!(lines[2].starts_with("2,500,"));
    }
}
