//! Compose-your-own experiment grid; CSV to stdout. See `--help`.

use mirror_bench::sweep::{parse_args, run_sweep, USAGE};

fn main() {
    let spec = match parse_args(std::env::args().skip(1)) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{e}");
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    };
    if let Err(e) = run_sweep(&spec, std::io::stdout().lock()) {
        eprintln!("sweep failed: {e}");
        std::process::exit(1);
    }
}
