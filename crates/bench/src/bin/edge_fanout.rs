//! Massive fan-out through the edge tier: 100k+ concurrent simulated
//! subscribers on one host, fed by a live cluster mirror.
//!
//! One cluster (central + 1 mirror) applies a paced flight stream; the
//! mirror's [`mirror_edge::EdgeServer`] fans every applied update out to
//! `--subs` in-process subscribers (10% lobby displays on
//! `SubscriptionFilter::All`, 90% gate displays on 4-flight subsets),
//! drained by a poller pool. Two phases, same feed:
//!
//! * **A (baseline)** — every subscriber healthy;
//! * **B (chaos)** — 1% of subscribers read-stalled on a seeded
//!   [`ThrottleSchedule`], plus a resume cohort that drops and resumes
//!   its connections mid-stream.
//!
//! Reported per phase: delivery-latency p50/p99 (event ingress → poll,
//! healthy subscribers only), delivered frames/sec, conflation ratio,
//! per-client queue/pending high watermarks. Asserted in-binary:
//!
//! * a checker subscriber observes a **contiguous, gap-free** stream and
//!   converges to state [`views_equivalent`] to the mirror's;
//! * every resume succeeds and the resume cohort converges identically;
//! * pending conflation state never exceeds `max_pending` and the
//!   healthy queue never exceeds `queue_cap` — for *any* client,
//!   stalled ones included (bounded slow-client memory);
//! * the stalled cohort's existence costs healthy subscribers at most
//!   1.5x the baseline p99 (plus a small absolute epsilon).
//!
//! Emits `results/BENCH_edge_fanout.json`. `--smoke` shrinks the run for
//! CI; `--subs`, `--events`, `--rate`, `--out` override defaults.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use mirror_core::event::{Event, FlightStatus, PositionFix};
use mirror_echo::faults::ThrottleSchedule;
use mirror_echo::SubscriptionFilter;
use mirror_ede::OperationalState;
use mirror_edge::{views_equivalent, Delivery, EdgeClient, EdgeConfig, EdgeDisconnect};
use mirror_runtime::{Cluster, ClusterConfig};

const FLIGHTS: u32 = 64;
const QUEUE_CAP: usize = 64;
const MAX_PENDING: usize = 1024;
const RESUMERS: u64 = 16;
const SAMPLE_EVERY: u64 = 64;
const PHASE_DEADLINE: Duration = Duration::from_secs(300);

fn fix(seq: u64) -> PositionFix {
    PositionFix {
        lat: 33.0 + (seq % 17) as f64 * 0.4,
        lon: -97.0 + (seq % 29) as f64 * 0.3,
        alt_ft: 31_000.0,
        speed_kts: 460.0,
        heading_deg: (seq % 360) as f64,
    }
}

/// Deterministic per-client filter: 1 in 10 watches everything (lobby
/// display), the rest watch a 4-flight subset (gate display).
fn filter_for(client: u64) -> SubscriptionFilter {
    if client.is_multiple_of(10) {
        SubscriptionFilter::All
    } else {
        let mut x = client.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(0xD1B5);
        let mut flights = Vec::with_capacity(4);
        for _ in 0..4 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            flights.push(((x >> 33) % u64::from(FLIGHTS)) as u32);
        }
        SubscriptionFilter::Flights(flights)
    }
}

/// One poller-owned subscriber.
struct Slot {
    client: Option<EdgeClient>,
    stall: Option<ThrottleSchedule>,
}

/// What one poller shard measured.
struct ShardReport {
    latencies_us: Vec<u64>,
    queue_hwm: usize,
    pending_hwm: usize,
    slow_disconnects: u64,
}

/// Drain a shard of subscribers until the run is done and every backlog
/// is empty. Healthy clients are sampled for delivery latency; stalled
/// clients skip polls while their seeded schedule says so (and drain
/// unconditionally once `done` is set, so the run can finish).
fn run_shard(
    mut slots: Vec<Slot>,
    cluster: Arc<Cluster>,
    done: Arc<AtomicBool>,
    deadline: Instant,
) -> ShardReport {
    let mut report =
        ShardReport { latencies_us: Vec::new(), queue_hwm: 0, pending_hwm: 0, slow_disconnects: 0 };
    let mut polled = 0u64;
    loop {
        assert!(Instant::now() < deadline, "poller shard overran the phase deadline");
        let finishing = done.load(Ordering::Acquire);
        let mut busy = false;
        let mut all_drained = true;
        for slot in slots.iter_mut() {
            let Some(client) = slot.client.as_ref() else { continue };
            if !finishing {
                if let Some(sched) = slot.stall.as_mut() {
                    if sched.stalled() {
                        all_drained = false;
                        continue;
                    }
                }
            }
            // Bounded drain per sweep keeps one deep backlog from
            // starving the rest of the shard.
            for _ in 0..32 {
                match client.poll() {
                    Ok(Some(Delivery::Event(ev))) => {
                        busy = true;
                        polled += 1;
                        if slot.stall.is_none() && polled.is_multiple_of(SAMPLE_EVERY) {
                            let now = cluster.clock().now_us();
                            report.latencies_us.push(now.saturating_sub(ev.event().ingress_us));
                        }
                    }
                    Ok(Some(Delivery::Reseed { .. })) | Ok(Some(Delivery::DeltaReseed { .. })) => {
                        busy = true
                    }
                    Ok(None) => break,
                    Err(EdgeDisconnect::SlowClient { .. }) => {
                        report.slow_disconnects += 1;
                        slot.client = None;
                        break;
                    }
                    Err(why) => panic!("unexpected edge disconnect: {why}"),
                }
            }
            if let Some(client) = slot.client.as_ref() {
                if client.backlog() > 0 {
                    all_drained = false;
                }
            }
        }
        if finishing && all_drained {
            break;
        }
        if !busy {
            std::thread::sleep(Duration::from_micros(500));
        }
    }
    for slot in &slots {
        let Some(client) = slot.client.as_ref() else { continue };
        let (q, p) = client.high_watermarks();
        report.queue_hwm = report.queue_hwm.max(q);
        report.pending_hwm = report.pending_hwm.max(p);
    }
    report
}

/// A subscriber that replays deliveries into an [`OperationalState`],
/// optionally dropping and resuming its connection mid-stream. Returns
/// `(state, last_seq, gaps, resumes)`.
fn run_stateful(
    edge: Arc<mirror_edge::EdgeServer>,
    mut client: EdgeClient,
    drop_at: Option<Arc<AtomicBool>>,
    target: Arc<AtomicU64>,
    deadline: Instant,
) -> (OperationalState, u64, u64, u64) {
    let id = client.id();
    let mut state = OperationalState::new();
    let mut last = 0u64;
    let mut gaps = 0u64;
    let mut resumes = 0u64;
    let mut dropped = false;
    loop {
        assert!(Instant::now() < deadline, "stateful subscriber {id} overran the deadline");
        let t = target.load(Ordering::Acquire);
        if t != 0 && last >= t {
            break;
        }
        if !dropped {
            if let Some(flag) = drop_at.as_ref() {
                if flag.load(Ordering::Acquire) {
                    dropped = true;
                    client.disconnect();
                    client = edge.resume(id, last).expect("resume after mid-stream drop");
                    resumes += 1;
                    continue;
                }
            }
        }
        match client.poll() {
            Ok(Some(Delivery::Event(ev))) => {
                assert!(ev.pub_seq() > last, "subscriber {id}: dup or regression");
                if ev.pub_seq() != last + 1 {
                    gaps += 1;
                }
                state.apply(ev.event());
                last = ev.pub_seq();
            }
            Ok(Some(Delivery::Reseed { pub_seq, snapshot })) => {
                assert!(pub_seq >= last, "subscriber {id}: reseed rewound");
                let snap = mirror_echo::wire::decode_snapshot(snapshot).expect("decode reseed");
                state = snap.into_state();
                last = pub_seq;
            }
            Ok(Some(Delivery::DeltaReseed { pub_seq, delta })) => {
                assert!(pub_seq >= last, "subscriber {id}: delta reseed rewound");
                let d = mirror_echo::wire::decode_delta(delta).expect("decode delta reseed");
                state.apply_delta(&d);
                last = pub_seq;
            }
            Ok(None) => std::thread::sleep(Duration::from_micros(200)),
            Err(why) => panic!("stateful subscriber {id} hung up: {why}"),
        }
    }
    (state, last, gaps, resumes)
}

struct PhaseStats {
    published: u64,
    delivered: u64,
    conflated: u64,
    conflation_ratio: f64,
    delivered_per_sec: f64,
    p50_us: u64,
    p99_us: u64,
    samples: usize,
    queue_hwm: usize,
    pending_hwm: usize,
    slow_disconnects: u64,
    resumed: u64,
    reseeded: u64,
    duration_s: f64,
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn run_phase(subs: usize, events: u64, rate: u64, chaos: bool, pollers: usize) -> PhaseStats {
    let deadline = Instant::now() + PHASE_DEADLINE;
    let cluster = Arc::new(Cluster::start(ClusterConfig { mirrors: 1, ..Default::default() }));
    cluster.central().handle().set_params(false, 1, 10);
    let edge = cluster
        .serve_edge(
            1,
            EdgeConfig {
                window: 8192,
                queue_cap: QUEUE_CAP,
                max_pending: MAX_PENDING,
                ..Default::default()
            },
        )
        .expect("edge on mirror 1");

    // Client ids: 0 = checker, 1..=RESUMERS = resume cohort (chaos phase
    // only), the rest the bulk fleet. The stalled cohort is the tail 1%.
    let stalled_from =
        if chaos { subs.saturating_sub(subs / 100).max(RESUMERS as usize + 1) } else { usize::MAX };
    let done = Arc::new(AtomicBool::new(false));
    let target = Arc::new(AtomicU64::new(0));
    let halfway = Arc::new(AtomicBool::new(false));

    let checker = {
        let edge = Arc::clone(&edge);
        let (target, deadline) = (Arc::clone(&target), deadline);
        let client = edge.subscribe(0, SubscriptionFilter::All);
        std::thread::Builder::new()
            .name("edge-checker".into())
            .spawn(move || run_stateful(edge, client, None, target, deadline))
            .expect("spawn checker")
    };
    let mut resume_handles = Vec::new();
    if chaos {
        for id in 1..=RESUMERS {
            let edge = Arc::clone(&edge);
            let (target, halfway, deadline) = (Arc::clone(&target), Arc::clone(&halfway), deadline);
            let client = edge.subscribe(id, SubscriptionFilter::All);
            resume_handles.push(
                std::thread::Builder::new()
                    .name(format!("edge-resume-{id}"))
                    .spawn(move || run_stateful(edge, client, Some(halfway), target, deadline))
                    .expect("spawn resume subscriber"),
            );
        }
    }

    // Bulk fleet, sharded across the poller pool.
    let mut shards: Vec<Vec<Slot>> = (0..pollers).map(|_| Vec::new()).collect();
    let first_bulk = if chaos { RESUMERS + 1 } else { 1 };
    for id in first_bulk..subs as u64 {
        let stall =
            (id as usize >= stalled_from).then(|| ThrottleSchedule::new(0xED6E ^ id, 900, 20_000));
        let client = edge.subscribe(id, filter_for(id));
        shards[(id as usize) % pollers].push(Slot { client: Some(client), stall });
    }
    let poller_handles: Vec<_> = shards
        .into_iter()
        .enumerate()
        .map(|(i, slots)| {
            let (cluster, done) = (Arc::clone(&cluster), Arc::clone(&done));
            std::thread::Builder::new()
                .name(format!("edge-poller-{i}"))
                .spawn(move || run_shard(slots, cluster, done, deadline))
                .expect("spawn poller")
        })
        .collect();

    // Paced feed: per-flight monotone positions with a forward status
    // advance sprinkled in (the absolute-and-monotone-per-kind payload
    // discipline conflation equivalence rests on).
    let t0 = Instant::now();
    let interval = Duration::from_micros(1_000_000 / rate.max(1));
    let mut status_idx = [0usize; FLIGHTS as usize];
    for seq in 1..=events {
        let flight = (seq % u64::from(FLIGHTS)) as u32;
        if seq % 50 == 0 {
            let idx = &mut status_idx[flight as usize];
            if *idx + 1 < FlightStatus::ALL.len() {
                *idx += 1;
                cluster.submit(Event::delta_status(seq, flight, FlightStatus::ALL[*idx]));
            } else {
                cluster.submit(Event::faa_position(seq, flight, fix(seq)));
            }
        } else {
            cluster.submit(Event::faa_position(seq, flight, fix(seq)));
        }
        if seq == events / 2 {
            halfway.store(true, Ordering::Release);
        }
        std::thread::sleep(interval);
    }
    assert!(cluster.wait_all_processed(events, Duration::from_secs(30)), "feed must apply");

    // Everything applied; wait for the update pump to go quiet, then
    // flush the delivery workers and release the finish line.
    let mut stable = 0;
    let mut frontier = edge.pub_seq();
    while stable < 5 {
        std::thread::sleep(Duration::from_millis(20));
        let now = edge.pub_seq();
        if now == frontier && now > 0 {
            stable += 1;
        } else {
            stable = 0;
            frontier = now;
        }
    }
    edge.quiesce();
    target.store(frontier, Ordering::Release);
    done.store(true, Ordering::Release);

    let mut latencies = Vec::new();
    let mut queue_hwm = 0usize;
    let mut pending_hwm = 0usize;
    let mut slow_disconnects = 0u64;
    for h in poller_handles {
        let r = h.join().expect("poller shard");
        latencies.extend(r.latencies_us);
        queue_hwm = queue_hwm.max(r.queue_hwm);
        pending_hwm = pending_hwm.max(r.pending_hwm);
        slow_disconnects += r.slow_disconnects;
    }
    let duration_s = t0.elapsed().as_secs_f64();

    // Bounded-memory evidence: no client — stalled cohort included —
    // ever held more than the configured caps.
    assert!(
        pending_hwm <= MAX_PENDING,
        "pending conflation state must stay under the cap: {pending_hwm} > {MAX_PENDING}"
    );
    assert!(
        queue_hwm <= QUEUE_CAP,
        "healthy queue must stay under its cap: {queue_hwm} > {QUEUE_CAP}"
    );

    // Checker correctness: contiguous stream, convergent state.
    let mirror_state = cluster.snapshot(1).expect("mirror snapshot").into_state();
    let (checker_state, checker_last, checker_gaps, _) = checker.join().expect("checker");
    assert_eq!(checker_last, frontier, "checker consumed to the frontier");
    assert_eq!(checker_gaps, 0, "checker must observe a gap-free stream");
    assert_eq!(checker_state.flights().len(), mirror_state.flights().len());
    for (id, view) in mirror_state.flights().iter() {
        let got = checker_state.flight(*id).expect("checker has every flight");
        assert!(views_equivalent(view, got), "checker diverged on flight {id}");
    }
    for h in resume_handles {
        let (state, last, _gaps, resumes) = h.join().expect("resume subscriber");
        assert_eq!(resumes, 1, "each resume subscriber dropped and resumed once");
        assert_eq!(last, frontier, "resume subscriber consumed to the frontier");
        for (id, view) in mirror_state.flights().iter() {
            let got = state.flight(*id).expect("resume subscriber has every flight");
            assert!(views_equivalent(view, got), "resume subscriber diverged on flight {id}");
        }
    }

    let stats = edge.counters().snapshot();
    if chaos {
        assert!(
            stats.resumed + stats.reseeded >= RESUMERS,
            "every mid-stream resume re-attached (replay or reseed)"
        );
        assert!(stats.conflated > 0, "the stalled cohort must actually conflate");
    }

    latencies.sort_unstable();
    let conflation_ratio = if stats.delivered + stats.conflated > 0 {
        stats.conflated as f64 / (stats.delivered + stats.conflated) as f64
    } else {
        0.0
    };
    let out = PhaseStats {
        published: stats.published,
        delivered: stats.delivered,
        conflated: stats.conflated,
        conflation_ratio,
        delivered_per_sec: stats.delivered as f64 / duration_s,
        p50_us: percentile(&latencies, 0.50),
        p99_us: percentile(&latencies, 0.99),
        samples: latencies.len(),
        queue_hwm,
        pending_hwm,
        slow_disconnects,
        resumed: stats.resumed,
        reseeded: stats.reseeded,
        duration_s,
    };
    let cluster = Arc::try_unwrap(cluster).unwrap_or_else(|_| panic!("cluster still shared"));
    cluster.shutdown();
    out
}

fn phase_json(name: &str, s: &PhaseStats) -> String {
    format!(
        "  \"{name}\": {{\n    \"published\": {},\n    \"delivered\": {},\n    \
         \"delivered_per_sec\": {:.0},\n    \"conflated\": {},\n    \
         \"conflation_ratio\": {:.6},\n    \"latency_p50_us\": {},\n    \
         \"latency_p99_us\": {},\n    \"latency_samples\": {},\n    \
         \"queue_high_watermark\": {},\n    \"pending_high_watermark\": {},\n    \
         \"slow_disconnects\": {},\n    \"resumed\": {},\n    \"reseeded\": {},\n    \
         \"duration_s\": {:.2}\n  }}",
        s.published,
        s.delivered,
        s.delivered_per_sec,
        s.conflated,
        s.conflation_ratio,
        s.p50_us,
        s.p99_us,
        s.samples,
        s.queue_hwm,
        s.pending_hwm,
        s.slow_disconnects,
        s.resumed,
        s.reseeded,
        s.duration_s,
    )
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let flag = |name: &str| args.iter().any(|a| a == name);
    let opt = |name: &str| {
        args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).map(|v| v.to_string())
    };

    let smoke = flag("--smoke");
    let subs: usize = opt("--subs").map(|v| v.parse().expect("--subs")).unwrap_or(if smoke {
        2_000
    } else {
        100_000
    });
    let events: u64 = opt("--events").map(|v| v.parse().expect("--events")).unwrap_or(if smoke {
        300
    } else {
        360
    });
    // Full mode paces the feed to the host's sustainable fan-out rate:
    // each event reaches ~15% of the fleet, so even single-digit
    // events/sec is ~100k frame deliveries/sec at 100k subscribers.
    let rate: u64 =
        opt("--rate").map(|v| v.parse().expect("--rate")).unwrap_or(if smoke { 600 } else { 6 });
    let out = opt("--out").unwrap_or_else(|| "results/BENCH_edge_fanout.json".to_string());
    if let Some(parent) = std::path::Path::new(&out).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).expect("create output directory");
        }
    }
    let pollers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4).clamp(2, 16);

    println!(
        "edge_fanout: {subs} subscribers, {events} events @ {rate}/s, {pollers} pollers \
         (smoke={smoke})"
    );
    println!("phase A: all subscribers healthy");
    let a = run_phase(subs, events, rate, false, pollers);
    println!(
        "  delivered {} ({:.0}/s)  conflated {} ({:.4})  p50 {} us  p99 {} us",
        a.delivered, a.delivered_per_sec, a.conflated, a.conflation_ratio, a.p50_us, a.p99_us
    );
    println!("phase B: 1% stalled cohort + {RESUMERS} mid-stream resumes");
    let b = run_phase(subs, events, rate, true, pollers);
    println!(
        "  delivered {} ({:.0}/s)  conflated {} ({:.4})  p50 {} us  p99 {} us  \
         resumed {}  reseeded {}",
        b.delivered,
        b.delivered_per_sec,
        b.conflated,
        b.conflation_ratio,
        b.p50_us,
        b.p99_us,
        b.resumed,
        b.reseeded
    );

    // Isolation: a stalled cohort conflates in place of queueing, so it
    // must not drag healthy subscribers' tail latency. 1.5x plus a small
    // absolute epsilon (scheduler noise at micro-scale latencies).
    let budget_us = (a.p99_us as f64 * 1.5) + 25_000.0;
    assert!(
        (b.p99_us as f64) <= budget_us,
        "stalled cohort delayed healthy subscribers: p99 {} us vs budget {:.0} us \
         (baseline {} us)",
        b.p99_us,
        budget_us,
        a.p99_us
    );

    let json = format!(
        "{{\n  \"bench\": \"edge_fanout\",\n  \"smoke\": {smoke},\n  \"config\": {{\
         \"subs\": {subs}, \"events\": {events}, \"rate_per_sec\": {rate}, \
         \"flights\": {FLIGHTS}, \"pollers\": {pollers}, \"queue_cap\": {QUEUE_CAP}, \
         \"max_pending\": {MAX_PENDING}, \"resumers\": {RESUMERS}}},\n{},\n{},\n  \
         \"healthy_p99_budget_us\": {:.0}\n}}\n",
        phase_json("baseline", &a),
        phase_json("chaos", &b),
        budget_us,
    );
    std::fs::write(&out, json).expect("write benchmark json");
    println!("wrote {out}");
}
