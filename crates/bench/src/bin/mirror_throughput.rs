//! End-to-end mirroring throughput: central → 2 bridged mirrors.
//!
//! Measures the data-path rework of the zero-copy/batching PR directly:
//! a stream of fixed-size events is published on the central data channel
//! and fanned out over two bridges (one per mirror), each running a full
//! [`MirrorSite`] behind its own transport pair. The clock runs from the
//! first publish until **both** remote EDEs have absorbed the stream.
//!
//! Five cases: the cross product of
//!
//! * **transport** — `inproc` (in-process rendezvous, no sockets) and
//!   `tcp` (loopback sockets, real syscalls);
//! * **path** — `baseline` re-creates the pre-change data path (no
//!   batching, and every link decodes + re-encodes each frame via the
//!   [`Transport::send_encoded`] default, i.e. no shared encoding and one
//!   transport send per event per link) vs `batched` (the default
//!   [`BatchPolicy`]: encode-once fan-out, `Frame::Batch` packing, one
//!   vectored send per burst). The baseline still benefits from today's
//!   vectored frame writer (the old one issued two `write_all`s), so the
//!   reported speedup slightly *understates* the change;
//!
//! plus `inproc_batched_journal`, the batched in-process path with the
//! central site's real durability handle ([`Journal`]: async writer thread
//! over a segmented event log, fsync every 64 — the cluster default)
//! journaling every event before publish. The JSON reports
//! `journal_overhead` (journaled / plain throughput); the target is a
//! < 15 % regression.
//!
//! A sixth case, `apply_saturation`, isolates the **apply path** of the
//! sharded-EDE PR: no transports or bridges, just events flowing from a
//! producer through the site's inbound hop into the EDE. `baseline`
//! re-creates the pre-change apply loop verbatim (one crossbeam channel
//! hop, a single global `Mutex<Ede>`, an allocated [`Ede::process`]
//! output per event, a responder lock + frontier merge per event);
//! `sharded` runs the real [`ApplyPool`] dispatcher/worker path (bounded
//! lock-free rings, per-shard locks, clone-free `process_with`, batched
//! bookkeeping). Both replay the identical pre-built stream and the
//! binary asserts their canonical state hashes agree before reporting
//! the speedup.
//!
//! Emits `results/BENCH_mirror_throughput.json` for CI artifact upload and
//! prints a human-readable table. `--smoke` shrinks the stream for CI;
//! `--events`, `--size`, `--apply-events` and `--trials` override the
//! defaults; `--out` redirects the JSON.

use std::io;
use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use mirror_core::api::{MirrorConfig, MirrorHandle};
use mirror_core::checkpoint::MainUnitResponder;
use mirror_core::event::{Event, PositionFix};
use mirror_core::ring::{self, RingRecv};
use mirror_core::timestamp::VectorTimestamp;
use mirror_echo::channel::EventChannel;
use mirror_echo::transport::{InProcTransport, Polled, TcpTransport};
use mirror_echo::wire::{encode_frame, Frame, SharedEvent};
use mirror_echo::Transport;
use mirror_ede::{Ede, ShardedEde};
use mirror_runtime::bridge::{central_endpoint_with, mirror_endpoint_with, BatchPolicy};
use mirror_runtime::site::SiteCounters;
use mirror_runtime::{
    ApplyPool, ApplyPoolConfig, ApplySink, DurabilityConfig, Journal, MirrorSite, RuntimeClock,
};
use mirror_store::FsyncPolicy;

const MIRRORS: u16 = 2;

fn fix() -> PositionFix {
    PositionFix { lat: 33.6, lon: -84.4, alt_ft: 31_000.0, speed_kts: 450.0, heading_deg: 270.0 }
}

fn event(seq: u64, size: usize) -> Event {
    let mut e = Event::faa_position(seq, (seq % 50) as u32, fix()).with_total_size(size);
    e.stamp = VectorTimestamp::new(1);
    e.stamp.advance(0, seq);
    e
}

/// The pre-change send path, restored behind the current [`Transport`]
/// trait: by *not* overriding [`Transport::send_encoded`], every frame
/// handed to this wrapper is decoded and re-encoded per link (the trait
/// default), exactly what each bridge writer used to pay before encodings
/// were shared.
struct LegacyTransport(Box<dyn Transport>);

impl Transport for LegacyTransport {
    fn send(&mut self, frame: &Frame) -> io::Result<()> {
        self.0.send(frame)
    }
    fn recv(&mut self) -> io::Result<Option<Frame>> {
        self.0.recv()
    }
    fn recv_timeout(&mut self, timeout: Duration) -> io::Result<Polled> {
        self.0.recv_timeout(timeout)
    }
    fn label(&self) -> String {
        format!("legacy:{}", self.0.label())
    }
}

/// A connected unidirectional transport pair, in-process or loopback TCP.
fn transport_pair(tcp: bool, label: &str) -> (Box<dyn Transport>, Box<dyn Transport>) {
    if tcp {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
        let addr = listener.local_addr().unwrap();
        // connect() completes against the listener's backlog, so one
        // thread can safely hold both ends.
        let a = TcpTransport::connect(addr).expect("connect loopback");
        let b = TcpTransport::accept_one(&listener).expect("accept loopback");
        (Box::new(a), Box::new(b))
    } else {
        let (a, b) = InProcTransport::pair(label);
        (Box::new(a), Box::new(b))
    }
}

struct RunStats {
    events: u64,
    frame_bytes: u64,
    secs: f64,
    events_per_sec: f64,
    delivered_per_sec: f64,
    mbytes_per_sec: f64,
}

/// Open a fresh [`Journal`] (the central site's real durability handle:
/// async writer thread over a segmented [`mirror_store::EventLog`]) in a
/// throwaway directory, tuned like the cluster default: `fsync` every 64
/// appends.
fn bench_journal() -> (Journal, std::path::PathBuf) {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "mirror-bench-journal-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let journal = Journal::open(&DurabilityConfig {
        fsync: FsyncPolicy::EveryN(64),
        ..DurabilityConfig::new(&dir)
    })
    .expect("open bench journal");
    (journal, dir)
}

/// One measured case: publish `n` events of `size` bytes to `MIRRORS`
/// bridged mirror sites and wait for full absorption. With `journal`, each
/// event's cached wire encoding is appended to a real [`Journal`] before
/// publish — exactly what the journaled central data path does per event.
fn run_case(n: u64, size: usize, tcp: bool, batched: bool, journal: bool) -> RunStats {
    let policy = if batched { BatchPolicy::default() } else { BatchPolicy::unbatched() };

    let data = EventChannel::new("bench.data");
    let ctrl_down = EventChannel::new("bench.ctrl.down");
    let ctrl_up = EventChannel::new("bench.ctrl.up");

    let mut central_bridges = Vec::new();
    let mut mirror_bridges = Vec::new();
    let mut sites = Vec::new();
    for m in 1..=MIRRORS {
        let (down_c, down_m) = transport_pair(tcp, "bench.down");
        let (up_m, up_c) = transport_pair(tcp, "bench.up");
        let down_c = if batched { down_c } else { Box::new(LegacyTransport(down_c)) as _ };
        central_bridges.push(central_endpoint_with(
            &data,
            &ctrl_down,
            ctrl_up.publisher(),
            down_c,
            up_c,
            policy,
        ));
        let (site, bridge) =
            mirror_endpoint_with(down_m, up_m, policy, |data, ctrl_down, ctrl_up| {
                MirrorSite::start(
                    MirrorHandle::new(MirrorConfig::default().build_mirror(m)),
                    RuntimeClock::new(),
                    data,
                    ctrl_down,
                    ctrl_up.publisher(),
                )
            });
        sites.push(site);
        mirror_bridges.push(bridge);
    }

    let frame_bytes = encode_frame(&Frame::Data(event(1, size).into())).len() as u64;
    let journal_store = journal.then(bench_journal);
    let pub_data = data.publisher();
    let start = Instant::now();
    for seq in 1..=n {
        let se = SharedEvent::from(event(seq, size));
        if let Some((j, _)) = journal_store.as_ref() {
            // Write-ahead append: two Arc bumps and a queue push here; the
            // journal's writer thread encodes (into the shared cache the
            // bridges reuse) and drives the segmented log.
            j.append(seq, &se);
        }
        pub_data.publish(se);
    }
    // A trial that hits the deadline is scored by what it achieved rather
    // than aborted: on starved machines (CI runners, single-core boxes)
    // the unbatched path can degenerate to one scheduler wakeup per frame,
    // and the honest answer is its observed throughput, not a panic.
    let deadline = Instant::now() + Duration::from_secs(60);
    let mut n_done = sites.iter().map(|s| s.processed().min(n)).min().unwrap();
    while n_done < n && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(1));
        n_done = sites.iter().map(|s| s.processed().min(n)).min().unwrap();
    }
    let secs = start.elapsed().as_secs_f64();

    if n_done == n {
        let hash = sites[0].state_hash();
        assert!(
            sites.iter().all(|s| s.state_hash() == hash),
            "mirrors must converge to identical state"
        );
    } else {
        eprintln!("  (trial hit the 60s deadline at {n_done}/{n} events)");
    }

    for b in central_bridges.iter().chain(mirror_bridges.iter()) {
        b.stop();
    }
    for b in central_bridges.into_iter().chain(mirror_bridges) {
        b.join();
    }
    for mut s in sites {
        s.stop();
    }
    if let Some((j, dir)) = journal_store {
        assert!(j.last_error().is_none(), "bench journal must stay healthy");
        drop(j); // joins the writer; every append reaches the log
        let _ = std::fs::remove_dir_all(&dir);
    }

    RunStats {
        events: n_done,
        frame_bytes,
        secs,
        events_per_sec: n_done as f64 / secs,
        delivered_per_sec: (n_done * MIRRORS as u64) as f64 / secs,
        mbytes_per_sec: (n_done * frame_bytes) as f64 / secs / (1024.0 * 1024.0),
    }
}

/// Median-of-`trials` by events/sec: thread-scheduling pathologies on
/// loaded or single-core machines are bimodal, so a median over a few
/// trials reports the typical rate where a single run might report either
/// mode.
fn run_median(
    trials: usize,
    n: u64,
    size: usize,
    tcp: bool,
    batched: bool,
    journal: bool,
) -> RunStats {
    let mut runs: Vec<RunStats> =
        (0..trials).map(|_| run_case(n, size, tcp, batched, journal)).collect();
    runs.sort_by(|a, b| a.events_per_sec.total_cmp(&b.events_per_sec));
    runs.remove(runs.len() / 2)
}

// ---------------------------------------------------------------------
// apply_saturation: single-lock baseline vs sharded ApplyPool
// ---------------------------------------------------------------------

/// Shard count used by the runtime's sites (`site::APPLY_SHARDS`).
const APPLY_SHARDS: usize = 8;
/// Flights in the apply stream: enough to spread across every shard and
/// defeat any single-flight fast path, few enough that flight views stay
/// cache-hot.
const APPLY_FLIGHTS: u64 = 256;

struct ApplyStats {
    events: u64,
    secs: f64,
    events_per_sec: f64,
    state_hash: u64,
}

/// The apply stream: a representative OIS source mix round-robined over
/// [`APPLY_FLIGHTS`] flights — 70 % FAA position fixes, 20 % gate-reader
/// boarding records, 10 % Delta status transitions — each carrying the
/// submitting site's full 3-stream vector stamp. Boarding counts are
/// monotone per flight and saturate at the expected passenger count, so
/// the stream exercises the boarding-complete derivation *and* the
/// stale-boarding no-change path. Pre-built outside the timed region so
/// both paths measure pure apply cost.
fn apply_stream(n: u64) -> Vec<Arc<Event>> {
    use mirror_core::event::{EventBody, FlightStatus};
    let mut seqs = [0u64; 3];
    (0..n)
        .map(|i| {
            let flight = (i % APPLY_FLIGHTS) as u32;
            let (stream, body) = match i % 10 {
                7 | 8 => (
                    2,
                    EventBody::Boarding {
                        boarded: ((i / APPLY_FLIGHTS) as u32).min(180),
                        expected: 180,
                    },
                ),
                9 => (1, EventBody::Status(FlightStatus::EnRoute)),
                _ => (0, EventBody::Position(fix())),
            };
            seqs[stream] += 1;
            let mut e = Event::new(stream as u16, seqs[stream], flight, body);
            let mut stamp = VectorTimestamp::new(3);
            for (s, v) in seqs.iter().enumerate() {
                stamp.advance(s, *v);
            }
            e.stamp = stamp;
            Arc::new(e)
        })
        .collect()
}

/// The pre-change apply loop, restored verbatim: one crossbeam channel
/// between the feeding thread and the EDE thread, a single global
/// `Mutex<Ede>`, and per event — an allocated [`Ede::process`] output
/// (client-update clones included), an epoch publish, a responder lock +
/// frontier merge, a processed-counter bump and delay accounting. This is
/// exactly the closure the site's main thread ran before the sharded
/// rework (see git history of `runtime/src/site.rs`).
fn run_apply_baseline(events: &[Arc<Event>]) -> ApplyStats {
    let ede = Arc::new(parking_lot::Mutex::new(Ede::new()));
    let responder = Arc::new(parking_lot::Mutex::new(MainUnitResponder::new(0)));
    let counters = Arc::new(SiteCounters::default());
    let epoch = Arc::new(AtomicU64::new(0));
    let clock = RuntimeClock::new();
    let (tx, rx) = crossbeam::channel::unbounded::<Arc<Event>>();

    let consumer = {
        let (ede, responder, counters, epoch, clock) = (
            Arc::clone(&ede),
            Arc::clone(&responder),
            Arc::clone(&counters),
            Arc::clone(&epoch),
            clock.clone(),
        );
        std::thread::spawn(move || {
            while let Ok(ev) = rx.recv() {
                let (out, e) = {
                    let mut ede = ede.lock();
                    let out = ede.process(&ev);
                    (out, ede.epoch())
                };
                epoch.store(e, Ordering::Release);
                responder.lock().record_processed(&ev.stamp);
                counters.processed.fetch_add(1, Ordering::Relaxed);
                let now = clock.now_us();
                for u in out.client_updates {
                    let delay = now.saturating_sub(u.ingress_us);
                    counters.delay_sum_us.fetch_add(delay, Ordering::Relaxed);
                    counters.delay_count.fetch_add(1, Ordering::Relaxed);
                }
            }
        })
    };

    let start = Instant::now();
    for ev in events {
        tx.send(Arc::clone(ev)).expect("baseline consumer alive");
    }
    drop(tx);
    consumer.join().expect("join baseline consumer");
    let secs = start.elapsed().as_secs_f64();

    let n = events.len() as u64;
    assert_eq!(counters.processed.load(Ordering::Relaxed), n);
    let state_hash = ede.lock().state_hash();
    ApplyStats { events: n, secs, events_per_sec: n as f64 / secs, state_hash }
}

/// The sharded apply path as the runtime actually wires it: feeder →
/// bounded MPSC ring (the aux→main hop) → dispatcher thread routing by
/// flight shard → the real [`ApplyPool`] workers over a [`ShardedEde`].
fn run_apply_sharded(events: &[Arc<Event>]) -> ApplyStats {
    let ede = Arc::new(ShardedEde::new(APPLY_SHARDS));
    let responder = Arc::new(parking_lot::Mutex::new(MainUnitResponder::new(0)));
    let counters = Arc::new(SiteCounters::default());
    let sink = ApplySink {
        responder: Arc::clone(&responder),
        counters: Arc::clone(&counters),
        clock: RuntimeClock::new(),
        updates: None,
    };
    let mut pool = ApplyPool::spawn(
        Arc::clone(&ede),
        sink,
        Arc::new(AtomicBool::new(false)),
        ApplyPoolConfig::default(),
    );
    let (tx, mut rx) = ring::mpsc::<Arc<Event>>(8192);
    let dispatcher = std::thread::spawn(move || {
        let mut spins = 0u32;
        loop {
            match rx.try_recv() {
                RingRecv::Item(ev) => {
                    spins = 0;
                    pool.dispatch(ev);
                }
                RingRecv::Empty => {
                    // Same escalation the site's dispatcher uses: spin,
                    // then yield so the workers get the core.
                    spins += 1;
                    if spins < 64 {
                        std::hint::spin_loop();
                    } else {
                        std::thread::yield_now();
                    }
                }
                RingRecv::Disconnected => {
                    // Drains the worker rings before joining.
                    pool.shutdown();
                    break;
                }
            }
        }
    });

    let start = Instant::now();
    for ev in events {
        tx.send(Arc::clone(ev)).expect("dispatcher alive");
    }
    drop(tx);
    dispatcher.join().expect("join dispatcher");
    let secs = start.elapsed().as_secs_f64();

    let n = events.len() as u64;
    assert_eq!(counters.processed.load(Ordering::Relaxed), n);
    ApplyStats { events: n, secs, events_per_sec: n as f64 / secs, state_hash: ede.state_hash() }
}

/// Median-of-`trials` by events/sec, same rationale as [`run_median`].
fn apply_median(
    trials: usize,
    events: &[Arc<Event>],
    f: impl Fn(&[Arc<Event>]) -> ApplyStats,
) -> ApplyStats {
    let mut runs: Vec<ApplyStats> = (0..trials).map(|_| f(events)).collect();
    runs.sort_by(|a, b| a.events_per_sec.total_cmp(&b.events_per_sec));
    runs.remove(runs.len() / 2)
}

fn json_apply(s: &ApplyStats) -> String {
    format!(
        "{{\"events\": {}, \"secs\": {:.6}, \"events_per_sec\": {:.1}}}",
        s.events, s.secs, s.events_per_sec
    )
}

fn json_case(s: &RunStats) -> String {
    format!(
        "{{\"events\": {}, \"frame_bytes\": {}, \"secs\": {:.6}, \
         \"events_per_sec\": {:.1}, \"delivered_events_per_sec\": {:.1}, \
         \"mbytes_per_sec_per_link\": {:.2}}}",
        s.events, s.frame_bytes, s.secs, s.events_per_sec, s.delivered_per_sec, s.mbytes_per_sec
    )
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let flag = |name: &str| args.iter().any(|a| a == name);
    let opt = |name: &str| {
        args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).map(|v| v.to_string())
    };

    let smoke = flag("--smoke");
    let n: u64 = opt("--events").map(|v| v.parse().expect("--events")).unwrap_or(if smoke {
        2_000
    } else {
        20_000
    });
    let size: usize = opt("--size").map(|v| v.parse().expect("--size")).unwrap_or(1024);
    let trials: usize =
        opt("--trials").map(|v| v.parse().expect("--trials")).unwrap_or(if smoke { 1 } else { 3 });
    let out = opt("--out").unwrap_or_else(|| "results/BENCH_mirror_throughput.json".to_string());
    if let Some(parent) = std::path::Path::new(&out).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).expect("create output directory");
        }
    }

    println!(
        "mirror_throughput: {n} events x {size} B -> {MIRRORS} mirrors \
         (smoke={smoke}, median of {trials})"
    );
    let mut rows = Vec::new();
    let mut measured = Vec::new();
    for (name, tcp, batched, journal) in [
        ("inproc_baseline", false, false, false),
        ("inproc_batched", false, true, false),
        ("inproc_batched_journal", false, true, true),
        ("tcp_baseline", true, false, false),
        ("tcp_batched", true, true, false),
    ] {
        let s = run_median(trials, n, size, tcp, batched, journal);
        println!(
            "  {name:<22} {:>10.0} ev/s  {:>10.0} delivered/s  {:>8.2} MiB/s/link  ({:.3} s)",
            s.events_per_sec, s.delivered_per_sec, s.mbytes_per_sec, s.secs
        );
        rows.push(format!("    \"{name}\": {}", json_case(&s)));
        measured.push((name, s));
    }

    let speedup = |base: &str, opt_name: &str| {
        let b = &measured.iter().find(|(n, _)| *n == base).unwrap().1;
        let o = &measured.iter().find(|(n, _)| *n == opt_name).unwrap().1;
        o.events_per_sec / b.events_per_sec
    };
    // --- apply_saturation: the sharded-EDE PR's target metric ----------
    let apply_n: u64 = opt("--apply-events")
        .map(|v| v.parse().expect("--apply-events"))
        .unwrap_or(if smoke { 40_000 } else { 400_000 });
    println!(
        "  apply_saturation: {apply_n} events, {APPLY_FLIGHTS} flights, {APPLY_SHARDS} shards"
    );
    let stream: Vec<Arc<Event>> = apply_stream(apply_n);
    let apply_base = apply_median(trials, &stream, run_apply_baseline);
    let apply_shard = apply_median(trials, &stream, run_apply_sharded);
    // The tentpole's correctness gate, enforced in-binary: the sharded
    // store must converge to the exact state the single-lock loop built.
    assert_eq!(
        apply_base.state_hash, apply_shard.state_hash,
        "sharded apply diverged from the single-lock baseline state"
    );
    let apply_x = apply_shard.events_per_sec / apply_base.events_per_sec;
    for (name, s) in [("apply_baseline", &apply_base), ("apply_sharded", &apply_shard)] {
        println!(
            "  {name:<22} {:>10.0} ev/s applied               ({:.3} s)",
            s.events_per_sec, s.secs
        );
        rows.push(format!("    \"{name}\": {}", json_apply(s)));
    }
    println!(
        "  apply speedup: {apply_x:.2}x (sharded pool vs single-lock loop, state hashes equal)"
    );

    let inproc_x = speedup("inproc_baseline", "inproc_batched");
    let tcp_x = speedup("tcp_baseline", "tcp_batched");
    // Journaled / plain throughput: 1.0 = free, 0.85 = the 15 % regression
    // bound the recovery PR accepts for fsync-every-64 durability.
    let journal_overhead = speedup("inproc_batched", "inproc_batched_journal");
    println!("  speedup: inproc {inproc_x:.2}x, tcp {tcp_x:.2}x (batched+zero-copy vs baseline)");
    println!(
        "  journal: {journal_overhead:.3}x of plain in-proc batched throughput \
         (fsync every 64; < 15% regression expected)"
    );

    let json = format!(
        "{{\n  \"bench\": \"mirror_throughput\",\n  \"event_size_bytes\": {size},\n  \
         \"events\": {n},\n  \"mirrors\": {MIRRORS},\n  \"smoke\": {smoke},\n  \
         \"runs\": {{\n{}\n  }},\n  \"speedup\": {{\"inproc\": {inproc_x:.3}, \
         \"tcp\": {tcp_x:.3}}},\n  \"journal_overhead\": {journal_overhead:.3},\n  \
         \"apply_saturation\": {{\"events\": {apply_n}, \"flights\": {APPLY_FLIGHTS}, \
         \"shards\": {APPLY_SHARDS}, \"speedup\": {apply_x:.3}, \
         \"state_hash_equal\": true}}\n}}\n",
        rows.join(",\n")
    );
    std::fs::write(&out, json).expect("write benchmark json");
    println!("  wrote {out}");
}
