//! Elastic scale-out under a request storm — fixed vs. elastic capacity.
//!
//! Both cases run the same workload: a steady flight-event stream plus a
//! storm of synchronous initial-state fetches from a pool of display
//! threads, against gateways with a per-request service pad (so capacity,
//! not channel latency, is the bottleneck). Reported per case:
//!
//! * **requests/sec** — fetches completed over the storm window;
//! * **p50/p99 request latency** — client-observed fetch latency;
//!
//! and for the `elastic` case additionally:
//!
//! * **spawn_ms** — storm start → the `ScalePolicy` has spawned a second
//!   mirror and its gateway is serving;
//! * **epochs** — membership epochs traversed (spawn + retire);
//! * **retired** — whether the quiesce after the storm scaled back in.
//!
//! * `fixed` — one mirror for the whole run (`scale: None`);
//! * `elastic` — starts with one mirror and a [`ScalePolicy`] allowed to
//!   scale out to two on sustained pending-request pressure.
//!
//! Emits `results/BENCH_elastic_burst.json` with a `throughput_gain`
//! field (elastic vs fixed requests/sec). `--smoke` shrinks the run for
//! CI; `--storm-ms`, `--displays`, `--pad-us`, `--out` override defaults.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use mirror_core::adapt::{MonitorThresholds, ScalePolicy};
use mirror_core::event::{Event, PositionFix};
use mirror_core::mirrorfn::MirrorFnKind;
use mirror_runtime::{Cluster, ClusterConfig, RequestClient, ScaleEvent};

fn fix(seq: u64) -> PositionFix {
    PositionFix {
        lat: 30.0 + (seq % 19) as f64 * 0.3,
        lon: -95.0 + (seq % 23) as f64 * 0.5,
        alt_ft: 30_000.0,
        speed_kts: 455.0,
        heading_deg: (seq % 360) as f64,
    }
}

fn pctile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

struct BurstConfig {
    storm: Duration,
    displays: usize,
    pad: Duration,
}

struct CaseStats {
    requests: u64,
    requests_per_sec: f64,
    lat_p50_us: u64,
    lat_p99_us: u64,
    spawn_ms: Option<f64>,
    epochs: u64,
    retired: bool,
}

fn run_case(cfg: &BurstConfig, elastic: bool) -> CaseStats {
    let cluster = Arc::new(Cluster::start(ClusterConfig {
        mirrors: 1,
        kind: MirrorFnKind::Simple,
        suspect_after: 0,
        durability: None,
        scale: elastic.then(|| ScalePolicy {
            thresholds: MonitorThresholds::new(12, 8),
            sustain: 2,
            cooldown: 4,
            max_mirrors: 2,
            min_mirrors: 1,
        }),
        failover: None,
        ..Default::default()
    }));
    cluster.central().handle().set_params(false, 1, 10);

    // Steady stream keeps checkpoint rounds (the scale-signal transport)
    // turning over.
    let stop_feed = Arc::new(AtomicBool::new(false));
    let feeder = {
        let (cluster, stop) = (Arc::clone(&cluster), Arc::clone(&stop_feed));
        std::thread::spawn(move || {
            let mut seq = 0u64;
            while !stop.load(Ordering::Relaxed) {
                seq += 1;
                cluster.submit(Event::faa_position(seq, (seq % 24) as u32, fix(seq)));
                std::thread::sleep(Duration::from_micros(250));
            }
        })
    };

    let mut gateways = vec![cluster.mirror(1).serve_requests(cfg.pad)];
    let clients: Arc<Mutex<Vec<RequestClient>>> = Arc::new(Mutex::new(vec![gateways[0].client()]));

    // Display pool: synchronous fetches round-robined over whatever
    // gateways exist at pick time.
    let storming = Arc::new(AtomicBool::new(true));
    let rr = Arc::new(AtomicUsize::new(0));
    let served = Arc::new(AtomicU64::new(0));
    let mut displays = Vec::new();
    for _ in 0..cfg.displays {
        let (clients, storming, rr, served) =
            (Arc::clone(&clients), Arc::clone(&storming), Arc::clone(&rr), Arc::clone(&served));
        displays.push(std::thread::spawn(move || {
            let mut latencies = Vec::new();
            while storming.load(Ordering::Relaxed) {
                let client = {
                    let pool = clients.lock().unwrap();
                    pool[rr.fetch_add(1, Ordering::Relaxed) % pool.len()].clone()
                };
                let t0 = Instant::now();
                if client.fetch(Duration::from_secs(5)).is_ok() {
                    latencies.push(t0.elapsed().as_micros() as u64);
                    served.fetch_add(1, Ordering::Relaxed);
                }
            }
            latencies
        }));
    }

    // Storm window: the main thread watches for scale events and wires a
    // spawned mirror straight into the serving pool.
    let storm_start = Instant::now();
    let mut spawn_ms = None;
    while storm_start.elapsed() < cfg.storm {
        for ev in cluster.poll_scale() {
            if let ScaleEvent::Spawned { site, .. } = ev {
                gateways.push(cluster.mirror(site).serve_requests(cfg.pad));
                clients.lock().unwrap().push(gateways.last().unwrap().client());
                spawn_ms = Some(storm_start.elapsed().as_secs_f64() * 1e3);
            }
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    storming.store(false, Ordering::Relaxed);
    let mut latencies: Vec<u64> = Vec::new();
    for d in displays {
        latencies.extend(d.join().expect("display thread"));
    }
    latencies.sort_unstable();
    let requests = served.load(Ordering::Relaxed);

    // Quiesce: give the elastic policy time to scale back in.
    let mut retired = false;
    if elastic {
        let deadline = Instant::now() + Duration::from_secs(20);
        while !retired && Instant::now() < deadline {
            for ev in cluster.poll_scale() {
                if matches!(ev, ScaleEvent::Retired { .. }) {
                    retired = true;
                }
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    }
    let epochs = cluster.epoch();

    stop_feed.store(true, Ordering::Relaxed);
    feeder.join().expect("feeder");
    for gw in gateways {
        gw.stop();
    }
    let cluster = Arc::try_unwrap(cluster).unwrap_or_else(|_| panic!("cluster still shared"));
    cluster.shutdown();

    CaseStats {
        requests,
        requests_per_sec: requests as f64 / cfg.storm.as_secs_f64(),
        lat_p50_us: pctile(&latencies, 0.50),
        lat_p99_us: pctile(&latencies, 0.99),
        spawn_ms,
        epochs,
        retired,
    }
}

fn json_case(s: &CaseStats) -> String {
    let spawn = s.spawn_ms.map_or("null".to_string(), |v| format!("{v:.1}"));
    format!(
        "{{\"requests\": {}, \"requests_per_sec\": {:.1}, \"lat_p50_us\": {}, \
         \"lat_p99_us\": {}, \"spawn_ms\": {}, \"epochs\": {}, \"retired\": {}}}",
        s.requests, s.requests_per_sec, s.lat_p50_us, s.lat_p99_us, spawn, s.epochs, s.retired,
    )
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let flag = |name: &str| args.iter().any(|a| a == name);
    let opt = |name: &str| {
        args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).map(|v| v.to_string())
    };

    let smoke = flag("--smoke");
    let storm_ms: u64 = opt("--storm-ms")
        .map(|v| v.parse().expect("--storm-ms"))
        .unwrap_or(if smoke { 600 } else { 2_000 });
    let displays: usize = opt("--displays").map(|v| v.parse().expect("--displays")).unwrap_or(16);
    let pad_us: u64 = opt("--pad-us").map(|v| v.parse().expect("--pad-us")).unwrap_or(3_000);
    let out = opt("--out").unwrap_or_else(|| "results/BENCH_elastic_burst.json".to_string());
    if let Some(parent) = std::path::Path::new(&out).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).expect("create output directory");
        }
    }
    let cfg = BurstConfig {
        storm: Duration::from_millis(storm_ms),
        displays,
        pad: Duration::from_micros(pad_us),
    };

    println!(
        "elastic_burst: {displays} displays, {storm_ms} ms storm, {pad_us} µs pad \
         (smoke={smoke})"
    );
    let mut rows = Vec::new();
    let mut rps = Vec::new();
    for (name, elastic) in [("fixed", false), ("elastic", true)] {
        let s = run_case(&cfg, elastic);
        println!(
            "  {:<8} {:>7.0} req/s  p50 {:>6} µs  p99 {:>6} µs  spawn {:>8}  \
             epochs {}  retired {}",
            name,
            s.requests_per_sec,
            s.lat_p50_us,
            s.lat_p99_us,
            s.spawn_ms.map_or("-".to_string(), |v| format!("{v:.0} ms")),
            s.epochs,
            s.retired,
        );
        rows.push(format!("    \"{name}\": {}", json_case(&s)));
        rps.push(s.requests_per_sec);
    }
    let gain = if rps[0] > 0.0 { rps[1] / rps[0] } else { 0.0 };
    println!("  throughput gain (elastic/fixed): {gain:.2}x");

    let json = format!(
        "{{\n  \"bench\": \"elastic_burst\",\n  \"smoke\": {smoke},\n  \"config\": \
         {{\"storm_ms\": {storm_ms}, \"displays\": {displays}, \"pad_us\": {pad_us}}},\n  \
         \"cases\": {{\n{}\n  }},\n  \"throughput_gain\": {gain:.3}\n}}\n",
        rows.join(",\n"),
    );
    std::fs::write(&out, json).expect("write benchmark json");
    println!("wrote {out}");
}
