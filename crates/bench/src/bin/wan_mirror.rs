//! WAN catch-up: delta vs full-snapshot resync over a shaped wide-area
//! link, at several divergence levels.
//!
//! The scenario is the geo-mirror's partition aftermath: a WAN replica
//! holds state captured at a base frontier; the central has since touched
//! some fraction of the flights (the **divergence**). Catch-up can ship a
//! full snapshot (every flight) or — through the unified `StateSync`
//! transfer layer — a delta carrying only the flights that changed since
//! the base.
//!
//! Both transfers cross the *same* simulated WAN link: a chunked,
//! windowed transfer over [`FaultyTransport`] shaped by a
//! [`LinkProfile`] (40 ms propagation, up to 10 ms jitter, no loss —
//! loss-free so measured time is a pure function of bytes and round
//! trips). Each window of chunks costs one shaped round trip, so a
//! transfer moving 20× fewer bytes completes in correspondingly fewer
//! round trips — which is the whole case for the WAN tier.
//!
//! Asserted in-binary (the PR-10 acceptance bar): at ≤5% divergence the
//! delta moves **≥3× fewer bytes** and completes **≥2× faster** than the
//! full snapshot. Emits `results/BENCH_wan_mirror.json`; `--smoke`
//! shrinks the run for CI, `--flights`/`--out` override defaults.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use parking_lot::Mutex;

use mirror_core::event::{Event, PositionFix};
use mirror_core::timestamp::VectorTimestamp;
use mirror_echo::faults::{FaultPlan, FaultyTransport};
use mirror_echo::{Frame, InProcTransport, LinkProfile, Polled, Transport};
use mirror_ede::{OperationalState, Snapshot};
use mirror_runtime::{SnapshotCachePolicy, StateSync, Transfer};

/// Path MTU-ish chunk the windowed transfer slices payloads into.
const MSS: usize = 1460;
/// Chunks in flight per round trip (the send window).
const WINDOW: u64 = 32;

fn fix(seq: u64) -> PositionFix {
    PositionFix {
        lat: 30.0 + (seq % 23) as f64 * 0.31,
        lon: -100.0 + (seq % 41) as f64 * 0.17,
        alt_ft: 29_000.0 + (seq % 80) as f64 * 25.0,
        speed_kts: 455.0,
        heading_deg: (seq % 360) as f64,
    }
}

/// A `StateSync` over a bare `OperationalState` — the same closure shape a
/// running site wires up, minus the threads.
fn sync_over(state: Arc<Mutex<OperationalState>>, live: Arc<AtomicU64>) -> StateSync {
    let s1 = Arc::clone(&state);
    let s2 = Arc::clone(&state);
    StateSync::new(
        SnapshotCachePolicy::fresh(),
        live,
        move || {
            let mut st = s1.lock();
            let mut vt = VectorTimestamp::empty();
            vt.advance(0, st.epoch());
            st.mark_frontier(&vt);
            (Snapshot::capture(&st, vt), st.epoch())
        },
        move |base| {
            let mut st = s2.lock();
            let mut vt = VectorTimestamp::empty();
            vt.advance(0, st.epoch());
            st.mark_frontier(&vt);
            let epoch = st.epoch();
            st.capture_delta(base, vt).map(|d| (d, epoch))
        },
        || 0,
    )
}

/// Ship `payload` across the shaped link with a chunked, windowed,
/// ack-clocked transfer; returns the wall-clock time from first send to
/// the final cumulative ack. Both directions cross the same [`LinkProfile`]
/// (data chunks out, acks back), so every window costs one round trip.
fn wan_transfer(payload: &Bytes, profile: LinkProfile, seed: u64) -> Duration {
    let (near, far) = InProcTransport::pair("wan-xfer");
    let mut tx = FaultyTransport::new(near, FaultPlan::new(seed).link(profile));

    let chunks: Vec<Bytes> = payload.chunks(MSS).map(Bytes::copy_from_slice).collect();
    let total = chunks.len() as u64;

    // Receiver: count arriving chunks, ack each window boundary (and the
    // tail). Keeps polling between frames so its own shaped in-flight
    // acks are flushed on schedule.
    let receiver = std::thread::spawn(move || {
        let mut rx = FaultyTransport::new(far, FaultPlan::new(seed ^ 0x5EED).link(profile));
        let mut got = 0u64;
        while got < total {
            match rx.recv_timeout(Duration::from_millis(2)) {
                Ok(Polled::Frame(Frame::Reseed { .. })) => {
                    got += 1;
                    if got.is_multiple_of(WINDOW) || got == total {
                        rx.send(&Frame::Ack { cum: got }).expect("send ack");
                    }
                }
                Ok(_) => {}
                Err(e) => panic!("receiver link error: {e}"),
            }
        }
        // Drain until the final ack has left the shaped link.
        let settle = Instant::now() + Duration::from_millis(200);
        while Instant::now() < settle {
            let _ = rx.recv_timeout(Duration::from_millis(2));
        }
    });

    let start = Instant::now();
    let mut sent = 0u64;
    let mut acked = 0u64;
    for chunk in &chunks {
        sent += 1;
        tx.send(&Frame::Reseed { pub_seq: sent, snapshot: chunk.clone() }).expect("send chunk");
        // Window full (or payload done): stall until the receiver's
        // cumulative ack opens it again — the ack clock that makes time
        // proportional to round trips, and round trips to bytes.
        if sent.is_multiple_of(WINDOW) || sent == total {
            while acked < sent {
                match tx.recv_timeout(Duration::from_millis(2)) {
                    Ok(Polled::Frame(Frame::Ack { cum })) => acked = acked.max(cum),
                    Ok(_) => {}
                    Err(e) => panic!("sender link error: {e}"),
                }
            }
        }
    }
    let elapsed = start.elapsed();
    receiver.join().expect("receiver thread");
    elapsed
}

struct Level {
    divergence_pct: u32,
    changed: usize,
    delta_bytes: usize,
    full_bytes: usize,
    delta_ms: f64,
    full_ms: f64,
}

/// One divergence level, from a fresh store: seed `flights`, capture the
/// replica's base, touch `pct`% of the flights, then race the two
/// catch-up strategies over the same link.
fn run_level(flights: usize, pct: u32, profile: LinkProfile, seed: u64) -> Level {
    let state = Arc::new(Mutex::new(OperationalState::new()));
    let mut seq = 0u64;
    {
        let mut st = state.lock();
        for f in 0..flights as u32 {
            seq += 1;
            st.apply(&Event::faa_position(seq, f, fix(seq)));
        }
    }
    let live = Arc::new(AtomicU64::new(0));
    let sync = sync_over(Arc::clone(&state), Arc::clone(&live));

    // The replica's base: what it held when the partition began.
    let (base_snap, _) = sync.full();
    let base = base_snap.as_of.clone();

    // Divergence: the central touches pct% of the flights meanwhile.
    let changed = (flights * pct as usize).div_ceil(100);
    {
        let mut st = state.lock();
        for f in 0..changed as u32 {
            seq += 1;
            st.apply(&Event::faa_position(seq, f, fix(seq)));
        }
        live.store(st.epoch(), Ordering::Release);
    }

    // Delta catch-up through the unified transfer router.
    let delta_wire = match sync.transfer_since(Some(&base)) {
        Transfer::Delta(d) => {
            assert_eq!(d.changed_count(), changed, "delta carries exactly the divergence");
            d.wire()
        }
        Transfer::Full(_) => panic!("base was just captured; the producer must remember it"),
    };
    // Full-snapshot catch-up: what a transfer layer without deltas ships.
    let full_wire = sync.capture_now().wire();

    let delta_elapsed = wan_transfer(&delta_wire, profile, seed);
    let full_elapsed = wan_transfer(&full_wire, profile, seed);

    Level {
        divergence_pct: pct,
        changed,
        delta_bytes: delta_wire.len(),
        full_bytes: full_wire.len(),
        delta_ms: delta_elapsed.as_secs_f64() * 1e3,
        full_ms: full_elapsed.as_secs_f64() * 1e3,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let flag = |name: &str| args.iter().any(|a| a == name);
    let opt = |name: &str| {
        args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).map(|v| v.to_string())
    };

    let smoke = flag("--smoke");
    let flights: usize = opt("--flights")
        .map(|v| v.parse().expect("--flights"))
        .unwrap_or(if smoke { 1_500 } else { 6_000 });
    let out = opt("--out").unwrap_or_else(|| "results/BENCH_wan_mirror.json".to_string());
    if let Some(parent) = std::path::Path::new(&out).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).expect("create output directory");
        }
    }

    // The cross-country link, loss-free: time is bytes and round trips,
    // not retransmission luck.
    let profile = LinkProfile::new(40, 10, 0);
    let levels_pct: &[u32] = &[1, 5, 20, 50];

    println!(
        "wan_mirror: {flights} flights over {}ms/{}ms-jitter link (smoke={smoke})",
        profile.latency_ms, profile.jitter_ms
    );
    let mut levels = Vec::new();
    for (i, &pct) in levels_pct.iter().enumerate() {
        let l = run_level(flights, pct, profile, 0xAB5EED ^ i as u64);
        println!(
            "  {:>2}% diverged ({} flights): delta {:>8} B / {:>7.0} ms   \
             full {:>8} B / {:>7.0} ms   ({:.1}x bytes, {:.1}x time)",
            l.divergence_pct,
            l.changed,
            l.delta_bytes,
            l.delta_ms,
            l.full_bytes,
            l.full_ms,
            l.full_bytes as f64 / l.delta_bytes as f64,
            l.full_ms / l.delta_ms,
        );
        levels.push(l);
    }

    // The acceptance bar: at <=5% divergence, a delta must move >=3x
    // fewer bytes and complete >=2x faster than the full snapshot.
    for l in levels.iter().filter(|l| l.divergence_pct <= 5) {
        let byte_ratio = l.full_bytes as f64 / l.delta_bytes as f64;
        let time_ratio = l.full_ms / l.delta_ms;
        assert!(
            byte_ratio >= 3.0,
            "at {}% divergence the delta must move >=3x fewer bytes (got {byte_ratio:.2}x)",
            l.divergence_pct
        );
        assert!(
            time_ratio >= 2.0,
            "at {}% divergence the delta must complete >=2x faster (got {time_ratio:.2}x)",
            l.divergence_pct
        );
    }

    let rows: Vec<String> = levels
        .iter()
        .map(|l| {
            format!(
                "    {{\"divergence_pct\": {}, \"changed_flights\": {}, \
                 \"delta_bytes\": {}, \"full_bytes\": {}, \"delta_ms\": {:.1}, \
                 \"full_ms\": {:.1}, \"byte_ratio\": {:.2}, \"time_ratio\": {:.2}}}",
                l.divergence_pct,
                l.changed,
                l.delta_bytes,
                l.full_bytes,
                l.delta_ms,
                l.full_ms,
                l.full_bytes as f64 / l.delta_bytes as f64,
                l.full_ms / l.delta_ms,
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"wan_mirror\",\n  \"smoke\": {smoke},\n  \"config\": \
         {{\"flights\": {flights}, \"latency_ms\": {}, \"jitter_ms\": {}, \
         \"loss_per_mille\": {}, \"mss\": {MSS}, \"window\": {WINDOW}}},\n  \
         \"levels\": [\n{}\n  ]\n}}\n",
        profile.latency_ms,
        profile.jitter_ms,
        profile.loss_per_mille,
        rows.join(",\n"),
    );
    std::fs::write(&out, json).expect("write benchmark json");
    println!("wrote {out}");
}
