//! Figure 7 — Comparison of three mirroring functions under varying
//! request loads: 'simple', 'selective', and 'selective' with decreased
//! checkpointing frequency.
//!
//! Paper: total execution time vs. request rate (0–400 req/s), one mirror
//! site. Reported shape: selective mirroring improves on simple by more
//! than 30% under high request loads; halving the checkpointing frequency
//! buys a further improvement (≈10% in the paper's implementation; see
//! EXPERIMENTS.md for why our substrate reproduces the ordering with a
//! smaller magnitude).

use mirror_bench::{paper_stream, pct, print_table, secs};
use mirror_core::mirrorfn::MirrorFnKind;
use mirror_ois::experiment::{run, ExperimentConfig, RequestTargets};
use mirror_workload::requests::RequestPattern;

fn main() {
    let size = 1500usize;
    let rates = [0.0f64, 50.0, 100.0, 150.0, 200.0, 250.0, 300.0, 350.0, 400.0];
    let mut rows = Vec::new();
    let mut series: Vec<(f64, f64, f64, f64)> = Vec::new();
    for &rate in &rates {
        let base_cfg = |kind, chkpt| ExperimentConfig {
            mirrors: 1,
            kind,
            faa: paper_stream(size),
            requests: if rate > 0.0 {
                RequestPattern::Constant { rate }
            } else {
                RequestPattern::None
            },
            request_horizon_us: 4_000_000,
            targets: RequestTargets::MirrorsOnly,
            checkpoint_every_override: chkpt,
            ..Default::default()
        };
        let simple = run(&base_cfg(MirrorFnKind::Simple, None));
        let selective = run(&base_cfg(MirrorFnKind::Selective { overwrite: 10 }, None));
        let sel_chkpt = run(&base_cfg(MirrorFnKind::Selective { overwrite: 10 }, Some(100)));
        series.push((rate, simple.total_time_s, selective.total_time_s, sel_chkpt.total_time_s));
        rows.push(vec![
            format!("{rate:.0}"),
            secs(simple.total_time_s),
            secs(selective.total_time_s),
            secs(sel_chkpt.total_time_s),
            pct(selective.total_time_s / simple.total_time_s),
            pct(sel_chkpt.total_time_s / simple.total_time_s),
        ]);
    }
    print_table(
        "Figure 7: total execution time (s) vs request rate, 1 mirror",
        &["req/s", "simple", "selective", "sel+chk/2", "sel-vs-simp", "chk-vs-simp"],
        &rows,
    );

    let &(_, s400, l400, c400) = series.last().unwrap();
    println!(
        "\nshape: selective beats simple by >30% at 400 req/s: {} ({:.1}%)",
        (1.0 - l400 / s400) > 0.30,
        (1.0 - l400 / s400) * 100.0
    );
    println!(
        "shape: halved checkpoint frequency strictly improves on selective: {} ({:.1}% extra)",
        c400 < l400,
        (1.0 - c400 / l400) * 100.0
    );
    let monotone = series.windows(2).all(|w| w[1].1 >= w[0].1);
    println!("shape: simple-mirroring time grows monotonically with load: {monotone}");
}
