//! Figure 5 — Overheads implied by additional mirrors.
//!
//! Paper: total execution time vs. number of mirror sites (1, 2, 4, 6, 8)
//! at constant event size, no client load. Reported shape: "on the
//! average, there is a less than 10% increase in the execution time of the
//! application when a new mirror site is added".

use mirror_bench::{paper_stream, pct, print_table, secs};
use mirror_core::mirrorfn::MirrorFnKind;
use mirror_ois::experiment::{run, ExperimentConfig};

fn main() {
    let size = 2000usize;
    let mirror_counts = [1usize, 2, 4, 6, 8];
    let mut rows = Vec::new();
    let mut totals = Vec::new();
    for &m in &mirror_counts {
        let r = run(&ExperimentConfig {
            mirrors: m,
            kind: MirrorFnKind::Simple,
            faa: paper_stream(size),
            ..Default::default()
        });
        totals.push((m, r.total_time_s));
        let vs_prev = totals
            .len()
            .checked_sub(2)
            .map(|i| {
                let (pm, pt) = totals[i];
                // Normalize to a per-added-mirror increase.
                let per_mirror = (r.total_time_s / pt).powf(1.0 / (m - pm) as f64);
                pct(per_mirror)
            })
            .unwrap_or_else(|| "-".into());
        rows.push(vec![m.to_string(), secs(r.total_time_s), vs_prev]);
    }
    print_table(
        &format!("Figure 5: additional mirrors at {size}B events — total execution time (s)"),
        &["mirrors", "total(s)", "per-mirror"],
        &rows,
    );

    let per_mirror_ok = totals.windows(2).all(|w| {
        let (m0, t0) = w[0];
        let (m1, t1) = w[1];
        (t1 / t0).powf(1.0 / (m1 - m0) as f64) < 1.10
    });
    let monotone = totals.windows(2).all(|w| w[1].1 >= w[0].1);
    println!("\nshape: each added mirror costs < 10%: {per_mirror_ok}");
    println!("shape: execution time grows monotonically with mirrors: {monotone}");
}
