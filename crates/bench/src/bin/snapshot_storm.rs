//! Initial-state request storm against a live cluster — the paper's §1
//! recovering-airport case as a benchmark.
//!
//! A central site streams position updates (with one mirror absorbing the
//! mirrored feed) while a terminal's worth of displays storms the central
//! request gateway: a train of 64-deep initial-state fetch bursts, one
//! burst every few milliseconds, for the storm's duration — displays
//! reconnecting in waves after a power failure. Reported per case:
//!
//! * **requests/sec** — requests served over summed burst service time;
//! * **p50/p99 request latency** — client-observed fetch latency;
//! * **update-delay interference** — p99 ingress→client-update delay
//!   during the storm vs the storm-free (quiet) window of the same trial:
//!   how much snapshot serving stalls the event hot path;
//! * **cache hit rate** — epoch-cache hits / requests (0 for the legacy
//!   path, which has no cache).
//!
//! Two cases, same storm:
//!
//! * `legacy` — the pre-change serving path: one gateway worker, no
//!   cache, a full `Snapshot::capture` deep-clone per request (wire
//!   encoding excluded, as the old path never encoded);
//! * `cached` — the epoch-cached, encode-once path with the default
//!   [`GatewayConfig`]: bounded-staleness snapshot cache, auto-sized
//!   worker pool, and one shared wire encoding per cached snapshot
//!   (every display asks for the frame bytes, as a real transport would).
//!
//! Emits `results/BENCH_snapshot_storm.json` with a `speedup` field
//! (cached vs legacy requests/sec). `--smoke` shrinks the run for CI;
//! `--flights`, `--storm-ms`, `--burst`, `--burst-gap-us`, `--trials`,
//! `--out` override defaults.

use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use mirror_core::event::{Event, PositionFix};
use mirror_core::mirrorfn::MirrorFnKind;
use mirror_runtime::{Cluster, ClusterConfig, GatewayConfig, SnapshotCachePolicy};

/// Delay-sample routing: which window a client-update delay belongs to.
const PHASE_IGNORE: u8 = 0;
const PHASE_QUIET: u8 = 1;
const PHASE_STORM: u8 = 2;

fn fix(seq: u64) -> PositionFix {
    PositionFix {
        lat: 30.0 + (seq % 19) as f64 * 0.3,
        lon: -95.0 + (seq % 23) as f64 * 0.5,
        alt_ft: 31_000.0,
        speed_kts: 455.0,
        heading_deg: (seq % 360) as f64,
    }
}

fn pctile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

struct CaseStats {
    requests: u64,
    busy_secs: f64,
    requests_per_sec: f64,
    lat_p50_us: u64,
    lat_p99_us: u64,
    quiet_delay_p99_us: u64,
    storm_delay_p99_us: u64,
    interference: f64,
    cache_hits: u64,
    cache_misses: u64,
    hit_rate: f64,
    quiet_delay_samples: usize,
    storm_delay_samples: usize,
}

struct StormConfig {
    flights: u64,
    /// How long the storm (the whole burst train) lasts.
    storm: Duration,
    /// Concurrent requests per burst.
    burst: usize,
    /// Pause between bursts: displays reconnect in waves, not as one
    /// infinitely-replenished queue.
    burst_gap: Duration,
    feed_gap: Duration,
    quiet: Duration,
}

/// One benchmark case: how the gateway is configured and whether displays
/// also pull the wire encoding (the cached path encodes once and shares;
/// the legacy path never encoded, so charging it would be unfair).
struct CaseSpec {
    name: &'static str,
    gateway: fn() -> GatewayConfig,
    encode: bool,
}

const CASES: &[CaseSpec] = &[
    CaseSpec {
        name: "legacy",
        gateway: || GatewayConfig {
            workers: 1,
            cache: None,
            service_pad: Duration::ZERO,
            ..GatewayConfig::default()
        },
        encode: false,
    },
    CaseSpec {
        name: "cached",
        // Storm-sized staleness budget: one capture covers a whole burst
        // train (the bounded-staleness knob doing its job — recovering
        // displays replay the update stream from `as_of`, so a snapshot a
        // few thousand events behind converges after replay). The default
        // 2 ms budget would recapture mid-burst and put the 2k-flight
        // deep-clone back on the storm path.
        gateway: || GatewayConfig {
            cache: Some(SnapshotCachePolicy {
                max_stale_events: 4096,
                max_stale: Duration::from_millis(250),
            }),
            ..Default::default()
        },
        encode: true,
    },
];

/// One measured trial: preload `flights` distinct flights, stream updates,
/// sample quiet-window delays, then run the synchronized request storm.
fn run_case(cfg: &StormConfig, spec: &CaseSpec) -> CaseStats {
    let cluster = Arc::new(Cluster::start(ClusterConfig {
        mirrors: 1,
        kind: MirrorFnKind::Simple,
        ..Default::default()
    }));

    // Preload: one position per flight builds the 2k-flight state.
    for seq in 1..=cfg.flights {
        cluster.submit(Event::faa_position(seq, (seq - 1) as u32, fix(seq)));
    }
    assert!(cluster.wait_all_processed(cfg.flights, Duration::from_secs(30)), "preload must drain");

    // Delay sampler: ingress→client-update delay, routed per phase.
    let phase = Arc::new(AtomicU8::new(PHASE_IGNORE));
    let stop = Arc::new(AtomicBool::new(false));
    let delays: Arc<Mutex<[Vec<u64>; 3]>> =
        Arc::new(Mutex::new([Vec::new(), Vec::new(), Vec::new()]));
    let sampler = {
        let sub = cluster.subscribe_updates();
        let clock = cluster.clock().clone();
        let (phase, stop, delays) = (Arc::clone(&phase), Arc::clone(&stop), Arc::clone(&delays));
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                if let Some(u) = sub.recv_timeout(Duration::from_millis(50)) {
                    let d = clock.now_us().saturating_sub(u.ingress_us);
                    let ph = phase.load(Ordering::Relaxed) as usize;
                    delays.lock().unwrap()[ph].push(d);
                }
            }
        })
    };

    // Feeder: a steady live update stream over the preloaded flights.
    let feeder = {
        let cluster = Arc::clone(&cluster);
        let stop = Arc::clone(&stop);
        let flights = cfg.flights;
        let gap = cfg.feed_gap;
        std::thread::spawn(move || {
            let mut seq = flights;
            while !stop.load(Ordering::Relaxed) {
                seq += 1;
                cluster.submit(Event::faa_position(seq, (seq % flights) as u32, fix(seq)));
                std::thread::sleep(gap);
            }
        })
    };

    let gateway = cluster.central().serve_requests_with((spec.gateway)());

    // Storm-free window: the interference denominator.
    phase.store(PHASE_QUIET, Ordering::Relaxed);
    std::thread::sleep(cfg.quiet);
    phase.store(PHASE_IGNORE, Ordering::Relaxed);

    // The storm: a train of `burst`-deep request bursts, one every
    // `burst_gap`, lasting `storm` — displays reconnecting in waves. Each
    // burst fires its whole batch into the gateway FIFO at once (the
    // pending gauge sees the full backlog), then collects the replies in
    // FIFO order, timing each request from submit to reply arrival. One
    // client thread models the network front end; the concurrency lives
    // at the server, where the paper puts it. The **entire** train —
    // bursts and the gaps between them — is the storm window for delay
    // sampling; burst service time alone (`busy`) is the throughput
    // denominator.
    let client = gateway.client();
    let encode = spec.encode;

    // Warm the serving path (the one-off first-request capture — and, for
    // the cached case, its encode) so the storm window measures
    // steady-storm behaviour, not the fill.
    {
        let rx = client.fire().expect("warm fire");
        let snap =
            rx.recv_timeout(Duration::from_secs(60)).expect("warm fetch").expect("warm serve");
        if encode {
            assert!(!snap.wire().is_empty());
        }
    }

    // Preallocated: growth reallocations mid-storm would perturb the very
    // delay tail this bench measures.
    let bursts_upper = (cfg.storm.as_micros() / cfg.burst_gap.as_micros().max(1)) as usize + 2;
    let mut latencies: Vec<u64> = Vec::with_capacity(cfg.burst * bursts_upper);
    let mut inflight = Vec::with_capacity(cfg.burst);
    let mut busy = Duration::ZERO;
    phase.store(PHASE_STORM, Ordering::Relaxed);
    let storm_t0 = Instant::now();
    while storm_t0.elapsed() < cfg.storm {
        let t0 = Instant::now();
        for _ in 0..cfg.burst {
            inflight.push((Instant::now(), client.fire().expect("storm fire")));
        }
        for (fired, rx) in inflight.drain(..) {
            let snap = rx
                .recv_timeout(Duration::from_secs(60))
                .expect("storm fetch")
                .expect("storm serve");
            if encode {
                // What a transport would ship: the shared frame bytes.
                assert!(!snap.wire().is_empty(), "snapshot frame must encode");
            }
            assert!(snap.flight_count() > 0, "snapshot must carry state");
            latencies.push(fired.elapsed().as_micros() as u64);
        }
        busy += t0.elapsed();
        std::thread::sleep(cfg.burst_gap);
    }
    phase.store(PHASE_IGNORE, Ordering::Relaxed);

    let (hits, misses) = gateway_cache_counters(&cluster);
    gateway.stop();
    stop.store(true, Ordering::Relaxed);
    feeder.join().expect("feeder");
    sampler.join().expect("sampler");
    let cluster = Arc::try_unwrap(cluster).ok().expect("cluster still shared");
    cluster.shutdown();

    let mut lat = latencies;
    lat.sort_unstable();
    let delays = delays.lock().unwrap();
    let mut quiet: Vec<u64> = delays[PHASE_QUIET as usize].clone();
    let mut storm: Vec<u64> = delays[PHASE_STORM as usize].clone();
    quiet.sort_unstable();
    storm.sort_unstable();

    let requests = lat.len() as u64;
    let busy_secs = busy.as_secs_f64();
    let quiet_p99 = pctile(&quiet, 0.99);
    let storm_p99 = pctile(&storm, 0.99);
    let total = hits + misses;
    CaseStats {
        requests,
        busy_secs,
        requests_per_sec: requests as f64 / busy_secs,
        lat_p50_us: pctile(&lat, 0.50),
        lat_p99_us: pctile(&lat, 0.99),
        quiet_delay_p99_us: quiet_p99,
        storm_delay_p99_us: storm_p99,
        interference: if quiet_p99 > 0 { storm_p99 as f64 / quiet_p99 as f64 } else { 0.0 },
        cache_hits: hits,
        cache_misses: misses,
        hit_rate: if total > 0 { hits as f64 / total as f64 } else { 0.0 },
        quiet_delay_samples: quiet.len(),
        storm_delay_samples: storm.len(),
    }
}

/// Epoch-cache counters for the serving site (zeros for the uncached
/// legacy gateway, which never touches them... almost: misses are counted
/// for uncached serves too, so hits are the discriminating number).
fn gateway_cache_counters(cluster: &Cluster) -> (u64, u64) {
    let central = cluster.central();
    let c = central.counters();
    (c.snapshot_cache_hits.load(Ordering::Relaxed), c.snapshot_cache_misses.load(Ordering::Relaxed))
}

fn run_median(trials: usize, cfg: &StormConfig, spec: &CaseSpec) -> CaseStats {
    let mut runs: Vec<CaseStats> = (0..trials).map(|_| run_case(cfg, spec)).collect();
    runs.sort_by(|a, b| a.requests_per_sec.total_cmp(&b.requests_per_sec));
    runs.remove(runs.len() / 2)
}

fn json_case(s: &CaseStats) -> String {
    format!(
        "{{\"requests\": {}, \"busy_secs\": {:.6}, \"requests_per_sec\": {:.1}, \
         \"latency_p50_us\": {}, \"latency_p99_us\": {}, \
         \"quiet_delay_p99_us\": {}, \"storm_delay_p99_us\": {}, \
         \"update_delay_interference\": {:.3}, \
         \"cache_hits\": {}, \"cache_misses\": {}, \"cache_hit_rate\": {:.3}, \
         \"quiet_delay_samples\": {}, \"storm_delay_samples\": {}}}",
        s.requests,
        s.busy_secs,
        s.requests_per_sec,
        s.lat_p50_us,
        s.lat_p99_us,
        s.quiet_delay_p99_us,
        s.storm_delay_p99_us,
        s.interference,
        s.cache_hits,
        s.cache_misses,
        s.hit_rate,
        s.quiet_delay_samples,
        s.storm_delay_samples,
    )
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let flag = |name: &str| args.iter().any(|a| a == name);
    let opt = |name: &str| {
        args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).map(|v| v.to_string())
    };

    let smoke = flag("--smoke");
    let flights: u64 = opt("--flights").map(|v| v.parse().expect("--flights")).unwrap_or(2_000);
    let storm_ms: u64 = opt("--storm-ms")
        .map(|v| v.parse().expect("--storm-ms"))
        .unwrap_or(if smoke { 250 } else { 1_000 });
    let burst: usize = opt("--burst").map(|v| v.parse().expect("--burst")).unwrap_or(64);
    let trials: usize =
        opt("--trials").map(|v| v.parse().expect("--trials")).unwrap_or(if smoke { 1 } else { 3 });
    let out = opt("--out").unwrap_or_else(|| "results/BENCH_snapshot_storm.json".to_string());
    if let Some(parent) = std::path::Path::new(&out).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).expect("create output directory");
        }
    }

    let burst_gap_us: u64 =
        opt("--burst-gap-us").map(|v| v.parse().expect("--burst-gap-us")).unwrap_or(20_000);
    let cfg = StormConfig {
        flights,
        storm: Duration::from_millis(storm_ms),
        burst,
        burst_gap: Duration::from_micros(burst_gap_us),
        feed_gap: Duration::from_micros(300),
        quiet: Duration::from_millis(if smoke { 300 } else { 700 }),
    };

    println!(
        "snapshot_storm: {flights} flights, {storm_ms} ms storm of {burst}-request \
         bursts every {burst_gap_us} µs (smoke={smoke}, median of {trials})"
    );
    let mut rows = Vec::new();
    let mut rps = Vec::new();
    let mut cached_interference = 0.0;
    for spec in CASES {
        let s = run_median(trials, &cfg, spec);
        println!(
            "  {:<10} {:>8.0} req/s  p50 {:>6} µs  p99 {:>6} µs  \
             delay p99 quiet/storm {:>5}/{:>6} µs ({:.2}x)  hit rate {:.2}",
            spec.name,
            s.requests_per_sec,
            s.lat_p50_us,
            s.lat_p99_us,
            s.quiet_delay_p99_us,
            s.storm_delay_p99_us,
            s.interference,
            s.hit_rate,
        );
        rows.push(format!("    \"{}\": {}", spec.name, json_case(&s)));
        rps.push(s.requests_per_sec);
        if spec.name == "cached" {
            cached_interference = s.interference;
        }
    }
    let speedup = if rps[0] > 0.0 { rps[1] / rps[0] } else { 0.0 };
    println!(
        "  speedup (cached/legacy): {speedup:.2}x; cached-storm update-delay \
         interference: {cached_interference:.2}x"
    );

    let json = format!(
        "{{\n  \"bench\": \"snapshot_storm\",\n  \"flights\": {flights},\n  \
         \"storm_ms\": {storm_ms},\n  \"burst_size\": {burst},\n  \"smoke\": {smoke},\n  \
         \"speedup_requests_per_sec\": {speedup:.3},\n  \
         \"cached_update_delay_interference\": {cached_interference:.3},\n  \
         \"runs\": {{\n{}\n  }}\n}}\n",
        rows.join(",\n")
    );
    std::fs::write(&out, json).expect("write benchmark json");
    println!("  wrote {out}");
}
