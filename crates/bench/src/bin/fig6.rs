//! Figure 6 — Mirroring to multiple mirror sites under constant request
//! load (100 req/s balanced across the mirrors).
//!
//! Paper: total time (processing the whole event sequence **and**
//! servicing all client requests) vs. event size, for 1, 2 and 4 mirror
//! sites. Reported shape: "for data sizes larger than some cross-over size
//! (where experimental lines intersect), mirroring overheads can be
//! outweighed by the performance improvements attained from mirroring" —
//! i.e. below the crossover fewer mirrors win (fan-out overhead dominates),
//! above it more mirrors win (request servicing spread over more sites and
//! more aggregate client bandwidth dominates).

use mirror_bench::{paper_stream, print_table, secs};
use mirror_core::mirrorfn::MirrorFnKind;
use mirror_ois::experiment::{run, ExperimentConfig, RequestTargets};
use mirror_workload::requests::RequestPattern;

fn main() {
    let sizes = [200usize, 1000, 2000, 3000, 4000, 5000, 6000];
    let mirror_counts = [1usize, 2, 4];
    let mut rows = Vec::new();
    let mut table: Vec<(usize, Vec<f64>)> = Vec::new();
    for &size in &sizes {
        let mut totals = Vec::new();
        for &m in &mirror_counts {
            let r = run(&ExperimentConfig {
                mirrors: m,
                kind: MirrorFnKind::Simple,
                faa: paper_stream(size),
                requests: RequestPattern::Constant { rate: 100.0 },
                request_horizon_us: 5_000_000,
                targets: RequestTargets::MirrorsOnly,
                ..Default::default()
            });
            totals.push(r.total_time_s);
        }
        rows.push(vec![size.to_string(), secs(totals[0]), secs(totals[1]), secs(totals[2])]);
        table.push((size, totals));
    }
    print_table(
        "Figure 6: total execution time (s) under 100 req/s, by mirror count",
        &["size(B)", "1 mirror", "2 mirrors", "4 mirrors"],
        &rows,
    );

    // Locate the crossover: smallest size where 4 mirrors beat 1.
    let crossover = table.iter().find(|(_, t)| t[2] < t[0]).map(|(s, _)| *s);
    let small_prefers_fewer = table.first().map(|(_, t)| t[0] < t[2]).unwrap_or(false);
    let large_prefers_more = table.last().map(|(_, t)| t[2] < t[0]).unwrap_or(false);
    println!("\nshape: smallest size prefers 1 mirror: {small_prefers_fewer}");
    println!("shape: largest size prefers 4 mirrors: {large_prefers_more}");
    match crossover {
        Some(s) => println!("shape: crossover size where 4 mirrors overtake 1: ~{s}B"),
        None => println!("shape: no crossover found in the swept range"),
    }
}
