//! Central-site failover under load: time-to-recover and request loss.
//!
//! One scenario, measured end to end: a durable cluster serves a steady
//! flight stream plus a storm of initial-state fetches from display
//! threads; mid-storm the central **crashes** (threads abandoned, journal
//! unflushed, final record possibly torn). The cadence detector declares
//! death, the lowest live mirror self-promotes at a bumped leadership
//! term, the journal tail is replayed (torn-write repair included), and
//! serving resumes. Reported:
//!
//! * **detect_ms** — crash → `CoordinatorDead` declared;
//! * **recover_ms** — crash → `Promoted` (successor seeded, journal
//!   handed off, admission gate reopened);
//! * **committed_events_lost** — events committed by the dead coordinator
//!   but missing from the successor's frontier (**must be 0**);
//! * **replayed** — journal entries applied beyond the successor's own
//!   frontier during handoff;
//! * **requests served / lost** — fetches completed vs. failed across the
//!   whole storm (losses cluster in the takeover window, where gated
//!   requests park and time out only if recovery outruns their budget).
//!
//! Emits `results/BENCH_failover.json`. `--smoke` shrinks the run for CI;
//! `--storm-ms`, `--displays`, `--out` override defaults.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use mirror_core::event::{Event, PositionFix};
use mirror_runtime::durability::DurabilityConfig;
use mirror_runtime::{Cluster, ClusterConfig, FailoverEvent, FailoverPolicy, GatewayConfig};
use mirror_store::FsyncPolicy;

fn fix(seq: u64) -> PositionFix {
    PositionFix {
        lat: 33.0 + (seq % 17) as f64 * 0.4,
        lon: -97.0 + (seq % 29) as f64 * 0.3,
        alt_ft: 31_000.0,
        speed_kts: 460.0,
        heading_deg: (seq % 360) as f64,
    }
}

struct RunStats {
    detect_ms: f64,
    recover_ms: f64,
    replayed: usize,
    committed_events_lost: u64,
    promoted_site: u16,
    term: u64,
    served_before: u64,
    served_after: u64,
    lost: u64,
}

fn run(storm: Duration, displays: usize) -> RunStats {
    let dir = std::env::temp_dir().join(format!("mirror-bench-failover-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cluster = Arc::new(Cluster::start(ClusterConfig {
        mirrors: 3,
        durability: Some(DurabilityConfig {
            fsync: FsyncPolicy::EveryN(8),
            ..DurabilityConfig::new(&dir)
        }),
        failover: Some(FailoverPolicy {
            suspect_rounds: 3,
            heartbeat_ticks: 2,
            min_gap: Duration::from_millis(50),
        }),
        ..Default::default()
    }));
    cluster.central().handle().set_params(false, 1, 10);

    // Steady stream keeps checkpoint rounds — the liveness signal — and
    // the journal turning over.
    let stop_feed = Arc::new(AtomicBool::new(false));
    let feeder = {
        let (cluster, stop) = (Arc::clone(&cluster), Arc::clone(&stop_feed));
        std::thread::spawn(move || {
            let mut seq = 0u64;
            while !stop.load(Ordering::Relaxed) {
                seq += 1;
                cluster.submit(Event::faa_position(seq, (seq % 16) as u32, fix(seq)));
                std::thread::sleep(Duration::from_micros(300));
            }
        })
    };

    // Display pool on a *surviving* mirror (site 2 — site 1 will be
    // promoted out of serving), wired to the cluster's admission gate so
    // takeover parks requests instead of racing the swap.
    let gw = cluster.mirror(2).serve_requests_with(GatewayConfig {
        gate: Some(cluster.request_gate()),
        gate_wait: Duration::from_secs(2),
        ..GatewayConfig::default()
    });
    let storming = Arc::new(AtomicBool::new(true));
    let crashed_flag = Arc::new(AtomicBool::new(false));
    let served_before = Arc::new(AtomicU64::new(0));
    let served_after = Arc::new(AtomicU64::new(0));
    let lost = Arc::new(AtomicU64::new(0));
    let mut pool = Vec::new();
    for _ in 0..displays {
        let client = gw.client();
        let (storming, crashed_flag) = (Arc::clone(&storming), Arc::clone(&crashed_flag));
        let (served_before, served_after, lost) =
            (Arc::clone(&served_before), Arc::clone(&served_after), Arc::clone(&lost));
        pool.push(std::thread::spawn(move || {
            while storming.load(Ordering::Relaxed) {
                match client.fetch(Duration::from_secs(5)) {
                    Ok(_) => {
                        if crashed_flag.load(Ordering::Relaxed) {
                            served_after.fetch_add(1, Ordering::Relaxed);
                        } else {
                            served_before.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    Err(_) => {
                        lost.fetch_add(1, Ordering::Relaxed);
                    }
                }
                std::thread::sleep(Duration::from_micros(500));
            }
        }));
    }

    // Warm-up third of the storm, then the kill.
    std::thread::sleep(storm / 3);
    let committed_before = {
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            if let Some(t) = cluster.central().committed() {
                break t;
            }
            assert!(Instant::now() < deadline, "no checkpoint committed before crash");
            std::thread::sleep(Duration::from_millis(5));
        }
    };
    cluster.crash_central();
    crashed_flag.store(true, Ordering::Relaxed);
    let t_crash = Instant::now();

    // Pump the detector until it promotes.
    let mut detect_ms = f64::NAN;
    let mut recover_ms = f64::NAN;
    let mut replayed = 0usize;
    let mut promoted_site = 0u16;
    let mut term = 0u64;
    let deadline = Instant::now() + Duration::from_secs(30);
    'outer: while Instant::now() < deadline {
        for ev in cluster.poll_failover() {
            match ev {
                FailoverEvent::CoordinatorDead { .. } => {
                    detect_ms = t_crash.elapsed().as_secs_f64() * 1e3;
                }
                FailoverEvent::Promoted { site, term: t, replayed: r, .. } => {
                    recover_ms = t_crash.elapsed().as_secs_f64() * 1e3;
                    promoted_site = site;
                    term = t;
                    replayed = r;
                    break 'outer;
                }
            }
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(recover_ms.is_finite(), "failover must complete within the run");

    // Zero-loss check: every committed component must be inside the
    // successor's frontier.
    let frontier = cluster.snapshot(0).expect("successor snapshot").as_of;
    let committed_events_lost: u64 = committed_before
        .components()
        .iter()
        .enumerate()
        .map(|(i, &c)| c.saturating_sub(frontier.get(i)))
        .sum();

    // Ride out the rest of the storm under the new coordinator.
    std::thread::sleep(storm * 2 / 3);
    storming.store(false, Ordering::Relaxed);
    for d in pool {
        d.join().expect("display thread");
    }
    stop_feed.store(true, Ordering::Relaxed);
    feeder.join().expect("feeder");
    gw.stop();
    let cluster = Arc::try_unwrap(cluster).unwrap_or_else(|_| panic!("cluster still shared"));
    cluster.shutdown();
    let _ = std::fs::remove_dir_all(&dir);

    RunStats {
        detect_ms,
        recover_ms,
        replayed,
        committed_events_lost,
        promoted_site,
        term,
        served_before: served_before.load(Ordering::Relaxed),
        served_after: served_after.load(Ordering::Relaxed),
        lost: lost.load(Ordering::Relaxed),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let flag = |name: &str| args.iter().any(|a| a == name);
    let opt = |name: &str| {
        args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).map(|v| v.to_string())
    };

    let smoke = flag("--smoke");
    let storm_ms: u64 = opt("--storm-ms")
        .map(|v| v.parse().expect("--storm-ms"))
        .unwrap_or(if smoke { 1_500 } else { 6_000 });
    let displays: usize = opt("--displays").map(|v| v.parse().expect("--displays")).unwrap_or(8);
    let out = opt("--out").unwrap_or_else(|| "results/BENCH_failover.json".to_string());
    if let Some(parent) = std::path::Path::new(&out).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).expect("create output directory");
        }
    }

    println!("failover: {displays} displays, {storm_ms} ms storm (smoke={smoke})");
    let s = run(Duration::from_millis(storm_ms), displays);
    println!(
        "  detect {:.0} ms  recover {:.0} ms  site {} term {}  replayed {}  \
         committed lost {}  served {}+{}  lost {}",
        s.detect_ms,
        s.recover_ms,
        s.promoted_site,
        s.term,
        s.replayed,
        s.committed_events_lost,
        s.served_before,
        s.served_after,
        s.lost,
    );
    assert_eq!(s.committed_events_lost, 0, "zero-loss handoff violated");

    let json = format!(
        "{{\n  \"bench\": \"failover\",\n  \"smoke\": {smoke},\n  \"config\": \
         {{\"storm_ms\": {storm_ms}, \"displays\": {displays}}},\n  \
         \"detect_ms\": {:.1},\n  \"recover_ms\": {:.1},\n  \"promoted_site\": {},\n  \
         \"term\": {},\n  \"replayed\": {},\n  \"committed_events_lost\": {},\n  \
         \"requests\": {{\"served_before_crash\": {}, \"served_after_crash\": {}, \
         \"lost\": {}}}\n}}\n",
        s.detect_ms,
        s.recover_ms,
        s.promoted_site,
        s.term,
        s.replayed,
        s.committed_events_lost,
        s.served_before,
        s.served_after,
        s.lost,
    );
    std::fs::write(&out, json).expect("write benchmark json");
    println!("wrote {out}");
}
