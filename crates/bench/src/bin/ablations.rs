//! Ablation studies beyond the paper's figures — the design choices
//! DESIGN.md calls out, each isolated on the same workload/harness as the
//! main experiments.
//!
//! 1. **Coalesce depth** — how far does folding go before the information
//!    loss stops buying throughput?
//! 2. **Checkpoint interval** — overhead vs. backup-queue growth: the
//!    consistency/overhead trade at the heart of §3.2.1.
//! 3. **Hysteresis (secondary threshold)** — flapping vs. responsiveness
//!    of the §3.2.2 adaptation rule.
//! 4. **Overwrite depth** — selective mirroring's traffic reduction vs.
//!    mirror-state staleness.
//! 5. **Interconnect bandwidth** — the architectural premise: mirroring is
//!    viable because the cluster fabric outclasses client links.

use mirror_bench::{paced_stream, paper_stream, print_table, secs};
use mirror_core::adapt::{AdaptAction, MonitorKind};
use mirror_core::mirrorfn::MirrorFnKind;
use mirror_ois::experiment::{run, AdaptSetup, ExperimentConfig, Ingest, RequestTargets};
use mirror_workload::requests::RequestPattern;

fn coalesce_depth() {
    let mut rows = Vec::new();
    for depth in [1u32, 2, 5, 10, 20, 50, 100] {
        let r = run(&ExperimentConfig {
            mirrors: 1,
            kind: MirrorFnKind::Coalescing { coalesce: depth, checkpoint_every: 50 },
            faa: paper_stream(1000),
            ..Default::default()
        });
        rows.push(vec![
            depth.to_string(),
            secs(r.total_time_s),
            r.central.mirrored.to_string(),
            (r.mirrored_bytes / 1024).to_string(),
        ]);
    }
    print_table(
        "Ablation 1: coalesce depth (10k events, 1KB, 1 mirror)",
        &["depth", "total(s)", "wire-events", "KB-mirrored"],
        &rows,
    );
}

fn checkpoint_interval() {
    let mut rows = Vec::new();
    for every in [10u32, 25, 50, 100, 200, 400, 1000] {
        let r = run(&ExperimentConfig {
            mirrors: 1,
            kind: MirrorFnKind::Simple,
            faa: paper_stream(1000),
            checkpoint_every_override: Some(every),
            ..Default::default()
        });
        rows.push(vec![every.to_string(), secs(r.total_time_s), r.central.checkpoints.to_string()]);
    }
    print_table(
        "Ablation 2: checkpoint interval (simple mirroring, 10k events, 1KB)",
        &["interval", "total(s)", "rounds"],
        &rows,
    );
    println!("note: short intervals pay coordination stalls; very long ones grow the");
    println!("backup queues whose management cost rises with occupancy.");
}

fn hysteresis() {
    let mut rows = Vec::new();
    for secondary in [0u64, 2, 5, 7, 9] {
        let r = run(&ExperimentConfig {
            mirrors: 1,
            kind: MirrorFnKind::Coalescing { coalesce: 10, checkpoint_every: 50 },
            adapt: Some(AdaptSetup {
                monitor: MonitorKind::PendingRequests,
                primary: 10,
                secondary,
                action: AdaptAction::SwitchMirrorFn {
                    normal: MirrorFnKind::Coalescing { coalesce: 10, checkpoint_every: 50 },
                    engaged: MirrorFnKind::Overwriting { overwrite: 20, checkpoint_every: 100 },
                },
            }),
            faa: paced_stream(1000, 850.0, 12_000),
            requests: RequestPattern::Bursty {
                base: 20.0,
                peak: 480.0,
                burst_us: 2_000_000,
                period_us: 5_000_000,
            },
            request_horizon_us: 14_000_000,
            targets: RequestTargets::AllSites,
            ingest: Ingest::Paced,
            ..Default::default()
        });
        rows.push(vec![
            secondary.to_string(),
            r.adaptations.to_string(),
            format!("{:.0}", r.update_delay.mean_us()),
        ]);
    }
    print_table(
        "Ablation 3: hysteresis width (primary=10, bursty load)",
        &["secondary", "transitions", "mean-delay(µs)"],
        &rows,
    );
    println!("note: secondary=0 releases at the primary threshold itself — the widest");
    println!("release window; small windows re-engage eagerly across bursts.");
}

fn overwrite_depth() {
    let mut rows = Vec::new();
    for depth in [1u32, 2, 5, 10, 20, 50] {
        let r = run(&ExperimentConfig {
            mirrors: 1,
            kind: MirrorFnKind::Selective { overwrite: depth },
            faa: paper_stream(2000),
            ..Default::default()
        });
        rows.push(vec![
            depth.to_string(),
            secs(r.total_time_s),
            r.central.mirrored.to_string(),
            r.central.suppressed.to_string(),
        ]);
    }
    print_table(
        "Ablation 4: overwrite depth (selective mirroring, 10k events, 2KB)",
        &["depth", "total(s)", "mirrored", "suppressed"],
        &rows,
    );
}

fn intra_cluster_bandwidth() {
    // The paper's premise: "intra-cluster communication bandwidth and
    // latency are far superior to those experienced by data providers and
    // by clients". Degrade the interconnect and watch mirroring overhead
    // grow toward unviability.
    let mut rows = Vec::new();
    for (label, mbps) in
        [("1000 MB/s", 1000.0), ("100 MB/s", 100.0), ("12.5 MB/s", 12.5), ("3 MB/s", 3.0)]
    {
        let r = run(&ExperimentConfig {
            mirrors: 4,
            kind: MirrorFnKind::Simple,
            faa: paper_stream(4000),
            intra_link: Some(mirror_sim::LinkParams { latency_us: 50, bytes_per_us: mbps }),
            ..Default::default()
        });
        rows.push(vec![label.to_string(), secs(r.total_time_s)]);
    }
    print_table(
        "Ablation 5: intra-cluster link bandwidth (simple mirroring, 4 mirrors, 4KB events)",
        &["interconnect", "total(s)"],
        &rows,
    );
    println!("note: mirroring is practical because the cluster fabric is fast; on a");
    println!("client-grade link the fan-out serialization dominates the run.");
}

fn main() {
    coalesce_depth();
    checkpoint_interval();
    hysteresis();
    overwrite_depth();
    intra_cluster_bandwidth();
}
