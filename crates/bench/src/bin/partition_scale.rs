//! Partition-scale ladder: aggregate cluster capacity vs mirror-group count
//! at constant hardware.
//!
//! The tentpole claim of the content-partitioning PR: sharding the flight
//! space across `G` mirror groups multiplies a cluster's aggregate
//! applied-update throughput and flight capacity by ~`G` while per-site
//! memory stays flat — because each site stores and applies only its
//! group's share.
//!
//! **Equal-hardware normalization.** Every rung of the ladder uses the
//! same [`TOTAL_SITES`] sites: `G` independent groups of `TOTAL_SITES/G`
//! sites each (one central + the rest mirrors). The offered load scales
//! with the capacity claim — `G × FLIGHTS` flights, `G × EVENTS` source
//! events — so the *total apply work* is constant across rungs: under
//! full replication each event is applied by `TOTAL_SITES/G` sites,
//! giving `G×E × 8/G = 8E` site-applies everywhere. Wall-clock stays
//! roughly flat and the distinct-events/sec rate scales honestly with
//! `G`, even on a single-core host: the gain is *work not replicated*,
//! not parallelism conjured from extra cores.
//!
//! Every rung — including `G = 1` — runs through [`PartitionedCluster`],
//! so the per-submit routing cost (slot lock + counter) is identical
//! across the ladder and the baseline isn't handicapped.
//!
//! **In-binary correctness gate**: for every rung, the union state hash
//! across group centrals must equal a serial reference applying the same
//! stream on one unpartitioned state — the partitioned cluster commits
//! exactly the events an unpartitioned one would, just spread out.
//! Full (non-smoke) runs additionally assert the headline ratios:
//! 4-group throughput ≥ 3× and flights ≥ 3× the 1-group rung at ≤ 1.35×
//! per-site memory.
//!
//! Emits `results/BENCH_partition_scale.json`; `--smoke` shrinks the
//! stream for CI, `--events`/`--flights`/`--trials`/`--out` override.

use std::time::{Duration, Instant};

use mirror_core::event::{Event, PositionFix};
use mirror_ede::{OperationalState, SNAPSHOT_FLIGHT_WIRE_SIZE};
use mirror_runtime::{ClusterConfig, PartitionedCluster, PartitionedConfig};

/// Sites on every rung of the ladder (1 central + N-1 mirrors per group).
const TOTAL_SITES: u16 = 8;
/// The ladder: mirror-group counts (each must divide [`TOTAL_SITES`]).
const LADDER: [u16; 3] = [1, 2, 4];

fn fix(seed: u32) -> PositionFix {
    PositionFix {
        lat: (seed % 90) as f64,
        lon: -((seed % 180) as f64),
        alt_ft: 30_000.0 + (seed % 5_000) as f64,
        speed_kts: 400.0 + (seed % 120) as f64,
        heading_deg: (seed % 360) as f64,
    }
}

struct RungStats {
    groups: u16,
    sites_per_group: u16,
    events: u64,
    secs: f64,
    /// Distinct source events applied per second, cluster-wide — the
    /// aggregate capacity metric.
    events_per_sec: f64,
    /// Flights held across the cluster (sum of disjoint group shares).
    total_flights: usize,
    /// Largest per-site flight count (every site of a group holds that
    /// group's full share) — the flat-memory metric.
    per_site_flights: usize,
    /// `per_site_flights` × the snapshot wire size per flight: a
    /// representation-independent per-site memory proxy.
    per_site_bytes: usize,
}

/// One rung: `groups` groups × (TOTAL_SITES/groups) sites absorbing
/// `groups × events_per_group` events over `groups × flights_per_group`
/// flights, timed from first submit to full drain at every site.
fn run_rung(groups: u16, flights_per_group: u64, events_per_group: u64) -> RungStats {
    let sites_per_group = TOTAL_SITES / groups;
    let pc = PartitionedCluster::start(PartitionedConfig {
        groups,
        group: ClusterConfig { mirrors: sites_per_group - 1, ..ClusterConfig::default() },
    });
    let total_flights = flights_per_group * groups as u64;
    let total_events = events_per_group * groups as u64;

    // Pre-build the stream and the serial reference outside the timed
    // region; flights round-robin so every group takes continuous load.
    let stream: Vec<Event> = (0..total_events)
        .map(|seq| Event::faa_position(seq, (seq % total_flights) as u32, fix(seq as u32)))
        .collect();
    let mut reference = OperationalState::new();
    for ev in &stream {
        reference.apply(ev);
    }

    let start = Instant::now();
    for ev in stream {
        pc.submit(ev);
    }
    let drained = pc.wait_quiesced(Duration::from_secs(120));
    let secs = start.elapsed().as_secs_f64();
    assert!(drained, "groups={groups}: cluster failed to drain within the deadline");

    // The equivalence gate: partitioned == unpartitioned, bit for bit.
    assert_eq!(
        pc.union_state_hash(),
        reference.state_hash(),
        "groups={groups}: union of partitioned state diverged from the serial reference"
    );

    let held_flights = pc.total_flights();
    assert_eq!(held_flights as u64, total_flights, "no flight lost or duplicated");
    let per_site_flights = (0..groups)
        .map(|g| {
            pc.group(g)
                .snapshot(mirror_core::CENTRAL_SITE)
                .expect("group central snapshot")
                .flight_count()
        })
        .max()
        .unwrap();
    pc.shutdown();

    RungStats {
        groups,
        sites_per_group,
        events: total_events,
        secs,
        events_per_sec: total_events as f64 / secs,
        total_flights: held_flights,
        per_site_flights,
        per_site_bytes: per_site_flights * SNAPSHOT_FLIGHT_WIRE_SIZE,
    }
}

/// Median-of-`trials` by events/sec: scheduling pathologies on loaded
/// single-core hosts are bimodal; the median reports the typical rate.
fn rung_median(trials: usize, groups: u16, flights: u64, events: u64) -> RungStats {
    let mut runs: Vec<RungStats> = (0..trials).map(|_| run_rung(groups, flights, events)).collect();
    runs.sort_by(|a, b| a.events_per_sec.total_cmp(&b.events_per_sec));
    runs.remove(runs.len() / 2)
}

fn json_rung(s: &RungStats) -> String {
    format!(
        "{{\"groups\": {}, \"sites_per_group\": {}, \"events\": {}, \"secs\": {:.6}, \
         \"events_per_sec\": {:.1}, \"total_flights\": {}, \"per_site_flights\": {}, \
         \"per_site_bytes\": {}}}",
        s.groups,
        s.sites_per_group,
        s.events,
        s.secs,
        s.events_per_sec,
        s.total_flights,
        s.per_site_flights,
        s.per_site_bytes
    )
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let flag = |name: &str| args.iter().any(|a| a == name);
    let opt = |name: &str| {
        args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).map(|v| v.to_string())
    };

    let smoke = flag("--smoke");
    let events: u64 = opt("--events").map(|v| v.parse().expect("--events")).unwrap_or(if smoke {
        4_000
    } else {
        30_000
    });
    let flights: u64 = opt("--flights").map(|v| v.parse().expect("--flights")).unwrap_or(500);
    let trials: usize =
        opt("--trials").map(|v| v.parse().expect("--trials")).unwrap_or(if smoke { 1 } else { 3 });
    let out = opt("--out").unwrap_or_else(|| "results/BENCH_partition_scale.json".to_string());
    if let Some(parent) = std::path::Path::new(&out).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).expect("create output directory");
        }
    }

    println!(
        "partition_scale: {TOTAL_SITES} sites, ladder {LADDER:?} groups, \
         {flights} flights x {events} events per group (smoke={smoke}, median of {trials})"
    );
    let mut rows = Vec::new();
    let mut measured = Vec::new();
    for groups in LADDER {
        let s = rung_median(trials, groups, flights, events);
        println!(
            "  groups={:<2} ({} x {} sites)  {:>10.0} ev/s aggregate  {:>6} flights \
             ({:>5}/site, {:>7} B/site)  ({:.3} s)",
            s.groups,
            s.groups,
            s.sites_per_group,
            s.events_per_sec,
            s.total_flights,
            s.per_site_flights,
            s.per_site_bytes,
            s.secs
        );
        rows.push(format!("    \"groups_{groups}\": {}", json_rung(&s)));
        measured.push(s);
    }

    let base = &measured[0];
    let top = measured.last().unwrap();
    let throughput_x = top.events_per_sec / base.events_per_sec;
    let flights_x = top.total_flights as f64 / base.total_flights as f64;
    let memory_x = top.per_site_bytes as f64 / base.per_site_bytes as f64;
    println!(
        "  scaling ({} -> {} groups): {throughput_x:.2}x throughput, {flights_x:.2}x flights, \
         {memory_x:.2}x per-site memory (state hashes equal on every rung)",
        base.groups, top.groups
    );
    if !smoke {
        // The PR's acceptance floor, enforced in-binary on full runs
        // (smoke streams are too short for a stable ratio).
        assert!(
            throughput_x >= 3.0,
            "4-group aggregate throughput must reach 3x the full-replication rung, \
             got {throughput_x:.2}x"
        );
        assert!(flights_x >= 3.0, "4-group flight capacity must reach 3x, got {flights_x:.2}x");
        assert!(memory_x <= 1.35, "per-site memory must stay flat (<= 1.35x), got {memory_x:.2}x");
    }

    let json = format!(
        "{{\n  \"bench\": \"partition_scale\",\n  \"total_sites\": {TOTAL_SITES},\n  \
         \"flights_per_group\": {flights},\n  \"events_per_group\": {events},\n  \
         \"smoke\": {smoke},\n  \"runs\": {{\n{}\n  }},\n  \
         \"scaling\": {{\"throughput_x\": {throughput_x:.3}, \"flights_x\": {flights_x:.3}, \
         \"per_site_memory_x\": {memory_x:.3}, \"state_hash_equal\": true}}\n}}\n",
        rows.join(",\n")
    );
    std::fs::write(&out, json).expect("write benchmark json");
    println!("  wrote {out}");
}
