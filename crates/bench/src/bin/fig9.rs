//! Figure 9 — Performance implications of dynamic adaptation of the
//! mirroring function based on current operating conditions.
//!
//! Paper (§4.3): events arrive on their capture schedule while a **bursty**
//! client-request pattern loads the sites. Two mirroring functions are
//! alternated by the adaptation mechanism: the normal profile coalesces up
//! to 10 events and checkpoints every 50; the degraded profile overwrites
//! up to 20 and checkpoints every 100. Monitored variables (queue lengths,
//! pending-request buffer) carry primary/secondary thresholds; decisions
//! are made centrally and piggybacked on checkpoint messages. Reported
//! shape: total processing latency of published events drops by up to
//! ~40%, and clients see much less perturbation than without adaptation.
//!
//! Output: the per-second mean update-delay series (µs), adaptive vs
//! non-adaptive, plus peak/mean comparisons.

use mirror_bench::{paced_stream, print_table};
use mirror_core::adapt::{AdaptAction, MonitorKind};
use mirror_core::mirrorfn::MirrorFnKind;
use mirror_ois::experiment::{run, AdaptSetup, ExperimentConfig, Ingest, RequestTargets};
use mirror_workload::requests::RequestPattern;

fn main() {
    let normal = MirrorFnKind::Coalescing { coalesce: 10, checkpoint_every: 50 };
    let degraded = MirrorFnKind::Overwriting { overwrite: 20, checkpoint_every: 100 };
    let bursty = RequestPattern::Bursty {
        base: 20.0,
        peak: 480.0,
        burst_us: 2_000_000,
        period_us: 5_000_000,
    };
    let cfg = |adapt| ExperimentConfig {
        mirrors: 1,
        kind: normal,
        adapt,
        faa: paced_stream(1000, 850.0, 12_000),
        requests: bursty,
        request_horizon_us: 14_000_000,
        targets: RequestTargets::AllSites,
        ingest: Ingest::Paced,
        ..Default::default()
    };
    let fixed = run(&cfg(None));
    let adaptive = run(&cfg(Some(AdaptSetup {
        monitor: MonitorKind::PendingRequests,
        primary: 10,
        secondary: 7,
        action: AdaptAction::SwitchMirrorFn { normal, engaged: degraded },
    })));

    // Align the two series on the union of seconds.
    let mut rows = Vec::new();
    let lookup = |series: &Vec<(f64, f64)>, t: f64| {
        series.iter().find(|(s, _)| (*s - t).abs() < 0.5).map(|(_, v)| *v)
    };
    let horizon = fixed
        .delay_series
        .iter()
        .chain(adaptive.delay_series.iter())
        .map(|(t, _)| *t)
        .fold(0.0f64, f64::max);
    let mut t = 0.0;
    while t <= horizon {
        let f = lookup(&fixed.delay_series, t);
        let a = lookup(&adaptive.delay_series, t);
        rows.push(vec![
            format!("{t:.0}"),
            f.map(|v| format!("{:.0}", v)).unwrap_or_else(|| "-".into()),
            a.map(|v| format!("{:.0}", v)).unwrap_or_else(|| "-".into()),
        ]);
        t += 1.0;
    }
    print_table(
        "Figure 9: per-second mean update delay (µs), bursty requests",
        &["t(s)", "no-adapt", "adaptive"],
        &rows,
    );

    let peak = |s: &Vec<(f64, f64)>| s.iter().map(|(_, v)| *v).fold(0.0f64, f64::max);
    let mean = |s: &Vec<(f64, f64)>| s.iter().map(|(_, v)| *v).sum::<f64>() / s.len() as f64;
    let (pf, pa) = (peak(&fixed.delay_series), peak(&adaptive.delay_series));
    let (mf, ma) = (mean(&fixed.delay_series), mean(&adaptive.delay_series));
    // The paper's "reduced by up to 40%": the largest per-second latency
    // reduction over the run.
    let mut max_reduction = 0.0f64;
    let mut t2 = 0.0;
    while t2 <= horizon {
        if let (Some(f), Some(a)) =
            (lookup(&fixed.delay_series, t2), lookup(&adaptive.delay_series, t2))
        {
            if f > 0.0 {
                max_reduction = max_reduction.max(1.0 - a / f);
            }
        }
        t2 += 1.0;
    }
    println!(
        "\nadaptations applied: {} (at {:?} s)",
        adaptive.adaptations, adaptive.adaptation_times_s
    );
    println!(
        "peak per-second delay: no-adapt {pf:.0}µs, adaptive {pa:.0}µs ({:.1}% lower)",
        (1.0 - pa / pf) * 100.0
    );
    println!(
        "mean per-second delay: no-adapt {mf:.0}µs, adaptive {ma:.0}µs ({:.1}% lower)",
        (1.0 - ma / mf) * 100.0
    );
    println!("largest per-second latency reduction: {:.1}%", max_reduction * 100.0);
    println!(
        "\nshape: adaptation engaged at least twice (engage+release): {}",
        adaptive.adaptations >= 2
    );
    println!(
        "shape: latency reduced by up to >=40% (paper: 'up to 40%'): {}",
        max_reduction >= 0.40
    );
    println!("shape: adaptive peak lower (less perturbation at the spike): {}", pa < pf);
    println!("shape: adaptive mean strictly lower (less perturbation): {}", ma < mf);
}
