//! Figure 8 — Update delays with 'selective' vs 'simple' mirroring.
//!
//! Paper: average update delay (event ingress → sent to clients by the
//! central EDE) at 100, 200 and 400 req/s, one mirror site. Reported
//! shape: the ≈40% total-execution-time reduction of selective mirroring
//! corresponds to a decrease in average update delay of **more than 50%**.
//!
//! The events arrive *paced* (the capture-time schedule) so the metric is
//! per-event latency, not backlog drain: near saturation, the extra
//! mirroring work of the simple function is the difference between keeping
//! up and falling behind, and queueing amplifies the ~10% work difference
//! into a much larger delay difference.

use mirror_bench::{paced_stream, print_table};
use mirror_core::mirrorfn::MirrorFnKind;
use mirror_ois::experiment::{run, ExperimentConfig, Ingest, RequestTargets};
use mirror_workload::requests::RequestPattern;

fn main() {
    let size = 1000usize;
    let rates = [100.0f64, 200.0, 400.0];
    let mut rows = Vec::new();
    let mut reductions = Vec::new();
    for &rate in &rates {
        let cfg = |kind| ExperimentConfig {
            mirrors: 1,
            kind,
            faa: paced_stream(size, 850.0, 10_000),
            requests: RequestPattern::Constant { rate },
            request_horizon_us: 11_700_000,
            targets: RequestTargets::AllSites,
            ingest: Ingest::Paced,
            ..Default::default()
        };
        let simple = run(&cfg(MirrorFnKind::Simple));
        let selective = run(&cfg(MirrorFnKind::Selective { overwrite: 10 }));
        let s_ms = simple.update_delay.mean_us() / 1000.0;
        let l_ms = selective.update_delay.mean_us() / 1000.0;
        reductions.push((rate, 1.0 - l_ms / s_ms));
        rows.push(vec![
            format!("{rate:.0}"),
            format!("{s_ms:.2}"),
            format!("{l_ms:.2}"),
            format!("{:.1}%", (1.0 - l_ms / s_ms) * 100.0),
            format!("{:.2}", simple.update_delay_p99_us as f64 / 1000.0),
            format!("{:.2}", selective.update_delay_p99_us as f64 / 1000.0),
        ]);
    }
    print_table(
        "Figure 8: mean update delay (ms) vs request rate, 1 mirror",
        &["req/s", "simple", "selective", "reduction", "simp-p99", "sel-p99"],
        &rows,
    );

    let grows = reductions.windows(2).all(|w| w[1].1 >= w[0].1 - 0.02);
    let over_half_at_400 = reductions.last().map(|&(_, r)| r > 0.5).unwrap_or(false);
    println!("\nshape: selective's advantage grows with request load: {grows}");
    println!(
        "shape: >50% delay reduction at the highest load: {over_half_at_400} ({:.1}%)",
        reductions.last().unwrap().1 * 100.0
    );
}
