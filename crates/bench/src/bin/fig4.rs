//! Figure 4 — Overhead of mirroring to a single site.
//!
//! Paper: total execution time vs. event size (up to 8 KB) for no
//! mirroring, simple mirroring (every event to one mirror site), and
//! selective mirroring (overwrite runs of up to 10 position events).
//! Reported shape: simple mirroring costs ≈15–20 % over the baseline,
//! growing in absolute terms with event size; selective mirroring removes
//! most of the overhead, more so at larger sizes.

use mirror_bench::{paper_stream, pct, print_table, secs};
use mirror_core::mirrorfn::MirrorFnKind;
use mirror_ois::experiment::{run, ExperimentConfig};

fn main() {
    let sizes = [200usize, 1000, 2000, 3000, 4000, 5000, 6000, 7000, 8000];
    let mut rows = Vec::new();
    let mut overheads = Vec::new();
    for &size in &sizes {
        let base = run(&ExperimentConfig {
            mirrors: 0,
            kind: MirrorFnKind::None,
            faa: paper_stream(size),
            ..Default::default()
        });
        let simple = run(&ExperimentConfig {
            mirrors: 1,
            kind: MirrorFnKind::Simple,
            faa: paper_stream(size),
            ..Default::default()
        });
        let selective = run(&ExperimentConfig {
            mirrors: 1,
            kind: MirrorFnKind::Selective { overwrite: 10 },
            faa: paper_stream(size),
            ..Default::default()
        });
        let simple_oh = simple.total_time_s / base.total_time_s;
        let sel_oh = selective.total_time_s / base.total_time_s;
        overheads.push((size, simple_oh, sel_oh, simple.total_time_s - base.total_time_s));
        rows.push(vec![
            size.to_string(),
            secs(base.total_time_s),
            secs(simple.total_time_s),
            secs(selective.total_time_s),
            pct(simple_oh),
            pct(sel_oh),
        ]);
    }
    print_table(
        "Figure 4: mirroring to a single site — total execution time (s)",
        &["size(B)", "none", "simple", "selective", "simple-oh", "select-oh"],
        &rows,
    );

    // Shape checks against the paper's claims.
    let all_in_band = overheads.iter().all(|&(_, s, _, _)| (1.08..=1.30).contains(&s));
    let selective_below_simple = overheads.iter().all(|&(_, s, l, _)| l < s);
    let abs_grows = overheads.first().unwrap().3 < overheads.last().unwrap().3;
    println!("\nshape: simple overhead within ~15-20% band across sizes: {all_in_band}");
    println!("shape: selective strictly cheaper than simple everywhere: {selective_below_simple}");
    println!("shape: absolute simple overhead grows with event size: {abs_grows}");
}
