//! Nonblocking-TCP front for the edge: a hand-rolled readiness loop over
//! `std::net` (no external event library), speaking the repo's standard
//! little-endian `u32` length-prefixed frame format so any
//! [`mirror_echo::TcpTransport`] can connect.
//!
//! One thread services every connection with a scan loop: accept new
//! sockets, read and parse `Frame::Subscribe` / `Frame::Resume`, pump
//! each connection's [`EdgeClient`] deliveries into a per-connection
//! write buffer, and flush what the socket will take. A socket that
//! stops draining simply stops being pumped once its write buffer hits
//! the high-water mark — backpressure then surfaces where it belongs, as
//! per-subscriber conflation inside the edge, with memory bounded on
//! both sides. The scan loop trades per-connection wakeup latency for
//! zero dependencies; the in-process virtual-socket path is the one
//! benchmarked at 100k+ subscribers.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use bytes::Bytes;

use crate::server::{EdgeClient, EdgeServer};
use mirror_echo::transport::MAX_FRAME;
use mirror_echo::{decode_frame, Frame};

/// Stop pumping deliveries into a connection whose unflushed write
/// buffer reaches this size; the edge's conflation takes over.
const OUT_HIGH_WATER: usize = 256 * 1024;

/// Deliveries pumped per connection per scan pass (fairness bound).
const PUMP_BATCH: usize = 32;

/// One accepted socket and its edge attachment.
struct TcpConn {
    sock: TcpStream,
    inbuf: Vec<u8>,
    outbuf: Vec<u8>,
    out_pos: usize,
    client: Option<EdgeClient>,
    dead: bool,
}

impl TcpConn {
    fn new(sock: TcpStream) -> io::Result<Self> {
        sock.set_nonblocking(true)?;
        sock.set_nodelay(true)?;
        Ok(TcpConn {
            sock,
            inbuf: Vec::new(),
            outbuf: Vec::new(),
            out_pos: 0,
            client: None,
            dead: false,
        })
    }

    /// Drain whatever the socket has; returns whether anything arrived.
    fn read_available(&mut self, scratch: &mut [u8]) -> bool {
        let mut any = false;
        loop {
            match self.sock.read(scratch) {
                Ok(0) => {
                    self.dead = true;
                    break;
                }
                Ok(n) => {
                    self.inbuf.extend_from_slice(&scratch[..n]);
                    any = true;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    break;
                }
            }
        }
        any
    }

    /// Parse complete length-prefixed frames out of `inbuf` and handle
    /// the control frames a subscriber may send.
    fn parse_frames(&mut self, edge: &EdgeServer) {
        loop {
            if self.inbuf.len() < 4 {
                return;
            }
            let len =
                u32::from_le_bytes([self.inbuf[0], self.inbuf[1], self.inbuf[2], self.inbuf[3]])
                    as usize;
            if len > MAX_FRAME as usize {
                self.dead = true;
                return;
            }
            if self.inbuf.len() < 4 + len {
                return;
            }
            let body = Bytes::copy_from_slice(&self.inbuf[4..4 + len]);
            self.inbuf.drain(..4 + len);
            match decode_frame(body) {
                Ok(Frame::Subscribe { client, filter }) => {
                    self.client = Some(edge.subscribe(client, filter));
                }
                Ok(Frame::Resume { client, last_seq }) => match edge.resume(client, last_seq) {
                    Ok(c) => self.client = Some(c),
                    Err(_) => {
                        // Unknown client: hang up; the subscriber must
                        // send a fresh Subscribe on its next connection.
                        self.dead = true;
                        return;
                    }
                },
                // Anything else from a subscriber (acks, probes) is
                // tolerated and ignored; a corrupt frame kills the link.
                Ok(_) => {}
                Err(_) => {
                    self.dead = true;
                    return;
                }
            }
        }
    }

    /// Move deliveries from the edge into the write buffer, bounded by
    /// the high-water mark and the fairness batch.
    fn pump(&mut self) -> bool {
        let Some(client) = &self.client else { return false };
        let mut any = false;
        for _ in 0..PUMP_BATCH {
            if self.outbuf.len() - self.out_pos >= OUT_HIGH_WATER {
                break;
            }
            match client.poll() {
                Ok(Some(d)) => {
                    let wire = d.wire();
                    self.outbuf.extend_from_slice(&(wire.len() as u32).to_le_bytes());
                    self.outbuf.extend_from_slice(&wire);
                    any = true;
                }
                Ok(None) => break,
                Err(_) => {
                    // Typed edge disconnect (slow client, replaced,
                    // shutdown): flush what we have, then close.
                    self.dead = true;
                    break;
                }
            }
        }
        any
    }

    /// Write as much buffered output as the socket accepts.
    fn flush(&mut self) -> bool {
        let mut any = false;
        while self.out_pos < self.outbuf.len() {
            match self.sock.write(&self.outbuf[self.out_pos..]) {
                Ok(0) => {
                    self.dead = true;
                    break;
                }
                Ok(n) => {
                    self.out_pos += n;
                    any = true;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    break;
                }
            }
        }
        if self.out_pos == self.outbuf.len() {
            self.outbuf.clear();
            self.out_pos = 0;
        } else if self.out_pos > OUT_HIGH_WATER {
            self.outbuf.drain(..self.out_pos);
            self.out_pos = 0;
        }
        any
    }
}

/// A running TCP front: owns the listener thread. Dropping it stops the
/// loop and closes every connection.
pub struct EdgeTcp {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<thread::JoinHandle<()>>,
}

impl EdgeTcp {
    /// Bind `addr` and serve `edge` over TCP until [`stop`](Self::stop)
    /// or drop.
    pub fn serve<A: ToSocketAddrs>(edge: Arc<EdgeServer>, addr: A) -> io::Result<EdgeTcp> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = thread::Builder::new()
            .name("edge-tcp".into())
            .spawn(move || serve_loop(listener, edge, stop2))
            .expect("spawn edge tcp loop");
        Ok(EdgeTcp { local_addr, stop, handle: Some(handle) })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stop the loop and close every connection.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for EdgeTcp {
    fn drop(&mut self) {
        self.stop();
    }
}

fn serve_loop(listener: TcpListener, edge: Arc<EdgeServer>, stop: Arc<AtomicBool>) {
    let mut conns: Vec<TcpConn> = Vec::new();
    let mut scratch = vec![0u8; 16 * 1024];
    while !stop.load(Ordering::Acquire) {
        let mut active = false;
        loop {
            match listener.accept() {
                Ok((sock, _peer)) => {
                    if let Ok(conn) = TcpConn::new(sock) {
                        conns.push(conn);
                        active = true;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }
        for conn in conns.iter_mut() {
            if conn.dead {
                continue;
            }
            active |= conn.read_available(&mut scratch);
            if !conn.dead {
                conn.parse_frames(&edge);
            }
            active |= conn.pump();
            active |= conn.flush();
        }
        // A dead connection is dropped after this pass's flush attempt;
        // its EdgeClient drops with it (the subscription stays in the
        // edge directory for a later Resume).
        conns.retain(|c| !c.dead);
        if !active {
            thread::sleep(Duration::from_millis(1));
        }
    }
}
