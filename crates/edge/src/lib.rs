//! # mirror-edge — massive-fan-out subscriber delivery tier
//!
//! The paper's real consumers are airport displays: tens of thousands of
//! long-lived subscribers per mirror that must receive derived state
//! continuously. The cluster's gateway serves synchronous requests; this
//! crate adds the **push** tier in front of it — an event-loop connection
//! layer that fans each applied event out to 100k+ subscribers per host,
//! built from ingredients the repo already has:
//!
//! * **Encode-once delivery** — one [`EdgeEvent`] per applied event holds
//!   the event and a lazily computed wire encoding
//!   ([`mirror_echo::wire::encode_edge_event`]); every subscribed
//!   connection's queue shares it by reference count, so fan-out width
//!   never multiplies encoding work (the PR-§11 `Bytes` pattern at
//!   subscriber scale).
//! * **Subscriptions as routing state** — each client subscribes to all
//!   flights or a flight-id set ([`mirror_echo::SubscriptionFilter`],
//!   carried on `Frame::Subscribe`); delivery workers keep a per-flight
//!   index (the Gryphon information-flow view).
//! * **Sequence/ack resume** — the edge stamps every published event with
//!   one global `pub_seq`, retains a bounded window, and replays it to a
//!   reconnecting client from its last received sequence
//!   (`Frame::Resume`), falling back to a cached-snapshot reseed
//!   (`Frame::Reseed`, the §13 single-flight pattern) when the resume
//!   point has fallen out of the window — or, cheaper, to a **delta
//!   reseed** (`Frame::DeltaSnapshot`) carrying only the flights changed
//!   since a capture frontier the client's held state already covers.
//! * **Slow clients get the paper's own medicine** — per-subscriber
//!   conflation/overwriting: a slow display's pending buffer holds at most
//!   the *latest* event per flight and event kind (exactly the overwriting
//!   mirror function of §4.3 applied per connection), with hard caps and a
//!   typed [`EdgeDisconnect::SlowClient`] disconnect on violation. Memory
//!   per subscriber is bounded by construction, and because the published
//!   stream's payloads are absolute and monotone per kind, the conflated
//!   stream converges to the *same* per-flight state as the full stream
//!   (see [`views_equivalent`]).
//!
//! Transport comes in two flavors with identical semantics: the in-process
//! "virtual socket" ([`EdgeClient`]) that makes 100k subscribers on one
//! host benchable, and a nonblocking-`std::net` TCP front ([`tcp`]) with a
//! hand-rolled readiness loop for realism tests — no external event
//! library.

#![warn(missing_docs)]

pub mod server;
pub mod tcp;

pub use server::{
    Delivery, EdgeClient, EdgeConfig, EdgeCounters, EdgeDisconnect, EdgeEvent, EdgeServer,
    EdgeStats, ResumeError, SnapshotFn, StateProvider,
};

use mirror_ede::FlightView;

/// Are two per-flight views equivalent in *state*?
///
/// Compares every field except the `updates` odometer, which counts
/// applied events and therefore legitimately differs between a consumer of
/// the full stream and a consumer of a conflated stream (conflation's
/// whole point is applying fewer events to reach the same state). This is
/// the comparison the conflation-equivalence tests and the reconnect
/// chaos harness assert with.
pub fn views_equivalent(a: &FlightView, b: &FlightView) -> bool {
    a.status == b.status
        && a.position == b.position
        && a.position_seq == b.position_seq
        && a.boarded == b.boarded
        && a.expected == b.expected
        && a.bags_loaded == b.bags_loaded
        && a.bags_reconciled == b.bags_reconciled
}
