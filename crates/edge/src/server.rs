//! The edge delivery server: global publication sequencing, sharded
//! delivery workers, per-subscriber conflating outboxes, and resume.
//!
//! ## Design
//!
//! Every applied event the mirror publishes receives **one global
//! `pub_seq`**, identical for every subscriber. That single decision buys
//! the whole tier: the delivery frame (`Frame::EdgeEvent`) can be encoded
//! once and shared by reference count across every connection
//! ([`EdgeEvent::wire`]), resume becomes a cumulative sequence compare
//! against one retained window, and a conflating (slow) client simply
//! observes *gaps* in `pub_seq` — never a private renumbering that would
//! need per-client retransmission state.
//!
//! Clients are sharded over a small pool of **delivery workers**
//! (`client_id % workers`). Each worker owns its shard's subscription
//! index (all-flights list + flight-id postings) and receives work —
//! deliveries, attaches, detaches — over one MPSC ring, so everything
//! that mutates a given client's outbox is serialized without a global
//! lock: a resume's window replay cannot race the live deliveries of the
//! same client.
//!
//! ## The slow-client state machine
//!
//! A healthy client's outbox is a short FIFO (`queue`, at most
//! [`EdgeConfig::queue_cap`] frames). When it fills — or as long as any
//! conflated state is pending — new events enter the **conflation map**:
//! at most one pending entry per `(flight, event kind)`, newer state
//! overwriting older (the paper's §4.3 overwriting mirror function
//! applied per subscriber). Keying by kind as well as flight is what
//! makes conflation *lossless in state*: the published stream carries
//! only state-changing events whose per-kind payloads are absolute and
//! monotone (position fixes are sequence-guarded, statuses only advance,
//! boarding/baggage counts only grow), so applying just the latest event
//! of each kind reaches the same per-flight state as applying them all —
//! whereas a Position overwriting a Status would lose the status
//! forever. A client therefore costs at most `queue_cap + max_pending`
//! retained frames, no matter how long it stalls. If a stalled client
//! accumulates more than [`EdgeConfig::max_pending`] distinct pending
//! entries, it is disconnected with the typed
//! [`EdgeDisconnect::SlowClient`] and its buffers are freed; it may later
//! [`resume`](EdgeServer::resume) like any other disconnected client.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::mem::Discriminant;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread;
use std::time::Instant;

use bytes::Bytes;
use parking_lot::Mutex;

use mirror_core::event::{Event, EventBody, FlightId};
use mirror_core::ring::{self, MpscSender, RingRecv};
use mirror_core::timestamp::VectorTimestamp;
use mirror_echo::wire::{encode_edge_event, encode_frame_shared, Frame};
use mirror_echo::{RecvStatus, Subscriber, SubscriptionFilter};

/// Tuning knobs for an edge server.
#[derive(Debug, Clone)]
pub struct EdgeConfig {
    /// Retained-window length (events) for resume replay. A client whose
    /// resume point predates the window is reseeded from a snapshot.
    pub window: usize,
    /// Healthy per-client FIFO capacity (frames) before conflation
    /// begins.
    pub queue_cap: usize,
    /// Maximum distinct `(flight, event kind)` entries of conflated
    /// pending state per client; exceeding it disconnects the client as
    /// hopelessly slow.
    pub max_pending: usize,
    /// Delivery worker threads; clients are sharded `id % workers`.
    pub workers: usize,
    /// Capacity of each worker's inbound work ring.
    pub ring_capacity: usize,
    /// Serve a cached reseed snapshot while at most this many events
    /// behind the live publication frontier (the §13 bounded-staleness
    /// rule in `pub_seq` terms).
    pub reseed_max_stale_events: u64,
    /// ... and at most this old.
    pub reseed_max_stale: std::time::Duration,
}

impl Default for EdgeConfig {
    fn default() -> Self {
        let workers = thread::available_parallelism().map(|n| n.get()).unwrap_or(4).clamp(1, 4);
        EdgeConfig {
            window: 4096,
            queue_cap: 64,
            max_pending: 1024,
            workers,
            ring_capacity: 1024,
            reseed_max_stale_events: 64,
            reseed_max_stale: std::time::Duration::from_millis(2),
        }
    }
}

/// Source of client-initialization state for reseeds: full snapshots and,
/// when the producer still remembers the requested base frontier, cheap
/// deltas.
///
/// Both methods must capture **fresh** — at or after the moment of the
/// call. The edge reads its publication frontier *before* invoking the
/// provider, so the returned state must reflect at least every event
/// already published to the edge at call time — true of any fresh capture
/// of the mirror's live state, since events are published only after they
/// are applied. A capture cached on the provider side could predate the
/// floor read and open a gap between its coverage and the window replay.
pub trait StateProvider: Send + Sync {
    /// Encoded full snapshot ([`mirror_echo::wire::encode_snapshot`]
    /// bytes) plus the frontier it reflects — remembered by the edge as
    /// the delta base later catch-ups can chain from.
    fn full(&self) -> (Bytes, VectorTimestamp);

    /// Encoded delta ([`mirror_echo::wire::encode_delta`] bytes) of
    /// everything changed since `base`, or `None` when the producer no
    /// longer remembers that frontier (fall back to [`full`](Self::full)).
    fn delta(&self, base: &VectorTimestamp) -> Option<Bytes>;
}

/// Full-snapshot-only [`StateProvider`] adapter around a capture closure:
/// never serves deltas, so every out-of-window resume ships a full
/// snapshot. Handy for tests and for sites that don't track deltas.
pub struct SnapshotFn<F>(pub F);

impl<F> StateProvider for SnapshotFn<F>
where
    F: Fn() -> (Bytes, VectorTimestamp) + Send + Sync,
{
    fn full(&self) -> (Bytes, VectorTimestamp) {
        (self.0)()
    }

    fn delta(&self, _base: &VectorTimestamp) -> Option<Bytes> {
        None
    }
}

/// One published event: the shared unit of delivery. Holds the global
/// publication sequence, the applied event, and the lazily-encoded
/// delivery frame shared by every connection that transmits bytes.
pub struct EdgeEvent {
    pub_seq: u64,
    event: Arc<Event>,
    wire: OnceLock<Bytes>,
}

impl EdgeEvent {
    /// Global publication sequence (first published event is 1).
    pub fn pub_seq(&self) -> u64 {
        self.pub_seq
    }

    /// The applied event.
    pub fn event(&self) -> &Arc<Event> {
        &self.event
    }

    /// The `Frame::EdgeEvent` wire encoding: computed at most once per
    /// published event, shared by every subscriber (cloning the returned
    /// [`Bytes`] is a reference-count bump). In-process subscribers never
    /// call this and never pay for an encoding.
    pub fn wire(&self) -> Bytes {
        self.wire
            .get_or_init(|| {
                let data = encode_frame_shared(&Frame::Data(Arc::clone(&self.event)));
                encode_edge_event(self.pub_seq, &data)
            })
            .clone()
    }
}

impl std::fmt::Debug for EdgeEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EdgeEvent")
            .field("pub_seq", &self.pub_seq)
            .field("flight", &self.event.flight)
            .finish()
    }
}

/// One frame handed to a subscriber by [`EdgeClient::poll`].
#[derive(Debug, Clone)]
pub enum Delivery {
    /// A (possibly conflation-surviving) applied event.
    Event(Arc<EdgeEvent>),
    /// A full-state reseed: replace local state with the snapshot, then
    /// continue from `pub_seq`.
    Reseed {
        /// Publication frontier the snapshot covers.
        pub_seq: u64,
        /// [`mirror_echo::wire::encode_snapshot`] bytes.
        snapshot: Bytes,
    },
    /// A delta reseed: fold the delta into state the client already holds
    /// (its held state covers the delta's base frontier), then continue
    /// from `pub_seq`. Orders of magnitude cheaper than a full reseed when
    /// little has changed.
    DeltaReseed {
        /// Publication frontier the delta covers.
        pub_seq: u64,
        /// [`mirror_echo::wire::encode_delta`] bytes.
        delta: Bytes,
    },
}

impl Delivery {
    /// Wire encoding of this delivery (shared/cached where possible).
    pub fn wire(&self) -> Bytes {
        match self {
            Delivery::Event(e) => e.wire(),
            Delivery::Reseed { pub_seq, snapshot } => {
                mirror_echo::wire::encode_reseed(*pub_seq, snapshot)
            }
            Delivery::DeltaReseed { pub_seq, delta } => {
                mirror_echo::wire::encode_delta_reseed(*pub_seq, delta)
            }
        }
    }

    /// The publication sequence this delivery advances the client to.
    pub fn pub_seq(&self) -> u64 {
        match self {
            Delivery::Event(e) => e.pub_seq,
            Delivery::Reseed { pub_seq, .. } => *pub_seq,
            Delivery::DeltaReseed { pub_seq, .. } => *pub_seq,
        }
    }
}

/// Why the edge hung up on a client (typed, surfaced at the next poll).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EdgeDisconnect {
    /// The client's conflated pending state exceeded the per-client cap:
    /// it is too slow to serve without unbounded memory.
    SlowClient {
        /// Distinct pending `(flight, kind)` entries at the violation.
        distinct_keys: usize,
        /// The configured cap ([`EdgeConfig::max_pending`]).
        cap: usize,
    },
    /// A newer connection for the same client id took over (resume after
    /// a half-dead connection).
    Replaced,
    /// The server is shutting down.
    ServerStopped,
}

impl std::fmt::Display for EdgeDisconnect {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EdgeDisconnect::SlowClient { distinct_keys, cap } => {
                write!(f, "slow client: {distinct_keys} pending entries exceeds cap {cap}")
            }
            EdgeDisconnect::Replaced => write!(f, "replaced by a newer connection"),
            EdgeDisconnect::ServerStopped => write!(f, "edge server stopped"),
        }
    }
}

impl std::error::Error for EdgeDisconnect {}

/// Resume failure: the edge has no subscription on file for the client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResumeError {
    /// The client never subscribed (or the directory was lost).
    UnknownClient(u64),
}

impl std::fmt::Display for ResumeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResumeError::UnknownClient(id) => write!(f, "unknown client {id}: subscribe first"),
        }
    }
}

impl std::error::Error for ResumeError {}

/// Lock-free counters of edge activity, shared with `Cluster::stats()`.
#[derive(Debug, Default)]
pub struct EdgeCounters {
    connections: AtomicU64,
    connects_total: AtomicU64,
    published: AtomicU64,
    delivered: AtomicU64,
    conflated: AtomicU64,
    resumed: AtomicU64,
    reseeded: AtomicU64,
    delta_reseeded: AtomicU64,
    disconnected_slow: AtomicU64,
}

impl EdgeCounters {
    /// Snapshot every counter.
    pub fn snapshot(&self) -> EdgeStats {
        EdgeStats {
            connections: self.connections.load(Ordering::Relaxed),
            connects_total: self.connects_total.load(Ordering::Relaxed),
            published: self.published.load(Ordering::Relaxed),
            delivered: self.delivered.load(Ordering::Relaxed),
            conflated: self.conflated.load(Ordering::Relaxed),
            resumed: self.resumed.load(Ordering::Relaxed),
            reseeded: self.reseeded.load(Ordering::Relaxed),
            delta_reseeded: self.delta_reseeded.load(Ordering::Relaxed),
            disconnected_slow: self.disconnected_slow.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of [`EdgeCounters`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EdgeStats {
    /// Currently connected subscribers.
    pub connections: u64,
    /// Connections ever attached (subscribes + resumes).
    pub connects_total: u64,
    /// Events published into the edge.
    pub published: u64,
    /// Frames consumed by subscribers.
    pub delivered: u64,
    /// Events overwritten by newer same-flight state before a slow client
    /// consumed them (the conflation loss — by design, never a gap).
    pub conflated: u64,
    /// Successful window-replay resumes.
    pub resumed: u64,
    /// Resumes that fell out of the window and were snapshot-reseeded.
    pub reseeded: u64,
    /// Resumes that fell out of the window but were served a cheap delta
    /// against a remembered reseed frontier instead of a full snapshot.
    pub delta_reseeded: u64,
    /// Clients disconnected for exceeding the pending cap.
    pub disconnected_slow: u64,
}

/// Per-connection outbox state; every mutation happens under the mutex,
/// either from the owning delivery worker or from the consuming client.
struct ClientState {
    /// Healthy in-order FIFO, capped at `queue_cap`.
    queue: VecDeque<Delivery>,
    /// Conflated pending state: at most the latest event per
    /// `(flight, event kind)`.
    pending: HashMap<ConflationKey, Arc<EdgeEvent>>,
    /// Pending keys ordered by the `pub_seq` of their current payload
    /// (repositioned on overwrite). Popping the minimum makes conflated
    /// deliveries an *in-order subsequence* of the published stream —
    /// required for state equivalence: delivering a conflated `Arrived`
    /// before an older retained position fix would drop the fix, since
    /// the state machine ignores positions for arrived flights.
    pending_order: BTreeMap<u64, ConflationKey>,
    /// Highest `pub_seq` ever offered to this connection; deduplicates a
    /// resume's window replay against in-flight live deliveries.
    frontier: u64,
    /// Highest `pub_seq` the client actually consumed (its resume point).
    consumed: u64,
    /// Set when the edge hung up; buffers are cleared at that moment.
    closed: Option<EdgeDisconnect>,
    /// High watermarks for the bounded-memory assertions.
    queue_high: usize,
    pending_high: usize,
}

impl ClientState {
    fn new() -> Self {
        ClientState {
            queue: VecDeque::new(),
            pending: HashMap::new(),
            pending_order: BTreeMap::new(),
            frontier: 0,
            consumed: 0,
            closed: None,
            queue_high: 0,
            pending_high: 0,
        }
    }

    fn close(&mut self, why: EdgeDisconnect) {
        self.closed = Some(why);
        self.queue = VecDeque::new();
        self.pending = HashMap::new();
        self.pending_order = BTreeMap::new();
    }
}

/// The conflation unit: one slot of pending state per flight and event
/// kind (see the module docs for why kind matters).
type ConflationKey = (FlightId, Discriminant<EventBody>);

fn conflation_key(e: &Event) -> ConflationKey {
    (e.flight, std::mem::discriminant(&e.body))
}

/// One connection of one client.
struct ClientConn {
    id: u64,
    state: Mutex<ClientState>,
}

/// What happened when an event was offered to a connection.
enum Push {
    /// Queued or conflated; connection is fine.
    Ok,
    /// Duplicate of something already offered (replay overlap); skipped.
    Duplicate,
    /// The connection was already closed.
    Closed,
    /// This push violated the pending cap: the client was just closed.
    ClosedNow,
}

fn push_event(conn: &ClientConn, e: &Arc<EdgeEvent>, cfg: &EdgeConfig, c: &EdgeCounters) -> Push {
    let mut st = conn.state.lock();
    if st.closed.is_some() {
        return Push::Closed;
    }
    if e.pub_seq <= st.frontier {
        return Push::Duplicate;
    }
    st.frontier = e.pub_seq;
    // Healthy fast path. Conflation, once begun, captures every newer
    // event (not just overflow) so the client never observes state for a
    // flight moving backwards: pending entries are always at least as new
    // as anything still queued.
    if st.pending.is_empty() && st.queue.len() < cfg.queue_cap {
        st.queue.push_back(Delivery::Event(Arc::clone(e)));
        st.queue_high = st.queue_high.max(st.queue.len());
        return Push::Ok;
    }
    let key = conflation_key(&e.event);
    match st.pending.insert(key, Arc::clone(e)) {
        Some(old) => {
            // Overwrote older pending state for the same flight and
            // kind: the paper's overwriting semantics, per subscriber.
            // Bounded by construction. Reposition the key to the new
            // payload's pub_seq so delivery order stays an in-order
            // subsequence of the published stream.
            st.pending_order.remove(&old.pub_seq);
            st.pending_order.insert(e.pub_seq, key);
            c.conflated.fetch_add(1, Ordering::Relaxed);
            Push::Ok
        }
        None => {
            if st.pending.len() > cfg.max_pending {
                let n = st.pending.len();
                st.close(EdgeDisconnect::SlowClient { distinct_keys: n, cap: cfg.max_pending });
                c.disconnected_slow.fetch_add(1, Ordering::Relaxed);
                return Push::ClosedNow;
            }
            st.pending_order.insert(e.pub_seq, key);
            st.pending_high = st.pending_high.max(st.pending.len());
            Push::Ok
        }
    }
}

/// A subscriber's in-process "virtual socket": the consuming end of one
/// connection. Poll it for deliveries; drop or
/// [`disconnect`](EdgeClient::disconnect) it to hang up (the subscription
/// survives for a later [`EdgeServer::resume`]).
pub struct EdgeClient {
    conn: Arc<ClientConn>,
    inner: Arc<Inner>,
}

impl EdgeClient {
    /// The stable client id this connection serves.
    pub fn id(&self) -> u64 {
        self.conn.id
    }

    /// Take the next delivery, if any. `Err` means the edge hung up on
    /// this connection (typed); `Ok(None)` means nothing is pending.
    pub fn poll(&self) -> Result<Option<Delivery>, EdgeDisconnect> {
        let mut st = self.conn.state.lock();
        if let Some(why) = st.closed.clone() {
            return Err(why);
        }
        let d = if let Some(d) = st.queue.pop_front() {
            d
        } else if let Some((_seq, key)) = st.pending_order.pop_first() {
            let e = st.pending.remove(&key).expect("pending order desynced from map");
            Delivery::Event(e)
        } else {
            return Ok(None);
        };
        st.consumed = st.consumed.max(d.pub_seq());
        drop(st);
        self.inner.counters.delivered.fetch_add(1, Ordering::Relaxed);
        Ok(Some(d))
    }

    /// Highest publication sequence this connection has consumed — the
    /// `last_seq` to pass to [`EdgeServer::resume`] after a disconnect.
    pub fn last_seq(&self) -> u64 {
        self.conn.state.lock().consumed
    }

    /// Frames currently buffered for this connection.
    pub fn backlog(&self) -> usize {
        let st = self.conn.state.lock();
        st.queue.len() + st.pending.len()
    }

    /// High watermarks of the in-order queue and the conflation map —
    /// the bounded-memory evidence (`pending` never exceeds
    /// [`EdgeConfig::max_pending`], `queue` never exceeds
    /// [`EdgeConfig::queue_cap`]).
    pub fn high_watermarks(&self) -> (usize, usize) {
        let st = self.conn.state.lock();
        (st.queue_high, st.pending_high)
    }

    /// Hang up. The subscription stays in the directory, so the client
    /// can [`resume`](EdgeServer::resume) from [`last_seq`](Self::last_seq).
    pub fn disconnect(self) {
        let shard = (self.conn.id as usize) % self.inner.rings.len();
        let _ = self.inner.rings[shard].send(WorkMsg::Detach { conn: Arc::clone(&self.conn) });
    }
}

enum WorkMsg {
    Deliver(Arc<EdgeEvent>),
    Attach { conn: Arc<ClientConn>, filter: SubscriptionFilter, resume_from: Option<u64> },
    Detach { conn: Arc<ClientConn> },
    Quiesce(Arc<AtomicUsize>),
    Stop,
}

struct ReseedEntry {
    floor: u64,
    wire: Bytes,
    /// Frontier the snapshot reflects — the delta base a client who has
    /// consumed at least up to `floor` can catch up from.
    as_of: VectorTimestamp,
    taken: Instant,
}

/// A cached delta reseed: one per base frontier, same staleness policy as
/// the full entry. `floor` was read before *its* capture, so serving the
/// cached pair keeps the floor/coverage invariant.
struct DeltaReseedEntry {
    base: VectorTimestamp,
    floor: u64,
    wire: Bytes,
    taken: Instant,
}

/// Reseed state behind one mutex: the current cached full entry, the
/// previous entry's `(floor, as_of)` (still a valid delta base for clients
/// who consumed past its floor), and the cached delta entry.
#[derive(Default)]
struct ReseedSlots {
    current: Option<ReseedEntry>,
    prev: Option<(u64, VectorTimestamp)>,
    delta: Option<DeltaReseedEntry>,
}

struct Inner {
    cfg: EdgeConfig,
    counters: Arc<EdgeCounters>,
    pub_seq: AtomicU64,
    window: Mutex<VecDeque<Arc<EdgeEvent>>>,
    directory: Mutex<HashMap<u64, SubscriptionFilter>>,
    rings: Vec<MpscSender<WorkMsg>>,
    reseed_slot: Mutex<ReseedSlots>,
    /// Swappable so a failover can re-point the edge at the successor's
    /// state (lock order: `reseed_slot` first, then `provider`).
    provider: Mutex<Box<dyn StateProvider>>,
    stop: AtomicBool,
}

impl Inner {
    /// Serve a reseed snapshot whose covered frontier is at least
    /// `min_floor`, single-flight and bounded-stale (§13, in `pub_seq`
    /// terms). The floor is read *before* capturing, so every event
    /// published before the read — and therefore applied to the mirror
    /// before the capture — is covered: conservative, never a gap.
    fn reseed(&self, min_floor: u64) -> (u64, Bytes) {
        let mut slots = self.reseed_slot.lock();
        if let Some(e) = slots.current.as_ref() {
            let current = self.pub_seq.load(Ordering::Acquire);
            let fresh_enough = e.floor >= min_floor
                && current.saturating_sub(e.floor) <= self.cfg.reseed_max_stale_events
                && e.taken.elapsed() <= self.cfg.reseed_max_stale;
            if fresh_enough {
                return (e.floor, e.wire.clone());
            }
        }
        let floor = self.pub_seq.load(Ordering::Acquire);
        let (wire, as_of) = self.provider.lock().full();
        // Floor-read-before-capture: the capture happened after the floor
        // read, so its coverage can only exceed the floor — conservative,
        // never a gap. (pub_seq is monotone; a regression here would mean
        // the invariant broke.)
        debug_assert!(
            self.pub_seq.load(Ordering::Acquire) >= floor,
            "publication frontier regressed across a reseed capture"
        );
        // The replaced entry's frontier remains a usable delta base for
        // any client that consumed past its floor.
        slots.prev = slots.current.take().map(|e| (e.floor, e.as_of));
        slots.current =
            Some(ReseedEntry { floor, wire: wire.clone(), as_of, taken: Instant::now() });
        (floor, wire)
    }

    /// Serve a delta reseed for a client resuming from `last`, when some
    /// remembered reseed frontier has `floor <= last` — the client's held
    /// state (that reseed plus every event it consumed since) covers the
    /// base, so only the changes since need to travel. Returns the floor
    /// (read before the capture, same invariant as [`reseed`](Self::reseed))
    /// and the encoded delta; `None` falls back to a full reseed.
    /// `min_floor` bounds how stale a *cached* delta may be: its floor must
    /// still be inside the retained window so the replay after it is
    /// gap-free.
    fn reseed_delta(&self, last: u64, min_floor: u64) -> Option<(u64, Bytes)> {
        let mut slots = self.reseed_slot.lock();
        let base = slots
            .current
            .as_ref()
            .filter(|e| e.floor <= last)
            .map(|e| e.as_of.clone())
            .or_else(|| {
                slots.prev.as_ref().filter(|(floor, _)| *floor <= last).map(|(_, vt)| vt.clone())
            })?;
        if let Some(d) = slots.delta.as_ref() {
            let current = self.pub_seq.load(Ordering::Acquire);
            let fresh_enough = d.base == base
                && d.floor >= min_floor
                && current.saturating_sub(d.floor) <= self.cfg.reseed_max_stale_events
                && d.taken.elapsed() <= self.cfg.reseed_max_stale;
            if fresh_enough {
                return Some((d.floor, d.wire.clone()));
            }
        }
        let floor = self.pub_seq.load(Ordering::Acquire);
        let wire = self.provider.lock().delta(&base)?;
        debug_assert!(
            self.pub_seq.load(Ordering::Acquire) >= floor,
            "publication frontier regressed across a delta capture"
        );
        slots.delta =
            Some(DeltaReseedEntry { base, floor, wire: wire.clone(), taken: Instant::now() });
        Some((floor, wire))
    }

    fn publish(&self, event: Arc<Event>) {
        let seq = self.pub_seq.fetch_add(1, Ordering::AcqRel) + 1;
        let e = Arc::new(EdgeEvent { pub_seq: seq, event, wire: OnceLock::new() });
        {
            // Window first, rings second — an Attach processed in between
            // replays this event from the window and the later Deliver
            // deduplicates against the client's frontier. The window lock
            // is never held across a (possibly spinning) ring send.
            let mut win = self.window.lock();
            win.push_back(Arc::clone(&e));
            if win.len() > self.cfg.window {
                win.pop_front();
            }
        }
        for ring in &self.rings {
            // Blocking send: a full worker ring back-pressures the
            // publishing pump rather than dropping (gaps are forbidden;
            // slowness is handled per-client by conflation).
            let _ = ring.send(WorkMsg::Deliver(Arc::clone(&e)));
        }
        self.counters.published.fetch_add(1, Ordering::Relaxed);
    }
}

/// Per-worker shard: the connections it owns and its subscription index.
struct Shard {
    conns: HashMap<u64, Arc<ClientConn>>,
    filters: HashMap<u64, SubscriptionFilter>,
    /// Clients subscribed to every flight.
    all: Vec<u64>,
    /// Flight-id postings for filtered subscribers, keyed by the shared
    /// Fibonacci flight-id hasher — the same mix the EDE's flight map and
    /// the partition router use, so the per-publish lookup skips SipHash.
    by_flight: HashMap<FlightId, Vec<u64>, mirror_core::BuildFlightHasher>,
}

impl Shard {
    fn new() -> Self {
        Shard {
            conns: HashMap::new(),
            filters: HashMap::new(),
            all: Vec::new(),
            by_flight: HashMap::default(),
        }
    }

    fn index_add(&mut self, id: u64, filter: &SubscriptionFilter) {
        match filter {
            SubscriptionFilter::All => self.all.push(id),
            SubscriptionFilter::Flights(ids) => {
                for f in ids {
                    self.by_flight.entry(*f).or_default().push(id);
                }
            }
        }
    }

    fn index_remove(&mut self, id: u64) {
        match self.filters.get(&id) {
            Some(SubscriptionFilter::All) => {
                if let Some(pos) = self.all.iter().position(|&x| x == id) {
                    self.all.swap_remove(pos);
                }
            }
            Some(SubscriptionFilter::Flights(ids)) => {
                for f in ids {
                    if let Some(list) = self.by_flight.get_mut(f) {
                        if let Some(pos) = list.iter().position(|&x| x == id) {
                            list.swap_remove(pos);
                        }
                        if list.is_empty() {
                            self.by_flight.remove(f);
                        }
                    }
                }
            }
            None => {}
        }
        self.filters.remove(&id);
    }

    /// Drop a connection from the shard (index + map), adjusting the
    /// gauge. No-op if `conn` is not the current connection for its id.
    fn drop_conn(&mut self, conn: &Arc<ClientConn>, c: &EdgeCounters) {
        let current = self.conns.get(&conn.id).is_some_and(|cur| Arc::ptr_eq(cur, conn));
        if current {
            self.conns.remove(&conn.id);
            self.index_remove(conn.id);
            c.connections.fetch_sub(1, Ordering::Relaxed);
        }
    }
}

fn worker_loop(mut rx: ring::MpscReceiver<WorkMsg>, inner: Arc<Inner>) {
    let mut shard = Shard::new();
    let cfg = inner.cfg.clone();
    let c = Arc::clone(&inner.counters);
    let mut idle = 0u32;
    loop {
        match rx.try_recv() {
            RingRecv::Item(msg) => {
                idle = 0;
                match msg {
                    WorkMsg::Deliver(e) => {
                        let flight = e.event.flight;
                        let mut dead: Vec<Arc<ClientConn>> = Vec::new();
                        let offer = |id: u64, shard: &Shard| match shard.conns.get(&id) {
                            Some(conn) => match push_event(conn, &e, &cfg, &c) {
                                Push::ClosedNow => Some(Arc::clone(conn)),
                                _ => None,
                            },
                            None => None,
                        };
                        for i in 0..shard.all.len() {
                            if let Some(d) = offer(shard.all[i], &shard) {
                                dead.push(d);
                            }
                        }
                        if let Some(list) = shard.by_flight.get(&flight) {
                            for &id in list.iter() {
                                if let Some(d) = offer(id, &shard) {
                                    dead.push(d);
                                }
                            }
                        }
                        for conn in dead {
                            shard.drop_conn(&conn, &c);
                        }
                    }
                    WorkMsg::Attach { conn, filter, resume_from } => {
                        // A stale connection for the same id is replaced.
                        if let Some(old) = shard.conns.get(&conn.id).cloned() {
                            old.state.lock().close(EdgeDisconnect::Replaced);
                            shard.drop_conn(&old, &c);
                        }
                        attach(&mut shard, conn, filter, resume_from, &inner);
                    }
                    WorkMsg::Detach { conn } => {
                        shard.drop_conn(&conn, &c);
                    }
                    WorkMsg::Quiesce(left) => {
                        left.fetch_sub(1, Ordering::AcqRel);
                    }
                    WorkMsg::Stop => break,
                }
            }
            RingRecv::Empty => {
                if inner.stop.load(Ordering::Acquire) {
                    break;
                }
                idle_backoff(&mut idle);
            }
            RingRecv::Disconnected => break,
        }
    }
    // Shutdown: surface a typed disconnect to still-connected clients.
    for conn in shard.conns.values() {
        conn.state.lock().close(EdgeDisconnect::ServerStopped);
    }
}

/// Seed a fresh connection (subscribe or resume) and index it. Runs on
/// the owning worker, serialized with that shard's live deliveries.
fn attach(
    shard: &mut Shard,
    conn: Arc<ClientConn>,
    filter: SubscriptionFilter,
    resume_from: Option<u64>,
    inner: &Arc<Inner>,
) {
    let cfg = &inner.cfg;
    let c = &inner.counters;
    // Snapshot the window under its lock, then seed without holding it.
    let (win_floor, retained): (u64, Vec<Arc<EdgeEvent>>) = {
        let win = inner.window.lock();
        let floor = win
            .front()
            .map(|e| e.pub_seq)
            .unwrap_or_else(|| inner.pub_seq.load(Ordering::Acquire) + 1);
        (floor, win.iter().cloned().collect())
    };
    // Replay is possible iff everything after `last` is still retained.
    let replay_from = match resume_from {
        Some(last) if last + 1 >= win_floor => {
            c.resumed.fetch_add(1, Ordering::Relaxed);
            conn.state.lock().frontier = last;
            last
        }
        other => {
            // Fresh subscribe, or the resume point fell out of the
            // window: reseed so the window replay after it is gap-free.
            // A resuming client whose held state covers a remembered
            // reseed frontier gets a cheap delta; everyone else gets a
            // full snapshot covering at least the window floor.
            let min_floor = win_floor.saturating_sub(1);
            let delta = other.and_then(|last| inner.reseed_delta(last, min_floor));
            let (floor, delivery) = match delta {
                Some((floor, wire)) => {
                    c.delta_reseeded.fetch_add(1, Ordering::Relaxed);
                    (floor, Delivery::DeltaReseed { pub_seq: floor, delta: wire })
                }
                None => {
                    let (floor, wire) = inner.reseed(min_floor);
                    if other.is_some() {
                        c.reseeded.fetch_add(1, Ordering::Relaxed);
                    }
                    (floor, Delivery::Reseed { pub_seq: floor, snapshot: wire })
                }
            };
            let mut st = conn.state.lock();
            st.frontier = floor;
            st.consumed = floor;
            st.queue.push_back(delivery);
            st.queue_high = st.queue_high.max(st.queue.len());
            floor
        }
    };
    let mut closed_now = false;
    for e in &retained {
        if e.pub_seq > replay_from && filter.matches(e.event.flight) {
            if let Push::ClosedNow = push_event(&conn, e, cfg, c) {
                closed_now = true;
                break;
            }
        }
    }
    c.connects_total.fetch_add(1, Ordering::Relaxed);
    if closed_now {
        // Slow before it even attached (replay alone blew the cap); the
        // typed disconnect is already set — don't index it.
        return;
    }
    shard.filters.insert(conn.id, filter.clone());
    shard.index_add(conn.id, &filter);
    shard.conns.insert(conn.id, conn);
    c.connections.fetch_add(1, Ordering::Relaxed);
}

fn idle_backoff(idle: &mut u32) {
    *idle = idle.saturating_add(1);
    if *idle < 64 {
        std::hint::spin_loop();
    } else if *idle < 192 {
        thread::yield_now();
    } else {
        thread::sleep(std::time::Duration::from_micros(200));
    }
}

/// The edge server: owns the delivery workers, the retained window, the
/// subscription directory and the counters.
pub struct EdgeServer {
    inner: Arc<Inner>,
    threads: Mutex<Vec<thread::JoinHandle<()>>>,
}

impl EdgeServer {
    /// Start an edge with `cfg`, reseeding from `provider`.
    pub fn start(cfg: EdgeConfig, provider: Box<dyn StateProvider>) -> Self {
        let workers = cfg.workers.max(1);
        let counters = Arc::new(EdgeCounters::default());
        let mut rings = Vec::with_capacity(workers);
        let mut receivers = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (tx, rx) = ring::mpsc::<WorkMsg>(cfg.ring_capacity);
            rings.push(tx);
            receivers.push(rx);
        }
        let inner = Arc::new(Inner {
            cfg,
            counters,
            pub_seq: AtomicU64::new(0),
            window: Mutex::new(VecDeque::new()),
            directory: Mutex::new(HashMap::new()),
            rings,
            reseed_slot: Mutex::new(ReseedSlots::default()),
            provider: Mutex::new(provider),
            stop: AtomicBool::new(false),
        });
        let threads = receivers
            .into_iter()
            .enumerate()
            .map(|(i, rx)| {
                let inner = Arc::clone(&inner);
                thread::Builder::new()
                    .name(format!("edge-worker-{i}"))
                    .spawn(move || worker_loop(rx, inner))
                    .expect("spawn edge worker")
            })
            .collect();
        EdgeServer { inner, threads: Mutex::new(threads) }
    }

    /// The edge's counters (share with `Cluster::stats()`).
    pub fn counters(&self) -> Arc<EdgeCounters> {
        Arc::clone(&self.inner.counters)
    }

    /// Current publication frontier.
    pub fn pub_seq(&self) -> u64 {
        self.inner.pub_seq.load(Ordering::Acquire)
    }

    /// Publish one applied event to every matching subscriber.
    pub fn publish(&self, event: Arc<Event>) {
        self.inner.publish(event);
    }

    /// Spawn a pump that publishes every event from `sub` (a mirror's
    /// applied-updates subscription) until the channel closes or the
    /// server stops. The handle is joined by [`stop`](Self::stop).
    pub fn pump_from(&self, sub: Subscriber<Event>) {
        let inner = Arc::clone(&self.inner);
        let h = thread::Builder::new()
            .name("edge-pump".into())
            .spawn(move || loop {
                match sub.recv_status(std::time::Duration::from_millis(20)) {
                    RecvStatus::Msg(e) => inner.publish(Arc::new(e)),
                    RecvStatus::Timeout => {
                        if inner.stop.load(Ordering::Acquire) {
                            break;
                        }
                    }
                    RecvStatus::Disconnected => break,
                }
            })
            .expect("spawn edge pump");
        self.threads.lock().push(h);
    }

    /// Subscribe a new client (the `Frame::Subscribe` service path).
    /// Returns its virtual socket; the initial state arrives as a
    /// [`Delivery::Reseed`] followed by live deliveries.
    pub fn subscribe(&self, client: u64, filter: SubscriptionFilter) -> EdgeClient {
        self.inner.directory.lock().insert(client, filter.clone());
        self.attach_conn(client, filter, None)
    }

    /// Reconnect a known client from its last consumed sequence (the
    /// `Frame::Resume` service path): window replay when possible,
    /// snapshot reseed on gap.
    pub fn resume(&self, client: u64, last_seq: u64) -> Result<EdgeClient, ResumeError> {
        let filter = self
            .inner
            .directory
            .lock()
            .get(&client)
            .cloned()
            .ok_or(ResumeError::UnknownClient(client))?;
        Ok(self.attach_conn(client, filter, Some(last_seq)))
    }

    fn attach_conn(
        &self,
        client: u64,
        filter: SubscriptionFilter,
        resume_from: Option<u64>,
    ) -> EdgeClient {
        let conn = Arc::new(ClientConn { id: client, state: Mutex::new(ClientState::new()) });
        let shard = (client as usize) % self.inner.rings.len();
        let _ = self.inner.rings[shard]
            .send(WorkMsg::Attach { conn: Arc::clone(&conn), filter, resume_from })
            .map_err(|_| ());
        EdgeClient { conn, inner: Arc::clone(&self.inner) }
    }

    /// Block until every delivery worker has processed all work enqueued
    /// before this call — a deterministic settle point for tests and
    /// benchmarks (e.g. "all fan-out for the published events is done").
    pub fn quiesce(&self) {
        let left = Arc::new(AtomicUsize::new(self.inner.rings.len()));
        for ring in &self.inner.rings {
            let _ = ring.send(WorkMsg::Quiesce(Arc::clone(&left)));
        }
        let mut idle = 0u32;
        while left.load(Ordering::Acquire) != 0 {
            idle_backoff(&mut idle);
        }
    }

    /// Subscribers currently in the resume directory (connected or not).
    pub fn known_clients(&self) -> usize {
        self.inner.directory.lock().len()
    }

    /// Swap the reseed snapshot source and invalidate the cached reseed
    /// entry, so no stale snapshot is ever served afterwards.
    ///
    /// This is the failover re-point: when the mirror this edge fronts is
    /// promoted (or replaced), the edge must capture reseeds from the site
    /// that now applies the events being published — otherwise the
    /// floor-read-before-capture coverage argument in [`StateProvider`]
    /// breaks. Remembered delta bases are invalidated along with the
    /// cached entries (the successor may not remember the predecessor's
    /// capture frontiers). Pair it with a fresh
    /// [`pump_from`](Self::pump_from) on the successor's update stream.
    pub fn set_provider(&self, provider: Box<dyn StateProvider>) {
        let mut slot = self.inner.reseed_slot.lock();
        *self.inner.provider.lock() = provider;
        *slot = ReseedSlots::default();
    }

    /// Stop workers and pumps; connected clients see
    /// [`EdgeDisconnect::ServerStopped`].
    pub fn stop(&self) {
        self.inner.stop.store(true, Ordering::Release);
        for ring in &self.inner.rings {
            let _ = ring.send(WorkMsg::Stop).map_err(|_| ());
        }
        for h in self.threads.lock().drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for EdgeServer {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mirror_core::event::PositionFix;

    fn fix(lat: f64) -> PositionFix {
        PositionFix { lat, lon: 2.0, alt_ft: 30000.0, speed_kts: 440.0, heading_deg: 90.0 }
    }

    fn pos(seq: u64, flight: FlightId) -> Arc<Event> {
        Arc::new(Event::faa_position(seq, flight, fix(seq as f64)))
    }

    fn empty_provider() -> Box<dyn StateProvider> {
        Box::new(SnapshotFn(|| {
            let state = mirror_ede::OperationalState::new();
            let snap = mirror_ede::Snapshot::capture(&state, VectorTimestamp::empty());
            (mirror_echo::wire::encode_snapshot(&snap), VectorTimestamp::empty())
        }))
    }

    /// A delta-capable provider over a shared mutable state, mimicking a
    /// mirror: captures mark frontiers so later deltas are servable.
    #[derive(Clone)]
    struct SharedProvider {
        state: Arc<Mutex<mirror_ede::OperationalState>>,
        tick: Arc<AtomicU64>,
    }

    impl SharedProvider {
        fn new() -> Self {
            SharedProvider {
                state: Arc::new(Mutex::new(mirror_ede::OperationalState::new())),
                tick: Arc::new(AtomicU64::new(0)),
            }
        }

        fn apply(&self, e: &Event) {
            self.state.lock().apply(e);
        }

        fn next_stamp(&self) -> VectorTimestamp {
            let mut vt = VectorTimestamp::empty();
            vt.advance(0, self.tick.fetch_add(1, Ordering::Relaxed) + 1);
            vt
        }
    }

    impl StateProvider for SharedProvider {
        fn full(&self) -> (Bytes, VectorTimestamp) {
            let mut st = self.state.lock();
            let vt = self.next_stamp();
            st.mark_frontier(&vt);
            let snap = mirror_ede::Snapshot::capture(&st, vt.clone());
            (mirror_echo::wire::encode_snapshot(&snap), vt)
        }

        fn delta(&self, base: &VectorTimestamp) -> Option<Bytes> {
            let mut st = self.state.lock();
            let vt = self.next_stamp();
            st.mark_frontier(&vt);
            st.capture_delta(base, vt).map(|d| mirror_echo::wire::encode_delta(&d))
        }
    }

    fn drain(client: &EdgeClient) -> Vec<Delivery> {
        let mut out = Vec::new();
        while let Ok(Some(d)) = client.poll() {
            out.push(d);
        }
        out
    }

    fn wait_for<F: Fn() -> bool>(what: &str, f: F) {
        let start = Instant::now();
        while !f() {
            assert!(start.elapsed() < std::time::Duration::from_secs(5), "timeout: {what}");
            thread::sleep(std::time::Duration::from_millis(1));
        }
    }

    fn small_cfg() -> EdgeConfig {
        EdgeConfig { workers: 2, window: 64, queue_cap: 8, max_pending: 4, ..Default::default() }
    }

    #[test]
    fn subscribe_delivers_reseed_then_live_events() {
        let edge = EdgeServer::start(small_cfg(), empty_provider());
        let client = edge.subscribe(1, SubscriptionFilter::All);
        wait_for("initial reseed", || client.backlog() > 0);
        match client.poll().unwrap() {
            Some(Delivery::Reseed { pub_seq, .. }) => assert_eq!(pub_seq, 0),
            d => panic!("expected reseed first, got {d:?}"),
        }
        edge.publish(pos(1, 10));
        edge.publish(pos(2, 11));
        wait_for("two live events", || client.backlog() >= 2);
        let got = drain(&client);
        let seqs: Vec<u64> = got.iter().map(Delivery::pub_seq).collect();
        assert_eq!(seqs, vec![1, 2]);
        assert_eq!(client.last_seq(), 2);
        let stats = edge.counters().snapshot();
        assert_eq!(stats.published, 2);
        assert_eq!(stats.connections, 1);
    }

    #[test]
    fn flight_filter_routes_only_matching_events() {
        let edge = EdgeServer::start(small_cfg(), empty_provider());
        let gate = edge.subscribe(7, SubscriptionFilter::Flights(vec![10]));
        let lobby = edge.subscribe(8, SubscriptionFilter::All);
        wait_for("both attached", || edge.counters().snapshot().connections == 2);
        for i in 1..=6u64 {
            edge.publish(pos(i, if i % 2 == 0 { 10 } else { 99 }));
        }
        wait_for("lobby sees all", || lobby.backlog() >= 7);
        wait_for("gate sees half", || gate.backlog() >= 4);
        let gate_flights: Vec<FlightId> = drain(&gate)
            .iter()
            .filter_map(|d| match d {
                Delivery::Event(e) => Some(e.event().flight),
                _ => None,
            })
            .collect();
        assert_eq!(gate_flights, vec![10, 10, 10]);
        assert_eq!(drain(&lobby).len(), 7, "reseed + 6 events");
    }

    #[test]
    fn slow_client_conflates_to_latest_per_flight_and_stays_bounded() {
        let cfg = small_cfg();
        let edge = EdgeServer::start(cfg.clone(), empty_provider());
        let client = edge.subscribe(1, SubscriptionFilter::All);
        wait_for("attached", || edge.counters().snapshot().connections == 1);
        // Never polling: queue fills (reseed + 7 events), then conflation
        // holds only the latest per flight for 3 distinct flights.
        for i in 1..=200u64 {
            edge.publish(pos(i, (i % 3) as FlightId));
        }
        wait_for("all fanned out", || edge.pub_seq() == 200 && client.backlog() >= 8 + 3);
        // Give workers a beat to finish the last pushes.
        wait_for("conflation settled", || {
            edge.counters().snapshot().conflated >= (200 - 8 - 3) as u64
        });
        let (qh, ph) = client.high_watermarks();
        assert!(qh <= cfg.queue_cap, "queue high {qh} exceeds cap");
        assert!(ph <= cfg.max_pending, "pending high {ph} exceeds cap");
        assert_eq!(client.backlog(), 8 + 3, "8 queued + 3 conflated flights");
        let got = drain(&client);
        // The conflated tail holds exactly the latest event per flight.
        let mut latest: HashMap<FlightId, u64> = HashMap::new();
        for d in &got {
            if let Delivery::Event(e) = d {
                latest.insert(e.event().flight, e.pub_seq());
            }
        }
        assert_eq!(latest.get(&(198 % 3)), Some(&198));
        assert_eq!(latest.get(&(199 % 3)), Some(&199));
        assert_eq!(latest.get(&(200 % 3)), Some(&200));
    }

    #[test]
    fn hopelessly_slow_client_gets_typed_disconnect() {
        let cfg = small_cfg(); // max_pending = 4
        let edge = EdgeServer::start(cfg, empty_provider());
        let client = edge.subscribe(1, SubscriptionFilter::All);
        wait_for("attached", || edge.counters().snapshot().connections == 1);
        // 8 queued + 4 pending flights allowed; the 5th distinct pending
        // flight must trip the cap.
        for i in 1..=20u64 {
            edge.publish(pos(i, i as FlightId));
        }
        wait_for("slow disconnect", || edge.counters().snapshot().disconnected_slow == 1);
        wait_for("gauge drops", || edge.counters().snapshot().connections == 0);
        let err = loop {
            if let Err(e) = client.poll() {
                break e;
            }
        };
        assert_eq!(err, EdgeDisconnect::SlowClient { distinct_keys: 5, cap: 4 });
        assert_eq!(client.backlog(), 0, "buffers freed on disconnect");
        // The subscription survives the disconnect: resume is accepted
        // (not UnknownClient). With 20 distinct flights still in the
        // window and the same tiny caps, the replay itself blows the cap
        // again — proving the bound also holds during attach.
        let again = edge.resume(1, client.last_seq()).expect("directory entry survives");
        wait_for("replay trips the cap too", || edge.counters().snapshot().disconnected_slow == 2);
        assert!(matches!(again.poll(), Err(EdgeDisconnect::SlowClient { .. })));
    }

    #[test]
    fn resume_replays_window_from_last_seq() {
        let edge = EdgeServer::start(small_cfg(), empty_provider());
        let client = edge.subscribe(1, SubscriptionFilter::All);
        wait_for("attached", || edge.counters().snapshot().connections == 1);
        for i in 1..=5u64 {
            edge.publish(pos(i, 10 + i as FlightId));
        }
        wait_for("delivered", || client.backlog() >= 6);
        let got = drain(&client);
        assert_eq!(got.len(), 6);
        assert_eq!(client.last_seq(), 5);
        let last = client.last_seq();
        client.disconnect();
        wait_for("detached", || edge.counters().snapshot().connections == 0);
        // Published while away — still within the window.
        for i in 6..=9u64 {
            edge.publish(pos(i, 10 + i as FlightId));
        }
        let resumed = edge.resume(1, last).expect("known client");
        wait_for("replayed", || resumed.backlog() >= 4);
        let seqs: Vec<u64> = drain(&resumed).iter().map(Delivery::pub_seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9], "exactly the missed events, in order");
        assert_eq!(edge.counters().snapshot().resumed, 1);
        assert_eq!(edge.counters().snapshot().reseeded, 0);
    }

    #[test]
    fn resume_past_window_reseeds_without_gap() {
        let mut cfg = small_cfg();
        cfg.window = 8;
        let edge = EdgeServer::start(cfg, empty_provider());
        let client = edge.subscribe(1, SubscriptionFilter::All);
        wait_for("attached", || edge.counters().snapshot().connections == 1);
        edge.publish(pos(1, 10));
        wait_for("delivered", || client.backlog() >= 2);
        drain(&client);
        let last = client.last_seq();
        client.disconnect();
        wait_for("detached", || edge.counters().snapshot().connections == 0);
        // 20 more events blow the 8-event window: resume must reseed.
        for i in 2..=21u64 {
            edge.publish(pos(i, i as FlightId));
        }
        let resumed = edge.resume(1, last).expect("known client");
        wait_for("reseeded", || resumed.backlog() > 0);
        let got = drain(&resumed);
        let (reseed_floor, rest): (u64, &[Delivery]) = match got.split_first() {
            Some((Delivery::Reseed { pub_seq, .. }, rest)) => (*pub_seq, rest),
            other => panic!("expected reseed first, got {other:?}"),
        };
        // Deliveries after the reseed are contiguous from its floor: no
        // gap between snapshot coverage and the replayed window.
        for (expect, d) in (reseed_floor + 1..).zip(rest.iter()) {
            assert_eq!(d.pub_seq(), expect, "gap after reseed");
        }
        assert_eq!(edge.counters().snapshot().reseeded, 1);
    }

    #[test]
    fn resume_past_window_serves_delta_against_remembered_base() {
        let mut cfg = small_cfg();
        cfg.window = 8;
        cfg.max_pending = 1024;
        // Generous staleness so the cached delta survives the test's waits.
        cfg.reseed_max_stale = std::time::Duration::from_secs(5);
        let provider = SharedProvider::new();
        let edge = EdgeServer::start(cfg, Box::new(provider.clone()));
        let a = edge.subscribe(1, SubscriptionFilter::All);
        let b = edge.subscribe(2, SubscriptionFilter::All);
        wait_for("attached", || edge.counters().snapshot().connections == 2);
        // Both clients consume the initial reseed (base state at the
        // remembered frontier) plus one live event.
        let e = pos(1, 100);
        provider.apply(&e);
        edge.publish(Arc::clone(&e));
        wait_for("delivered", || a.backlog() >= 2 && b.backlog() >= 2);
        drain(&a);
        drain(&b);
        let (last_a, last_b) = (a.last_seq(), b.last_seq());
        a.disconnect();
        b.disconnect();
        wait_for("detached", || edge.counters().snapshot().connections == 0);
        // 20 more events blow the 8-event window; each also lands in the
        // provider's state (publish-after-apply, like a real mirror).
        for i in 2..=21u64 {
            let e = pos(i, i as FlightId);
            provider.apply(&e);
            edge.publish(Arc::clone(&e));
        }
        // Client A resumes: out of the window, but its held state covers
        // the initial reseed frontier — a delta travels, not a snapshot.
        let ra = edge.resume(1, last_a).expect("known client");
        wait_for("delta reseeded", || ra.backlog() > 0);
        let got = drain(&ra);
        let (floor, delta_wire) = match got.split_first() {
            Some((Delivery::DeltaReseed { pub_seq, delta }, rest)) => {
                // Deliveries after the delta are contiguous from its floor.
                for (expect, d) in (*pub_seq + 1..).zip(rest.iter()) {
                    assert_eq!(d.pub_seq(), expect, "gap after delta reseed");
                }
                (*pub_seq, delta.clone())
            }
            other => panic!("expected a delta reseed first, got {other:?}"),
        };
        assert!(floor >= 21, "floor read at capture covers every publish");
        let delta = mirror_echo::wire::decode_delta(delta_wire.clone()).expect("decode");
        assert_eq!(delta.changed_count(), 21, "every flight touched since the base travels");
        // The delta is a strict subset of state; its wire must be what the
        // client folds into the state it already holds.
        assert!(delta.removed().is_empty());
        // Client B resumes against the same base: the cached delta entry
        // is served (one capture, shared bytes).
        let rb = edge.resume(2, last_b).expect("known client");
        wait_for("second delta reseed", || rb.backlog() > 0);
        match drain(&rb).split_first() {
            Some((Delivery::DeltaReseed { delta, .. }, _)) => {
                assert_eq!(delta.as_ptr(), delta_wire.as_ptr(), "cached delta bytes are shared");
            }
            other => panic!("expected a delta reseed, got {other:?}"),
        }
        let stats = edge.counters().snapshot();
        assert_eq!(stats.delta_reseeded, 2);
        assert_eq!(stats.reseeded, 0, "no full reseed was needed");
    }

    #[test]
    fn set_provider_forgets_delta_bases() {
        let mut cfg = small_cfg();
        cfg.window = 8;
        cfg.max_pending = 1024;
        let provider = SharedProvider::new();
        let edge = EdgeServer::start(cfg, Box::new(provider.clone()));
        let client = edge.subscribe(1, SubscriptionFilter::All);
        wait_for("attached", || edge.counters().snapshot().connections == 1);
        let e = pos(1, 100);
        provider.apply(&e);
        edge.publish(e);
        wait_for("delivered", || client.backlog() >= 2);
        drain(&client);
        let last = client.last_seq();
        client.disconnect();
        wait_for("detached", || edge.counters().snapshot().connections == 0);
        for i in 2..=21u64 {
            let e = pos(i, i as FlightId);
            provider.apply(&e);
            edge.publish(e);
        }
        // A failover re-point: the successor does not remember the old
        // provider's capture frontiers, so the resume must fall back to a
        // full reseed rather than chain a delta from a forgotten base.
        edge.set_provider(Box::new(SharedProvider::new()));
        let resumed = edge.resume(1, last).expect("known client");
        wait_for("reseeded", || resumed.backlog() > 0);
        assert!(matches!(resumed.poll(), Ok(Some(Delivery::Reseed { .. }))));
        let stats = edge.counters().snapshot();
        assert_eq!(stats.delta_reseeded, 0);
        assert_eq!(stats.reseeded, 1);
    }

    #[test]
    fn resume_unknown_client_is_typed() {
        let edge = EdgeServer::start(small_cfg(), empty_provider());
        match edge.resume(99, 0) {
            Err(e) => assert_eq!(e, ResumeError::UnknownClient(99)),
            Ok(_) => panic!("resume of an unknown client must fail"),
        }
    }

    #[test]
    fn second_connection_replaces_first() {
        let edge = EdgeServer::start(small_cfg(), empty_provider());
        let first = edge.subscribe(1, SubscriptionFilter::All);
        wait_for("attached", || edge.counters().snapshot().connections == 1);
        let second = edge.resume(1, 0).expect("known");
        wait_for("replaced", || matches!(first.poll(), Err(EdgeDisconnect::Replaced)));
        edge.publish(pos(1, 5));
        wait_for("second gets events", || second.backlog() >= 1);
        assert_eq!(edge.counters().snapshot().connections, 1, "gauge counts one connection");
    }

    #[test]
    fn encode_once_across_subscribers() {
        let edge = EdgeServer::start(small_cfg(), empty_provider());
        let a = edge.subscribe(1, SubscriptionFilter::All);
        let b = edge.subscribe(2, SubscriptionFilter::All);
        wait_for("attached", || edge.counters().snapshot().connections == 2);
        edge.publish(pos(1, 10));
        wait_for("both", || a.backlog() >= 2 && b.backlog() >= 2);
        let mut va = drain(&a);
        let mut vb = drain(&b);
        let ea = va.pop().unwrap();
        let eb = vb.pop().unwrap();
        match (&ea, &eb) {
            (Delivery::Event(x), Delivery::Event(y)) => {
                assert!(Arc::ptr_eq(x, y), "subscribers share one EdgeEvent");
                let wx = x.wire();
                let wy = y.wire();
                assert_eq!(wx.as_ptr(), wy.as_ptr(), "one shared encoding");
                match mirror_echo::decode_frame(wx).unwrap() {
                    Frame::EdgeEvent { pub_seq, event } => {
                        assert_eq!(pub_seq, 1);
                        assert_eq!(event, *x.event());
                    }
                    f => panic!("wrong frame {f:?}"),
                }
            }
            other => panic!("expected events, got {other:?}"),
        }
    }

    #[test]
    fn stop_surfaces_server_stopped() {
        let edge = EdgeServer::start(small_cfg(), empty_provider());
        let client = edge.subscribe(1, SubscriptionFilter::All);
        wait_for("attached", || edge.counters().snapshot().connections == 1);
        edge.stop();
        assert!(matches!(client.poll(), Err(EdgeDisconnect::ServerStopped)));
    }
}
