//! Conflation-equivalence property: a slow subscriber receiving the
//! conflated stream converges to the same per-flight state as a healthy
//! subscriber receiving every published event.
//!
//! The pipeline mirrors production: random raw events run through a real
//! EDE (only state-changing updates are published — exactly what a
//! mirror's applied-updates channel emits), the published stream fans
//! through a real [`EdgeServer`] to a client that never polls until the
//! end (maximal conflation), and both final states are compared with
//! [`views_equivalent`].

use std::sync::Arc;

use proptest::prelude::*;

use mirror_core::event::{streams, Event, EventBody, FlightId, FlightStatus, PositionFix};
use mirror_core::timestamp::VectorTimestamp;
use mirror_echo::SubscriptionFilter;
use mirror_ede::{Ede, OperationalState, Snapshot};
use mirror_edge::{views_equivalent, Delivery, EdgeConfig, EdgeServer};

#[derive(Debug, Clone)]
enum RawKind {
    Pos(f64),
    Status(usize),
    /// Increment to the cumulative boarded count, plus an absolute
    /// manifest size. Gate-reader counts only grow, and readers always
    /// know the manifest size (`expected > 0`): the published payloads
    /// being *absolute and monotone per flight* is the precondition the
    /// conflation-equivalence theorem rests on (see the edge docs).
    Boarding {
        add_boarded: u32,
        expected: u32,
    },
    /// Increments to the cumulative loaded/reconciled bag counters.
    Baggage {
        add_loaded: u32,
        add_reconciled: u32,
    },
}

fn arb_kind() -> impl Strategy<Value = RawKind> {
    prop_oneof![
        (-80.0f64..80.0).prop_map(RawKind::Pos),
        (0usize..FlightStatus::ALL.len()).prop_map(RawKind::Status),
        (0u32..=20, 1u32..=150)
            .prop_map(|(add_boarded, expected)| RawKind::Boarding { add_boarded, expected }),
        (0u32..=15, 0u32..=15).prop_map(|(add_loaded, add_reconciled)| RawKind::Baggage {
            add_loaded,
            add_reconciled,
        }),
    ]
}

/// Per-flight cumulative telemetry counters, advanced as events build.
#[derive(Default, Clone, Copy)]
struct Counters {
    boarded: u32,
    loaded: u32,
    reconciled: u32,
}

fn build_event(i: usize, flight: FlightId, kind: &RawKind, ctr: &mut Counters) -> Event {
    let seq = (i + 1) as u64;
    match kind {
        RawKind::Pos(lat) => Event::faa_position(
            seq,
            flight,
            PositionFix {
                lat: *lat,
                lon: 5.0,
                alt_ft: 31000.0,
                speed_kts: 450.0,
                heading_deg: 80.0,
            },
        ),
        RawKind::Status(idx) => Event::delta_status(seq, flight, FlightStatus::ALL[*idx]),
        RawKind::Boarding { add_boarded, expected } => {
            ctr.boarded += add_boarded;
            Event::new(
                streams::DELTA,
                seq,
                flight,
                EventBody::Boarding { boarded: ctr.boarded, expected: *expected },
            )
        }
        RawKind::Baggage { add_loaded, add_reconciled } => {
            ctr.loaded += add_loaded;
            ctr.reconciled = (ctr.reconciled + add_reconciled).min(ctr.loaded);
            Event::new(
                streams::DELTA,
                seq,
                flight,
                EventBody::Baggage { loaded: ctr.loaded, reconciled: ctr.reconciled },
            )
        }
    }
}

fn empty_snapshot_provider() -> Box<dyn mirror_edge::StateProvider> {
    Box::new(mirror_edge::SnapshotFn(|| {
        let state = OperationalState::new();
        let snap = Snapshot::capture(&state, VectorTimestamp::empty());
        (mirror_echo::wire::encode_snapshot(&snap), VectorTimestamp::empty())
    }))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// For any event stream, the conflated view equals the full view.
    #[test]
    fn conflated_stream_converges_to_full_stream_state(
        raw in proptest::collection::vec((0u32..5, arb_kind()), 1..120)
    ) {
        // The mirror: only state-changing events reach the edge.
        let mut mirror = Ede::new();
        let mut published: Vec<Event> = Vec::new();
        let mut counters = std::collections::HashMap::<FlightId, Counters>::new();
        for (i, (flight, kind)) in raw.iter().enumerate() {
            let ctr = counters.entry(*flight).or_default();
            let event = build_event(i, *flight, kind, ctr);
            published.extend(mirror.process(&event).client_updates);
        }

        // Healthy subscriber: applies every published event.
        let mut full = OperationalState::new();
        for e in &published {
            full.apply(e);
        }

        // Slow subscriber: a real edge with a tiny healthy queue, never
        // polled until the very end, so almost everything conflates.
        let cfg = EdgeConfig {
            workers: 1,
            queue_cap: 4,
            max_pending: 4096,
            window: 8192,
            ..Default::default()
        };
        let edge = EdgeServer::start(cfg.clone(), empty_snapshot_provider());
        let client = edge.subscribe(1, SubscriptionFilter::All);
        edge.quiesce(); // attach (and its empty reseed) before publishing
        for e in &published {
            edge.publish(Arc::new(e.clone()));
        }
        edge.quiesce(); // all fan-out done

        let mut conflated = OperationalState::new();
        let mut event_deliveries = 0usize;
        loop {
            match client.poll() {
                Ok(Some(Delivery::Event(e))) => {
                    conflated.apply(e.event());
                    event_deliveries += 1;
                }
                Ok(Some(Delivery::Reseed { pub_seq, .. })) => {
                    // Initial attach only: empty snapshot at floor 0.
                    prop_assert_eq!(pub_seq, 0);
                }
                Ok(Some(d @ Delivery::DeltaReseed { .. })) => {
                    panic!("fresh subscribe must not receive a delta reseed: {d:?}")
                }
                Ok(None) => break,
                Err(e) => panic!("disconnected: {e}"),
            }
        }
        let stats = edge.counters().snapshot();
        edge.stop();

        // Accounting: every published event was either delivered or
        // overwritten by newer same-key state — never silently dropped.
        prop_assert_eq!(event_deliveries + stats.conflated as usize, published.len());

        // Bounded memory, even with polling withheld.
        let (queue_high, pending_high) = client.high_watermarks();
        prop_assert!(queue_high <= cfg.queue_cap);
        prop_assert!(pending_high <= cfg.max_pending);

        // The equivalence itself: identical per-flight state.
        prop_assert_eq!(conflated.flights().len(), full.flights().len());
        for (id, view) in full.flights().iter() {
            let conf_view = conflated
                .flight(*id)
                .unwrap_or_else(|| panic!("flight {id} missing from conflated state"));
            prop_assert!(
                views_equivalent(view, conf_view),
                "flight {} diverged:\n full: {:?}\n conf: {:?}",
                id, view, conf_view
            );
        }
    }
}
