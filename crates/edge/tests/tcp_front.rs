//! Realism tests for the TCP front: a plain [`mirror_echo::TcpTransport`]
//! subscriber speaking `Frame::Subscribe` / `Frame::Resume` against the
//! nonblocking edge loop, including disconnect and gap-free resume.

use std::sync::Arc;
use std::time::{Duration, Instant};

use mirror_core::event::{Event, PositionFix};
use mirror_core::timestamp::VectorTimestamp;
use mirror_echo::{Frame, Polled, SubscriptionFilter, TcpTransport, Transport};
use mirror_ede::{OperationalState, Snapshot};
use mirror_edge::tcp::EdgeTcp;
use mirror_edge::{EdgeConfig, EdgeServer};

fn provider() -> Box<dyn mirror_edge::StateProvider> {
    Box::new(mirror_edge::SnapshotFn(|| {
        let state = OperationalState::new();
        let snap = Snapshot::capture(&state, VectorTimestamp::empty());
        (mirror_echo::wire::encode_snapshot(&snap), VectorTimestamp::empty())
    }))
}

fn pos(seq: u64, flight: u32) -> Arc<Event> {
    Arc::new(Event::faa_position(
        seq,
        flight,
        PositionFix { lat: 1.0, lon: 2.0, alt_ft: 30000.0, speed_kts: 440.0, heading_deg: 90.0 },
    ))
}

fn recv_frame(t: &mut TcpTransport) -> Frame {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        match t.recv_timeout(Duration::from_millis(100)).expect("recv") {
            Polled::Frame(f) => return f,
            Polled::Idle => assert!(Instant::now() < deadline, "timed out waiting for a frame"),
            Polled::Eof => panic!("unexpected EOF"),
        }
    }
}

#[test]
fn tcp_subscribe_stream_disconnect_resume() {
    let cfg = EdgeConfig { workers: 2, window: 1024, ..Default::default() };
    let edge = Arc::new(EdgeServer::start(cfg, provider()));
    let front = EdgeTcp::serve(Arc::clone(&edge), "127.0.0.1:0").expect("bind");
    let addr = front.local_addr();

    // Subscribe over a plain TcpTransport; first frame is the reseed.
    let mut sub = TcpTransport::connect(addr).expect("connect");
    sub.send(&Frame::Subscribe { client: 7, filter: SubscriptionFilter::All }).expect("send");
    match recv_frame(&mut sub) {
        Frame::Reseed { pub_seq, .. } => assert_eq!(pub_seq, 0),
        f => panic!("expected reseed first, got {f:?}"),
    }

    // Live delivery, in publication order, with the event intact.
    for i in 1..=10u64 {
        edge.publish(pos(i, 42));
    }
    let mut last = 0u64;
    for want in 1..=10u64 {
        match recv_frame(&mut sub) {
            Frame::EdgeEvent { pub_seq, event } => {
                assert_eq!(pub_seq, want, "in-order delivery");
                assert_eq!(event.seq, want);
                assert_eq!(event.flight, 42);
                last = pub_seq;
            }
            f => panic!("expected edge event, got {f:?}"),
        }
    }

    // Drop the socket mid-run, miss some traffic, resume: the replay
    // starts exactly after last_seq with no gap and no duplicates.
    drop(sub);
    for i in 11..=15u64 {
        edge.publish(pos(i, 42));
    }
    let mut back = TcpTransport::connect(addr).expect("reconnect");
    back.send(&Frame::Resume { client: 7, last_seq: last }).expect("send resume");
    for want in 11..=15u64 {
        match recv_frame(&mut back) {
            Frame::EdgeEvent { pub_seq, .. } => assert_eq!(pub_seq, want, "gap-free resume"),
            f => panic!("expected edge event, got {f:?}"),
        }
    }
}

#[test]
fn tcp_resume_of_unknown_client_closes_connection() {
    let edge = Arc::new(EdgeServer::start(EdgeConfig::default(), provider()));
    let front = EdgeTcp::serve(Arc::clone(&edge), "127.0.0.1:0").expect("bind");

    let mut t = TcpTransport::connect(front.local_addr()).expect("connect");
    t.send(&Frame::Resume { client: 999, last_seq: 0 }).expect("send");
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        match t.recv_timeout(Duration::from_millis(100)) {
            Ok(Polled::Eof) | Err(_) => break,
            Ok(Polled::Frame(f)) => panic!("unknown client must not be served, got {f:?}"),
            Ok(Polled::Idle) => assert!(Instant::now() < deadline, "server never closed"),
        }
    }
}

#[test]
fn tcp_filtered_subscription_only_sees_its_flights() {
    let edge = Arc::new(EdgeServer::start(EdgeConfig::default(), provider()));
    let front = EdgeTcp::serve(Arc::clone(&edge), "127.0.0.1:0").expect("bind");

    let mut sub = TcpTransport::connect(front.local_addr()).expect("connect");
    sub.send(&Frame::Subscribe { client: 3, filter: SubscriptionFilter::Flights(vec![5]) })
        .expect("send");
    match recv_frame(&mut sub) {
        Frame::Reseed { .. } => {}
        f => panic!("expected reseed, got {f:?}"),
    }
    for i in 1..=6u64 {
        edge.publish(pos(i, if i % 2 == 0 { 5 } else { 77 }));
    }
    // Only flights matching the filter arrive: pub_seq 2, 4, 6.
    for want in [2u64, 4, 6] {
        match recv_frame(&mut sub) {
            Frame::EdgeEvent { pub_seq, event } => {
                assert_eq!(pub_seq, want);
                assert_eq!(event.flight, 5);
            }
            f => panic!("expected edge event, got {f:?}"),
        }
    }
}
