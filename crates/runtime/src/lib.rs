//! # mirror-runtime — the real threads-and-channels runtime
//!
//! `mirror-sim` reruns the paper's experiments deterministically; this
//! crate runs the *same* sans-IO site logic (`mirror_core::AuxUnit`,
//! `mirror_ede::Ede`) as an actual concurrent system: one thread per unit,
//! typed `mirror-echo` event channels between sites, `parking_lot` guarding
//! the shared state the paper's three auxiliary tasks synchronize over.
//!
//! The entry point is [`cluster::Cluster`]: start a central site plus *n*
//! in-process mirror sites, push source events, watch regular-client
//! updates flow out of the central EDE, request initial-state snapshots
//! from any mirror, and reconfigure mirroring live through the Table-1
//! [`mirror_core::MirrorHandle`]. The [`bridge`] module pumps a site's
//! data/control channels over a `mirror-echo` TCP transport so mirrors can
//! live in other processes.

#![warn(missing_docs)]

pub mod applypool;
pub mod bridge;
pub mod clock;
pub mod cluster;
pub mod durability;
pub mod failover;
pub mod partition;
pub mod requests;
pub mod site;
pub mod statesync;
pub mod wan;

pub use applypool::{ApplyPool, ApplyPoolConfig, ApplySink};
pub use clock::RuntimeClock;
pub use cluster::{Cluster, ClusterConfig, ClusterStats, MirrorRef, ScaleEvent, SiteStats};
pub use durability::{DurabilityConfig, Journal, ResyncOutcome, ResyncSource};
pub use failover::{CtrlCadence, FailoverEvent, FailoverPolicy};
pub use partition::{MigrateError, MigrationReport, PartitionedCluster, PartitionedConfig};
pub use requests::{
    GatewayConfig, PartitionTable, RequestClient, RequestError, RequestGate, RequestGateway,
};
pub use site::{CentralSite, MirrorSite, SiteOverload, DEFAULT_MAIN_RING_CAPACITY};
pub use statesync::{
    ServedDelta, ServedSnapshot, SnapshotCache, SnapshotCachePolicy, StateSync, SyncStateProvider,
    Transfer,
};
pub use wan::{WanMirror, WanMirrorConfig, WanReadError, WanResync};
