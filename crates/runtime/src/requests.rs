//! Server-side request gateways.
//!
//! In the paper, client requests arrive over the network and queue in "an
//! application level buffer holding all pending client requests" — one of
//! the monitored variables driving adaptive mirroring (§3.2.2). A
//! [`RequestGateway`] gives a running site exactly that: a **worker pool**
//! draining a shared FIFO of initial-state requests, whose occupancy feeds
//! the site's pending-requests gauge (and therefore the
//! checkpoint-piggybacked monitor reports), so the central adaptation
//! controller reacts to real request pressure in the live runtime, not
//! just in the simulator.
//!
//! Three properties make storms cheap (the perf PR's serving path):
//!
//! * requests are answered from the epoch-keyed [`SnapshotCache`] — one
//!   state capture (and one wire encoding) per epoch window, shared by
//!   every request it satisfies, under the bounded-staleness contract of
//!   [`SnapshotCachePolicy`];
//! * the FIFO drains on `workers` threads (default `min(4, cores)`), so
//!   service pads and reply marshalling parallelize instead of queueing
//!   behind one clone loop;
//! * the pending gauge is maintained by increment (at submit) and
//!   decrement (at reply) on a shared atomic — exact under concurrency,
//!   where the old absolute `store(len)` could overwrite a newer reading.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{self, Receiver, Sender};
use parking_lot::Mutex;

use mirror_core::{FlightId, GroupId, PartitionMap};
use mirror_ede::Snapshot;

use crate::site::SiteCounters;
use crate::statesync::{ServedSnapshot, SnapshotCache, SnapshotCachePolicy};

/// A request job: answered with a served (cache-shared) snapshot, or a
/// [`RequestError::Unavailable`] when the serving site is mid-takeover.
struct Job {
    reply: Sender<Result<ServedSnapshot, RequestError>>,
    submitted: Instant,
    /// The flight the client is after, when it said so. Keyed requests are
    /// ownership-checked against the gateway's partition table; unkeyed
    /// requests (whole-state fetches) serve unconditionally.
    key: Option<FlightId>,
}

/// A cluster's shared, epoch-fenced view of the partition map, consulted by
/// every gateway on keyed requests.
///
/// One table is shared across all of a partitioned cluster's gateways and
/// its migration machinery: installing a newer map (after a slot moves)
/// redirects misrouted clients everywhere at once, while stale installs —
/// e.g. a map learned off a lagging mirror's commit — are ignored, the same
/// fence [`PartitionMap::adopt`] applies on control traffic.
#[derive(Debug)]
pub struct PartitionTable {
    map: std::sync::RwLock<PartitionMap>,
}

impl PartitionTable {
    /// A table starting at `map`.
    pub fn new(map: PartitionMap) -> Self {
        Self { map: std::sync::RwLock::new(map) }
    }

    fn read(&self) -> std::sync::RwLockReadGuard<'_, PartitionMap> {
        self.map.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Install a newer map; `false` (no-op) when `map` isn't strictly
    /// newer than the current epoch.
    pub fn install(&self, map: PartitionMap) -> bool {
        let mut cur = self.map.write().unwrap_or_else(|e| e.into_inner());
        if map.epoch() <= cur.epoch() {
            return false;
        }
        *cur = map;
        true
    }

    /// The group owning `flight` under the current map.
    pub fn group_of(&self, flight: FlightId) -> GroupId {
        self.read().group_of(flight)
    }

    /// Epoch of the current map.
    pub fn epoch(&self) -> u64 {
        self.read().epoch()
    }

    /// A clone of the current map.
    pub fn snapshot(&self) -> PartitionMap {
        self.read().clone()
    }
}

/// Admission gate for initial-state serving, shared between a cluster's
/// gateways and its failover machinery.
///
/// During a coordinator takeover the cluster **closes** the gate: workers
/// park arriving requests (bounded by [`GatewayConfig::gate_wait`]) instead
/// of serving state that is about to be superseded. Requests still parked
/// when the bound expires fail with [`RequestError::Unavailable`]; the rest
/// resume the moment the successor **opens** the gate again.
pub struct RequestGate {
    /// `true` = open. A plain std mutex/condvar pair: the gate toggles a
    /// handful of times per failover, never on the per-request hot path
    /// while open (workers read the flag once under an uncontended lock).
    open: std::sync::Mutex<bool>,
    cv: std::sync::Condvar,
}

impl RequestGate {
    /// A gate that starts open.
    pub fn new() -> Self {
        Self { open: std::sync::Mutex::new(true), cv: std::sync::Condvar::new() }
    }

    /// Close the gate: workers park subsequent requests.
    pub fn close(&self) {
        *self.open.lock().unwrap_or_else(|e| e.into_inner()) = false;
    }

    /// Open the gate, releasing every parked worker.
    pub fn open(&self) {
        *self.open.lock().unwrap_or_else(|e| e.into_inner()) = true;
        self.cv.notify_all();
    }

    /// Whether the gate is currently open.
    pub fn is_open(&self) -> bool {
        *self.open.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Park until the gate opens or `timeout` passes; `true` iff open.
    pub fn wait_open(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut open = self.open.lock().unwrap_or_else(|e| e.into_inner());
        while !*open {
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let (guard, _) =
                self.cv.wait_timeout(open, deadline - now).unwrap_or_else(|e| e.into_inner());
            open = guard;
        }
        true
    }
}

impl Default for RequestGate {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for RequestGate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RequestGate").field("open", &self.is_open()).finish()
    }
}

/// What travels the gateway FIFO: work, or a shutdown pill. `stop()`
/// enqueues exactly one `Stop` per worker, so every worker — including one
/// parked in a blocking `recv` — wakes immediately, with none of the old
/// 20 ms stop-flag poll latency.
enum Msg {
    Job(Job),
    Stop,
}

/// How a site answers initial-state requests.
#[derive(Debug, Clone)]
pub struct GatewayConfig {
    /// Worker threads draining the request FIFO. `0` means auto:
    /// `min(4, available cores)`.
    pub workers: usize,
    /// Bounded-staleness snapshot cache; `None` disables caching entirely
    /// (every request captures the live state — the pre-cache path, kept
    /// for benchmarking baselines).
    pub cache: Option<SnapshotCachePolicy>,
    /// Per-request service time beyond the in-memory snapshot — models
    /// marshalling and pushing the initial view over a client link (zero
    /// for pure functional tests). This is what makes request storms
    /// *load*.
    pub service_pad: Duration,
    /// Admission gate shared with the cluster's failover machinery; `None`
    /// serves unconditionally. When the gate is closed, workers park each
    /// dequeued request up to [`gate_wait`](GatewayConfig::gate_wait)
    /// before failing it with [`RequestError::Unavailable`].
    pub gate: Option<Arc<RequestGate>>,
    /// Longest a worker parks a request on a closed gate.
    pub gate_wait: Duration,
    /// Content-partitioned serving: this gateway's own group plus the
    /// cluster's shared [`PartitionTable`]. Keyed requests for flights
    /// another group owns fail fast with
    /// [`RequestError::WrongPartition`] naming the owner, instead of
    /// serving a snapshot that silently lacks the flight. `None` (the
    /// unpartitioned default) serves every request.
    pub partition: Option<(GroupId, Arc<PartitionTable>)>,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        Self {
            workers: 0,
            cache: Some(SnapshotCachePolicy::default()),
            service_pad: Duration::ZERO,
            gate: None,
            gate_wait: Duration::from_secs(1),
            partition: None,
        }
    }
}

impl GatewayConfig {
    /// Resolve `workers == 0` to the auto default.
    fn resolved_workers(&self) -> usize {
        if self.workers > 0 {
            return self.workers;
        }
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).clamp(1, 4)
    }
}

/// Client-side handle: submit initial-state requests to a site's gateway.
#[derive(Clone)]
pub struct RequestClient {
    tx: Sender<Msg>,
    pending_gauge: Arc<AtomicU64>,
    stopped: Arc<AtomicBool>,
}

/// Why a gateway request failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestError {
    /// The gateway has shut down.
    Closed,
    /// No response within the deadline.
    Timeout,
    /// The serving site is mid-takeover and the admission gate stayed
    /// closed past [`GatewayConfig::gate_wait`] — retry once failover
    /// completes.
    Unavailable,
    /// The requested flight lives in a different partition group — retry
    /// against a site of `owner_group`. The typed refusal replaces the
    /// old silent failure mode (an empty-of-that-flight snapshot) and is
    /// what the ois balancer's re-route learns from.
    WrongPartition {
        /// The group that owns the requested flight under the serving
        /// gateway's current partition map.
        owner_group: GroupId,
    },
}

impl std::fmt::Display for RequestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RequestError::Closed => write!(f, "gateway closed"),
            RequestError::Timeout => write!(f, "request timed out"),
            RequestError::Unavailable => write!(f, "site unavailable during takeover"),
            RequestError::WrongPartition { owner_group } => {
                write!(f, "flight owned by partition group {owner_group}")
            }
        }
    }
}
impl std::error::Error for RequestError {}

impl RequestClient {
    /// Enqueue one job, bumping the pending gauge first so the occupancy
    /// a monitor observes always covers every submitted-but-unanswered
    /// request (the worker decrements after replying).
    fn submit(
        &self,
        key: Option<FlightId>,
    ) -> Result<Receiver<Result<ServedSnapshot, RequestError>>, RequestError> {
        if self.stopped.load(Ordering::Acquire) {
            return Err(RequestError::Closed);
        }
        let (reply_tx, reply_rx) = channel::bounded(1);
        self.pending_gauge.fetch_add(1, Ordering::Relaxed);
        if self.tx.send(Msg::Job(Job { reply: reply_tx, submitted: Instant::now(), key })).is_err()
        {
            self.pending_gauge.fetch_sub(1, Ordering::Relaxed);
            return Err(RequestError::Closed);
        }
        Ok(reply_rx)
    }

    /// Submit a request and wait for the snapshot (with a deadline).
    pub fn fetch(&self, timeout: Duration) -> Result<ServedSnapshot, RequestError> {
        let reply_rx = self.submit(None)?;
        reply_rx.recv_timeout(timeout).map_err(|_| RequestError::Timeout)?
    }

    /// Submit a request keyed by the flight the client is after. On a
    /// partitioned gateway this is ownership-checked: a flight another
    /// group owns fails with [`RequestError::WrongPartition`] instead of
    /// a snapshot that doesn't contain it.
    pub fn fetch_flight(
        &self,
        flight: FlightId,
        timeout: Duration,
    ) -> Result<ServedSnapshot, RequestError> {
        let reply_rx = self.submit(Some(flight))?;
        reply_rx.recv_timeout(timeout).map_err(|_| RequestError::Timeout)?
    }

    /// Fire a request without waiting (load-generation helper); the reply
    /// is discarded when the returned receiver is dropped.
    pub fn fire(&self) -> Result<Receiver<Result<ServedSnapshot, RequestError>>, RequestError> {
        self.submit(None)
    }
}

/// The serving side of a gateway, owned by the site wrapper.
pub struct RequestGateway {
    client: RequestClient,
    /// The FIFO the pool drains: one receiver, shared — a worker holds the
    /// lock only across the (instant) dequeue, never across a serve.
    jobs_rx: Arc<Mutex<Receiver<Msg>>>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl RequestGateway {
    /// Spawn the gateway worker pool.
    ///
    /// `capture` snapshots the live state and returns it **with the epoch
    /// it reflects**, read under the same state lock — the pair keys the
    /// shared [`SnapshotCache`]. `live_epoch` is the site's published
    /// epoch, read lock-free on every request for the staleness check.
    /// Cache hits, misses, served counts, and request latency land in
    /// `counters`; queue occupancy in `pending_gauge`.
    pub(crate) fn spawn(
        capture: impl Fn() -> (Snapshot, u64) + Send + Sync + 'static,
        live_epoch: Arc<AtomicU64>,
        pending_gauge: Arc<AtomicU64>,
        counters: Arc<SiteCounters>,
        config: GatewayConfig,
    ) -> Self {
        let (tx, rx) = channel::unbounded::<Msg>();
        let rx = Arc::new(Mutex::new(rx));
        let stopped = Arc::new(AtomicBool::new(false));
        let capture = Arc::new(capture);
        let cache = config.cache.map(|policy| Arc::new(SnapshotCache::new(policy)));

        let mut threads = Vec::new();
        for w in 0..config.resolved_workers() {
            let rx = Arc::clone(&rx);
            let stopped = Arc::clone(&stopped);
            let capture = Arc::clone(&capture);
            let cache = cache.clone();
            let live_epoch = Arc::clone(&live_epoch);
            let pending_gauge = Arc::clone(&pending_gauge);
            let counters = Arc::clone(&counters);
            let service_pad = config.service_pad;
            let gate = config.gate.clone();
            let gate_wait = config.gate_wait;
            let partition = config.partition.clone();
            threads.push(
                std::thread::Builder::new()
                    .name(format!("request-gateway-{w}"))
                    .spawn(move || loop {
                        // Blocking dequeue under the receiver lock: the
                        // lock spans only the dequeue itself (at most one
                        // worker parks in recv; the rest park on the
                        // mutex), never a serve.
                        let msg = rx.lock().recv();
                        let job = match msg {
                            Ok(Msg::Job(job)) => job,
                            Ok(Msg::Stop) | Err(_) => break,
                        };
                        if stopped.load(Ordering::Acquire) {
                            // Shutting down: discard instead of serving so
                            // stop() is bounded by one in-flight job, not
                            // the whole backlog. Dropping the reply sender
                            // surfaces as an error at the caller.
                            pending_gauge.fetch_sub(1, Ordering::Relaxed);
                            continue;
                        }
                        if let Some(gate) = &gate {
                            // Takeover in progress: park (bounded) rather
                            // than serve state about to be superseded.
                            if !gate.wait_open(gate_wait) {
                                let _ = job.reply.send(Err(RequestError::Unavailable));
                                pending_gauge.fetch_sub(1, Ordering::Relaxed);
                                continue;
                            }
                        }
                        if let (Some((own_group, table)), Some(flight)) = (&partition, job.key) {
                            // Ownership check against the shared table
                            // (not a per-gateway copy): a slot migration
                            // redirects every gateway the instant the new
                            // map installs.
                            let owner = table.group_of(flight);
                            if owner != *own_group {
                                counters.wrong_partition.fetch_add(1, Ordering::Relaxed);
                                let _ = job
                                    .reply
                                    .send(Err(RequestError::WrongPartition { owner_group: owner }));
                                pending_gauge.fetch_sub(1, Ordering::Relaxed);
                                continue;
                            }
                        }
                        let (served, hit) = match cache.as_deref() {
                            Some(cache) => {
                                cache.get(live_epoch.load(Ordering::Acquire), || capture())
                            }
                            None => (ServedSnapshot::new(capture().0), false),
                        };
                        if hit {
                            counters.snapshot_cache_hits.fetch_add(1, Ordering::Relaxed);
                        } else {
                            counters.snapshot_cache_misses.fetch_add(1, Ordering::Relaxed);
                        }
                        if !service_pad.is_zero() {
                            std::thread::sleep(service_pad);
                        }
                        let latency = job.submitted.elapsed().as_micros() as u64;
                        counters.request_latency_sum_us.fetch_add(latency, Ordering::Relaxed);
                        // Count before replying: a caller woken by the
                        // reply must already observe its own completion.
                        counters.requests_served.fetch_add(1, Ordering::Relaxed);
                        let _ = job.reply.send(Ok(served));
                        pending_gauge.fetch_sub(1, Ordering::Relaxed);
                    })
                    .expect("spawn request gateway worker"),
            );
        }
        RequestGateway {
            client: RequestClient { tx, pending_gauge, stopped },
            jobs_rx: rx,
            threads,
        }
    }

    /// A client handle for this gateway (cheap to clone).
    pub fn client(&self) -> RequestClient {
        self.client.clone()
    }

    /// Stop the gateway: new submissions see [`RequestError::Closed`],
    /// workers finish their in-flight job and exit on the next dequeue
    /// (pill-based wakeup — no poll latency), and jobs still queued are
    /// discarded with their gauge contributions released (their `fetch`
    /// callers see an error).
    pub fn stop(mut self) {
        self.client.stopped.store(true, Ordering::Release);
        // One pill per worker: each consumes exactly one and exits; a
        // worker parked in recv wakes on the first pill to reach it.
        for _ in 0..self.threads.len() {
            let _ = self.client.tx.send(Msg::Stop);
        }
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        // Release the gauge slots of jobs nobody will answer (queued after
        // the pills, or racing the stop flag).
        let rx = self.jobs_rx.lock();
        while let Ok(msg) = rx.try_recv() {
            if matches!(msg, Msg::Job(_)) {
                self.client.pending_gauge.fetch_sub(1, Ordering::Relaxed);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mirror_core::event::{Event, PositionFix};
    use mirror_core::timestamp::VectorTimestamp;
    use mirror_ede::OperationalState;
    use parking_lot::Mutex;

    fn fix() -> PositionFix {
        PositionFix { lat: 1.0, lon: 2.0, alt_ft: 30000.0, speed_kts: 450.0, heading_deg: 10.0 }
    }

    fn spawn_empty(config: GatewayConfig) -> (RequestGateway, Arc<AtomicU64>, Arc<SiteCounters>) {
        let pending = Arc::new(AtomicU64::new(0));
        let counters = Arc::new(SiteCounters::default());
        let gw = RequestGateway::spawn(
            || (Snapshot::capture(&OperationalState::new(), VectorTimestamp::empty()), 0),
            Arc::new(AtomicU64::new(0)),
            Arc::clone(&pending),
            Arc::clone(&counters),
            config,
        );
        (gw, pending, counters)
    }

    #[test]
    fn serves_requests_and_counts() {
        let (gw, _pending, counters) = spawn_empty(GatewayConfig::default());
        let client = gw.client();
        for _ in 0..20 {
            let snap = client.fetch(Duration::from_secs(5)).unwrap();
            assert_eq!(snap.flight_count(), 0);
        }
        assert_eq!(counters.requests_served.load(Ordering::Relaxed), 20);
        let hits = counters.snapshot_cache_hits.load(Ordering::Relaxed);
        let misses = counters.snapshot_cache_misses.load(Ordering::Relaxed);
        assert_eq!(hits + misses, 20);
        drop(client);
        gw.stop();
    }

    #[test]
    fn backlog_raises_the_pending_gauge() {
        let pending = Arc::new(AtomicU64::new(0));
        let counters = Arc::new(SiteCounters::default());
        // Gate each capture on a permit: the backlog is held open for as
        // long as the test needs to observe it, whatever the scheduler
        // does to this thread meanwhile. Cache disabled so every request
        // goes through the gated capture.
        let (permit_tx, permit_rx) = channel::unbounded::<()>();
        let permit_rx = Mutex::new(permit_rx);
        let gw = RequestGateway::spawn(
            move || {
                let _ = permit_rx.lock().recv_timeout(Duration::from_secs(10));
                (Snapshot::capture(&OperationalState::new(), VectorTimestamp::empty()), 0)
            },
            Arc::new(AtomicU64::new(0)),
            Arc::clone(&pending),
            Arc::clone(&counters),
            GatewayConfig {
                workers: 2,
                cache: None,
                service_pad: Duration::ZERO,
                ..GatewayConfig::default()
            },
        );
        let client = gw.client();
        let mut receivers = Vec::new();
        for _ in 0..30 {
            receivers.push(client.fire().unwrap());
        }
        // Submissions increment the gauge immediately: the full backlog is
        // visible before any serve completes.
        assert_eq!(pending.load(Ordering::Relaxed), 30);
        for _ in 0..30 {
            permit_tx.send(()).unwrap();
        }
        for r in receivers {
            assert!(r.recv_timeout(Duration::from_secs(10)).is_ok());
        }
        assert_eq!(counters.requests_served.load(Ordering::Relaxed), 30);
        // The decrement trails the reply; give a loaded scheduler room.
        let drained = Instant::now() + Duration::from_secs(10);
        while pending.load(Ordering::Relaxed) != 0 && Instant::now() < drained {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(pending.load(Ordering::Relaxed), 0);
        drop(client);
        gw.stop();
    }

    #[test]
    fn closed_gateway_reports_errors() {
        let (gw, pending, _) = spawn_empty(GatewayConfig::default());
        let client = gw.client();
        gw.stop();
        assert!(matches!(client.fetch(Duration::from_millis(100)), Err(RequestError::Closed)));
        assert_eq!(pending.load(Ordering::Relaxed), 0, "rejected submits leave no gauge residue");
    }

    #[test]
    fn stop_releases_gauge_slots_of_unanswered_jobs() {
        let pending = Arc::new(AtomicU64::new(0));
        let counters = Arc::new(SiteCounters::default());
        // A capture that blocks until stop: jobs pile up behind it.
        let (permit_tx, permit_rx) = channel::unbounded::<()>();
        let permit_rx = Mutex::new(permit_rx);
        let gw = RequestGateway::spawn(
            move || {
                let _ = permit_rx.lock().recv_timeout(Duration::from_secs(10));
                (Snapshot::capture(&OperationalState::new(), VectorTimestamp::empty()), 0)
            },
            Arc::new(AtomicU64::new(0)),
            Arc::clone(&pending),
            Arc::clone(&counters),
            GatewayConfig {
                workers: 1,
                cache: None,
                service_pad: Duration::ZERO,
                ..GatewayConfig::default()
            },
        );
        let client = gw.client();
        let mut receivers = Vec::new();
        for _ in 0..10 {
            receivers.push(client.fire().unwrap());
        }
        assert_eq!(pending.load(Ordering::Relaxed), 10);
        permit_tx.send(()).unwrap(); // let the in-flight job finish
        gw.stop();
        assert_eq!(
            pending.load(Ordering::Relaxed),
            0,
            "stop must release abandoned jobs' gauge slots"
        );
    }

    #[test]
    fn worker_pool_parallelizes_service_pads() {
        // 8 concurrent requests with a 50 ms pad: 4 workers need ~2 pad
        // rounds of wall clock; a single worker would need 8. The pad is a
        // sleep, so this holds even on a single-core host.
        let (gw, _pending, counters) = spawn_empty(GatewayConfig {
            workers: 4,
            cache: Some(SnapshotCachePolicy::default()),
            service_pad: Duration::from_millis(50),
            ..GatewayConfig::default()
        });
        let client = gw.client();
        let t0 = Instant::now();
        let receivers: Vec<_> = (0..8).map(|_| client.fire().unwrap()).collect();
        for r in receivers {
            assert!(r.recv_timeout(Duration::from_secs(10)).is_ok());
        }
        let wall = t0.elapsed();
        assert_eq!(counters.requests_served.load(Ordering::Relaxed), 8);
        assert!(
            wall < Duration::from_millis(8 * 50 - 100),
            "8 padded requests must overlap across the pool, took {wall:?}"
        );
        drop(client);
        gw.stop();
    }

    #[test]
    fn keyed_requests_refuse_foreign_partitions() {
        let table = Arc::new(PartitionTable::new(PartitionMap::uniform(2)));
        let (gw, pending, counters) = spawn_empty(GatewayConfig {
            partition: Some((0, Arc::clone(&table))),
            ..GatewayConfig::default()
        });
        let client = gw.client();
        // Find one flight per group under the uniform map.
        let mine = (0..).find(|&f| table.group_of(f) == 0).unwrap();
        let theirs = (0..).find(|&f| table.group_of(f) == 1).unwrap();
        assert!(client.fetch_flight(mine, Duration::from_secs(5)).is_ok());
        assert!(matches!(
            client.fetch_flight(theirs, Duration::from_secs(5)),
            Err(RequestError::WrongPartition { owner_group: 1 })
        ));
        // Unkeyed fetches serve unconditionally (whole-state recovery).
        assert!(client.fetch(Duration::from_secs(5)).is_ok());
        assert_eq!(counters.wrong_partition.load(Ordering::Relaxed), 1);
        // A newer map claiming the flight for group 0 flips the verdict.
        let mut remap = table.snapshot();
        remap.assign(PartitionMap::slot_of(theirs), 0);
        assert!(table.install(remap.clone()));
        assert!(!table.install(remap), "stale re-install must be fenced");
        assert!(client.fetch_flight(theirs, Duration::from_secs(5)).is_ok());
        // The gauge decrement trails the reply; give the worker room.
        let drained = Instant::now() + Duration::from_secs(10);
        while pending.load(Ordering::Relaxed) != 0 && Instant::now() < drained {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(pending.load(Ordering::Relaxed), 0);
        drop(client);
        gw.stop();
    }

    #[test]
    fn storm_against_live_state_shares_captures() {
        // A mutating state served under the default policy: far fewer
        // captures (misses) than requests, and every served snapshot is a
        // valid state (capture and epoch read under the same lock).
        let state = Arc::new(Mutex::new(OperationalState::new()));
        let live_epoch = Arc::new(AtomicU64::new(0));
        let pending = Arc::new(AtomicU64::new(0));
        let counters = Arc::new(SiteCounters::default());
        let cap_state = Arc::clone(&state);
        let gw = RequestGateway::spawn(
            move || {
                let s = cap_state.lock();
                (Snapshot::capture(&s, VectorTimestamp::empty()), s.epoch())
            },
            Arc::clone(&live_epoch),
            Arc::clone(&pending),
            Arc::clone(&counters),
            GatewayConfig {
                workers: 2,
                cache: Some(SnapshotCachePolicy {
                    max_stale_events: 1_000,
                    max_stale: Duration::from_secs(10),
                }),
                service_pad: Duration::ZERO,
                ..GatewayConfig::default()
            },
        );
        // Feed some state, then fire a burst.
        for f in 0..50u32 {
            let mut s = state.lock();
            s.apply(&Event::faa_position(1, f, fix()));
            live_epoch.store(s.epoch(), Ordering::Release);
        }
        let client = gw.client();
        for _ in 0..100 {
            let snap = client.fetch(Duration::from_secs(10)).unwrap();
            assert_eq!(snap.flight_count(), 50);
        }
        let hits = counters.snapshot_cache_hits.load(Ordering::Relaxed);
        let misses = counters.snapshot_cache_misses.load(Ordering::Relaxed);
        assert_eq!(hits + misses, 100);
        assert!(misses <= 2, "burst against a quiet state must share captures, {misses} misses");
        drop(client);
        gw.stop();
    }
}
