//! Server-side request gateways.
//!
//! In the paper, client requests arrive over the network and queue in "an
//! application level buffer holding all pending client requests" — one of
//! the monitored variables driving adaptive mirroring (§3.2.2). A
//! [`RequestGateway`] gives a running site exactly that: a serving thread
//! with a FIFO of initial-state requests whose occupancy feeds the site's
//! pending-requests gauge (and therefore the checkpoint-piggybacked
//! monitor reports), so the central adaptation controller reacts to real
//! request pressure in the live runtime, not just in the simulator.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{self, Receiver, Sender};

use mirror_ede::Snapshot;

/// A request job: answered with a state snapshot.
struct Job {
    reply: Sender<Snapshot>,
}

/// Client-side handle: submit initial-state requests to a site's gateway.
#[derive(Clone)]
pub struct RequestClient {
    tx: Sender<Job>,
}

/// Why a gateway request failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestError {
    /// The gateway has shut down.
    Closed,
    /// No response within the deadline.
    Timeout,
}

impl std::fmt::Display for RequestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RequestError::Closed => write!(f, "gateway closed"),
            RequestError::Timeout => write!(f, "request timed out"),
        }
    }
}
impl std::error::Error for RequestError {}

impl RequestClient {
    /// Submit a request and wait for the snapshot (with a deadline).
    pub fn fetch(&self, timeout: Duration) -> Result<Snapshot, RequestError> {
        let (reply_tx, reply_rx) = channel::bounded(1);
        self.tx.send(Job { reply: reply_tx }).map_err(|_| RequestError::Closed)?;
        reply_rx.recv_timeout(timeout).map_err(|_| RequestError::Timeout)
    }

    /// Fire a request without waiting (load-generation helper); the reply
    /// is discarded when the returned receiver is dropped.
    pub fn fire(&self) -> Result<Receiver<Snapshot>, RequestError> {
        let (reply_tx, reply_rx) = channel::bounded(1);
        self.tx.send(Job { reply: reply_tx }).map_err(|_| RequestError::Closed)?;
        Ok(reply_rx)
    }
}

/// The serving side of a gateway, owned by the site wrapper.
pub struct RequestGateway {
    client: RequestClient,
    stop: Arc<std::sync::atomic::AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl RequestGateway {
    /// Spawn a gateway thread serving snapshots via `snapshot_fn`, pushing
    /// queue occupancy into `pending_gauge` (the site's monitored
    /// variable) and counting completions into `served`.
    ///
    /// `service_pad` models the per-request work beyond the in-memory
    /// snapshot clone — marshalling and pushing the initial view over a
    /// client link — which is what makes request storms *load* (zero for
    /// pure functional tests).
    pub(crate) fn spawn(
        snapshot_fn: impl Fn() -> Snapshot + Send + 'static,
        pending_gauge: Arc<AtomicU64>,
        served: Arc<AtomicU64>,
        service_pad: Duration,
    ) -> Self {
        let (tx, rx) = channel::unbounded::<Job>();
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let stop_in_thread = Arc::clone(&stop);
        let thread = std::thread::Builder::new()
            .name("request-gateway".into())
            .spawn(move || {
                loop {
                    // Check the stop flag every iteration, not only on
                    // timeouts — a steady stream of requests must not be
                    // able to starve shutdown.
                    if stop_in_thread.load(Ordering::SeqCst) {
                        break;
                    }
                    let job = match rx.recv_timeout(Duration::from_millis(20)) {
                        Ok(j) => j,
                        Err(channel::RecvTimeoutError::Timeout) => continue,
                        Err(channel::RecvTimeoutError::Disconnected) => break,
                    };
                    // Occupancy right now: this job plus everything queued.
                    pending_gauge.store(rx.len() as u64 + 1, Ordering::Relaxed);
                    let snap = snapshot_fn();
                    if !service_pad.is_zero() {
                        std::thread::sleep(service_pad);
                    }
                    // Count before replying: a caller woken by the reply
                    // must already observe its own completion in `served`.
                    served.fetch_add(1, Ordering::Relaxed);
                    let _ = job.reply.send(snap);
                    pending_gauge.store(rx.len() as u64, Ordering::Relaxed);
                }
                pending_gauge.store(0, Ordering::Relaxed);
            })
            .expect("spawn request gateway");
        RequestGateway { client: RequestClient { tx }, stop, thread: Some(thread) }
    }

    /// A client handle for this gateway (cheap to clone).
    pub fn client(&self) -> RequestClient {
        self.client.clone()
    }

    /// Stop the gateway: the queue drains no further; pending `fetch`
    /// calls see [`RequestError::Timeout`], new ones
    /// [`RequestError::Closed`] once every client handle is gone.
    pub fn stop(mut self) {
        self.stop.store(true, std::sync::atomic::Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mirror_core::timestamp::VectorTimestamp;
    use mirror_ede::OperationalState;

    fn gateway(pad: Duration) -> (RequestGateway, Arc<AtomicU64>, Arc<AtomicU64>) {
        let pending = Arc::new(AtomicU64::new(0));
        let served = Arc::new(AtomicU64::new(0));
        let gw = RequestGateway::spawn(
            || Snapshot::capture(&OperationalState::new(), VectorTimestamp::empty()),
            Arc::clone(&pending),
            Arc::clone(&served),
            pad,
        );
        (gw, pending, served)
    }

    #[test]
    fn serves_requests_and_counts() {
        let (gw, _pending, served) = gateway(Duration::ZERO);
        let client = gw.client();
        for _ in 0..20 {
            let snap = client.fetch(Duration::from_secs(5)).unwrap();
            assert_eq!(snap.flight_count(), 0);
        }
        assert_eq!(served.load(Ordering::Relaxed), 20);
        drop(client);
        gw.stop();
    }

    #[test]
    fn backlog_raises_the_pending_gauge() {
        let pending = Arc::new(AtomicU64::new(0));
        let served = Arc::new(AtomicU64::new(0));
        // Gate each serve on a permit: the backlog is held open for as
        // long as the test needs to observe it, whatever the scheduler
        // does to this thread meanwhile.
        let (permit_tx, permit_rx) = channel::unbounded::<()>();
        let gw = RequestGateway::spawn(
            move || {
                let _ = permit_rx.recv_timeout(Duration::from_secs(10));
                Snapshot::capture(&OperationalState::new(), VectorTimestamp::empty())
            },
            Arc::clone(&pending),
            Arc::clone(&served),
            Duration::ZERO,
        );
        let client = gw.client();
        let mut receivers = Vec::new();
        for _ in 0..30 {
            receivers.push(client.fire().unwrap());
        }
        // Let one request through: completing it makes the gateway
        // dequeue the next job, which publishes the still-held backlog.
        permit_tx.send(()).unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        let mut peak = 0;
        while std::time::Instant::now() < deadline {
            peak = peak.max(pending.load(Ordering::Relaxed));
            if peak >= 10 {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(peak >= 10, "queue must be observable, peak {peak}");
        for _ in 0..29 {
            permit_tx.send(()).unwrap();
        }
        for r in receivers {
            assert!(r.recv_timeout(Duration::from_secs(5)).is_ok());
        }
        assert_eq!(served.load(Ordering::Relaxed), 30);
        // The final gauge store trails the last reply; under a loaded
        // machine the gateway thread can be starved for a while first.
        let drained = std::time::Instant::now() + Duration::from_secs(10);
        while pending.load(Ordering::Relaxed) != 0 && std::time::Instant::now() < drained {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(pending.load(Ordering::Relaxed), 0);
        drop(client);
        gw.stop();
    }

    #[test]
    fn closed_gateway_reports_errors() {
        let (gw, _, _) = gateway(Duration::ZERO);
        let client = gw.client();
        gw.stop();
        assert!(matches!(
            client.fetch(Duration::from_millis(100)),
            Err(RequestError::Closed) | Err(RequestError::Timeout)
        ));
    }
}
