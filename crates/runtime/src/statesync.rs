//! Unified delta state transfer: one provider for every seed/resync path.
//!
//! Before this module, each state-transfer path in the runtime captured and
//! encoded state its own way — the central's seed cache for mirror spawns,
//! `Cluster::resync_mirror`'s gap reseed, `recover_site`'s cold start, the
//! partition migration's merge seed and the edge tier's client reseeds all
//! carried near-identical "read frontier, freeze, maybe encode" code.
//! [`StateSync`] is the single provider they now route through:
//!
//! * **full snapshots** go out as [`ServedSnapshot`]s — `Arc`-shared state
//!   plus a once-per-capture wire encoding — through a single-flight
//!   bounded-staleness [`SnapshotCache`] (moved here from the former
//!   `snapcache` module, API unchanged);
//! * **delta snapshots** ([`mirror_ede::StateDelta`]) go out as
//!   [`ServedDelta`]s with the same encode-once discipline, cached per base
//!   frontier so a burst of consumers sharing a base pays one capture;
//! * **seeds** (mirror spawns) additionally read the central's truncation
//!   floor *before* the capture — the floor-before-capture ordering that
//!   makes the post-seed floor replay gap-free;
//! * [`StateSync::transfer_since`] is the routing decision every catch-up path
//!   shares:
//!   a delta when the producer still remembers the consumer's base frontier
//!   (within [`mirror_ede::DELTA_BASE_WINDOW`] captures), a full snapshot
//!   otherwise.
//!
//! Capture ordering invariant (same as the request gateway's): the
//! producer's capture closures read the checkpoint frontier **before**
//! freezing state, so a served frontier only ever *trails* the state it
//! ships with — replaying events at or before the frontier is idempotent,
//! and nothing after it can be missing. See DESIGN.md §19.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use bytes::Bytes;
use parking_lot::Mutex;

use mirror_core::timestamp::VectorTimestamp;
use mirror_ede::{Snapshot, StateDelta};

/// Staleness bounds for cached captures: how far (in applied events and in
/// wall time) a served state may trail the live store.
///
/// The defaults mirror the paper's client-initialization tolerance: a
/// display coming back online does not care about the last millisecond of
/// position fixes, it cares about getting *a* consistent base quickly; the
/// stream replayed on top closes the gap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotCachePolicy {
    /// Maximum number of events the live store may have applied past the
    /// cached capture's epoch before the entry goes stale.
    pub max_stale_events: u64,
    /// Maximum wall-clock age of a cached capture.
    pub max_stale: Duration,
}

impl SnapshotCachePolicy {
    /// A policy that never serves a cached entry (every request captures).
    pub fn fresh() -> Self {
        SnapshotCachePolicy { max_stale_events: 0, max_stale: Duration::ZERO }
    }
}

impl Default for SnapshotCachePolicy {
    fn default() -> Self {
        SnapshotCachePolicy { max_stale_events: 64, max_stale: Duration::from_millis(2) }
    }
}

/// A snapshot prepared for serving: the state shared via `Arc` (many
/// concurrent requests clone the handle, not the flights) plus a lazily
/// computed, shared wire encoding — the snapshot is encoded at most once no
/// matter how many transports ship it.
#[derive(Clone)]
pub struct ServedSnapshot {
    snap: Arc<Snapshot>,
    wire: Arc<OnceLock<Bytes>>,
}

impl ServedSnapshot {
    /// Wrap a freshly captured snapshot.
    pub fn new(snap: Snapshot) -> Self {
        ServedSnapshot { snap: Arc::new(snap), wire: Arc::new(OnceLock::new()) }
    }

    /// The shared snapshot.
    pub fn snapshot(&self) -> &Arc<Snapshot> {
        &self.snap
    }

    /// The wire encoding, computed on first use and shared by every clone
    /// of this handle ([`bytes::Bytes`] clones are reference bumps).
    pub fn wire(&self) -> Bytes {
        self.wire.get_or_init(|| mirror_echo::wire::encode_snapshot(&self.snap)).clone()
    }

    /// Take the snapshot by value, avoiding a clone when this handle is the
    /// only one outstanding (the common case for seed installs).
    pub fn into_snapshot(self) -> Snapshot {
        drop(self.wire);
        Arc::try_unwrap(self.snap).unwrap_or_else(|arc| (*arc).clone())
    }
}

impl std::ops::Deref for ServedSnapshot {
    type Target = Snapshot;
    fn deref(&self) -> &Snapshot {
        &self.snap
    }
}

impl std::fmt::Debug for ServedSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServedSnapshot")
            .field("flights", &self.snap.flight_count())
            .field("as_of", &self.snap.as_of)
            .field("encoded", &self.wire.get().is_some())
            .finish()
    }
}

/// A delta snapshot prepared for serving: `Arc`-shared changes plus the
/// same encode-once wire discipline as [`ServedSnapshot`].
#[derive(Clone)]
pub struct ServedDelta {
    delta: Arc<StateDelta>,
    wire: Arc<OnceLock<Bytes>>,
}

impl ServedDelta {
    /// Wrap a freshly captured delta.
    pub fn new(delta: StateDelta) -> Self {
        ServedDelta { delta: Arc::new(delta), wire: Arc::new(OnceLock::new()) }
    }

    /// The shared delta.
    pub fn delta(&self) -> &Arc<StateDelta> {
        &self.delta
    }

    /// The wire encoding, computed once and shared across clones.
    pub fn wire(&self) -> Bytes {
        self.wire.get_or_init(|| mirror_echo::wire::encode_delta(&self.delta)).clone()
    }

    /// Take the delta by value, avoiding a clone when unique.
    pub fn into_delta(self) -> StateDelta {
        drop(self.wire);
        Arc::try_unwrap(self.delta).unwrap_or_else(|arc| (*arc).clone())
    }
}

impl std::ops::Deref for ServedDelta {
    type Target = StateDelta;
    fn deref(&self) -> &StateDelta {
        &self.delta
    }
}

impl std::fmt::Debug for ServedDelta {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServedDelta")
            .field("changed", &self.delta.changed_count())
            .field("removed", &self.delta.removed().len())
            .field("base", &self.delta.base)
            .field("as_of", &self.delta.as_of)
            .field("encoded", &self.wire.get().is_some())
            .finish()
    }
}

/// One state transfer, as routed by [`StateSync::transfer_since`]: the
/// cheap delta when the consumer's base frontier is still remembered, the
/// full snapshot otherwise.
#[derive(Debug, Clone)]
pub enum Transfer {
    /// A full snapshot: replaces the consumer's state outright.
    Full(ServedSnapshot),
    /// A delta: folds into state the consumer already holds at the delta's
    /// base frontier.
    Delta(ServedDelta),
}

impl Transfer {
    /// The frontier this transfer brings its consumer to (the consumer's
    /// next delta base).
    pub fn as_of(&self) -> &VectorTimestamp {
        match self {
            Transfer::Full(s) => &s.as_of,
            Transfer::Delta(d) => &d.as_of,
        }
    }

    /// Bytes this transfer occupies on a link.
    pub fn wire_size(&self) -> usize {
        match self {
            Transfer::Full(s) => s.wire_size(),
            Transfer::Delta(d) => d.wire_size(),
        }
    }
}

struct SnapEntry {
    /// Live-store epoch (applied-event count) at capture time.
    epoch: u64,
    taken: Instant,
    served: ServedSnapshot,
}

/// Single-flight, bounded-staleness snapshot cache.
///
/// `get` returns a cached capture while it is fresh under the policy;
/// otherwise it captures under the held slot lock, so concurrent misses
/// coalesce into one capture (single flight) and every waiter shares the
/// same [`ServedSnapshot`] — and therefore the same wire encoding.
pub struct SnapshotCache {
    policy: SnapshotCachePolicy,
    slot: Mutex<Option<SnapEntry>>,
}

impl SnapshotCache {
    /// An empty cache with the given staleness policy.
    pub fn new(policy: SnapshotCachePolicy) -> Self {
        SnapshotCache { policy, slot: Mutex::new(None) }
    }

    /// The configured staleness policy.
    pub fn policy(&self) -> SnapshotCachePolicy {
        self.policy
    }

    /// Serve a snapshot no staler than the policy allows. `live_epoch` is
    /// the store's current applied-event count; `capture` produces a fresh
    /// `(snapshot, epoch)` pair and runs only on a miss. Returns the served
    /// snapshot and whether it was a cache hit.
    pub fn get(
        &self,
        live_epoch: u64,
        capture: impl FnOnce() -> (Snapshot, u64),
    ) -> (ServedSnapshot, bool) {
        let mut slot = self.slot.lock();
        if let Some(e) = slot.as_ref() {
            // An epoch regression (live < cached) means the store was
            // re-seeded under us: never serve across an install.
            let fresh = live_epoch >= e.epoch
                && live_epoch - e.epoch <= self.policy.max_stale_events
                && e.taken.elapsed() <= self.policy.max_stale;
            if fresh {
                return (e.served.clone(), true);
            }
        }
        let (snap, epoch) = capture();
        let served = ServedSnapshot::new(snap);
        *slot = Some(SnapEntry { epoch, taken: Instant::now(), served: served.clone() });
        (served, false)
    }
}

impl std::fmt::Debug for SnapshotCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapshotCache").field("policy", &self.policy).finish()
    }
}

struct DeltaEntry {
    base: VectorTimestamp,
    epoch: u64,
    taken: Instant,
    served: ServedDelta,
}

type CaptureFn = dyn Fn() -> (Snapshot, u64) + Send + Sync;
type DeltaCaptureFn = dyn Fn(&VectorTimestamp) -> Option<(StateDelta, u64)> + Send + Sync;
type FloorFn = dyn Fn() -> u64 + Send + Sync;

/// The unified state-transfer provider for one site.
///
/// Wraps the site's capture closures (frontier-before-freeze full capture,
/// delta capture against a remembered base, truncation-floor read) behind
/// the caching and ordering disciplines every transfer path needs. One
/// `StateSync` per site, shared by every consumer: mirror seeds, gap
/// resyncs, cold-start top-ups, partition merge seeds, edge reseeds and WAN
/// catch-ups.
pub struct StateSync {
    capture: Box<CaptureFn>,
    capture_delta: Box<DeltaCaptureFn>,
    floor: Box<FloorFn>,
    /// The live store's applied-event count (staleness yardstick).
    live_epoch: Arc<AtomicU64>,
    cache: SnapshotCache,
    delta_slot: Mutex<Option<DeltaEntry>>,
    /// Truncation floor read immediately before the cached seed capture —
    /// paired with it so floor replay after a seed install is gap-free.
    seed_floor: Mutex<u64>,
    /// Serializes seed requests so the floor/capture pairing can't
    /// interleave between two concurrent spawns.
    seed_gate: Mutex<()>,
}

impl StateSync {
    /// Build a provider over a site's capture closures.
    ///
    /// * `capture` must read the site's checkpoint frontier **before**
    ///   freezing state and return the frozen snapshot plus the store's
    ///   applied-event epoch at capture;
    /// * `capture_delta` must follow the same frontier-before-freeze order
    ///   and return `None` when the base is no longer remembered;
    /// * `floor` reads the site's durable truncation floor (seed replay
    ///   start); sites without a floor return 0.
    pub fn new(
        policy: SnapshotCachePolicy,
        live_epoch: Arc<AtomicU64>,
        capture: impl Fn() -> (Snapshot, u64) + Send + Sync + 'static,
        capture_delta: impl Fn(&VectorTimestamp) -> Option<(StateDelta, u64)> + Send + Sync + 'static,
        floor: impl Fn() -> u64 + Send + Sync + 'static,
    ) -> Self {
        StateSync {
            capture: Box::new(capture),
            capture_delta: Box::new(capture_delta),
            floor: Box::new(floor),
            live_epoch,
            cache: SnapshotCache::new(policy),
            delta_slot: Mutex::new(None),
            seed_floor: Mutex::new(0),
            seed_gate: Mutex::new(()),
        }
    }

    /// Serve a full snapshot through the bounded-staleness cache. Returns
    /// the served snapshot and whether it was a cache hit.
    pub fn full(&self) -> (ServedSnapshot, bool) {
        let live = self.live_epoch.load(Ordering::Acquire);
        self.cache.get(live, || (self.capture)())
    }

    /// Capture a fresh snapshot right now, bypassing the cache — for
    /// consumers whose correctness depends on the capture happening at or
    /// after the call (the edge's floor-before-capture reseed, promotion
    /// handoffs). The fresh capture also replaces the cache entry, so
    /// subsequent `full` calls benefit.
    pub fn capture_now(&self) -> ServedSnapshot {
        // Hold the cache slot across the capture: concurrent misses still
        // single-flight, and the fresh entry replaces whatever was cached.
        let mut slot = self.cache.slot.lock();
        let (snap, epoch) = (self.capture)();
        let served = ServedSnapshot::new(snap);
        *slot = Some(SnapEntry { epoch, taken: Instant::now(), served: served.clone() });
        served
    }

    /// Serve a seed for a spawning mirror: the snapshot (cached, bounded
    /// staleness) plus the truncation floor read **before** its capture.
    /// Replaying mirror traffic from the floor on top of the seed is
    /// gap-free: everything below the floor is in the seed, everything at
    /// or above it is replayable.
    pub fn seed(&self) -> (ServedSnapshot, u64) {
        let _gate = self.seed_gate.lock();
        let live = self.live_epoch.load(Ordering::Acquire);
        let (served, _hit) = self.cache.get(live, || {
            *self.seed_floor.lock() = (self.floor)();
            (self.capture)()
        });
        let floor = *self.seed_floor.lock();
        (served, floor)
    }

    /// Serve a delta against `base`, through a bounded-staleness slot keyed
    /// by base frontier (a burst of consumers sharing a base pays one
    /// capture and one encoding). `None` when the producer no longer
    /// remembers `base` — fall back to [`full`](Self::full). Returns the
    /// served delta and whether it was a cache hit.
    pub fn delta_since(&self, base: &VectorTimestamp) -> Option<(ServedDelta, bool)> {
        let live = self.live_epoch.load(Ordering::Acquire);
        let mut slot = self.delta_slot.lock();
        if let Some(e) = slot.as_ref() {
            let policy = self.cache.policy();
            let fresh = e.base == *base
                && live >= e.epoch
                && live - e.epoch <= policy.max_stale_events
                && e.taken.elapsed() <= policy.max_stale;
            if fresh {
                return Some((e.served.clone(), true));
            }
        }
        let (delta, epoch) = (self.capture_delta)(base)?;
        let served = ServedDelta::new(delta);
        *slot = Some(DeltaEntry {
            base: base.clone(),
            epoch,
            taken: Instant::now(),
            served: served.clone(),
        });
        Some((served, false))
    }

    /// Capture a fresh delta right now, bypassing the staleness check (the
    /// edge's floor-before-capture path). The fresh capture replaces the
    /// delta slot.
    pub fn delta_now(&self, base: &VectorTimestamp) -> Option<ServedDelta> {
        let (delta, epoch) = (self.capture_delta)(base)?;
        let served = ServedDelta::new(delta);
        *self.delta_slot.lock() = Some(DeltaEntry {
            base: base.clone(),
            epoch,
            taken: Instant::now(),
            served: served.clone(),
        });
        Some(served)
    }

    /// The shared routing decision: a delta when the consumer supplied a
    /// base frontier the producer still remembers, a full snapshot
    /// otherwise.
    pub fn transfer_since(&self, base: Option<&VectorTimestamp>) -> Transfer {
        if let Some(b) = base {
            if let Some((d, _)) = self.delta_since(b) {
                return Transfer::Delta(d);
            }
        }
        Transfer::Full(self.full().0)
    }
}

impl std::fmt::Debug for StateSync {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StateSync").field("policy", &self.cache.policy()).finish()
    }
}

/// Edge-tier adapter: serves the edge's reseed captures — full and delta —
/// from a site's [`StateSync`].
///
/// Both methods capture **fresh** (bypassing the staleness caches): the
/// edge reads its publication floor immediately before calling, and only a
/// capture taken at or after that read makes the floor/state pairing
/// gap-free. The edge's own reseed-entry cache amortizes request bursts.
pub struct SyncStateProvider(pub Arc<StateSync>);

impl mirror_edge::StateProvider for SyncStateProvider {
    fn full(&self) -> (Bytes, VectorTimestamp) {
        let served = self.0.capture_now();
        let as_of = served.as_of.clone();
        (served.wire(), as_of)
    }

    fn delta(&self, base: &VectorTimestamp) -> Option<Bytes> {
        self.0.delta_now(base).map(|d| d.wire())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mirror_core::event::{Event, PositionFix};
    use mirror_ede::OperationalState;

    fn fix(alt: f64) -> PositionFix {
        PositionFix { lat: 1.0, lon: 2.0, alt_ft: alt, speed_kts: 400.0, heading_deg: 90.0 }
    }

    fn state(n: u32) -> OperationalState {
        let mut s = OperationalState::new();
        for f in 0..n {
            s.apply(&Event::faa_position(1, f, fix(30000.0)));
        }
        s
    }

    fn capture_from(s: &OperationalState) -> (Snapshot, u64) {
        (Snapshot::capture(s, VectorTimestamp::empty()), s.epoch())
    }

    #[test]
    fn same_epoch_hits_without_recapture() {
        let s = state(5);
        let cache = SnapshotCache::new(SnapshotCachePolicy {
            max_stale_events: 0,
            max_stale: Duration::from_secs(3600),
        });
        let mut captures = 0;
        for i in 0..10 {
            let (served, hit) = cache.get(s.epoch(), || {
                captures += 1;
                capture_from(&s)
            });
            assert_eq!(served.flight_count(), 5);
            assert_eq!(hit, i > 0);
        }
        assert_eq!(captures, 1);
    }

    #[test]
    fn bounded_staleness_window() {
        let mut s = state(5);
        let cache = SnapshotCache::new(SnapshotCachePolicy {
            max_stale_events: 3,
            max_stale: Duration::from_secs(3600),
        });
        let (_, hit) = cache.get(s.epoch(), || capture_from(&s));
        assert!(!hit);
        // Within the event bound: still a hit, even though state moved.
        for f in 100..103 {
            s.apply(&Event::faa_position(1, f, fix(30000.0)));
        }
        let (served, hit) = cache.get(s.epoch(), || capture_from(&s));
        assert!(hit, "3 events behind is within the bound");
        assert_eq!(served.flight_count(), 5, "cached capture served");
        // One more change crosses the bound: recapture.
        s.apply(&Event::faa_position(1, 103, fix(30000.0)));
        let (served, hit) = cache.get(s.epoch(), || capture_from(&s));
        assert!(!hit, "4 events behind exceeds the bound");
        assert_eq!(served.flight_count(), 9);
    }

    #[test]
    fn age_bound_expires_entries() {
        let s = state(2);
        let cache = SnapshotCache::new(SnapshotCachePolicy {
            max_stale_events: u64::MAX,
            max_stale: Duration::from_millis(20),
        });
        let (_, hit) = cache.get(s.epoch(), || capture_from(&s));
        assert!(!hit);
        let (_, hit) = cache.get(s.epoch(), || capture_from(&s));
        assert!(hit);
        std::thread::sleep(Duration::from_millis(30));
        let (_, hit) = cache.get(s.epoch(), || capture_from(&s));
        assert!(!hit, "aged-out entry must recapture");
    }

    #[test]
    fn epoch_regression_is_a_miss() {
        let s = state(2);
        let cache = SnapshotCache::new(SnapshotCachePolicy {
            max_stale_events: u64::MAX,
            max_stale: Duration::from_secs(3600),
        });
        let (_, hit) = cache.get(100, || (Snapshot::capture(&s, VectorTimestamp::empty()), 100));
        assert!(!hit);
        // Live epoch below the cached epoch (reinstalled state): miss.
        let (_, hit) = cache.get(7, || (Snapshot::capture(&s, VectorTimestamp::empty()), 7));
        assert!(!hit, "epoch regression must not serve the stale cache");
    }

    #[test]
    fn wire_encodes_once_and_is_shared() {
        let s = state(4);
        let served = ServedSnapshot::new(Snapshot::capture(&s, VectorTimestamp::empty()));
        let clone = served.clone();
        let w1 = served.wire();
        let w2 = clone.wire();
        // Same buffer, not merely equal bytes: the encode-once contract.
        assert_eq!(w1.as_ptr(), w2.as_ptr());
        let decoded = mirror_echo::wire::decode_snapshot(w1).expect("decode");
        assert_eq!(decoded.restore().state_hash(), s.state_hash());
    }

    #[test]
    fn into_snapshot_avoids_clone_when_unique() {
        let s = state(3);
        let served = ServedSnapshot::new(Snapshot::capture(&s, VectorTimestamp::empty()));
        let snap = served.into_snapshot();
        assert_eq!(snap.flight_count(), 3);
        assert_eq!(snap.into_state().state_hash(), s.state_hash());
    }

    // --- StateSync provider -------------------------------------------

    /// A provider over a mutable shared state, mimicking a site: captures
    /// mark frontiers so deltas are servable.
    fn sync_over(state: Arc<Mutex<OperationalState>>, live: Arc<AtomicU64>) -> StateSync {
        let s1 = Arc::clone(&state);
        let s2 = Arc::clone(&state);
        StateSync::new(
            SnapshotCachePolicy { max_stale_events: 0, max_stale: Duration::ZERO },
            live,
            move || {
                let mut st = s1.lock();
                let mut vt = VectorTimestamp::empty();
                vt.advance(0, st.epoch());
                st.mark_frontier(&vt);
                (Snapshot::capture(&st, vt), st.epoch())
            },
            move |base| {
                let mut st = s2.lock();
                let mut vt = VectorTimestamp::empty();
                vt.advance(0, st.epoch());
                st.mark_frontier(&vt);
                let epoch = st.epoch();
                st.capture_delta(base, vt).map(|d| (d, epoch))
            },
            || 7,
        )
    }

    #[test]
    fn seed_pairs_floor_with_capture() {
        let state = Arc::new(Mutex::new(OperationalState::new()));
        state.lock().apply(&Event::faa_position(1, 42, fix(100.0)));
        let live = Arc::new(AtomicU64::new(0));
        let sync = sync_over(state, live);
        let (served, floor) = sync.seed();
        assert_eq!(floor, 7);
        assert_eq!(served.flight_count(), 1);
    }

    #[test]
    fn transfer_routes_delta_when_base_remembered() {
        let state = Arc::new(Mutex::new(OperationalState::new()));
        for f in 0..20u32 {
            state.lock().apply(&Event::faa_position(1, f, fix(1000.0)));
        }
        let live = Arc::new(AtomicU64::new(0));
        let sync = sync_over(Arc::clone(&state), live);

        // Establish a base via a full capture.
        let (base_snap, _) = sync.full();
        let base = base_snap.as_of.clone();

        // Diverge a little, then ask for a transfer against the base.
        state.lock().apply(&Event::faa_position(2, 3, fix(2000.0)));
        match sync.transfer_since(Some(&base)) {
            Transfer::Delta(d) => {
                assert_eq!(d.changed_count(), 1, "only the diverged flight travels");
                assert!(d.wire_size() < base_snap.wire_size());
            }
            Transfer::Full(_) => panic!("base was remembered; expected a delta"),
        }

        // An unknown base falls back to a full snapshot.
        let mut alien = VectorTimestamp::empty();
        alien.advance(3, 999);
        assert!(matches!(sync.transfer_since(Some(&alien)), Transfer::Full(_)));
        // No base at all: full.
        assert!(matches!(sync.transfer_since(None), Transfer::Full(_)));
    }

    #[test]
    fn delta_slot_coalesces_same_base_bursts() {
        let state = Arc::new(Mutex::new(OperationalState::new()));
        for f in 0..10u32 {
            state.lock().apply(&Event::faa_position(1, f, fix(1000.0)));
        }
        let live = Arc::new(AtomicU64::new(0));
        let live_gauge = Arc::clone(&live);
        let s1 = Arc::clone(&state);
        let s2 = Arc::clone(&state);
        let captures = Arc::new(AtomicU64::new(0));
        let c = Arc::clone(&captures);
        let sync = StateSync::new(
            SnapshotCachePolicy { max_stale_events: 1000, max_stale: Duration::from_secs(60) },
            live,
            move || {
                let mut st = s1.lock();
                let mut vt = VectorTimestamp::empty();
                vt.advance(0, st.epoch());
                st.mark_frontier(&vt);
                (Snapshot::capture(&st, vt), st.epoch())
            },
            move |base| {
                c.fetch_add(1, Ordering::Relaxed);
                let mut st = s2.lock();
                let mut vt = VectorTimestamp::empty();
                vt.advance(0, st.epoch());
                st.mark_frontier(&vt);
                let epoch = st.epoch();
                st.capture_delta(base, vt).map(|d| (d, epoch))
            },
            || 0,
        );
        let (base_snap, _) = sync.full();
        let base = base_snap.as_of.clone();
        state.lock().apply(&Event::faa_position(2, 1, fix(2000.0)));
        // The live gauge tracks the store (a site's apply loop does this).
        live_gauge.store(state.lock().epoch(), Ordering::Release);

        let (a, hit_a) = sync.delta_since(&base).unwrap();
        let (b, hit_b) = sync.delta_since(&base).unwrap();
        assert!(!hit_a);
        assert!(hit_b, "second consumer with the same base hits the slot");
        assert_eq!(captures.load(Ordering::Relaxed), 1);
        assert!(Arc::ptr_eq(a.delta(), b.delta()));
        // Encode-once across both consumers.
        assert_eq!(a.wire().as_ptr(), b.wire().as_ptr());
    }

    #[test]
    fn delta_wire_roundtrips() {
        let state = Arc::new(Mutex::new(OperationalState::new()));
        for f in 0..6u32 {
            state.lock().apply(&Event::faa_position(1, f, fix(1000.0)));
        }
        let live = Arc::new(AtomicU64::new(0));
        let sync = sync_over(Arc::clone(&state), live);
        let (base_snap, _) = sync.full();
        let base = base_snap.as_of.clone();
        state.lock().apply(&Event::faa_position(2, 5, fix(3000.0)));
        let served = sync.delta_now(&base).expect("base remembered");
        let decoded = mirror_echo::wire::decode_delta(served.wire()).unwrap();
        assert_eq!(&decoded, &**served.delta());
    }
}
