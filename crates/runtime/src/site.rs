//! Threaded site runtimes.
//!
//! Each site runs two long-lived threads mirroring the paper's unit split:
//!
//! * the **aux thread** executes the auxiliary unit (receiving, sending and
//!   control tasks — the [`mirror_core::AuxUnit`] step machine behind the
//!   Table-1 [`MirrorHandle`]), translating its actions into channel
//!   publishes;
//! * the **main thread** executes the Event Derivation Engine and the main
//!   unit's checkpoint responder, feeding replies back to the aux thread.
//!
//! Channel-subscription forwarder threads pump `mirror-echo` subscriptions
//! into a site's inbox, so no thread ever blocks on more than one source.
//!
//! The main thread is a **dispatcher** over a sharded apply path (see
//! DESIGN.md §16): the aux thread feeds it over a bounded lock-free MPSC
//! ring, and it routes data events by flight-id shard to the
//! [`ApplyPool`]'s workers, which apply into
//! a per-shard-locked [`ShardedEde`]. Control traffic (checkpoint rounds,
//! seed installs) is handled inline by the dispatcher so it serializes
//! with dispatch order.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{self, Sender};
use parking_lot::Mutex;

use mirror_core::adapt::{MonitorReport, ScaleDecision};
use mirror_core::api::MirrorHandle;
use mirror_core::aux_unit::{AuxAction, AuxInput, SiteId};
use mirror_core::checkpoint::MainUnitResponder;
use mirror_core::event::Event;
use mirror_core::ring::{self, MpscSender, RingRecv};
use mirror_core::timestamp::VectorTimestamp;
use mirror_core::ControlMsg;
use mirror_echo::channel::{EventChannel, Publisher, Subscriber};
use mirror_echo::resilient::{LinkEvent, LinkHealth, LinkMonitor};
use mirror_echo::wire::SharedEvent;
use mirror_ede::{OperationalState, ShardedEde, Snapshot, StateDelta};

use crate::applypool::{idle_backoff, ApplyPool, ApplyPoolConfig, ApplySink};
use crate::clock::RuntimeClock;
use crate::durability::Journal;
use crate::statesync::{ServedSnapshot, SnapshotCachePolicy, StateSync};

/// How often an idle aux thread flushes coalescing buffers.
const FLUSH_PERIOD: Duration = Duration::from_millis(20);

/// Shards in a site's operational store. More shards than the worker-pool
/// maximum (4) so per-shard lock contention stays low even when captures
/// interleave with applies; the shard map is invisible to the replicated
/// digest, so the count is a pure tuning knob.
const APPLY_SHARDS: usize = 8;

/// Default capacity of the aux→dispatcher MPSC ring (events in flight
/// between the receiving task and the apply path before backpressure).
/// Sized like the worker rings so the pipeline stages exchange the CPU in
/// large quanta on oversubscribed hosts. Overridable per cluster via
/// [`ClusterConfig::inbox_capacity`](crate::cluster::ClusterConfig); the
/// direct site constructors use this default.
pub const DEFAULT_MAIN_RING_CAPACITY: usize = 8192;

/// A message in a site's aux inbox.
#[derive(Debug)]
pub(crate) enum SiteMsg {
    /// A data event (source ingest at the central site, mirrored event at a
    /// mirror site). Shared: the zero-copy fan-out hands the same
    /// allocation to the aux unit, the backup queue, and every outgoing
    /// channel.
    Data(Arc<Event>),
    /// A control-channel message.
    Ctrl(ControlMsg),
    /// Stop the site.
    Stop,
}

/// A message for a site's main (EDE) thread.
enum MainMsg {
    Event(Arc<Event>),
    Ctrl(ControlMsg),
    /// Install recovered state (mirror rejoin): the operational state plus
    /// the frontier it reflects. Events buffered while awaiting the seed
    /// are replayed on top (stale ones are absorbed idempotently). The
    /// flag acks the install so [`seed`] can block until the state and
    /// frontier are visible — callers (promotion, rejoin) snapshot the
    /// site right after seeding and must not observe the pre-seed void.
    Seed(Box<mirror_ede::OperationalState>, VectorTimestamp, Arc<AtomicBool>),
    /// Merge migrated partition state **into** the store (slot migration
    /// seeding): unlike `Seed`, flights the store already owns survive.
    /// Runs under an apply-pool quiesce, serialized with dispatch order,
    /// so on a target mirror's channel every event published *after* the
    /// source group's drain barrier applies on top of the merged flights.
    /// The flag acks completion (the migrator replays the slot's buffered
    /// events immediately after).
    Merge(Box<mirror_ede::OperationalState>, Arc<AtomicBool>),
    /// Drop every flight the predicate rejects (the migration source's
    /// purge after a slot moves away). The cell acks with the number of
    /// flights removed (`u64::MAX` = still pending).
    Retain(Arc<dyn Fn(mirror_core::FlightId) -> bool + Send + Sync>, Arc<AtomicU64>),
    /// Fold a delta snapshot into the store (gap resync / WAN catch-up):
    /// changed flights overwrite, removed flights drop, under an
    /// apply-pool quiesce so the fold serializes with dispatch order, and
    /// the processed frontier advances to the delta's `as_of`. The flag
    /// acks completion.
    Delta(Box<StateDelta>, Arc<AtomicBool>),
    Stop,
}

impl std::fmt::Debug for MainMsg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MainMsg::Event(e) => f.debug_tuple("Event").field(e).finish(),
            MainMsg::Ctrl(m) => f.debug_tuple("Ctrl").field(m).finish(),
            MainMsg::Seed(..) => f.write_str("Seed(..)"),
            MainMsg::Merge(..) => f.write_str("Merge(..)"),
            MainMsg::Retain(..) => f.write_str("Retain(..)"),
            MainMsg::Delta(..) => f.write_str("Delta(..)"),
            MainMsg::Stop => f.write_str("Stop"),
        }
    }
}

/// Shared atomic counters for a running site.
#[derive(Debug, Default)]
pub struct SiteCounters {
    /// Events the EDE processed.
    pub processed: AtomicU64,
    /// Events mirrored onto outgoing channels.
    pub mirrored: AtomicU64,
    /// Update-delay sum (µs) across emitted client updates (central).
    pub delay_sum_us: AtomicU64,
    /// Update count backing the delay mean.
    pub delay_count: AtomicU64,
    /// Adaptation directives applied.
    pub adaptations: AtomicU64,
    /// Snapshots served (direct synchronous `snapshot` calls).
    pub snapshots: AtomicU64,
    /// Initial-state requests answered through a gateway worker pool.
    pub requests_served: AtomicU64,
    /// Gateway request latency sum (µs, submit → reply) backing the mean.
    pub request_latency_sum_us: AtomicU64,
    /// Gateway requests answered from the epoch cache.
    pub snapshot_cache_hits: AtomicU64,
    /// Gateway requests that captured fresh state (cache stale or absent).
    pub snapshot_cache_misses: AtomicU64,
    /// Apply-worker bookkeeping batches flushed (processed ÷ batches =
    /// achieved batching ratio on the sharded apply path).
    pub apply_batches: AtomicU64,
    /// Gateway requests refused because the requested flight belongs to a
    /// different partition group (`RequestError::WrongPartition`) — the
    /// misroute signal the ois balancer re-routes on.
    pub wrong_partition: AtomicU64,
    /// Shared-clock timestamp (µs) of the most recent apply-worker
    /// bookkeeping flush — the raw signal behind the per-mirror staleness
    /// gauge (central's stamp minus a mirror's stamp bounds how long the
    /// mirror's applied frontier has trailed). 0 until the first flush.
    pub last_apply_us: AtomicU64,
}

impl SiteCounters {
    /// Mean update delay (µs) so far.
    pub fn mean_delay_us(&self) -> f64 {
        let n = self.delay_count.load(Ordering::Relaxed);
        if n == 0 {
            0.0
        } else {
            self.delay_sum_us.load(Ordering::Relaxed) as f64 / n as f64
        }
    }

    /// Mean gateway request latency (µs) so far.
    pub fn mean_request_latency_us(&self) -> f64 {
        let n = self.requests_served.load(Ordering::Relaxed);
        if n == 0 {
            0.0
        } else {
            self.request_latency_sum_us.load(Ordering::Relaxed) as f64 / n as f64
        }
    }

    /// Epoch-cache hit rate across gateway requests so far (0.0 with no
    /// requests).
    pub fn snapshot_cache_hit_rate(&self) -> f64 {
        let hits = self.snapshot_cache_hits.load(Ordering::Relaxed);
        let total = hits + self.snapshot_cache_misses.load(Ordering::Relaxed);
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }
}

/// State shared by a site's threads and its owner.
struct SiteShared {
    /// The sharded operational store: per-shard locks for parallel
    /// applies, all-shard freeze for consistent captures.
    ede: Arc<ShardedEde>,
    /// Shared with the apply workers, which batch-merge processed stamps
    /// into it.
    responder: Arc<Mutex<MainUnitResponder>>,
    /// Shared with gateway workers, which account served requests and
    /// cache hits into it.
    counters: Arc<SiteCounters>,
    /// Pending client requests at this site (the §3.2.2 monitored
    /// variable); shared with any request gateway serving this site.
    pending_gauge: Arc<AtomicU64>,
    /// The store's global epoch cell ([`ShardedEde::epoch_handle`]),
    /// bumped under the owning shard's lock on every state change so
    /// gateway workers check snapshot-cache freshness without touching
    /// any shard lock.
    epoch: Arc<AtomicU64>,
    clock: RuntimeClock,
}

/// Typed overload error from [`CentralSite::try_submit`]: the ingest
/// pipeline is saturated and the caller must back off (or shed). Carries
/// the observed depth and the configured capacity so callers can log or
/// adapt; saturation surfaces *here*, as backpressure the producer sees,
/// never as silent spinning inside the site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SiteOverload {
    /// Events queued in the ingest pipeline (aux inbox + dispatch ring)
    /// at refusal time.
    pub queued: usize,
    /// The configured pipeline capacity
    /// ([`ClusterConfig::inbox_capacity`](crate::cluster::ClusterConfig)).
    pub capacity: usize,
}

impl std::fmt::Display for SiteOverload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "site ingest overloaded: {} events queued (capacity {})",
            self.queued, self.capacity
        )
    }
}

impl std::error::Error for SiteOverload {}

/// Common runtime machinery for one site.
struct SiteCore {
    shared: Arc<SiteShared>,
    /// The site's unified state-transfer provider (DESIGN.md §19): every
    /// seed/resync/reseed path captures through it.
    sync: Arc<StateSync>,
    handle: MirrorHandle,
    inbox_tx: Sender<SiteMsg>,
    /// Direct line to the main thread (mirror rejoin seeding).
    seed_tx: MpscSender<MainMsg>,
    /// Configured aux→dispatcher ring capacity; also the refusal threshold
    /// for [`CentralSite::try_submit`].
    inbox_capacity: usize,
    stop: Arc<std::sync::atomic::AtomicBool>,
    /// Crash simulation: when set, threads abandon queued work instead of
    /// draining it on the way out (see [`CentralSite::crash`]).
    crashed: Arc<std::sync::atomic::AtomicBool>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl SiteCore {
    /// Spawn the aux + main threads for a site.
    ///
    /// `on_action` routes non-local aux actions (publishes to mirrors /
    /// central); local main-unit traffic is wired here.
    fn spawn(
        site: SiteId,
        handle: MirrorHandle,
        clock: RuntimeClock,
        on_action: impl Fn(&AuxAction) + Send + 'static,
        updates_pub: Option<Publisher<Event>>,
        await_seed: bool,
        inbox_capacity: usize,
    ) -> (Self, Sender<SiteMsg>) {
        let (inbox_tx, inbox_rx) = channel::unbounded::<SiteMsg>();
        // Aux → dispatcher: a bounded lock-free MPSC ring (producers: the
        // aux thread, seed installers, shutdown) replaces the unbounded
        // mutex-and-allocation channel on the per-event hot path.
        let (main_tx, mut main_rx) = ring::mpsc::<MainMsg>(inbox_capacity);
        let crashed = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let ede = Arc::new(ShardedEde::new(APPLY_SHARDS));
        let shared = Arc::new(SiteShared {
            epoch: ede.epoch_handle(),
            ede,
            responder: Arc::new(Mutex::new(MainUnitResponder::new(site))),
            counters: Arc::new(SiteCounters::default()),
            pending_gauge: Arc::new(AtomicU64::new(0)),
            clock,
        });

        // The unified state-transfer provider. Frontier before the
        // all-shard freeze in both capture closures: a served frontier may
        // only *trail* the state it ships with, so replays on top are
        // idempotent and nothing after it can be missing. Wider-than-
        // gateway staleness: every consumer either replays the data
        // channel from a floor recorded before the capture (seeds) or
        // asked for a fresh capture explicitly (edge reseeds, rejoin).
        let sync = {
            let full_shared = Arc::clone(&shared);
            let delta_shared = Arc::clone(&shared);
            let floor_handle = handle.clone();
            Arc::new(StateSync::new(
                SnapshotCachePolicy {
                    max_stale_events: 256,
                    max_stale: Duration::from_millis(100),
                },
                Arc::clone(&shared.epoch),
                move || {
                    let as_of: VectorTimestamp = full_shared.responder.lock().processed().clone();
                    full_shared.ede.freeze(as_of)
                },
                move |base| {
                    let as_of: VectorTimestamp = delta_shared.responder.lock().processed().clone();
                    delta_shared.ede.capture_delta(base, as_of)
                },
                move || floor_handle.truncation_floor(),
            ))
        };

        // --- aux thread -----------------------------------------------------
        let aux_handle = handle.clone();
        let aux_shared = Arc::clone(&shared);
        let aux_main_tx = main_tx.clone();
        let aux_crashed = Arc::clone(&crashed);
        let aux = std::thread::Builder::new()
            .name(format!("aux-{site}"))
            .spawn(move || loop {
                if aux_crashed.load(Ordering::SeqCst) {
                    // Simulated crash: queued inbox traffic and coalescing
                    // buffers are abandoned, exactly as a dead process
                    // would abandon them. The main thread is released so
                    // the crashed site can be joined.
                    let _ = aux_main_tx.send(MainMsg::Stop);
                    break;
                }
                let msg = match inbox_rx.recv_timeout(FLUSH_PERIOD) {
                    Ok(m) => m,
                    Err(channel::RecvTimeoutError::Timeout) => {
                        // Sending-task wakeup: drain coalescing buffers and
                        // keep the checkpoint frontier moving while idle.
                        let mut actions = aux_handle.mirror();
                        actions.extend(aux_handle.idle_checkpoint());
                        route_actions(actions, &aux_shared, &aux_main_tx, &on_action);
                        continue;
                    }
                    Err(channel::RecvTimeoutError::Disconnected) => break,
                };
                match msg {
                    SiteMsg::Data(e) => {
                        let actions = aux_handle.fwd(e);
                        route_actions(actions, &aux_shared, &aux_main_tx, &on_action);
                    }
                    SiteMsg::Ctrl(m) => {
                        let actions = aux_handle.with(|a| a.handle(AuxInput::Control(m)));
                        route_actions(actions, &aux_shared, &aux_main_tx, &on_action);
                    }
                    SiteMsg::Stop => {
                        if !aux_crashed.load(Ordering::SeqCst) {
                            // Clean shutdown flushes the coalescing
                            // buffers; a crash loses them.
                            let actions = aux_handle.mirror();
                            route_actions(actions, &aux_shared, &aux_main_tx, &on_action);
                        }
                        let _ = aux_main_tx.send(MainMsg::Stop);
                        break;
                    }
                }
            })
            .expect("spawn aux thread");

        // --- main (dispatcher) thread -----------------------------------------
        // Routes data events by flight-id shard to the apply worker pool;
        // control traffic and seed installs are handled inline so they
        // serialize with dispatch order.
        let main_shared = Arc::clone(&shared);
        let main_inbox = inbox_tx.clone();
        let main_crashed = Arc::clone(&crashed);
        let main = std::thread::Builder::new()
            .name(format!("main-{site}"))
            .spawn(move || {
                let sink = ApplySink {
                    responder: Arc::clone(&main_shared.responder),
                    counters: Arc::clone(&main_shared.counters),
                    clock: main_shared.clock.clone(),
                    updates: updates_pub,
                };
                let mut pool = ApplyPool::spawn(
                    Arc::clone(&main_shared.ede),
                    sink,
                    Arc::clone(&main_crashed),
                    ApplyPoolConfig::default(),
                );
                // Mirror rejoin: until the seed state arrives, data events
                // are buffered; the seed install replays them on top
                // (stale updates are absorbed idempotently by the EDE).
                let mut awaiting_seed = await_seed;
                let mut seed_buffer: Vec<Arc<Event>> = Vec::new();
                let mut spins = 0u32;
                loop {
                    let msg = match main_rx.try_recv() {
                        RingRecv::Item(m) => {
                            spins = 0;
                            m
                        }
                        RingRecv::Empty => {
                            if main_crashed.load(Ordering::SeqCst) {
                                break;
                            }
                            idle_backoff(&mut spins);
                            continue;
                        }
                        RingRecv::Disconnected => break,
                    };
                    match msg {
                        MainMsg::Event(ev) => {
                            if awaiting_seed {
                                seed_buffer.push(ev);
                                continue;
                            }
                            pool.dispatch(ev);
                        }
                        MainMsg::Seed(state, frontier, installed) => {
                            // Quiesce: every worker drains its ring and
                            // parks, the install swaps the store (bumping
                            // the shared epoch), then applies resume on
                            // top of the seed.
                            pool.quiesce(|| main_shared.ede.install_state(*state));
                            main_shared.responder.lock().record_processed(&frontier);
                            // Ack only after both the state and the
                            // frontier are visible: the blocked seeder
                            // snapshots immediately after.
                            installed.store(true, Ordering::Release);
                            awaiting_seed = false;
                            for ev in seed_buffer.drain(..) {
                                pool.dispatch(ev);
                            }
                        }
                        MainMsg::Merge(state, done) => {
                            // Same quiesce discipline as Seed, but the
                            // incoming flights merge into (rather than
                            // replace) the live store: migration seeds
                            // land without disturbing resident partitions.
                            pool.quiesce(|| main_shared.ede.merge_state(*state));
                            done.store(true, Ordering::Release);
                        }
                        MainMsg::Retain(keep, removed) => {
                            let mut n = 0usize;
                            pool.quiesce(|| n = main_shared.ede.retain_flights(|f| keep(f)));
                            removed.store(n as u64, Ordering::Release);
                        }
                        MainMsg::Delta(delta, done) => {
                            // Same quiesce discipline as Seed/Merge: the
                            // fold lands between two well-defined batches
                            // of applies, then the frontier advances to
                            // the delta's capture frontier. Events racing
                            // the fold (published after the capture but
                            // dispatched before this message) may be
                            // overwritten and then re-converge off the
                            // stream — the same idempotent-absorption
                            // story as the full-seed install.
                            pool.quiesce(|| main_shared.ede.apply_delta(&delta));
                            main_shared.responder.lock().record_processed(&delta.as_of);
                            done.store(true, Ordering::Release);
                        }
                        MainMsg::Ctrl(m) => match &m {
                            ControlMsg::Chkpt { .. } => {
                                let report = MonitorReport {
                                    ready_len: 0,
                                    backup_len: 0,
                                    pending_requests: main_shared
                                        .pending_gauge
                                        .load(Ordering::Relaxed),
                                };
                                // The responder's frontier may trail
                                // in-flight worker applies; the reply is
                                // the meet with it, so a lag only makes
                                // the commit conservative, never wrong.
                                let rep = main_shared.responder.lock().on_chkpt(&m, report);
                                if let Some(rep) = rep {
                                    let _ = main_inbox.send(SiteMsg::Ctrl(rep));
                                }
                            }
                            ControlMsg::Commit { .. } => main_shared.responder.lock().on_commit(&m),
                            ControlMsg::ChkptRep { .. } => {}
                        },
                        MainMsg::Stop => break,
                    }
                }
                // Graceful stop drains worker rings; after a crash the
                // workers observe the flag and abandon their backlogs.
                pool.shutdown();
            })
            .expect("spawn main thread");

        let tx = inbox_tx.clone();
        (
            SiteCore {
                shared,
                sync,
                handle,
                inbox_tx,
                seed_tx: main_tx,
                inbox_capacity,
                stop: Arc::new(std::sync::atomic::AtomicBool::new(false)),
                crashed,
                threads: vec![aux, main],
            },
            tx,
        )
    }
}

/// Pump a subscription into a sink until the stop flag is set or the
/// channel closes. A set `crashed` flag abandons the backlog instead of
/// draining it — crash semantics for [`CentralSite::crash`].
fn pump<T>(
    sub: Subscriber<T>,
    stop: Arc<std::sync::atomic::AtomicBool>,
    crashed: Arc<std::sync::atomic::AtomicBool>,
    mut sink: impl FnMut(T) -> bool,
) {
    use mirror_echo::channel::RecvStatus;
    loop {
        if crashed.load(Ordering::SeqCst) {
            return;
        }
        if stop.load(Ordering::SeqCst) {
            // Drain the backlog before exiting so a stop signal never
            // drops traffic that was already published.
            while let Some(m) = sub.try_recv() {
                if !sink(m) {
                    return;
                }
            }
            break;
        }
        match sub.recv_status(FLUSH_PERIOD) {
            RecvStatus::Msg(m) => {
                if !sink(m) {
                    break;
                }
            }
            RecvStatus::Timeout => continue,
            RecvStatus::Disconnected => break,
        }
    }
}

/// Route aux actions: local main-unit traffic by channel, everything else
/// through the site-specific callback.
fn route_actions(
    actions: Vec<AuxAction>,
    shared: &Arc<SiteShared>,
    main_tx: &MpscSender<MainMsg>,
    on_action: &impl Fn(&AuxAction),
) {
    for action in actions {
        match &action {
            AuxAction::ForwardToMain(ev) => {
                // Arc clone: the main thread shares the aux unit's copy.
                let _ = main_tx.send(MainMsg::Event(Arc::clone(ev)));
            }
            AuxAction::ControlToMain(m) => {
                let _ = main_tx.send(MainMsg::Ctrl(m.clone()));
            }
            AuxAction::Mirror { .. } => {
                shared.counters.mirrored.fetch_add(1, Ordering::Relaxed);
                on_action(&action);
            }
            AuxAction::Reconfigured(_) => {
                shared.counters.adaptations.fetch_add(1, Ordering::Relaxed);
            }
            _ => on_action(&action),
        }
    }
}

/// Shared behaviour of running sites.
macro_rules! site_common_impl {
    () => {
        /// Dynamic Table-1 configuration handle.
        pub fn handle(&self) -> &MirrorHandle {
            &self.core.handle
        }

        /// Shared counters.
        pub fn counters(&self) -> &SiteCounters {
            &self.core.shared.counters
        }

        /// Digest of this site's EDE state (merged across shards; identical
        /// to the hash an unsharded store of the same flights produces).
        pub fn state_hash(&self) -> u64 {
            self.core.shared.ede.state_hash()
        }

        /// Events applied per store shard (index = shard), lock-free.
        pub fn shard_applied(&self) -> Vec<u64> {
            self.core.shared.ede.applied_per_shard()
        }

        /// Shard imbalance: busiest shard's applied count over the
        /// per-shard mean (1.0 = even; 0.0 before any apply).
        pub fn shard_imbalance(&self) -> f64 {
            self.core.shared.ede.imbalance()
        }

        /// Events this site's EDE has processed.
        pub fn processed(&self) -> u64 {
            self.core.shared.counters.processed.load(Ordering::Relaxed)
        }

        /// Spawn a request gateway for this site with the default
        /// [`GatewayConfig`](crate::requests::GatewayConfig) (auto-sized
        /// worker pool, default epoch-cache staleness bound) and the given
        /// per-request service pad — the pad models transfer work beyond
        /// the in-memory snapshot.
        pub fn serve_requests(
            &self,
            service_pad: std::time::Duration,
        ) -> crate::requests::RequestGateway {
            self.serve_requests_with(crate::requests::GatewayConfig {
                service_pad,
                ..Default::default()
            })
        }

        /// Spawn a request gateway for this site: a worker pool draining a
        /// FIFO of initial-state requests whose occupancy feeds the site's
        /// pending-requests monitored variable (so live adaptation reacts
        /// to real request pressure). Requests are answered through the
        /// epoch-keyed snapshot cache configured by `config` — one state
        /// capture and one wire encoding per epoch window, shared across
        /// the burst they satisfy.
        pub fn serve_requests_with(
            &self,
            config: crate::requests::GatewayConfig,
        ) -> crate::requests::RequestGateway {
            let shared = Arc::clone(&self.core.shared);
            // Frontier first, then the all-shard freeze: the frontier may
            // only *trail* the state a snapshot reflects, never lead it;
            // trailing events are replayed idempotently by the client.
            let capture = move || {
                let as_of: VectorTimestamp = shared.responder.lock().processed().clone();
                shared.ede.freeze(as_of)
            };
            crate::requests::RequestGateway::spawn(
                capture,
                Arc::clone(&self.core.shared.epoch),
                self.pending_gauge(),
                Arc::clone(&self.core.shared.counters),
                config,
            )
        }

        /// The shared pending-requests gauge (reported to the adaptation
        /// controller in checkpoint replies).
        pub fn pending_gauge(&self) -> Arc<AtomicU64> {
            Arc::clone(&self.core.shared.pending_gauge)
        }

        /// This site's unified state-transfer provider: the single capture
        /// point behind mirror seeding, partition resync, edge reseeds and
        /// WAN delta catch-up (DESIGN.md §19). Cheap to clone and safe to
        /// hold beyond the site's lifetime (captures after stop simply
        /// freeze the final state).
        pub fn state_sync(&self) -> Arc<crate::statesync::StateSync> {
            Arc::clone(&self.core.sync)
        }

        /// Fold a captured delta into this site's live store, then advance
        /// the applied frontier to the delta's capture frontier. Runs under
        /// an apply-pool quiesce (same discipline as [`seed`](Self::seed) /
        /// [`merge_seed`](Self::merge_seed)); blocks until visible so the
        /// caller can immediately snapshot or serve reads.
        pub fn apply_delta(&self, delta: mirror_ede::StateDelta) {
            let done = Arc::new(AtomicBool::new(false));
            let msg = MainMsg::Delta(Box::new(delta), Arc::clone(&done));
            if self.core.seed_tx.send(msg).is_err() {
                return; // apply loop already gone (site stopping)
            }
            let mut spins = 0u32;
            while !done.load(Ordering::Acquire) {
                if self.core.stop.load(Ordering::SeqCst) {
                    return;
                }
                idle_backoff(&mut spins);
            }
        }

        /// Events currently queued in the ingest pipeline: the aux inbox
        /// plus the aux→dispatcher ring.
        pub fn inbox_depth(&self) -> usize {
            self.core.inbox_tx.len() + self.core.seed_tx.len()
        }

        /// The configured aux→dispatcher ring capacity (the
        /// [`try_submit`](CentralSite::try_submit) refusal threshold).
        pub fn inbox_capacity(&self) -> usize {
            self.core.inbox_capacity
        }

        /// Lifetime stats of the aux→dispatcher ring (enqueued, dequeued,
        /// high-watermark occupancy) — the overload observability hook.
        pub fn dispatch_ring_stats(&self) -> mirror_core::ring::RingStats {
            self.core.seed_tx.stats()
        }

        /// Install recovered state into a site started in awaiting-seed
        /// mode; events buffered meanwhile replay on top (stale updates
        /// are absorbed idempotently by the EDE). Blocks until the apply
        /// loop has installed the state and frontier: callers (promotion
        /// handoff, mirror rejoin) snapshot the site immediately after,
        /// and must never observe the empty pre-seed store.
        pub fn seed(&self, state: OperationalState, frontier: VectorTimestamp) {
            let installed = Arc::new(AtomicBool::new(false));
            let msg = MainMsg::Seed(Box::new(state), frontier, Arc::clone(&installed));
            if self.core.seed_tx.send(msg).is_err() {
                return; // apply loop already gone (site stopping)
            }
            let mut spins = 0u32;
            while !installed.load(Ordering::Acquire) {
                if self.core.stop.load(Ordering::SeqCst) {
                    return;
                }
                idle_backoff(&mut spins);
            }
        }

        /// Merge migrated flight state into this site's live store (slot
        /// migration seeding). Unlike [`seed`](Self::seed) the resident
        /// flights survive; the merge runs under an apply-pool quiesce so
        /// it serializes with in-flight event application. Blocks until
        /// the merge is visible — the migrator replays the slot's
        /// buffered events right after, and those must apply on top.
        pub fn merge_seed(&self, state: OperationalState) {
            let done = Arc::new(AtomicBool::new(false));
            let msg = MainMsg::Merge(Box::new(state), Arc::clone(&done));
            if self.core.seed_tx.send(msg).is_err() {
                return; // apply loop already gone (site stopping)
            }
            let mut spins = 0u32;
            while !done.load(Ordering::Acquire) {
                if self.core.stop.load(Ordering::SeqCst) {
                    return;
                }
                idle_backoff(&mut spins);
            }
        }

        /// Drop every flight the predicate rejects (the migration
        /// source's purge once a slot's ownership moved away). Blocks
        /// until the purge is applied and returns the number of flights
        /// removed (0 if the site is stopping).
        pub fn retain_flights(
            &self,
            keep: Arc<dyn Fn(mirror_core::FlightId) -> bool + Send + Sync>,
        ) -> u64 {
            let removed = Arc::new(AtomicU64::new(u64::MAX));
            let msg = MainMsg::Retain(keep, Arc::clone(&removed));
            if self.core.seed_tx.send(msg).is_err() {
                return 0; // apply loop already gone (site stopping)
            }
            let mut spins = 0u32;
            loop {
                let n = removed.load(Ordering::Acquire);
                if n != u64::MAX {
                    return n;
                }
                if self.core.stop.load(Ordering::SeqCst) {
                    return 0;
                }
                idle_backoff(&mut spins);
            }
        }

        /// The partition map this site last adopted off checkpoint
        /// control traffic, if any.
        pub fn partition_map(&self) -> Option<mirror_core::PartitionMap> {
            self.core.handle.with(|a| a.partition_map().cloned())
        }

        /// Epoch of the adopted partition map; 0 when unpartitioned.
        pub fn partition_epoch(&self) -> u64 {
            self.core.handle.with(|a| a.partition_epoch())
        }

        /// Serve an initial-state request: snapshot this site's EDE state
        /// at its processed frontier (the thin-client recovery path).
        pub fn snapshot(&self) -> Snapshot {
            // Note: direct synchronous snapshots do NOT touch the shared
            // pending-requests gauge — the gauge counts *queued* gateway
            // requests (incremented at submit, decremented at reply); a
            // synchronous call never queues, so it contributes no
            // pressure for the adaptation controller to react to.
            let as_of: VectorTimestamp = self.core.shared.responder.lock().processed().clone();
            let (snap, _epoch) = self.core.shared.ede.freeze(as_of);
            self.core.shared.counters.snapshots.fetch_add(1, Ordering::Relaxed);
            snap
        }

        /// Stop the site's threads (idempotent; joins on completion).
        pub fn stop(&mut self) {
            self.core.stop.store(true, Ordering::SeqCst);
            let _ = self.core.inbox_tx.send(SiteMsg::Stop);
            for t in self.core.threads.drain(..) {
                let _ = t.join();
            }
        }
    };
}

/// The running central site.
pub struct CentralSite {
    core: SiteCore,
    updates: EventChannel<Event>,
    /// Mirrors the checkpoint coordinator has declared failed.
    failed: Arc<Mutex<Vec<SiteId>>>,
    /// Per-mirror transport link monitors (bridged mirrors only): the
    /// status table's link-health column.
    links: LinkTable,
    /// Durable event journal (present when the cluster was started with a
    /// [`DurabilityConfig`](crate::durability::DurabilityConfig)).
    journal: Option<Arc<Journal>>,
    /// Scale directives emitted by the adaptation controller, queued for
    /// collection by [`take_scale_directives`](Self::take_scale_directives)
    /// (the cluster drains them into membership changes).
    scale: Arc<Mutex<Vec<ScaleDecision>>>,
}

/// Shared registry of transport link monitors, keyed by mirror site.
type LinkTable = Arc<Mutex<Vec<(SiteId, Arc<LinkMonitor>)>>>;

impl CentralSite {
    /// Start a central site mirroring to `mirrors` over the given channel
    /// pair (data + downlink control), receiving replies on the uplink.
    pub fn start(
        handle: MirrorHandle,
        clock: RuntimeClock,
        data_pub: Publisher<SharedEvent>,
        ctrl_down_pub: Publisher<ControlMsg>,
        ctrl_up: &EventChannel<ControlMsg>,
    ) -> Self {
        Self::start_inner(
            handle,
            clock,
            data_pub,
            ctrl_down_pub,
            ctrl_up,
            false,
            None,
            DEFAULT_MAIN_RING_CAPACITY,
        )
    }

    /// Start a central site that journals every mirrored event (and its
    /// checkpoint-commit watermarks) to the given durable store. The
    /// journal write shares the event's cached wire encoding with the
    /// data-channel fan-out: one encode, one extra `write`.
    pub fn start_journaled(
        handle: MirrorHandle,
        clock: RuntimeClock,
        data_pub: Publisher<SharedEvent>,
        ctrl_down_pub: Publisher<ControlMsg>,
        ctrl_up: &EventChannel<ControlMsg>,
        journal: Arc<Journal>,
    ) -> Self {
        Self::start_inner(
            handle,
            clock,
            data_pub,
            ctrl_down_pub,
            ctrl_up,
            false,
            Some(journal),
            DEFAULT_MAIN_RING_CAPACITY,
        )
    }

    /// Start a central site that buffers incoming events until
    /// [`seed`](Self::seed) installs state — the **promotion** path: when
    /// the central node fails, a mirror's replicated state seeds a new
    /// coordinator and the service continues (the deepest payoff of
    /// mirroring: any site can take over).
    pub fn start_seeded(
        handle: MirrorHandle,
        clock: RuntimeClock,
        data_pub: Publisher<SharedEvent>,
        ctrl_down_pub: Publisher<ControlMsg>,
        ctrl_up: &EventChannel<ControlMsg>,
    ) -> Self {
        Self::start_inner(
            handle,
            clock,
            data_pub,
            ctrl_down_pub,
            ctrl_up,
            true,
            None,
            DEFAULT_MAIN_RING_CAPACITY,
        )
    }

    /// The promotion path with durability: like
    /// [`start_seeded`](Self::start_seeded), but the successor also takes
    /// over journaling — every event it mirrors from here on is appended
    /// to `journal`, and its checkpoint commits drive log truncation, so
    /// the zero-loss guarantee survives repeated failovers.
    pub fn start_seeded_journaled(
        handle: MirrorHandle,
        clock: RuntimeClock,
        data_pub: Publisher<SharedEvent>,
        ctrl_down_pub: Publisher<ControlMsg>,
        ctrl_up: &EventChannel<ControlMsg>,
        journal: Arc<Journal>,
    ) -> Self {
        Self::start_inner(
            handle,
            clock,
            data_pub,
            ctrl_down_pub,
            ctrl_up,
            true,
            Some(journal),
            DEFAULT_MAIN_RING_CAPACITY,
        )
    }

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn start_inner(
        handle: MirrorHandle,
        clock: RuntimeClock,
        data_pub: Publisher<SharedEvent>,
        ctrl_down_pub: Publisher<ControlMsg>,
        ctrl_up: &EventChannel<ControlMsg>,
        await_seed: bool,
        journal: Option<Arc<Journal>>,
        inbox_capacity: usize,
    ) -> Self {
        assert!(handle.with(|a| a.is_central()));
        let updates = EventChannel::new("central.updates");
        let updates_pub = updates.publisher();
        let failed: Arc<Mutex<Vec<SiteId>>> = Arc::new(Mutex::new(Vec::new()));
        let failed_in_route = Arc::clone(&failed);
        let scale: Arc<Mutex<Vec<ScaleDecision>>> = Arc::new(Mutex::new(Vec::new()));
        let scale_in_route = Arc::clone(&scale);
        let journal_in_route = journal.clone();
        // The aux unit has released its lock by the time actions are
        // routed, so querying the backup queue's truncation floor from
        // inside the route closure is deadlock-free.
        let floor_handle = handle.clone();
        let route = move |action: &AuxAction| match action {
            AuxAction::Mirror { idx, event } => {
                // One publish fans out to every mirror subscriber as an
                // Arc clone; the wire encoding is computed at most once
                // across all consumers (SharedEvent's cache) — the journal
                // writer forces it off-thread and bridges then reuse it.
                let shared = SharedEvent::new(Arc::clone(event));
                if let Some(j) = &journal_in_route {
                    // Write-ahead: the event is durable (per the fsync
                    // policy) before the mirrors acknowledge a checkpoint
                    // covering it.
                    j.append(*idx, &shared);
                }
                data_pub.publish(shared);
            }
            AuxAction::ControlToMirrors(m) => {
                if let (Some(j), ControlMsg::Commit { .. }) = (&journal_in_route, m) {
                    // The aux unit pruned its backup queue when it emitted
                    // this commit; the queue's oldest retained index is the
                    // durable truncation watermark.
                    j.commit(floor_handle.truncation_floor());
                }
                ctrl_down_pub.publish(m.clone());
            }
            AuxAction::MirrorFailed(site) => {
                failed_in_route.lock().push(*site);
            }
            AuxAction::ScaleDirective(d) => {
                scale_in_route.lock().push(*d);
            }
            _ => {}
        };
        let (core, inbox_tx) = SiteCore::spawn(
            mirror_core::CENTRAL_SITE,
            handle,
            clock,
            route,
            Some(updates_pub),
            await_seed,
            inbox_capacity,
        );

        // Forward checkpoint replies from mirrors into the aux inbox.
        let up_sub = ctrl_up.subscribe();
        let mut site = CentralSite {
            core,
            updates,
            failed,
            links: Arc::new(Mutex::new(Vec::new())),
            journal,
            scale,
        };
        let stop = Arc::clone(&site.core.stop);
        let crashed = Arc::clone(&site.core.crashed);
        let fwd = std::thread::Builder::new()
            .name("central-ctrl-up".into())
            .spawn(move || {
                pump(up_sub, stop, crashed, move |m| inbox_tx.send(SiteMsg::Ctrl(m)).is_ok())
            })
            .expect("spawn ctrl-up forwarder");
        site.core.threads.push(fwd);
        site
    }

    /// Submit a source event (stamped with the shared clock's ingress time
    /// if the caller has not set one).
    pub fn submit(&self, mut event: Event) {
        if event.ingress_us == 0 {
            event.ingress_us = self.core.shared.clock.now_us();
        }
        let _ = self.core.inbox_tx.send(SiteMsg::Data(Arc::new(event)));
    }

    /// Submit a source event unless the ingest pipeline is saturated.
    ///
    /// When the aux inbox plus the aux→dispatcher ring hold at least
    /// [`inbox_capacity`](Self::inbox_capacity) events, the submission is
    /// refused with a typed [`SiteOverload`] instead of queueing further —
    /// producers see backpressure they can act on (back off, shed, alert)
    /// rather than growing the inbox without bound. Accepted events are
    /// never dropped.
    pub fn try_submit(&self, mut event: Event) -> Result<(), SiteOverload> {
        let queued = self.inbox_depth();
        let capacity = self.core.inbox_capacity;
        if queued >= capacity {
            return Err(SiteOverload { queued, capacity });
        }
        if event.ingress_us == 0 {
            event.ingress_us = self.core.shared.clock.now_us();
        }
        let _ = self.core.inbox_tx.send(SiteMsg::Data(Arc::new(event)));
        Ok(())
    }

    /// Subscribe to the regular-client update stream.
    pub fn subscribe_updates(&self) -> Subscriber<Event> {
        self.updates.subscribe()
    }

    /// Last committed checkpoint at the coordinator.
    pub fn committed(&self) -> Option<VectorTimestamp> {
        self.core.handle.with(|a| a.committed())
    }

    /// Mirrors the checkpoint coordinator has declared failed so far.
    pub fn failed_mirrors(&self) -> Vec<SiteId> {
        self.failed.lock().clone()
    }

    /// Re-admit a recovered mirror into checkpoint rounds (after its state
    /// has been re-seeded).
    pub fn readmit_mirror(&self, site: SiteId) {
        self.failed.lock().retain(|&s| s != site);
        self.core.handle.with(|a| a.readmit_mirror(site));
    }

    /// Raise the membership epoch stamped onto outgoing checkpoint rounds
    /// (monotone: a lower epoch is ignored).
    pub fn set_membership_epoch(&self, epoch: u64) {
        self.core.handle.with(|a| a.set_membership_epoch(epoch));
    }

    /// Adopt a partition map on the coordinator (epoch-fenced: stale maps
    /// are ignored). The adopted map rides every subsequent checkpoint
    /// COMMIT, so mirrors — including late joiners — converge on it
    /// without a dedicated broadcast. Returns whether the map was newer.
    pub fn set_partition_map(&self, pm: mirror_core::PartitionMap) -> bool {
        self.core.handle.with(|a| a.set_partition_map(pm))
    }

    /// Admit a mirror into checkpoint rounds at membership `epoch` — the
    /// elastic scale-out path: the site gates rounds begun from the next
    /// proposal on, and `CHKPT`/`COMMIT` carry the new epoch.
    pub fn admit_mirror(&self, site: SiteId, epoch: u64) {
        self.failed.lock().retain(|&s| s != site);
        self.core.handle.with(|a| a.admit_mirror(site, epoch));
    }

    /// Retire a mirror from checkpoint rounds at membership `epoch`: it
    /// stops gating round completion *without* being marked failed (this
    /// is scale-in, not a crash).
    pub fn retire_mirror(&self, site: SiteId, epoch: u64) {
        self.failed.lock().retain(|&s| s != site);
        self.core.handle.with(|a| a.retire_mirror(site, epoch));
    }

    /// Drain the scale directives the adaptation controller has emitted
    /// since the last call (oldest first). The cluster turns these into
    /// membership changes; see `Cluster::poll_scale`.
    pub fn take_scale_directives(&self) -> Vec<ScaleDecision> {
        std::mem::take(&mut *self.scale.lock())
    }

    /// Capture (or reuse) a seed snapshot for a newly admitted mirror,
    /// returning it together with the backup-queue truncation floor
    /// recorded **before** its capture.
    ///
    /// Safety of the pairing: the floor only moves up, so a floor read
    /// before the state capture can only cause *extra* replays when the
    /// admitting caller resyncs from it — never a gap — and stale replays
    /// are absorbed idempotently by every EDE. A burst of admissions
    /// shares one capture through the cache (the PR-§13 single-flight
    /// pattern applied to seeding).
    pub fn seed_snapshot(&self) -> (ServedSnapshot, u64) {
        self.core.sync.seed()
    }

    /// Record `monitor` as the transport link serving `site`, so
    /// [`link_health`](Self::link_health) reports it. Bridged mirrors
    /// attach one monitor per direction or a single downlink monitor.
    pub fn attach_link_monitor(&self, site: SiteId, monitor: Arc<LinkMonitor>) {
        self.links.lock().push((site, monitor));
    }

    /// Snapshot per-mirror link health (the status table's transport
    /// column). Sites with several attached links report each.
    pub fn link_health(&self) -> Vec<(SiteId, LinkHealth)> {
        self.links.lock().iter().map(|(s, m)| (*s, m.health())).collect()
    }

    /// Escalate a dead transport link: exclude `site` from checkpoint
    /// rounds immediately instead of waiting out `suspect_after` rounds of
    /// silence. Idempotent; composes with the round-lag detector (whichever
    /// fires first wins).
    pub fn declare_link_dead(&self, site: SiteId) {
        let actions = self.core.handle.declare_mirror_failed(site);
        if !actions.is_empty() {
            let mut f = self.failed.lock();
            if !f.contains(&site) {
                f.push(site);
            }
        }
    }

    /// An observer closure for
    /// [`ResilientTransport::on_event`](mirror_echo::ResilientTransport::on_event):
    /// routes a link's [`LinkEvent::Dead`] into
    /// [`declare_link_dead`](Self::declare_link_dead). Down/Up transitions
    /// are left to the monitor counters — transient outages are the
    /// resilient layer's to heal, not the cluster's to react to.
    pub fn link_escalator(&self, site: SiteId) -> impl Fn(&LinkEvent) + Send + 'static {
        let handle = self.core.handle.clone();
        let failed = Arc::clone(&self.failed);
        move |ev| {
            if matches!(ev, LinkEvent::Dead) {
                let actions = handle.declare_mirror_failed(site);
                if !actions.is_empty() {
                    let mut f = failed.lock();
                    if !f.contains(&site) {
                        f.push(site);
                    }
                }
            }
        }
    }

    /// The durable journal, when this site was started with one.
    pub fn journal(&self) -> Option<&Arc<Journal>> {
        self.journal.as_ref()
    }

    /// Simulate the central process dying, as opposed to the graceful
    /// [`stop`](Self::stop):
    ///
    /// * the journal (if any) is crashed first — queued appends are
    ///   discarded, the event log is abandoned mid-write with its buffered
    ///   tail lost and possibly a torn final record on disk;
    /// * the aux thread abandons its inbox and coalescing buffers instead
    ///   of flushing them;
    /// * forwarder threads abandon channel backlogs instead of draining.
    ///
    /// Threads are still *joined* (a test process cannot leak them), but
    /// everything they would have flushed on a clean stop is gone —
    /// exactly the wreckage automatic failover must recover from.
    pub fn crash(&mut self) {
        if let Some(j) = &self.journal {
            j.crash();
        }
        self.core.crashed.store(true, Ordering::SeqCst);
        self.core.stop.store(true, Ordering::SeqCst);
        let _ = self.core.inbox_tx.send(SiteMsg::Stop);
        for t in self.core.threads.drain(..) {
            let _ = t.join();
        }
    }

    /// Whether [`crash`](Self::crash) has been called on this site.
    pub fn is_crashed(&self) -> bool {
        self.core.crashed.load(Ordering::SeqCst)
    }

    /// Persist the current EDE state as the durable recovery snapshot
    /// (atomic replace), consistent with the main unit's processed
    /// frontier. Returns the number of flights captured.
    ///
    /// Errors if the site has no journal or the save fails.
    pub fn persist_snapshot(&self) -> std::io::Result<usize> {
        let journal = self.journal.as_ref().ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::Unsupported, "site has no durable store")
        })?;
        let as_of: VectorTimestamp = self.core.shared.responder.lock().processed().clone();
        // Freeze (clone) under the shard locks, write after releasing
        // them: the disk write (serialize + temp file + fsync + rename)
        // must not stall event processing — holding the store locked
        // across it would freeze every apply worker for the whole save.
        let (snap, _epoch) = self.core.shared.ede.freeze(as_of.clone());
        let state = snap.into_state();
        journal.save_snapshot(&state, &as_of)?;
        Ok(state.flights().len())
    }

    site_common_impl!();
}

/// A running mirror site.
pub struct MirrorSite {
    core: SiteCore,
    /// Applied-updates stream: every state-changing event this mirror's
    /// EDE emits, in apply order — what an edge delivery tier fans out.
    updates: EventChannel<Event>,
}

impl MirrorSite {
    /// Start a mirror site: subscribe to the central's data and control
    /// downlinks, publish checkpoint replies on the uplink.
    pub fn start(
        handle: MirrorHandle,
        clock: RuntimeClock,
        data: &EventChannel<SharedEvent>,
        ctrl_down: &EventChannel<ControlMsg>,
        ctrl_up_pub: Publisher<ControlMsg>,
    ) -> Self {
        Self::start_inner(
            handle,
            clock,
            data,
            ctrl_down,
            ctrl_up_pub,
            false,
            DEFAULT_MAIN_RING_CAPACITY,
        )
    }

    /// Start a mirror site that **buffers** incoming events until
    /// [`seed`](Self::seed) installs recovered state — the rejoin path: a
    /// replacement mirror subscribes first (so it misses nothing), then is
    /// seeded from a surviving site's snapshot, then replays the buffer
    /// (stale events are absorbed idempotently).
    pub fn start_seeded(
        handle: MirrorHandle,
        clock: RuntimeClock,
        data: &EventChannel<SharedEvent>,
        ctrl_down: &EventChannel<ControlMsg>,
        ctrl_up_pub: Publisher<ControlMsg>,
    ) -> Self {
        Self::start_inner(
            handle,
            clock,
            data,
            ctrl_down,
            ctrl_up_pub,
            true,
            DEFAULT_MAIN_RING_CAPACITY,
        )
    }

    pub(crate) fn start_inner(
        handle: MirrorHandle,
        clock: RuntimeClock,
        data: &EventChannel<SharedEvent>,
        ctrl_down: &EventChannel<ControlMsg>,
        ctrl_up_pub: Publisher<ControlMsg>,
        await_seed: bool,
        inbox_capacity: usize,
    ) -> Self {
        let site = handle.with(|a| a.site());
        assert_ne!(site, mirror_core::CENTRAL_SITE);
        let route = move |action: &AuxAction| {
            if let AuxAction::ControlToCentral(m) = action {
                ctrl_up_pub.publish(m.clone());
            }
        };
        let updates = EventChannel::new(format!("mirror{site}.updates"));
        let updates_pub = updates.publisher();
        let (core, inbox_tx) = SiteCore::spawn(
            site,
            handle,
            clock,
            route,
            Some(updates_pub),
            await_seed,
            inbox_capacity,
        );

        let mut s = MirrorSite { core, updates };
        let data_sub = data.subscribe();
        let tx1 = inbox_tx.clone();
        let stop1 = Arc::clone(&s.core.stop);
        let crashed1 = Arc::clone(&s.core.crashed);
        let f1 = std::thread::Builder::new()
            .name(format!("mirror-{site}-data"))
            .spawn(move || {
                pump(data_sub, stop1, crashed1, move |e: SharedEvent| {
                    tx1.send(SiteMsg::Data(e.into_event())).is_ok()
                })
            })
            .expect("spawn data forwarder");
        let ctrl_sub = ctrl_down.subscribe();
        let stop2 = Arc::clone(&s.core.stop);
        let crashed2 = Arc::clone(&s.core.crashed);
        let f2 = std::thread::Builder::new()
            .name(format!("mirror-{site}-ctrl"))
            .spawn(move || {
                pump(ctrl_sub, stop2, crashed2, move |m| inbox_tx.send(SiteMsg::Ctrl(m)).is_ok())
            })
            .expect("spawn ctrl forwarder");
        s.core.threads.push(f1);
        s.core.threads.push(f2);
        s
    }

    /// This mirror's site id.
    pub fn site(&self) -> SiteId {
        self.core.handle.with(|a| a.site())
    }

    /// Subscribe to this mirror's applied-updates stream: the
    /// state-changing events its EDE emits, in apply order. The apply
    /// workers skip the publish entirely while nobody is subscribed, so an
    /// edge-less mirror pays one atomic load per update.
    pub fn subscribe_updates(&self) -> Subscriber<Event> {
        self.updates.subscribe()
    }

    site_common_impl!();
}

impl Drop for CentralSite {
    fn drop(&mut self) {
        self.stop();
    }
}

impl Drop for MirrorSite {
    fn drop(&mut self) {
        self.stop();
    }
}
