//! The sharded apply worker pool.
//!
//! A site's main (EDE) thread used to apply every event inline under one
//! `Mutex<Ede>`, paying per event for a channel hop, two mutex
//! acquisitions (EDE + checkpoint responder), an `EdeOutput` allocation
//! and an `Event` clone. [`ApplyPool`] replaces that inner loop:
//!
//! * the owning thread (the site's dispatcher) routes each event by its
//!   flight's shard to a worker over a bounded lock-free SPSC ring
//!   ([`mirror_core::ring`]) — shard affinity makes every ring
//!   single-producer/single-consumer by construction and keeps
//!   *per-flight* apply order intact while different flights proceed in
//!   parallel;
//! * each worker applies events straight into the [`ShardedEde`] through
//!   the callback-based [`Ede::process_with`](mirror_ede::Ede::process_with)
//!   path (no `EdeOutput` allocation; an `Event` clone only when an
//!   updates subscriber actually needs an owned copy);
//! * checkpoint-frontier and counter bookkeeping is **batched**: workers
//!   join the vector stamps of up to [`ApplyPoolConfig::batch`] events and
//!   take the responder lock once per batch, flushing eagerly whenever the
//!   ring runs dry so the frontier never lags an idle site.
//!
//! Ordering contract: the checkpoint frontier only ever *trails* the
//! store (an event is applied before its stamp is recorded). All
//! consistent-read paths capture the frontier **before** freezing state,
//! so a trailing frontier merely makes commits conservative — the same
//! invariant the single-lock path maintained, now with a slightly wider
//! window. See DESIGN.md §16.
//!
//! [`quiesce`](ApplyPool::quiesce) drains and parks every worker at a
//! barrier so the caller can install seed state atomically between two
//! well-defined batches of applies.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};

use parking_lot::Mutex;

use mirror_core::checkpoint::MainUnitResponder;
use mirror_core::event::Event;
use mirror_core::ring::{spsc, RingRecv, SpscSender};
use mirror_core::timestamp::VectorTimestamp;
use mirror_echo::channel::Publisher;
use mirror_ede::{ShardMap, ShardedEde};

use crate::clock::RuntimeClock;
use crate::site::SiteCounters;

/// Sizing knobs for an [`ApplyPool`].
#[derive(Debug, Clone)]
pub struct ApplyPoolConfig {
    /// Apply worker threads. Shard `s` is pinned to worker `s % workers`,
    /// so per-flight order survives any worker count. Defaults to
    /// `min(4, available cores)`.
    pub workers: usize,
    /// Per-worker ring capacity (rounded up to a power of two). A full
    /// ring backpressures the dispatcher — bounded memory under overload.
    pub ring_capacity: usize,
    /// Max events a worker applies between bookkeeping flushes (responder
    /// stamp merge + counter adds). Flushes also happen whenever the ring
    /// runs dry, so batching never delays an idle site's frontier.
    pub batch: usize,
}

impl Default for ApplyPoolConfig {
    fn default() -> Self {
        let cores =
            std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1);
        // 4096 slots × 16-byte messages keeps a worker's backlog ~64 KiB
        // while letting dispatcher and worker exchange the CPU in large
        // quanta when cores are scarce.
        ApplyPoolConfig { workers: cores.min(4), ring_capacity: 4096, batch: 64 }
    }
}

/// Shared bookkeeping targets the workers account into.
#[derive(Clone)]
pub struct ApplySink {
    /// The main unit's checkpoint responder: batch-joined stamps are
    /// merged into its processed frontier after the events are applied.
    pub responder: Arc<Mutex<MainUnitResponder>>,
    /// The site's counters (`processed`, delay sums, `apply_batches`).
    pub counters: Arc<SiteCounters>,
    /// Time base for update-delay accounting.
    pub clock: RuntimeClock,
    /// Regular-client update stream; `None` on sites without subscribers
    /// (mirrors), which then apply without a single `Event` clone.
    pub updates: Option<Publisher<Event>>,
}

enum WorkerMsg {
    Event(Arc<Event>),
    /// Park at the barrier twice (arrive + resume) so the dispatcher can
    /// mutate the store with every ring provably empty.
    Quiesce(Arc<Barrier>),
}

/// A pool of shard-affine apply workers fed over lock-free SPSC rings.
/// Owned by a single dispatcher thread (methods take `&mut self` — the
/// single-producer side of every ring).
pub struct ApplyPool {
    map: ShardMap,
    feeds: Vec<SpscSender<WorkerMsg>>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl ApplyPool {
    /// Spawn `config.workers` apply workers over `ede`.
    ///
    /// `crashed` mirrors the owning site's crash flag: when set, workers
    /// abandon their ring backlogs instead of draining them — the same
    /// wreckage a dead process leaves.
    pub fn spawn(
        ede: Arc<ShardedEde>,
        sink: ApplySink,
        crashed: Arc<AtomicBool>,
        config: ApplyPoolConfig,
    ) -> Self {
        let workers = config.workers.max(1);
        let mut feeds = Vec::with_capacity(workers);
        let mut threads = Vec::with_capacity(workers);
        for w in 0..workers {
            let (tx, rx) = spsc::<WorkerMsg>(config.ring_capacity);
            feeds.push(tx);
            let ede = Arc::clone(&ede);
            let sink = sink.clone();
            let crashed = Arc::clone(&crashed);
            let batch = config.batch.max(1);
            let t = std::thread::Builder::new()
                .name(format!("apply-{w}"))
                .spawn(move || worker_loop(rx, ede, sink, crashed, batch))
                .expect("spawn apply worker");
            threads.push(t);
        }
        ApplyPool { map: ede.shard_map(), feeds, threads }
    }

    /// Route one event to the worker owning its flight's shard, blocking
    /// (bounded-ring backpressure) while that worker's ring is full.
    pub fn dispatch(&mut self, event: Arc<Event>) {
        let worker = self.map.shard_of(event.flight) % self.feeds.len();
        // Err means the worker is gone — only possible after a crash,
        // where dropping the event is exactly the intended semantics.
        let _ = self.feeds[worker].send(WorkerMsg::Event(event));
    }

    /// Drain every worker and run `f` while all of them are parked at a
    /// barrier (rings empty, no shard lock held) — the seed-install
    /// window: applies dispatched before `quiesce` are fully in the store,
    /// applies dispatched after it happen on top of whatever `f` did.
    pub fn quiesce<R>(&mut self, f: impl FnOnce() -> R) -> R {
        let barrier = Arc::new(Barrier::new(self.feeds.len() + 1));
        let mut parked = 0;
        for feed in &mut self.feeds {
            if feed.send(WorkerMsg::Quiesce(Arc::clone(&barrier))).is_ok() {
                parked += 1;
            }
        }
        if parked < self.feeds.len() {
            // A worker died (crash path): the barrier would never fill.
            // The store is no longer consistent anyway; run f unparked.
            return f();
        }
        barrier.wait();
        let out = f();
        barrier.wait();
        out
    }

    /// Stop the pool: drop the rings (workers drain what remains unless
    /// the crash flag is set, then exit) and join the worker threads.
    pub fn shutdown(self) {
        drop(self.feeds);
        for t in self.threads {
            let _ = t.join();
        }
    }
}

// The trailing flush before each return leaves its batch-reset
// assignments dead — the macro keeps every flush site identical.
#[allow(unused_assignments)]
fn worker_loop(
    mut rx: mirror_core::ring::SpscReceiver<WorkerMsg>,
    ede: Arc<ShardedEde>,
    sink: ApplySink,
    crashed: Arc<AtomicBool>,
    batch: usize,
) {
    let map = ede.shard_map();
    // Batch-local bookkeeping, flushed per `batch` events or on idle.
    let mut joined: Option<VectorTimestamp> = None;
    let mut applied = 0u64;
    let mut delay_sum = 0u64;
    let mut delay_count = 0u64;
    let mut spins = 0u32;
    // Sampled once per batch, not per event: at apply rates of millions
    // of events/sec a per-event clock read dominates the apply itself,
    // and the µs-scale skew within one batch is far below the ms-scale
    // transit delays the mean-delay stat tracks.
    let mut now = 0u64;

    macro_rules! flush {
        () => {
            if applied > 0 {
                if let Some(stamp) = joined.take() {
                    sink.responder.lock().record_processed(&stamp);
                }
                sink.counters.processed.fetch_add(applied, Ordering::Relaxed);
                sink.counters.apply_batches.fetch_add(1, Ordering::Relaxed);
                // The staleness gauge's raw signal: when this site last
                // moved its applied frontier. `now` is the batch's single
                // clock sample, so the stamp costs no extra clock read.
                sink.counters.last_apply_us.fetch_max(now, Ordering::Relaxed);
                if delay_count > 0 {
                    sink.counters.delay_sum_us.fetch_add(delay_sum, Ordering::Relaxed);
                    sink.counters.delay_count.fetch_add(delay_count, Ordering::Relaxed);
                }
                applied = 0;
                delay_sum = 0;
                delay_count = 0;
            }
        };
    }

    loop {
        if crashed.load(Ordering::Relaxed) {
            // Abandon the backlog (and any unflushed bookkeeping): crash
            // semantics — a dead process records nothing.
            return;
        }
        match rx.try_recv() {
            RingRecv::Item(WorkerMsg::Event(ev)) => {
                spins = 0;
                if applied == 0 {
                    now = sink.clock.now_us();
                }
                let shard = map.shard_of(ev.flight);
                ede.process_shard(
                    shard,
                    &ev,
                    |u| {
                        delay_sum += now.saturating_sub(u.ingress_us);
                        delay_count += 1;
                        if let Some(p) = &sink.updates {
                            // One atomic load guards the clone + publish:
                            // a site nobody listens to (the common case
                            // for an edge-less mirror) skips both.
                            if p.has_subscribers() {
                                p.publish(u.clone());
                            }
                        }
                    },
                    |_| {},
                );
                match &mut joined {
                    Some(j) => j.merge(&ev.stamp),
                    None => joined = Some(ev.stamp.clone()),
                }
                applied += 1;
                if applied >= batch as u64 {
                    flush!();
                }
            }
            RingRecv::Item(WorkerMsg::Quiesce(b)) => {
                flush!();
                b.wait();
                b.wait();
            }
            RingRecv::Empty => {
                flush!();
                idle_backoff(&mut spins);
            }
            RingRecv::Disconnected => {
                flush!();
                return;
            }
        }
    }
}

/// Consumer-side wait: spin, then yield, then sleep with an escalating cap
/// (≤ 1 ms) — hot under load, near-zero CPU when the site idles, and the
/// crash flag is still observed at every wakeup.
pub(crate) fn idle_backoff(spins: &mut u32) {
    *spins = spins.saturating_add(1);
    if *spins < 64 {
        std::hint::spin_loop();
    } else if *spins < 192 {
        std::thread::yield_now();
    } else {
        let us = (*spins as u64 - 191).saturating_mul(50).min(1_000);
        std::thread::sleep(std::time::Duration::from_micros(us));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mirror_core::aux_unit::CENTRAL_SITE;
    use mirror_core::event::{FlightStatus, PositionFix};

    fn sink() -> ApplySink {
        ApplySink {
            responder: Arc::new(Mutex::new(MainUnitResponder::new(CENTRAL_SITE))),
            counters: Arc::new(SiteCounters::default()),
            clock: RuntimeClock::new(),
            updates: None,
        }
    }

    fn events(flights: u32, per_flight: u64) -> Vec<Arc<Event>> {
        let mut out = Vec::new();
        for seq in 1..=per_flight {
            for f in 0..flights {
                let mut e = Event::faa_position(
                    seq,
                    f,
                    PositionFix {
                        lat: 0.0,
                        lon: 0.0,
                        alt_ft: seq as f64,
                        speed_kts: 0.0,
                        heading_deg: 0.0,
                    },
                );
                e.stamp.advance(0, (seq - 1) * flights as u64 + f as u64 + 1);
                out.push(Arc::new(e));
            }
        }
        out
    }

    #[test]
    fn pool_applies_everything_and_matches_serial_hash() {
        let evs = events(12, 20);
        let mut serial = mirror_ede::Ede::new();
        for e in &evs {
            serial.process(e);
        }

        let ede = Arc::new(ShardedEde::new(8));
        let s = sink();
        let crashed = Arc::new(AtomicBool::new(false));
        let mut pool = ApplyPool::spawn(
            Arc::clone(&ede),
            s.clone(),
            crashed,
            ApplyPoolConfig { workers: 2, ring_capacity: 64, batch: 16 },
        );
        for e in &evs {
            pool.dispatch(Arc::clone(e));
        }
        pool.shutdown();

        assert_eq!(ede.state_hash(), serial.state_hash());
        assert_eq!(ede.applied(), evs.len() as u64);
        assert_eq!(s.counters.processed.load(Ordering::Relaxed), evs.len() as u64);
        assert!(s.counters.apply_batches.load(Ordering::Relaxed) > 0);
        // The frontier covers every dispatched stamp after shutdown.
        let processed = s.responder.lock().processed().clone();
        for e in &evs {
            assert!(e.stamp.dominated_by(&processed), "frontier covers {:?}", e.stamp);
        }
    }

    #[test]
    fn quiesce_installs_between_batches() {
        let ede = Arc::new(ShardedEde::new(4));
        let s = sink();
        let crashed = Arc::new(AtomicBool::new(false));
        let mut pool = ApplyPool::spawn(
            Arc::clone(&ede),
            s,
            crashed,
            ApplyPoolConfig { workers: 2, ring_capacity: 16, batch: 8 },
        );
        for e in events(6, 5) {
            pool.dispatch(e);
        }
        // Build a replacement state and install it under quiesce.
        let mut seed = mirror_ede::OperationalState::new();
        seed.apply(&Event::delta_status(1, 777, FlightStatus::Landed));
        let want = seed.state_hash();
        pool.quiesce(|| ede.install_state(seed));
        // Everything dispatched before the quiesce is subsumed by the
        // install; the store now hashes as the seed alone.
        assert_eq!(ede.state_hash(), want);
        // Applies after the quiesce land on top of the seed.
        let mut e = Event::delta_status(2, 777, FlightStatus::AtGate);
        e.stamp.advance(0, 1);
        pool.dispatch(Arc::new(e));
        pool.shutdown();
        assert_eq!(
            ede.freeze(VectorTimestamp::empty()).0.flight(777).unwrap().status,
            FlightStatus::Arrived,
            "post-quiesce apply ran the AtGate→Arrived derivation on the seed"
        );
    }

    #[test]
    fn crash_abandons_backlog() {
        let ede = Arc::new(ShardedEde::new(4));
        let s = sink();
        let crashed = Arc::new(AtomicBool::new(false));
        let mut pool = ApplyPool::spawn(
            Arc::clone(&ede),
            s.clone(),
            Arc::clone(&crashed),
            // Tiny ring + tiny pool: the backlog outlives the crash flag.
            ApplyPoolConfig { workers: 1, ring_capacity: 2, batch: 64 },
        );
        crashed.store(true, Ordering::SeqCst);
        for e in events(4, 4) {
            pool.dispatch(e);
        }
        pool.shutdown();
        // Workers saw the crash flag; not everything was applied.
        assert!(ede.applied() < 16, "crash must abandon the backlog (applied {})", ede.applied());
    }
}
