//! Durable journaling for the central site.
//!
//! When a cluster is started with a [`DurabilityConfig`], the central
//! sending task journals each `(send_idx, event)` to a
//! [`mirror_store::EventLog`] **as it enters the backup queue**: the
//! journal write reuses the `SharedEvent` cached wire encoding, so
//! durability costs one `write(2)`, not a second encode. Checkpoint commits
//! advance the log's truncation watermark to the backup queue's oldest
//! retained index — the on-disk twin of `BackupQueue::prune` — and whole
//! segments below the watermark are deleted.
//!
//! The journal extends the cluster's healing range:
//!
//! * [`Cluster::resync_mirror`](crate::Cluster::resync_mirror) falls back
//!   to log replay when the requested index predates the in-memory suffix;
//! * [`Cluster::recover_site`](crate::Cluster::recover_site) cold-starts a
//!   mirror from the persisted snapshot plus log replay, with no live seed
//!   from the central EDE required.

use std::io;
use std::path::PathBuf;
use std::sync::mpsc;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use parking_lot::Mutex;

use mirror_core::event::Event;
use mirror_core::timestamp::VectorTimestamp;
use mirror_echo::wire::SharedEvent;
use mirror_ede::OperationalState;
use mirror_store::{EventLog, FsyncPolicy, LogConfig, SnapshotStore};

/// Where and how durably the central site journals mirrored events.
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// Directory holding the event log segments, watermark, and snapshot.
    pub dir: PathBuf,
    /// Fsync discipline for journal appends (commit always syncs).
    pub fsync: FsyncPolicy,
    /// Roll to a new log segment past this size (bytes).
    pub segment_bytes: u64,
}

impl DurabilityConfig {
    /// Durability rooted at `dir` with the default log tuning
    /// ([`LogConfig::default`]: fsync every 64 appends, 64 MiB segments).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        let defaults = LogConfig::default();
        Self { dir: dir.into(), fsync: defaults.fsync, segment_bytes: defaults.segment_bytes }
    }
}

/// Work shipped to the journal's writer thread. FIFO queue order is the
/// correctness backbone: a `Commit` covers exactly the appends enqueued
/// before it, and a `Barrier` ack means every earlier op has reached the
/// [`EventLog`].
///
/// An append carries the [`SharedEvent`], not bytes: the writer thread
/// forces the shared encode cache, so the encoding cost lands off the
/// mirroring data path — and any bridge that later needs the same frame
/// reuses the cached buffer instead of re-encoding.
enum Op {
    Append(u64, SharedEvent),
    Commit(u64),
    Barrier(mpsc::SyncSender<()>),
}

/// The writer thread's inbox. Appends push under the mutex and return
/// **without notifying** — the writer drains on a short poll — because a
/// per-append wake-up is a context-switch ping-pong that costs more than
/// the write itself (~20 µs/event measured on a single-core host, against
/// sub-microsecond for the push). Commits, barriers, and shutdown do
/// notify: they are rare and latency-sensitive.
struct OpQueue {
    /// `(ops, closed)` under one std mutex so the condvar can guard both.
    state: std::sync::Mutex<(Vec<Op>, bool)>,
    cv: std::sync::Condvar,
}

/// How long the writer sleeps between looks at an empty inbox. Bounds the
/// extra durability lag async journaling adds on top of the fsync policy.
const WRITER_POLL: Duration = Duration::from_millis(1);

/// The central site's handle on its durable stores.
///
/// Appends and commits are **asynchronous**: the caller pushes the op onto
/// the writer inbox (an `Arc` bump and a mutex push, well under a
/// microsecond, no thread wake-up) and a dedicated writer thread drives
/// the [`EventLog`] in batches — the WAL-writer pattern, keeping disk
/// latency and page-cache pressure off the mirroring data path entirely.
/// Reads ([`replay_from`](Journal::replay_from) etc.) first drain the
/// queue through a barrier, so they always observe every op enqueued
/// before them.
///
/// IO errors on the writer thread are recorded (first error wins) rather
/// than propagated — the data path must not stall on a sick disk;
/// operators poll [`last_error`](Journal::last_error).
pub struct Journal {
    queue: Arc<OpQueue>,
    writer: Mutex<Option<thread::JoinHandle<()>>>,
    log: Arc<Mutex<EventLog>>,
    snapshots: SnapshotStore,
    error: Arc<Mutex<Option<io::Error>>>,
    /// Fault injection: artificial stall (µs) inside
    /// [`save_snapshot`](Journal::save_snapshot), modeling a slow or
    /// contended disk. Tests use it to prove snapshot persistence never
    /// blocks event processing.
    snapshot_save_pad_us: std::sync::atomic::AtomicU64,
    /// Crash simulation: see [`crash`](Journal::crash).
    crashed: std::sync::atomic::AtomicBool,
}

impl Journal {
    /// Open (or create) the stores under `cfg.dir`, running log recovery,
    /// and start the writer thread.
    pub fn open(cfg: &DurabilityConfig) -> io::Result<Self> {
        let log = Arc::new(Mutex::new(EventLog::open(
            &cfg.dir,
            LogConfig { fsync: cfg.fsync, segment_bytes: cfg.segment_bytes },
        )?));
        let snapshots = SnapshotStore::open(&cfg.dir)?;
        let error = Arc::new(Mutex::new(None));
        let queue = Arc::new(OpQueue {
            state: std::sync::Mutex::new((Vec::new(), false)),
            cv: std::sync::Condvar::new(),
        });
        let writer = {
            let log = Arc::clone(&log);
            let error = Arc::clone(&error);
            let queue = Arc::clone(&queue);
            thread::Builder::new()
                .name("mirror-journal".into())
                .spawn(move || loop {
                    let batch = {
                        let mut state = queue.state.lock().unwrap();
                        while state.0.is_empty() {
                            if state.1 {
                                return;
                            }
                            state = queue.cv.wait_timeout(state, WRITER_POLL).unwrap().0;
                        }
                        std::mem::take(&mut state.0)
                    };
                    // One log lock per batch, not per op.
                    let mut log = log.lock();
                    for op in batch {
                        let r = match op {
                            Op::Append(idx, event) => log.append(idx, &event.encoded()),
                            Op::Commit(floor) => log.commit(floor),
                            Op::Barrier(ack) => {
                                let _ = ack.send(());
                                Ok(())
                            }
                        };
                        if let Err(e) = r {
                            let mut slot = error.lock();
                            if slot.is_none() {
                                *slot = Some(e);
                            }
                        }
                    }
                })
                .expect("spawn mirror-journal writer")
        };
        Ok(Self {
            queue,
            writer: Mutex::new(Some(writer)),
            log,
            snapshots,
            error,
            snapshot_save_pad_us: std::sync::atomic::AtomicU64::new(0),
            crashed: std::sync::atomic::AtomicBool::new(false),
        })
    }

    fn send(&self, op: Op, notify: bool) {
        if self.crashed.load(std::sync::atomic::Ordering::Acquire) {
            // Dropping the op also drops a Barrier's ack sender, so a
            // concurrent `drain` unblocks instead of hanging forever.
            return;
        }
        self.queue.state.lock().unwrap().0.push(op);
        if notify {
            self.queue.cv.notify_one();
        }
    }

    /// Block until the writer has applied every op enqueued before now.
    fn drain(&self) {
        let (ack_tx, ack_rx) = mpsc::sync_channel(1);
        self.send(Op::Barrier(ack_tx), true);
        let _ = ack_rx.recv();
    }

    /// Journal one mirrored event (called on the aux thread, between the
    /// backup-queue push and the data-channel publish). Non-blocking and
    /// wake-free — the cost on the data path is two reference-count bumps
    /// and a queue push; even the wire encoding happens on the writer
    /// thread (into the event's shared encode cache, so bridges reuse it).
    /// The writer picks the op up within the 1 ms poll interval.
    pub fn append(&self, idx: u64, event: &SharedEvent) {
        self.send(Op::Append(idx, event.clone()), false);
    }

    /// Checkpoint commit: sync the log and advance the truncation
    /// watermark to `floor` (the backup queue's oldest retained index).
    /// Non-blocking; FIFO order makes it cover all prior appends.
    pub fn commit(&self, floor: u64) {
        self.send(Op::Commit(floor), true);
    }

    /// Drain pending ops and force the log to stable storage — the barrier
    /// a cold-start recovery takes before reading the directory.
    pub fn flush(&self) -> io::Result<()> {
        self.drain();
        self.log.lock().sync()
    }

    /// Replay retained entries with `send_idx >= from_idx`, in order.
    pub fn replay_from(&self, from_idx: u64) -> io::Result<Vec<(u64, Arc<Event>)>> {
        self.drain();
        self.log.lock().replay_from(from_idx)
    }

    /// Oldest send index still present in the log (`None` when empty).
    pub fn first_retained_idx(&self) -> Option<u64> {
        self.drain();
        self.log.lock().first_retained_idx()
    }

    /// Highest send index journaled so far.
    pub fn last_idx(&self) -> Option<u64> {
        self.drain();
        self.log.lock().last_idx()
    }

    /// Persist an EDE snapshot consistent with `as_of` (atomic replace).
    pub fn save_snapshot(
        &self,
        state: &OperationalState,
        as_of: &VectorTimestamp,
    ) -> io::Result<()> {
        let pad = self.snapshot_save_pad_us.load(std::sync::atomic::Ordering::Relaxed);
        if pad > 0 {
            thread::sleep(Duration::from_micros(pad));
        }
        self.snapshots.save(state, as_of)
    }

    /// Inject an artificial stall into every subsequent
    /// [`save_snapshot`](Journal::save_snapshot) (fault injection,
    /// mirroring the transport-level `faults` machinery): tests assert
    /// that a slow durable save cannot stall the event hot path.
    #[doc(hidden)]
    pub fn set_snapshot_save_pad(&self, pad: Duration) {
        self.snapshot_save_pad_us
            .store(pad.as_micros() as u64, std::sync::atomic::Ordering::Relaxed);
    }

    /// Load the persisted EDE snapshot, if one exists and is intact (a
    /// torn/corrupt file reads as absent). Non-mutating.
    pub fn load_snapshot(&self) -> io::Result<Option<mirror_store::PersistedSnapshot>> {
        self.snapshots.load()
    }

    /// Cold-start recovery **through** the live journal: load the persisted
    /// snapshot, replay the full retained log suffix, and rebuild the EDE
    /// state — all served by this journal's own lock-protected
    /// [`EventLog`], with a drain barrier covering every op enqueued before
    /// the call.
    ///
    /// This is the only safe way to recover while the journal is live:
    /// [`mirror_store::recover`] opens a *second* `EventLog` on the
    /// directory, whose destructive crash repair (truncation, segment
    /// deletion) races any append this journal flushes mid-scan and can
    /// permanently corrupt the live log. Concurrent appends stay safe here
    /// because the replay holds the log mutex; events journaled after the
    /// drain barrier are simply not part of the replay — a seeding caller
    /// picks them up from its live subscription instead.
    pub fn recover(&self) -> io::Result<mirror_store::Recovered> {
        let snapshot = self.snapshots.load()?;
        let entries = self.replay_from(0)?;
        Ok(mirror_store::rebuild(snapshot, entries))
    }

    /// The first IO error the journal swallowed on the write path, if any.
    /// Drains first, so a sick disk surfaces as soon as an op has hit it.
    pub fn last_error(&self) -> Option<io::ErrorKind> {
        self.drain();
        self.error.lock().as_ref().map(|e| e.kind())
    }

    /// Simulate a process crash: queued-but-unwritten ops are discarded,
    /// the writer thread exits, and the underlying [`EventLog`] is
    /// abandoned mid-write (its buffered tail lost, a torn final record
    /// possibly on disk). The directory is left exactly as a crashed
    /// central would leave it — a later [`Journal::open`] on the same
    /// [`DurabilityConfig`] runs the store's torn-write crash repair.
    pub fn crash(&self) {
        use std::sync::atomic::Ordering;
        if self.crashed.swap(true, Ordering::AcqRel) {
            return;
        }
        {
            // Ops enqueued before the crash but not yet written are lost,
            // like a process dying with its WAL inbox unflushed.
            let mut state = self.queue.state.lock().unwrap();
            state.0.clear();
            state.1 = true;
        }
        self.queue.cv.notify_one();
        if let Some(w) = self.writer.lock().take() {
            let _ = w.join();
        }
        self.log.lock().abandon();
    }

    /// Whether [`crash`](Journal::crash) has been called.
    pub fn is_crashed(&self) -> bool {
        self.crashed.load(std::sync::atomic::Ordering::Acquire)
    }
}

impl Drop for Journal {
    /// Close the queue and join the writer: every enqueued op reaches the
    /// log (whose own drop then flushes its append buffer).
    fn drop(&mut self) {
        if self.is_crashed() {
            // The writer is already joined and the log abandoned; a clean
            // drain here would undo the simulated crash.
            return;
        }
        self.drain();
        self.queue.state.lock().unwrap().1 = true;
        self.queue.cv.notify_one();
        if let Some(w) = self.writer.lock().take() {
            let _ = w.join();
        }
    }
}

/// What [`Cluster::resync_mirror`](crate::Cluster::resync_mirror) did.
///
/// Callers must treat [`ResyncOutcome::Gap`] as a hard miss — the lagging
/// mirror cannot be healed by replay and needs a snapshot seed (e.g.
/// [`Cluster::rejoin_mirror`](crate::Cluster::rejoin_mirror) or
/// [`Cluster::recover_site`](crate::Cluster::recover_site)).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResyncOutcome {
    /// The full suffix from the requested index was replayed.
    Replayed {
        /// Number of events republished on the data channel.
        events: usize,
        /// Where the suffix came from.
        source: ResyncSource,
    },
    /// Neither the in-memory backup queue nor the durable log retains the
    /// requested index: replay would silently skip events.
    Gap {
        /// Oldest index that *is* retained (in memory or on disk), if any.
        first_retained: Option<u64>,
    },
}

/// Which store served a successful resync.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResyncSource {
    /// The in-memory backup queue (outage shorter than one commit).
    Memory,
    /// The durable event log (outage longer than the in-memory suffix).
    DurableLog,
}
