//! Epoch-keyed snapshot cache for the initial-state serving path.
//!
//! A request storm — the paper's recovering-airport case (§1) — used to
//! cost one full flight-map deep-clone *under the EDE mutex* per request.
//! The cache collapses a storm to O(1) amortized: the first request of an
//! epoch captures the state once, every later request of the same (or a
//! close-enough) epoch clones an `Arc`, and the wire encoding is computed
//! once per cached snapshot and shared by reference count
//! ([`ServedSnapshot::wire`], the PR-§11 encode-once pattern applied to
//! snapshots).
//!
//! Staleness is **bounded, not zero**: [`SnapshotCachePolicy`] allows a
//! cached snapshot to be served while it is at most `max_stale_events`
//! state changes and `max_stale` wall-clock behind the live state. That is
//! safe by construction — a snapshot carries its `as_of` frontier and
//! clients replay the update stream from there, so a slightly stale base
//! converges to the live state after replay (the same argument that makes
//! the paper's coalescing/selective mirror functions safe).

use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use bytes::Bytes;
use parking_lot::Mutex;

use mirror_ede::Snapshot;

/// How stale a cached snapshot may be and still be served.
///
/// `Default` allows 64 state-changing events or 2 ms of age, whichever
/// trips first — deep enough to absorb a burst arriving alongside a live
/// update stream, shallow enough that a recovering display replays only a
/// handful of events it would have received anyway.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotCachePolicy {
    /// Serve a cached snapshot while the live epoch is at most this many
    /// state changes ahead of the snapshot's epoch.
    pub max_stale_events: u64,
    /// ... and the snapshot is at most this old.
    pub max_stale: Duration,
}

impl Default for SnapshotCachePolicy {
    fn default() -> Self {
        Self { max_stale_events: 64, max_stale: Duration::from_millis(2) }
    }
}

impl SnapshotCachePolicy {
    /// Zero-staleness policy: every request recaptures the live state —
    /// the pre-cache behaviour, kept for benchmarking and for callers that
    /// insist on exactly-current snapshots.
    pub fn fresh() -> Self {
        Self { max_stale_events: 0, max_stale: Duration::ZERO }
    }
}

/// A snapshot as handed to a requesting client: shared state plus a
/// lazily-computed, shared wire encoding.
///
/// Cloning is two reference-count bumps. Derefs to [`Snapshot`], so
/// existing consumers (`flight_count`, `restore`, `as_of`, ...) read it
/// unchanged; [`wire`](Self::wire) yields the encode-once frame bytes that
/// every client of the same cached snapshot shares.
#[derive(Clone)]
pub struct ServedSnapshot {
    snap: Arc<Snapshot>,
    wire: Arc<OnceLock<Bytes>>,
}

impl ServedSnapshot {
    /// Wrap a freshly captured snapshot (encoding not yet computed).
    pub fn new(snap: Snapshot) -> Self {
        Self { snap: Arc::new(snap), wire: Arc::new(OnceLock::new()) }
    }

    /// The shared snapshot.
    pub fn snapshot(&self) -> &Arc<Snapshot> {
        &self.snap
    }

    /// The wire encoding ([`mirror_echo::wire::encode_snapshot`]): encoded
    /// at most once per cached snapshot, shared by every clone. Cloning
    /// the returned [`Bytes`] is a reference-count bump.
    pub fn wire(&self) -> Bytes {
        self.wire.get_or_init(|| mirror_echo::wire::encode_snapshot(&self.snap)).clone()
    }

    /// Extract an owned [`Snapshot`], cloning only if other handles to the
    /// same cached snapshot are still alive.
    pub fn into_snapshot(self) -> Snapshot {
        drop(self.wire);
        Arc::try_unwrap(self.snap).unwrap_or_else(|arc| (*arc).clone())
    }
}

impl std::ops::Deref for ServedSnapshot {
    type Target = Snapshot;
    fn deref(&self) -> &Snapshot {
        &self.snap
    }
}

impl std::fmt::Debug for ServedSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServedSnapshot")
            .field("flights", &self.snap.flight_count())
            .field("as_of", &self.snap.as_of)
            .field("encoded", &self.wire.get().is_some())
            .finish()
    }
}

/// One cached capture, tagged with the epoch and instant it reflects.
struct Entry {
    epoch: u64,
    taken: Instant,
    served: ServedSnapshot,
}

/// The gateway workers' shared snapshot cache.
///
/// `get` holds the cache mutex across a miss's capture on purpose: under a
/// storm, concurrent misses collapse into **one** capture (single-flight) —
/// the waiting workers then hit the freshly inserted entry instead of
/// piling duplicate deep-clones onto the EDE mutex.
pub struct SnapshotCache {
    policy: SnapshotCachePolicy,
    slot: Mutex<Option<Entry>>,
}

impl SnapshotCache {
    /// An empty cache under `policy`.
    pub fn new(policy: SnapshotCachePolicy) -> Self {
        Self { policy, slot: Mutex::new(None) }
    }

    /// The staleness bound this cache enforces.
    pub fn policy(&self) -> SnapshotCachePolicy {
        self.policy
    }

    /// Serve from cache if the cached entry is within the staleness bound
    /// of `live_epoch`, else capture via `capture` (which returns the
    /// snapshot *and* the epoch it reflects, read under the same state
    /// lock) and cache the result. Returns the snapshot and whether it was
    /// a cache hit.
    pub fn get(
        &self,
        live_epoch: u64,
        capture: impl FnOnce() -> (Snapshot, u64),
    ) -> (ServedSnapshot, bool) {
        let mut slot = self.slot.lock();
        if let Some(e) = slot.as_ref() {
            // An epoch *regression* (live < cached, e.g. around a state
            // reinstall) is never a hit, however small the distance.
            let fresh_enough = live_epoch >= e.epoch
                && live_epoch - e.epoch <= self.policy.max_stale_events
                && e.taken.elapsed() <= self.policy.max_stale;
            if fresh_enough {
                return (e.served.clone(), true);
            }
        }
        let (snap, epoch) = capture();
        let served = ServedSnapshot::new(snap);
        *slot = Some(Entry { epoch, taken: Instant::now(), served: served.clone() });
        (served, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mirror_core::event::{Event, PositionFix};
    use mirror_core::timestamp::VectorTimestamp;
    use mirror_ede::OperationalState;

    fn fix() -> PositionFix {
        PositionFix { lat: 1.0, lon: 2.0, alt_ft: 30000.0, speed_kts: 450.0, heading_deg: 10.0 }
    }

    fn state(n: u32) -> OperationalState {
        let mut s = OperationalState::new();
        for f in 0..n {
            s.apply(&Event::faa_position(1, f, fix()));
        }
        s
    }

    fn capture_from(s: &OperationalState) -> (Snapshot, u64) {
        (Snapshot::capture(s, VectorTimestamp::empty()), s.epoch())
    }

    #[test]
    fn same_epoch_hits_without_recapture() {
        let s = state(5);
        let cache = SnapshotCache::new(SnapshotCachePolicy {
            max_stale_events: 0,
            max_stale: Duration::from_secs(3600),
        });
        let mut captures = 0;
        for i in 0..10 {
            let (served, hit) = cache.get(s.epoch(), || {
                captures += 1;
                capture_from(&s)
            });
            assert_eq!(served.flight_count(), 5);
            assert_eq!(hit, i > 0);
        }
        assert_eq!(captures, 1);
    }

    #[test]
    fn bounded_staleness_window() {
        let mut s = state(5);
        let cache = SnapshotCache::new(SnapshotCachePolicy {
            max_stale_events: 3,
            max_stale: Duration::from_secs(3600),
        });
        let (_, hit) = cache.get(s.epoch(), || capture_from(&s));
        assert!(!hit);
        // Within the event bound: still a hit, even though state moved.
        for f in 100..103 {
            s.apply(&Event::faa_position(1, f, fix()));
        }
        let (served, hit) = cache.get(s.epoch(), || capture_from(&s));
        assert!(hit, "3 events behind is within the bound");
        assert_eq!(served.flight_count(), 5, "cached capture served");
        // One more change crosses the bound: recapture.
        s.apply(&Event::faa_position(1, 103, fix()));
        let (served, hit) = cache.get(s.epoch(), || capture_from(&s));
        assert!(!hit, "4 events behind exceeds the bound");
        assert_eq!(served.flight_count(), 9);
    }

    #[test]
    fn age_bound_expires_entries() {
        let s = state(2);
        let cache = SnapshotCache::new(SnapshotCachePolicy {
            max_stale_events: u64::MAX,
            max_stale: Duration::from_millis(20),
        });
        let (_, hit) = cache.get(s.epoch(), || capture_from(&s));
        assert!(!hit);
        let (_, hit) = cache.get(s.epoch(), || capture_from(&s));
        assert!(hit);
        std::thread::sleep(Duration::from_millis(30));
        let (_, hit) = cache.get(s.epoch(), || capture_from(&s));
        assert!(!hit, "aged-out entry must recapture");
    }

    #[test]
    fn epoch_regression_is_a_miss() {
        let s = state(2);
        let cache = SnapshotCache::new(SnapshotCachePolicy {
            max_stale_events: u64::MAX,
            max_stale: Duration::from_secs(3600),
        });
        let (_, hit) = cache.get(100, || (Snapshot::capture(&s, VectorTimestamp::empty()), 100));
        assert!(!hit);
        // Live epoch below the cached epoch (reinstalled state): miss.
        let (_, hit) = cache.get(7, || (Snapshot::capture(&s, VectorTimestamp::empty()), 7));
        assert!(!hit, "epoch regression must not serve the stale cache");
    }

    #[test]
    fn wire_encodes_once_and_is_shared() {
        let s = state(4);
        let served = ServedSnapshot::new(Snapshot::capture(&s, VectorTimestamp::empty()));
        let clone = served.clone();
        let w1 = served.wire();
        let w2 = clone.wire();
        // Same buffer, not merely equal bytes: the encode-once contract.
        assert_eq!(w1.as_ptr(), w2.as_ptr());
        let decoded = mirror_echo::wire::decode_snapshot(w1).expect("decode");
        assert_eq!(decoded.restore().state_hash(), s.state_hash());
    }

    #[test]
    fn into_snapshot_avoids_clone_when_unique() {
        let s = state(3);
        let served = ServedSnapshot::new(Snapshot::capture(&s, VectorTimestamp::empty()));
        let snap = served.into_snapshot();
        assert_eq!(snap.flight_count(), 3);
        assert_eq!(snap.into_state().state_hash(), s.state_hash());
    }
}
