//! Content-partitioned mirroring: shard the flight space across mirror
//! groups.
//!
//! Full replication — every mirror holding every flight — caps a cluster's
//! aggregate capacity at what one site can apply and store. This module
//! multiplies both: the flight-id space is hashed into
//! [`PARTITION_SLOTS`] slots, each slot owned by one **mirror group** (an
//! independent [`Cluster`]: one central plus its mirrors, running the
//! paper's full checkpoint/adaptation protocol over *its* flights only).
//! With `G` groups the cluster holds `G×` the flights and applies `G×` the
//! update stream at flat per-site memory, because each site still stores
//! and applies only its group's share.
//!
//! What stays per-group *for free*, because each group is a whole
//! [`Cluster`]: checkpoint rounds, commit watermarks, journal truncation
//! floors, adaptation, failover. One slow group never stalls another
//! group's commits — per-partition checkpointing falls out of the
//! structure rather than from new protocol.
//!
//! The coordination that *is* new lives here:
//!
//! * **Routing** ([`PartitionedCluster::submit`]): each source event goes
//!   only to the group owning its flight's slot, tracked by a per-group
//!   `routed` counter that doubles as the migration drain target.
//! * **Map carriage**: the authoritative [`PartitionMap`] is installed on
//!   every group coordinator ([`CentralSite::set_partition_map`]), from
//!   where it rides every checkpoint COMMIT to the group's mirrors, fenced
//!   by its own epoch — late joiners converge without a dedicated
//!   broadcast.
//! * **Keyed serving**: gateways share one [`PartitionTable`]; a keyed
//!   request for a flight another group owns fails fast with
//!   [`RequestError::WrongPartition`](crate::requests::RequestError)
//!   naming the owner, which the ois balancer re-routes on.
//! * **Live rebalancing** ([`PartitionedCluster::migrate_slot`]): a slot
//!   moves between groups mid-traffic with zero committed-event loss,
//!   reusing the seeding machinery of elastic scale-out — see the method
//!   docs for the protocol.
//!
//! [`CentralSite::set_partition_map`]: crate::site::CentralSite::set_partition_map

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use mirror_core::event::Event;
use mirror_core::timestamp::VectorTimestamp;
use mirror_core::{FlightId, GroupId, PartitionMap, PARTITION_SLOTS};
use mirror_ede::{FlightMap, OperationalState, Snapshot};

use crate::cluster::{Cluster, ClusterConfig, ClusterStats};
use crate::requests::{GatewayConfig, PartitionTable, RequestGateway};

/// Start-up configuration for a partitioned cluster.
#[derive(Debug, Clone)]
pub struct PartitionedConfig {
    /// Number of mirror groups (clamped to at least 1). The initial map
    /// is [`PartitionMap::uniform`]: slots round-robined across groups.
    pub groups: u16,
    /// Per-group cluster configuration (every group gets the same one).
    /// With durability configured, each group journals under its own
    /// `group-<g>` subdirectory of the configured root — per-partition
    /// commit and truncation floors stay independent on disk too.
    ///
    /// Groups must replicate their slice fully (the default
    /// [`MirrorFnKind::Simple`](mirror_core::MirrorFnKind) with no
    /// suppression rules): the migration drain barrier equates a group's
    /// per-site processed counts with its routed count, which selective
    /// or coalescing mirroring would break.
    pub group: ClusterConfig,
}

impl Default for PartitionedConfig {
    fn default() -> Self {
        Self { groups: 1, group: ClusterConfig::default() }
    }
}

/// Why a slot migration failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrateError {
    /// The slot is already mid-migration.
    InProgress,
    /// The destination group does not exist.
    NoSuchGroup(GroupId),
    /// The source group failed to drain its routed backlog within the
    /// deadline; the slot was rolled back to its original owner and the
    /// events buffered meanwhile were replayed there — no loss.
    DrainTimeout,
}

impl std::fmt::Display for MigrateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MigrateError::InProgress => write!(f, "slot already migrating"),
            MigrateError::NoSuchGroup(g) => write!(f, "no partition group {g}"),
            MigrateError::DrainTimeout => write!(f, "source group failed to drain in time"),
        }
    }
}
impl std::error::Error for MigrateError {}

/// What a completed [`PartitionedCluster::migrate_slot`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigrationReport {
    /// The migrated slot.
    pub slot: usize,
    /// The group that owned it before.
    pub from: GroupId,
    /// The group that owns it now.
    pub to: GroupId,
    /// Flights captured at the source and merged into the target group.
    pub moved_flights: usize,
    /// Events buffered during the freeze and replayed into the target.
    pub replayed: usize,
    /// Partition-map epoch after the move.
    pub epoch: u64,
}

/// Per-slot routing state. The mutex is the migration linchpin: a submit
/// holds it across counter-increment-plus-delivery, so when the migrator
/// freezes the slot and *then* reads the source group's routed counter,
/// that read covers every event that will ever reach the source — the
/// drain barrier can't pass with a slot event still in flight. Off
/// migration the lock is uncontended (one of [`PARTITION_SLOTS`], held
/// for a ring push).
struct SlotRoute {
    /// Owning group.
    owner: GroupId,
    /// Frozen for migration: submits buffer instead of routing.
    migrating: bool,
    /// Events buffered while frozen, replayed into the new owner in
    /// arrival order at the flip.
    buffer: Vec<Event>,
}

struct Group {
    cluster: Cluster,
    /// Events routed to this group so far — the migration drain target.
    routed: AtomicU64,
}

/// A cluster of mirror groups jointly serving a content-partitioned
/// flight space. See the [module docs](self) for the architecture.
pub struct PartitionedCluster {
    groups: Vec<Group>,
    routes: Vec<Mutex<SlotRoute>>,
    /// The authoritative map; epoch bumps happen here, then publish to
    /// the gateway table and every group coordinator.
    map: Mutex<PartitionMap>,
    /// Shared with every gateway spawned via
    /// [`serve_group_requests`](Self::serve_group_requests).
    table: Arc<PartitionTable>,
}

impl PartitionedCluster {
    /// Start `cfg.groups` mirror groups under a uniform partition map.
    pub fn start(cfg: PartitionedConfig) -> Self {
        let n = cfg.groups.max(1);
        let map = PartitionMap::uniform(n);
        let groups: Vec<Group> = (0..n)
            .map(|g| {
                let mut gc = cfg.group.clone();
                if let Some(d) = &mut gc.durability {
                    d.dir = d.dir.join(format!("group-{g}"));
                }
                let cluster = Cluster::start(gc);
                cluster.central().set_partition_map(map.clone());
                Group { cluster, routed: AtomicU64::new(0) }
            })
            .collect();
        let routes = (0..PARTITION_SLOTS)
            .map(|s| {
                Mutex::new(SlotRoute {
                    owner: map.group_of_slot(s),
                    migrating: false,
                    buffer: Vec::new(),
                })
            })
            .collect();
        let table = Arc::new(PartitionTable::new(map.clone()));
        PartitionedCluster { groups, routes, map: Mutex::new(map), table }
    }

    /// Number of mirror groups.
    pub fn groups(&self) -> usize {
        self.groups.len()
    }

    /// The group cluster `g` (for per-group operations: failover, edge
    /// tiers, journaling — everything a standalone [`Cluster`] can do).
    pub fn group(&self, g: GroupId) -> &Cluster {
        &self.groups[g as usize].cluster
    }

    /// A clone of the authoritative partition map.
    pub fn map(&self) -> PartitionMap {
        self.map.lock().clone()
    }

    /// Current partition-map epoch.
    pub fn epoch(&self) -> u64 {
        self.map.lock().epoch()
    }

    /// The group currently owning `flight`'s slot.
    pub fn group_of(&self, flight: FlightId) -> GroupId {
        self.routes[PartitionMap::slot_of(flight)].lock().owner
    }

    /// The gateway-shared partition table (for external routers — the
    /// ois balancer syncs its cached map from here).
    pub fn partition_table(&self) -> Arc<PartitionTable> {
        Arc::clone(&self.table)
    }

    /// Events routed to each group so far.
    pub fn routed_per_group(&self) -> Vec<u64> {
        self.groups.iter().map(|g| g.routed.load(Ordering::SeqCst)).collect()
    }

    /// Route one source event to the group owning its flight's slot; a
    /// frozen (mid-migration) slot buffers it for replay at the flip.
    pub fn submit(&self, event: Event) {
        let slot = PartitionMap::slot_of(event.flight);
        let mut route = self.routes[slot].lock();
        if route.migrating {
            route.buffer.push(event);
            return;
        }
        let g = route.owner as usize;
        // Count, then deliver, both under the slot lock: the migrator's
        // post-freeze read of `routed` covers this event (see SlotRoute).
        self.groups[g].routed.fetch_add(1, Ordering::SeqCst);
        self.groups[g].cluster.submit(event);
    }

    /// Spawn a partition-aware request gateway on group `g`'s central:
    /// keyed requests for flights the group doesn't own are refused with
    /// [`RequestError::WrongPartition`](crate::requests::RequestError)
    /// through the shared, migration-updated [`PartitionTable`].
    pub fn serve_group_requests(&self, g: GroupId, mut cfg: GatewayConfig) -> RequestGateway {
        cfg.partition = Some((g, Arc::clone(&self.table)));
        self.groups[g as usize].cluster.central().serve_requests_with(cfg)
    }

    /// Block until every group has applied everything routed to it (at
    /// the central *and* every mirror), or the timeout expires.
    pub fn wait_quiesced(&self, timeout: Duration) -> bool {
        self.groups.iter().all(|g| {
            let target = g.routed.load(Ordering::SeqCst);
            g.cluster.wait_all_processed(target, timeout)
        })
    }

    /// Per-group cluster statistics, group order.
    pub fn stats(&self) -> Vec<ClusterStats> {
        self.groups.iter().map(|g| g.cluster.stats()).collect()
    }

    /// The union state hash across all group centrals — equals the
    /// [`state_hash`](OperationalState::state_hash) a single
    /// unpartitioned site would report after applying the same events,
    /// because the groups' flight sets are disjoint. The equivalence
    /// check experiments assert.
    pub fn union_state_hash(&self) -> u64 {
        let states: Vec<OperationalState> = self
            .groups
            .iter()
            .map(|g| {
                g.cluster
                    .snapshot(mirror_core::CENTRAL_SITE)
                    .expect("group central snapshot")
                    .into_state()
            })
            .collect();
        mirror_ede::union_state_hash(states.iter())
    }

    /// Total flights held across group centrals (disjoint by
    /// construction, so this is the cluster's aggregate flight count).
    pub fn total_flights(&self) -> usize {
        self.groups
            .iter()
            .map(|g| {
                g.cluster
                    .snapshot(mirror_core::CENTRAL_SITE)
                    .expect("group central snapshot")
                    .flight_count()
            })
            .sum()
    }

    /// Move `slot` to group `to` while traffic keeps flowing, with zero
    /// committed-event loss:
    ///
    /// 1. **Freeze** the slot: subsequent submits buffer instead of
    ///    routing (owner unchanged, so reads still resolve).
    /// 2. **Drain barrier**: read the source group's routed counter
    ///    *after* the freeze — the slot-lock ordering means it covers
    ///    every event that will ever reach the source — and wait until
    ///    every source site (central and mirrors) has processed that
    ///    many events.
    /// 3. **Capture** the slot's flights from the drained source central.
    /// 4. **Merge-seed** the capture into *every* site of the target
    ///    group (quiesced against its apply pipeline; resident flights
    ///    survive — this is [`merge_seed`], the partition-sharing twin of
    ///    the scale-out seeding path).
    /// 5. **Flip and replay**: retarget the slot and replay the buffered
    ///    events into the target, in arrival order, on top of the merge.
    /// 6. **Publish**: bump the map epoch; install in the gateway table
    ///    (misrouted clients redirect immediately) and on every group
    ///    coordinator (mirrors learn it off the next COMMIT).
    /// 7. **Purge** the slot's flights from every source-group site,
    ///    reclaiming their memory.
    ///
    /// On a drain timeout the slot rolls back: unfrozen under its
    /// original owner with the buffer replayed there — no loss either
    /// way.
    ///
    /// [`merge_seed`]: crate::site::CentralSite::merge_seed
    pub fn migrate_slot(
        &self,
        slot: usize,
        to: GroupId,
        drain_timeout: Duration,
    ) -> Result<MigrationReport, MigrateError> {
        assert!(slot < PARTITION_SLOTS, "slot {slot} out of range");
        if (to as usize) >= self.groups.len() {
            return Err(MigrateError::NoSuchGroup(to));
        }
        // Phase 1: freeze.
        let from = {
            let mut route = self.routes[slot].lock();
            if route.migrating {
                return Err(MigrateError::InProgress);
            }
            if route.owner == to {
                return Ok(MigrationReport {
                    slot,
                    from: to,
                    to,
                    moved_flights: 0,
                    replayed: 0,
                    epoch: self.epoch(),
                });
            }
            route.migrating = true;
            route.owner
        };
        // Phase 2: drain barrier on the whole source group.
        let source = &self.groups[from as usize];
        let target_routed = source.routed.load(Ordering::SeqCst);
        if !source.cluster.wait_all_processed(target_routed, drain_timeout) {
            // Roll back: unfreeze under the original owner, replay the
            // buffer there in arrival order.
            let mut route = self.routes[slot].lock();
            route.migrating = false;
            let buffered: Vec<Event> = route.buffer.drain(..).collect();
            for ev in buffered {
                source.routed.fetch_add(1, Ordering::SeqCst);
                source.cluster.submit(ev);
            }
            return Err(MigrateError::DrainTimeout);
        }
        // Phase 3: capture the slot's flights from the drained source,
        // through its unified state-transfer provider (a fresh capture —
        // the drain barrier already guaranteed the frontier covers the
        // cutover watermark).
        let snap = source.cluster.central().state_sync().capture_now();
        let mut flights = FlightMap::default();
        for (&id, view) in snap.iter() {
            if PartitionMap::slot_of(id) == slot {
                flights.insert(id, view.clone());
            }
        }
        let moved_flights = flights.len();
        let seed = Snapshot::from_parts(flights, VectorTimestamp::empty()).into_state();
        // Phase 4: merge into every target-group site (blocking acks: the
        // replay below must land on top of the merge everywhere).
        let target = &self.groups[to as usize];
        target.cluster.central().merge_seed(seed.clone());
        for site in target.cluster.mirror_ids() {
            target.cluster.mirror(site).merge_seed(seed.clone());
        }
        // Phase 5: flip the route and replay the freeze-window buffer.
        let replayed = {
            let mut route = self.routes[slot].lock();
            route.owner = to;
            route.migrating = false;
            let buffered: Vec<Event> = route.buffer.drain(..).collect();
            let n = buffered.len();
            for ev in buffered {
                target.routed.fetch_add(1, Ordering::SeqCst);
                target.cluster.submit(ev);
            }
            n
        };
        // Phase 6: publish the re-mapped epoch everywhere.
        let new_map = {
            let mut m = self.map.lock();
            m.assign(slot, to);
            m.clone()
        };
        let epoch = new_map.epoch();
        self.table.install(new_map.clone());
        for g in &self.groups {
            g.cluster.central().set_partition_map(new_map.clone());
        }
        // Phase 7: purge the moved flights from every source-group site.
        let keep: Arc<dyn Fn(FlightId) -> bool + Send + Sync> =
            Arc::new(move |f| PartitionMap::slot_of(f) != slot);
        source.cluster.central().retain_flights(Arc::clone(&keep));
        for site in source.cluster.mirror_ids() {
            source.cluster.mirror(site).retain_flights(Arc::clone(&keep));
        }
        Ok(MigrationReport { slot, from, to, moved_flights, replayed, epoch })
    }

    /// Stop every group.
    pub fn shutdown(self) {
        for g in self.groups {
            g.cluster.shutdown();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mirror_core::event::PositionFix;

    fn fix(seed: u32) -> PositionFix {
        PositionFix {
            lat: seed as f64,
            lon: -(seed as f64),
            alt_ft: 30_000.0,
            speed_kts: 450.0,
            heading_deg: (seed % 360) as f64,
        }
    }

    fn partitioned(groups: u16) -> PartitionedCluster {
        PartitionedCluster::start(PartitionedConfig {
            groups,
            group: ClusterConfig { mirrors: 1, ..ClusterConfig::default() },
        })
    }

    /// The equivalence backbone: events routed per-group yield a union
    /// state hash identical to one site applying the whole stream.
    #[test]
    fn partitioned_union_hash_matches_unpartitioned() {
        let pc = partitioned(2);
        let mut reference = OperationalState::new();
        for seq in 0..400u64 {
            let ev = Event::faa_position(seq, (seq % 37) as FlightId, fix(seq as u32));
            reference.apply(&ev);
            pc.submit(ev);
        }
        assert!(pc.wait_quiesced(Duration::from_secs(20)), "groups must drain");
        assert_eq!(pc.union_state_hash(), reference.state_hash());
        assert_eq!(pc.total_flights(), 37);
        // Both groups actually took traffic under the uniform map.
        assert!(pc.routed_per_group().iter().all(|&r| r > 0));
        pc.shutdown();
    }

    #[test]
    fn submit_routes_by_owning_group_only() {
        let pc = partitioned(2);
        let map = pc.map();
        let f0 = (0..).find(|&f| map.group_of(f) == 0).unwrap();
        let f1 = (0..).find(|&f| map.group_of(f) == 1).unwrap();
        for seq in 0..10u64 {
            pc.submit(Event::faa_position(seq, f0, fix(1)));
        }
        pc.submit(Event::faa_position(99, f1, fix(2)));
        assert!(pc.wait_quiesced(Duration::from_secs(10)));
        assert_eq!(pc.routed_per_group(), vec![10, 1]);
        let s0 = pc.group(0).snapshot(mirror_core::CENTRAL_SITE).unwrap();
        let s1 = pc.group(1).snapshot(mirror_core::CENTRAL_SITE).unwrap();
        assert_eq!(s0.flight_count(), 1);
        assert_eq!(s1.flight_count(), 1);
        assert!(s0.flight(f0).is_some() && s1.flight(f1).is_some());
        pc.shutdown();
    }

    #[test]
    fn migrate_slot_moves_flights_and_bumps_epoch() {
        let pc = partitioned(2);
        let map = pc.map();
        let f = (0..).find(|&f| map.group_of(f) == 0).unwrap();
        let slot = PartitionMap::slot_of(f);
        let mut reference = OperationalState::new();
        for seq in 0..50u64 {
            let ev = Event::faa_position(seq, f, fix(seq as u32));
            reference.apply(&ev);
            pc.submit(ev);
        }
        let before = pc.epoch();
        let report = pc.migrate_slot(slot, 1, Duration::from_secs(20)).expect("migrate");
        assert_eq!((report.from, report.to), (0, 1));
        assert!(report.moved_flights >= 1);
        assert!(report.epoch > before, "epoch must advance");
        assert_eq!(pc.group_of(f), 1);
        assert_eq!(pc.table.group_of(f), 1, "gateway table must learn the move");
        // Post-migration traffic routes to — and applies at — the target.
        for seq in 50..80u64 {
            let ev = Event::faa_position(seq, f, fix(seq as u32));
            reference.apply(&ev);
            pc.submit(ev);
        }
        assert!(pc.wait_quiesced(Duration::from_secs(20)));
        assert_eq!(pc.union_state_hash(), reference.state_hash());
        // The source central gave the flight's memory back.
        let src = pc.group(0).snapshot(mirror_core::CENTRAL_SITE).unwrap();
        assert!(src.flight(f).is_none(), "source must purge migrated flights");
        // Group coordinators adopted the bumped map for COMMIT carriage.
        assert_eq!(pc.group(1).central().partition_epoch(), report.epoch);
        pc.shutdown();
    }

    #[test]
    fn migrate_to_self_and_bad_group_are_cheap() {
        let pc = partitioned(2);
        let slot = 0;
        let owner = pc.map().group_of_slot(slot);
        let r = pc.migrate_slot(slot, owner, Duration::from_secs(1)).unwrap();
        assert_eq!(r.moved_flights, 0);
        assert_eq!(
            pc.migrate_slot(slot, 9, Duration::from_secs(1)),
            Err(MigrateError::NoSuchGroup(9))
        );
        pc.shutdown();
    }
}
