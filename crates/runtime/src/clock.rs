//! Wall-clock time base for the runtime.
//!
//! Events carry `ingress_us` relative to a run's start; every site in one
//! cluster shares a [`RuntimeClock`] so update delays are measured on a
//! common axis.

use std::sync::Arc;
use std::time::Instant;

/// A shared monotonic clock, microseconds since creation.
#[derive(Debug, Clone)]
pub struct RuntimeClock {
    start: Arc<Instant>,
}

impl Default for RuntimeClock {
    fn default() -> Self {
        Self::new()
    }
}

impl RuntimeClock {
    /// Start a new clock at zero.
    pub fn new() -> Self {
        RuntimeClock { start: Arc::new(Instant::now()) }
    }

    /// Microseconds elapsed since the clock started.
    pub fn now_us(&self) -> u64 {
        self.start.elapsed().as_micros() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotonic_and_shared() {
        let c = RuntimeClock::new();
        let c2 = c.clone();
        let a = c.now_us();
        std::thread::sleep(std::time::Duration::from_millis(2));
        let b = c2.now_us();
        assert!(b > a);
        assert!(b >= 2_000);
    }
}
