//! Bridging a mirror site into another process.
//!
//! The in-process cluster exchanges events over `mirror-echo` channels; a
//! *bridge* pumps those channels over a pair of [`Transport`]s (typically
//! TCP) so a mirror site can run in a different process or on a different
//! machine — the deployment the paper actually targets. Each direction
//! uses its own transport connection, so every connection is driven by
//! exactly one writer and one reader thread:
//!
//! * **downlink** (central → mirror): mirrored data events + CHKPT/COMMIT
//!   control broadcasts;
//! * **uplink** (mirror → central): CHKPT_REP replies.
//!
//! # Data path: encode once, batch, one syscall per burst
//!
//! The downlink writer is the hot edge of the whole system, so it runs the
//! zero-copy fan-out discipline end-to-end:
//!
//! * the data channel carries [`SharedEvent`]s — a publish clones two
//!   `Arc`s per subscriber, never the event payload;
//! * each writer asks the `SharedEvent` for its wire encoding, which is
//!   computed **once** across every bridge attached to the cluster (the
//!   first writer to ask pays; all others reuse the same buffer);
//! * frames are packed into a [`Frame::Batch`] under a [`BatchPolicy`]
//!   (max-events / max-bytes / max-delay) built from the already-encoded
//!   member buffers ([`encode_batch_from_encoded`] — no re-encoding), and
//!   handed to [`Transport::send_encoded`], so a burst of *N* events costs
//!   one length-prefixed transport frame and (over TCP) one vectored
//!   syscall instead of *N*.
//!
//! Batches compose with the resilient layer: a
//! [`ResilientTransport`](mirror_echo::ResilientTransport) wraps the whole
//! batch in a single `Frame::Seq` envelope (one small header prepended to
//! the shared encoding), one ack covers the batch, and retransmission
//! replays the stored bytes — the batch is the exactly-once unit.
//!
//! Shutdown cascades naturally: when one side's publishers drop, its pump
//! threads end, the transport reaches EOF, and the remote side unwinds.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use crossbeam::channel::{self, RecvTimeoutError, Sender, TryRecvError};

use mirror_core::ControlMsg;
use mirror_echo::channel::{EventChannel, Publisher, RecvStatus, Subscriber};
use mirror_echo::wire::{encode_batch_from_encoded, encode_frame_shared, Frame, SharedEvent};
use mirror_echo::Transport;

const POLL: Duration = Duration::from_millis(20);

/// Flush policy of the batching bridge writer: how long and how large a
/// [`Frame::Batch`] may grow before it must go to the wire.
///
/// The writer flushes as soon as **any** bound is hit; an isolated frame
/// (nothing else arrives within `max_delay`) is sent bare, so a quiet
/// stream pays no batching latency beyond the linger and a bursty stream
/// amortizes its syscalls. These are deployment knobs in the same spirit
/// as [`mirror_core::params::MirrorParams`] — but where `MirrorParams`
/// tunes *what* is mirrored (coalescing, overwriting, checkpoint cadence)
/// and adapts at runtime, `BatchPolicy` tunes *how* the surviving frames
/// ride the wire and is fixed per bridge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchPolicy {
    /// Maximum member frames per batch. `1` disables batching entirely
    /// (every frame is sent bare — the pre-batching behaviour).
    pub max_events: usize,
    /// Maximum accumulated encoded payload bytes per batch. The writer
    /// stops adding members once the running total reaches this bound, so
    /// a batch never exceeds it by more than one frame. Keep well under
    /// [`mirror_echo::transport::MAX_FRAME`].
    pub max_bytes: usize,
    /// How long the writer lingers for further traffic after the first
    /// frame of a batch arrives before flushing what it has.
    pub max_delay: Duration,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        // 64 × 8 KiB events still sits far below MAX_FRAME; half a
        // millisecond of linger is invisible next to checkpoint cadence
        // but spans a burst at any realistic source rate.
        BatchPolicy { max_events: 64, max_bytes: 512 * 1024, max_delay: Duration::from_micros(500) }
    }
}

impl BatchPolicy {
    /// One frame per transport send — the pre-batching data path, kept
    /// for comparison benchmarks and latency-critical deployments.
    pub fn unbatched() -> Self {
        BatchPolicy { max_events: 1, max_bytes: usize::MAX, max_delay: Duration::ZERO }
    }
}

/// Handle holding a bridge's threads; joining waits for the cascade to
/// finish.
///
/// A bridge's reader thread blocks in `Transport::recv` until the *remote*
/// endpoint's writer closes its transport, which happens when the remote
/// endpoint is stopped. Therefore: **call [`BridgeHandle::stop`] on both
/// endpoints (in any order) before calling [`BridgeHandle::join`] on
/// either** — stop is non-blocking, join then completes on both sides.
pub struct BridgeHandle {
    stop: Arc<AtomicBool>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl BridgeHandle {
    /// Ask the pumps to stop at their next poll.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }

    /// Stop and join all bridge threads.
    pub fn join(mut self) {
        self.stop();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// A frame queued for a bridge writer, kept in its channel form so the
/// writer can reuse cached encodings instead of re-encoding.
enum OutMsg {
    Data(SharedEvent),
    Ctrl(ControlMsg),
}

impl OutMsg {
    /// The wire encoding of this message's frame. For data events this is
    /// the [`SharedEvent`] cache — computed once across every bridge and
    /// retained window that touches the event.
    fn encoded(&self) -> Bytes {
        match self {
            OutMsg::Data(e) => e.encoded(),
            OutMsg::Ctrl(m) => encode_frame_shared(&Frame::Control(m.clone())),
        }
    }
}

fn pump_sub<T: Send + 'static>(
    sub: Subscriber<T>,
    stop: Arc<AtomicBool>,
    tx: Sender<OutMsg>,
    wrap: impl Fn(T) -> OutMsg + Send + 'static,
) -> std::thread::JoinHandle<()> {
    std::thread::spawn(move || loop {
        if stop.load(Ordering::SeqCst) {
            // Drain everything already published before stopping: stop is
            // a shutdown signal, not permission to drop queued traffic.
            while let Some(m) = sub.try_recv() {
                if tx.send(wrap(m)).is_err() {
                    return;
                }
            }
            break;
        }
        match sub.recv_status(POLL) {
            RecvStatus::Msg(m) => {
                if tx.send(wrap(m)).is_err() {
                    break;
                }
            }
            RecvStatus::Timeout => continue,
            RecvStatus::Disconnected => break,
        }
    })
}

/// The batching writer: drain the writer channel greedily under the flush
/// policy, pack bursts into one [`Frame::Batch`] built from the members'
/// cached encodings, and move it to the wire with a single
/// [`Transport::send_encoded`].
fn writer(
    mut transport: Box<dyn Transport>,
    rx: channel::Receiver<OutMsg>,
    policy: BatchPolicy,
) -> std::thread::JoinHandle<()> {
    std::thread::spawn(move || {
        let mut parts: Vec<Bytes> = Vec::with_capacity(policy.max_events.min(1024));
        'outer: loop {
            let first = match rx.recv_timeout(POLL) {
                Ok(m) => m,
                Err(RecvTimeoutError::Timeout) => {
                    // Idle tick: a resilient transport services its acks
                    // and retransmit requests here when no app traffic
                    // flows. The writer direction carries no inbound
                    // application frames, so anything surfaced is
                    // discarded.
                    let _ = transport.recv_timeout(Duration::from_millis(1));
                    continue;
                }
                Err(RecvTimeoutError::Disconnected) => break,
            };
            parts.clear();
            let mut total = 0usize;
            let enc = first.encoded();
            total += enc.len();
            parts.push(enc);
            // Linger up to max_delay for companions, but never past the
            // size bounds: flush on whichever limit is hit first.
            let deadline = Instant::now() + policy.max_delay;
            while parts.len() < policy.max_events && total < policy.max_bytes {
                let next = match rx.try_recv() {
                    Ok(m) => Some(m),
                    Err(TryRecvError::Empty) => {
                        let now = Instant::now();
                        if now >= deadline {
                            None
                        } else {
                            rx.recv_timeout(deadline - now).ok()
                        }
                    }
                    Err(TryRecvError::Disconnected) => None,
                };
                match next {
                    Some(m) => {
                        let enc = m.encoded();
                        total += enc.len();
                        parts.push(enc);
                    }
                    None => break,
                }
            }
            let sent = if parts.len() == 1 {
                // An isolated frame travels bare: no batch framing cost,
                // and plain (non-batch-aware) peers keep working.
                transport.send_encoded(&parts[0])
            } else {
                transport.send_encoded(&encode_batch_from_encoded(&parts))
            };
            if sent.is_err() {
                break 'outer;
            }
        }
    })
}

/// Strip reliability envelopes and fan out application frames: a
/// [`Frame::Seq`] yields its payload, a [`Frame::Batch`] yields each
/// member in order, protocol-only frames (acks, hellos) yield nothing.
/// Bridges normally run over [`mirror_echo::ResilientTransport`], which
/// consumes protocol frames internally — this guard keeps a mixed
/// (resilient-to-plain) deployment from misrouting them into application
/// channels.
fn for_each_app_frame(frame: Frame, sink: &mut impl FnMut(Frame)) {
    match frame {
        Frame::Seq { inner, .. } => for_each_app_frame(*inner, sink),
        Frame::Batch(members) => {
            for m in members {
                // Members are Data/Control by wire-format construction;
                // recursing keeps that invariant even for hand-built
                // frames.
                for_each_app_frame(m, sink);
            }
        }
        Frame::Ack { .. } | Frame::Hello { .. } => {}
        f => sink(f),
    }
}

/// Central-side endpoint: ship the cluster's data + control downlinks to a
/// remote mirror and feed its replies back into the control uplink.
///
/// Uses the default [`BatchPolicy`]; see [`central_endpoint_with`] to tune
/// or disable batching.
pub fn central_endpoint(
    data: &EventChannel<SharedEvent>,
    ctrl_down: &EventChannel<ControlMsg>,
    ctrl_up_pub: Publisher<ControlMsg>,
    down: Box<dyn Transport>,
    up: Box<dyn Transport>,
) -> BridgeHandle {
    central_endpoint_with(data, ctrl_down, ctrl_up_pub, down, up, BatchPolicy::default())
}

/// [`central_endpoint`] with an explicit downlink flush policy.
pub fn central_endpoint_with(
    data: &EventChannel<SharedEvent>,
    ctrl_down: &EventChannel<ControlMsg>,
    ctrl_up_pub: Publisher<ControlMsg>,
    down: Box<dyn Transport>,
    mut up: Box<dyn Transport>,
    policy: BatchPolicy,
) -> BridgeHandle {
    let stop = Arc::new(AtomicBool::new(false));
    let (tx, rx) = channel::unbounded::<OutMsg>();
    let mut threads = vec![
        pump_sub(data.subscribe(), Arc::clone(&stop), tx.clone(), OutMsg::Data),
        pump_sub(ctrl_down.subscribe(), Arc::clone(&stop), tx, OutMsg::Ctrl),
        writer(down, rx, policy),
    ];
    threads.push(std::thread::spawn(move || {
        while let Ok(Some(frame)) = up.recv() {
            for_each_app_frame(frame, &mut |f| {
                if let Frame::Control(m) = f {
                    ctrl_up_pub.publish(m);
                }
            });
        }
    }));
    BridgeHandle { stop, threads }
}

/// Mirror-side endpoint: materialize local data/control-down channels from
/// the downlink transport and ship the local control-uplink over the
/// uplink transport.
///
/// `setup` runs with the three channels (data, control-down, control-up)
/// **before** the downlink reader starts, so its subscriptions — typically
/// a [`crate::site::MirrorSite`] — cannot miss early frames (a channel
/// subscriber only sees messages published after it subscribes).
pub fn mirror_endpoint<R>(
    down: Box<dyn Transport>,
    up: Box<dyn Transport>,
    setup: impl FnOnce(
        &EventChannel<SharedEvent>,
        &EventChannel<ControlMsg>,
        &EventChannel<ControlMsg>,
    ) -> R,
) -> (R, BridgeHandle) {
    mirror_endpoint_with(down, up, BatchPolicy::default(), setup)
}

/// [`mirror_endpoint`] with an explicit uplink flush policy.
pub fn mirror_endpoint_with<R>(
    mut down: Box<dyn Transport>,
    up: Box<dyn Transport>,
    policy: BatchPolicy,
    setup: impl FnOnce(
        &EventChannel<SharedEvent>,
        &EventChannel<ControlMsg>,
        &EventChannel<ControlMsg>,
    ) -> R,
) -> (R, BridgeHandle) {
    let data = EventChannel::new("bridge.data");
    let ctrl_down = EventChannel::new("bridge.ctrl.down");
    let ctrl_up = EventChannel::new("bridge.ctrl.up");

    // Attach consumers before any frame can flow.
    let out = setup(&data, &ctrl_down, &ctrl_up);

    let stop = Arc::new(AtomicBool::new(false));
    let data_pub = data.publisher();
    let ctrl_down_pub = ctrl_down.publisher();
    let mut threads = vec![std::thread::spawn(move || {
        while let Ok(Some(frame)) = down.recv() {
            for_each_app_frame(frame, &mut |f| match f {
                Frame::Data(e) => {
                    data_pub.publish(SharedEvent::new(e));
                }
                Frame::Control(m) => {
                    ctrl_down_pub.publish(m);
                }
                _ => {}
            });
        }
    })];
    let (tx, rx) = channel::unbounded::<OutMsg>();
    threads.push(pump_sub(ctrl_up.subscribe(), Arc::clone(&stop), tx, OutMsg::Ctrl));
    threads.push(writer(up, rx, policy));

    (out, BridgeHandle { stop, threads })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::RuntimeClock;
    use crate::site::MirrorSite;
    use mirror_core::api::{MirrorConfig, MirrorHandle};
    use mirror_core::event::{Event, PositionFix};
    use mirror_echo::transport::InProcTransport;

    fn fix() -> PositionFix {
        PositionFix { lat: 0.0, lon: 0.0, alt_ft: 1.0, speed_kts: 1.0, heading_deg: 0.0 }
    }

    fn run_bridged_roundtrip(policy: BatchPolicy) {
        // "Remote" side channels come from the bridge; local side owns the
        // cluster channels.
        let data = EventChannel::new("t.data");
        let ctrl_down = EventChannel::new("t.ctrl.down");
        let ctrl_up = EventChannel::new("t.ctrl.up");

        let (down_a, down_b) = InProcTransport::pair("down");
        let (up_a, up_b) = InProcTransport::pair("up");

        let central_bridge = central_endpoint_with(
            &data,
            &ctrl_down,
            ctrl_up.publisher(),
            Box::new(down_a),
            Box::new(up_b),
            policy,
        );
        let (mut mirror, mirror_bridge) =
            mirror_endpoint(Box::new(down_b), Box::new(up_a), |data, ctrl_down, ctrl_up| {
                MirrorSite::start(
                    MirrorHandle::new(MirrorConfig::default().build_mirror(1)),
                    RuntimeClock::new(),
                    data,
                    ctrl_down,
                    ctrl_up.publisher(),
                )
            });

        // Publish events + a checkpoint proposal from the "central" side.
        let data_pub = data.publisher();
        let up_sub = ctrl_up.subscribe();
        for seq in 1..=20u64 {
            let mut e = Event::faa_position(seq, 3, fix());
            e.stamp.advance(0, seq);
            data_pub.publish(e.into());
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while mirror.processed() < 20 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(mirror.processed(), 20, "all events must cross the bridge");

        let mut stamp = mirror_core::timestamp::VectorTimestamp::new(1);
        stamp.advance(0, 20);
        ctrl_down.publisher().publish(ControlMsg::Chkpt { round: 1, stamp, epoch: 0, term: 0 });
        let rep = up_sub.recv_timeout(Duration::from_secs(5));
        match rep {
            Some(ControlMsg::ChkptRep { round: 1, site: 1, stamp, .. }) => {
                assert_eq!(stamp.get(0), 20);
            }
            other => panic!("expected a bridged ChkptRep, got {other:?}"),
        }

        // Stop both endpoints before joining either (see BridgeHandle docs).
        central_bridge.stop();
        mirror_bridge.stop();
        mirror.stop();
        central_bridge.join();
        mirror_bridge.join();
    }

    #[test]
    fn bridged_mirror_receives_data_and_replies() {
        run_bridged_roundtrip(BatchPolicy::default());
    }

    #[test]
    fn bridged_mirror_works_unbatched() {
        run_bridged_roundtrip(BatchPolicy::unbatched());
    }

    #[test]
    fn bridged_mirror_works_with_aggressive_batching() {
        // Force nearly everything into batches: tiny byte bound off, long
        // linger, deep batches.
        run_bridged_roundtrip(BatchPolicy {
            max_events: 256,
            max_bytes: 1 << 20,
            max_delay: Duration::from_millis(10),
        });
    }

    /// The writer really does pack bursts into `Frame::Batch` frames and
    /// preserves order through mixed data/control traffic.
    #[test]
    fn writer_packs_bursts_into_batches() {
        let (tx_t, mut rx_t) = InProcTransport::pair("w");
        let (tx, rx) = channel::unbounded::<OutMsg>();
        // Long linger so the whole pre-queued burst lands in one batch.
        let policy = BatchPolicy {
            max_events: 8,
            max_bytes: 1 << 20,
            max_delay: Duration::from_millis(200),
        };
        for seq in 1..=20u64 {
            let e = Event::faa_position(seq, 1, fix());
            tx.send(OutMsg::Data(SharedEvent::from(e))).unwrap();
        }
        drop(tx);
        let w = writer(Box::new(tx_t), rx, policy);

        let mut seqs = Vec::new();
        let mut batches = 0usize;
        while seqs.len() < 20 {
            match rx_t.recv().unwrap() {
                Some(Frame::Batch(members)) => {
                    assert!(members.len() <= 8, "max_events bound");
                    batches += 1;
                    for m in members {
                        match m {
                            Frame::Data(e) => seqs.push(e.seq),
                            other => panic!("unexpected member {other:?}"),
                        }
                    }
                }
                Some(Frame::Data(e)) => seqs.push(e.seq),
                other => panic!("unexpected frame {other:?}"),
            }
        }
        assert!(seqs.iter().copied().eq(1..=20), "order preserved: {seqs:?}");
        assert!(batches >= 2, "a 20-event burst with max_events=8 needs ≥3 sends");
        w.join().unwrap();
    }

    /// max_bytes flushes a batch before max_events is reached.
    #[test]
    fn writer_respects_byte_bound() {
        let (tx_t, mut rx_t) = InProcTransport::pair("wb");
        let (tx, rx) = channel::unbounded::<OutMsg>();
        let policy = BatchPolicy {
            max_events: 1000,
            // Two 1 KiB events cross this bound, so batches hold ≤2.
            max_bytes: 1500,
            max_delay: Duration::from_millis(200),
        };
        for seq in 1..=6u64 {
            let e = Event::faa_position(seq, 1, fix()).with_total_size(1024);
            tx.send(OutMsg::Data(SharedEvent::from(e))).unwrap();
        }
        drop(tx);
        let w = writer(Box::new(tx_t), rx, policy);
        let mut got = 0;
        while got < 6 {
            match rx_t.recv().unwrap() {
                Some(Frame::Batch(members)) => {
                    assert!(members.len() <= 2, "byte bound must cap batch size");
                    got += members.len();
                }
                Some(Frame::Data(_)) => got += 1,
                other => panic!("unexpected frame {other:?}"),
            }
        }
        w.join().unwrap();
    }
}
