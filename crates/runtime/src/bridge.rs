//! Bridging a mirror site into another process.
//!
//! The in-process cluster exchanges events over `mirror-echo` channels; a
//! *bridge* pumps those channels over a pair of [`Transport`]s (typically
//! TCP) so a mirror site can run in a different process or on a different
//! machine — the deployment the paper actually targets. Each direction
//! uses its own transport connection, so every connection is driven by
//! exactly one writer and one reader thread:
//!
//! * **downlink** (central → mirror): mirrored data events + CHKPT/COMMIT
//!   control broadcasts;
//! * **uplink** (mirror → central): CHKPT_REP replies.
//!
//! Shutdown cascades naturally: when one side's publishers drop, its pump
//! threads end, the transport reaches EOF, and the remote side unwinds.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{self, RecvTimeoutError, Sender};

use mirror_core::event::Event;
use mirror_core::ControlMsg;
use mirror_echo::channel::{EventChannel, Publisher, RecvStatus, Subscriber};
use mirror_echo::wire::Frame;
use mirror_echo::Transport;

const POLL: Duration = Duration::from_millis(20);

/// Handle holding a bridge's threads; joining waits for the cascade to
/// finish.
///
/// A bridge's reader thread blocks in `Transport::recv` until the *remote*
/// endpoint's writer closes its transport, which happens when the remote
/// endpoint is stopped. Therefore: **call [`BridgeHandle::stop`] on both
/// endpoints (in any order) before calling [`BridgeHandle::join`] on
/// either** — stop is non-blocking, join then completes on both sides.
pub struct BridgeHandle {
    stop: Arc<AtomicBool>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl BridgeHandle {
    /// Ask the pumps to stop at their next poll.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }

    /// Stop and join all bridge threads.
    pub fn join(mut self) {
        self.stop();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

fn pump_sub<T: Send + 'static>(
    sub: Subscriber<T>,
    stop: Arc<AtomicBool>,
    tx: Sender<Frame>,
    wrap: impl Fn(T) -> Frame + Send + 'static,
) -> std::thread::JoinHandle<()> {
    std::thread::spawn(move || loop {
        if stop.load(Ordering::SeqCst) {
            // Drain everything already published before stopping: stop is
            // a shutdown signal, not permission to drop queued traffic.
            while let Some(m) = sub.try_recv() {
                if tx.send(wrap(m)).is_err() {
                    return;
                }
            }
            break;
        }
        match sub.recv_status(POLL) {
            RecvStatus::Msg(m) => {
                if tx.send(wrap(m)).is_err() {
                    break;
                }
            }
            RecvStatus::Timeout => continue,
            RecvStatus::Disconnected => break,
        }
    })
}

fn writer(
    mut transport: Box<dyn Transport>,
    rx: channel::Receiver<Frame>,
) -> std::thread::JoinHandle<()> {
    std::thread::spawn(move || loop {
        match rx.recv_timeout(POLL) {
            Ok(frame) => {
                if transport.send(&frame).is_err() {
                    break;
                }
            }
            Err(RecvTimeoutError::Timeout) => {
                // Idle tick: a resilient transport services its acks and
                // retransmit requests here when no app traffic flows. The
                // writer direction carries no inbound application frames,
                // so anything surfaced is discarded.
                let _ = transport.recv_timeout(Duration::from_millis(1));
            }
            Err(RecvTimeoutError::Disconnected) => break,
        }
    })
}

/// Strip reliability envelopes: a [`Frame::Seq`] yields its payload,
/// protocol-only frames (acks, hellos) yield `None`. Bridges normally run
/// over [`mirror_echo::ResilientTransport`], which consumes these
/// internally — this guard keeps a mixed (resilient-to-plain) deployment
/// from misrouting protocol frames into application channels.
fn app_frame(frame: Frame) -> Option<Frame> {
    match frame {
        Frame::Seq { inner, .. } => app_frame(*inner),
        Frame::Ack { .. } | Frame::Hello { .. } => None,
        f => Some(f),
    }
}

/// Central-side endpoint: ship the cluster's data + control downlinks to a
/// remote mirror and feed its replies back into the control uplink.
pub fn central_endpoint(
    data: &EventChannel<Event>,
    ctrl_down: &EventChannel<ControlMsg>,
    ctrl_up_pub: Publisher<ControlMsg>,
    down: Box<dyn Transport>,
    mut up: Box<dyn Transport>,
) -> BridgeHandle {
    let stop = Arc::new(AtomicBool::new(false));
    let (tx, rx) = channel::unbounded::<Frame>();
    let mut threads = vec![
        pump_sub(data.subscribe(), Arc::clone(&stop), tx.clone(), Frame::Data),
        pump_sub(ctrl_down.subscribe(), Arc::clone(&stop), tx, Frame::Control),
        writer(down, rx),
    ];
    threads.push(std::thread::spawn(move || {
        while let Ok(Some(frame)) = up.recv() {
            if let Some(Frame::Control(m)) = app_frame(frame) {
                ctrl_up_pub.publish(m);
            }
        }
    }));
    BridgeHandle { stop, threads }
}

/// Mirror-side endpoint: materialize local data/control-down channels from
/// the downlink transport and ship the local control-uplink over the
/// uplink transport.
///
/// `setup` runs with the three channels (data, control-down, control-up)
/// **before** the downlink reader starts, so its subscriptions — typically
/// a [`crate::site::MirrorSite`] — cannot miss early frames (a channel
/// subscriber only sees messages published after it subscribes).
pub fn mirror_endpoint<R>(
    mut down: Box<dyn Transport>,
    up: Box<dyn Transport>,
    setup: impl FnOnce(&EventChannel<Event>, &EventChannel<ControlMsg>, &EventChannel<ControlMsg>) -> R,
) -> (R, BridgeHandle) {
    let data = EventChannel::new("bridge.data");
    let ctrl_down = EventChannel::new("bridge.ctrl.down");
    let ctrl_up = EventChannel::new("bridge.ctrl.up");

    // Attach consumers before any frame can flow.
    let out = setup(&data, &ctrl_down, &ctrl_up);

    let stop = Arc::new(AtomicBool::new(false));
    let data_pub = data.publisher();
    let ctrl_down_pub = ctrl_down.publisher();
    let mut threads = vec![std::thread::spawn(move || {
        while let Ok(Some(frame)) = down.recv() {
            match app_frame(frame) {
                Some(Frame::Data(e)) => {
                    data_pub.publish(e);
                }
                Some(Frame::Control(m)) => {
                    ctrl_down_pub.publish(m);
                }
                _ => {}
            }
        }
    })];
    let (tx, rx) = channel::unbounded::<Frame>();
    threads.push(pump_sub(ctrl_up.subscribe(), Arc::clone(&stop), tx, Frame::Control));
    threads.push(writer(up, rx));

    (out, BridgeHandle { stop, threads })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::RuntimeClock;
    use crate::site::MirrorSite;
    use mirror_core::api::{MirrorConfig, MirrorHandle};
    use mirror_core::event::PositionFix;
    use mirror_echo::transport::InProcTransport;

    fn fix() -> PositionFix {
        PositionFix { lat: 0.0, lon: 0.0, alt_ft: 1.0, speed_kts: 1.0, heading_deg: 0.0 }
    }

    #[test]
    fn bridged_mirror_receives_data_and_replies() {
        // "Remote" side channels come from the bridge; local side owns the
        // cluster channels.
        let data = EventChannel::new("t.data");
        let ctrl_down = EventChannel::new("t.ctrl.down");
        let ctrl_up = EventChannel::new("t.ctrl.up");

        let (down_a, down_b) = InProcTransport::pair("down");
        let (up_a, up_b) = InProcTransport::pair("up");

        let central_bridge = central_endpoint(
            &data,
            &ctrl_down,
            ctrl_up.publisher(),
            Box::new(down_a),
            Box::new(up_b),
        );
        let (mut mirror, mirror_bridge) =
            mirror_endpoint(Box::new(down_b), Box::new(up_a), |data, ctrl_down, ctrl_up| {
                MirrorSite::start(
                    MirrorHandle::new(MirrorConfig::default().build_mirror(1)),
                    RuntimeClock::new(),
                    data,
                    ctrl_down,
                    ctrl_up.publisher(),
                )
            });

        // Publish events + a checkpoint proposal from the "central" side.
        let data_pub = data.publisher();
        let up_sub = ctrl_up.subscribe();
        for seq in 1..=20u64 {
            let mut e = Event::faa_position(seq, 3, fix());
            e.stamp.advance(0, seq);
            data_pub.publish(e);
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while mirror.processed() < 20 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(mirror.processed(), 20, "all events must cross the bridge");

        let mut stamp = mirror_core::timestamp::VectorTimestamp::new(1);
        stamp.advance(0, 20);
        ctrl_down.publisher().publish(ControlMsg::Chkpt { round: 1, stamp });
        let rep = up_sub.recv_timeout(Duration::from_secs(5));
        match rep {
            Some(ControlMsg::ChkptRep { round: 1, site: 1, stamp, .. }) => {
                assert_eq!(stamp.get(0), 20);
            }
            other => panic!("expected a bridged ChkptRep, got {other:?}"),
        }

        // Stop both endpoints before joining either (see BridgeHandle docs).
        central_bridge.stop();
        mirror_bridge.stop();
        mirror.stop();
        central_bridge.join();
        mirror_bridge.join();
    }
}
