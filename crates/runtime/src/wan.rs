//! WAN mirror tier: a read replica behind a simulated wide-area link.
//!
//! A [`WanMirror`] is the geo-distributed end of the paper's mirroring
//! spectrum: it subscribes to the central site's applied-updates stream,
//! but every event crosses a shaped [`LinkProfile`] (propagation latency,
//! jitter, loss) before it lands — and the link can be partitioned
//! outright. The replica serves reads under a **bounded-staleness
//! contract**: while the link is healthy, reads reflect state at most one
//! link delay behind the central; once a partition has outlived the
//! configured bound, reads fail with [`WanReadError`] instead of silently
//! serving stale flights.
//!
//! Catch-up after a partition is where the unified transfer layer pays
//! off: [`WanMirror::resync`] asks the central's
//! [`StateSync`] for a transfer against the
//! replica's last installed frontier. When the central still remembers
//! that base, the transfer is a [`StateDelta`](mirror_ede::StateDelta)
//! moving only the flights that changed during the outage — at a few
//! percent divergence, a small fraction of the bytes a full snapshot
//! costs over the same WAN link (see `mirror-bench --bin wan_mirror`).
//!
//! All link randomness is seeded ([`LinkShaper`]), so a WAN chaos run
//! reproduces from its seed alone.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use mirror_core::event::{Event, FlightId};
use mirror_core::timestamp::VectorTimestamp;
use mirror_echo::faults::{LinkFate, LinkProfile, LinkShaper};
use mirror_ede::{FlightView, OperationalState};

use crate::site::CentralSite;
use crate::statesync::{StateSync, Transfer};

/// Configuration of a WAN mirror's link and read contract.
#[derive(Debug, Clone, Copy)]
pub struct WanMirrorConfig {
    /// Shape of the wide-area link the update stream crosses.
    pub link: LinkProfile,
    /// Seed for the link's loss/jitter schedule (reproducible chaos).
    pub seed: u64,
    /// Bounded-staleness contract: once the replica has been cut off for
    /// longer than this, reads fail until a resync restores coverage.
    pub max_staleness: Duration,
}

impl Default for WanMirrorConfig {
    fn default() -> Self {
        WanMirrorConfig {
            // The cross-country preset with 0.5% loss.
            link: LinkProfile::wan(5),
            seed: 1,
            max_staleness: Duration::from_secs(2),
        }
    }
}

/// Why a WAN read was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WanReadError {
    /// The replica has been cut off from the central for longer than the
    /// configured staleness bound; serving would violate the contract.
    StaleBeyondBound {
        /// How long the replica has been without coverage.
        stale_for: Duration,
        /// The configured bound it exceeded.
        bound: Duration,
    },
}

impl std::fmt::Display for WanReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WanReadError::StaleBeyondBound { stale_for, bound } => write!(
                f,
                "replica stale for {stale_for:?}, beyond the {bound:?} bound; resync required"
            ),
        }
    }
}

impl std::error::Error for WanReadError {}

/// Accounting of one [`WanMirror::resync`] catch-up transfer.
#[derive(Debug, Clone)]
pub struct WanResync {
    /// Whether the transfer was a delta (`true`) or fell back to a full
    /// snapshot (`false`, base no longer remembered).
    pub delta: bool,
    /// Bytes the transfer occupies on the link.
    pub wire_bytes: usize,
    /// Flights the transfer carried (changed subset for a delta, the whole
    /// map for a full snapshot).
    pub flights_moved: usize,
    /// Flight removals the transfer carried (deltas only).
    pub removed: usize,
    /// The frontier the replica was brought up to (its next delta base).
    pub as_of: VectorTimestamp,
}

/// A read replica of the central site behind a shaped WAN link.
///
/// Construction subscribes to the central's applied-updates stream and
/// installs a fresh seed through the central's unified
/// [`StateSync`] provider; a pump thread then
/// plays every update through the link shaper (latency, jitter, loss) into
/// a local [`OperationalState`]. [`partition`](Self::partition) severs the
/// link (events published meanwhile are lost on the wire),
/// [`heal`](Self::heal) restores it, and [`resync`](Self::resync) closes
/// the resulting divergence with a delta transfer when possible.
pub struct WanMirror {
    state: Arc<Mutex<OperationalState>>,
    /// Frontier of the last installed transfer — the next delta base.
    /// Only transfer frontiers are remembered as bases by the producer, so
    /// streamed events advance the state but never this.
    base: Mutex<VectorTimestamp>,
    sync: Arc<StateSync>,
    link_down: Arc<AtomicBool>,
    /// When coverage was lost (partition start); cleared by resync.
    stale_since: Arc<Mutex<Option<Instant>>>,
    applied: Arc<AtomicU64>,
    link_lost: Arc<AtomicU64>,
    stop: Arc<AtomicBool>,
    pump: Option<JoinHandle<()>>,
    cfg: WanMirrorConfig,
}

impl WanMirror {
    /// Attach a WAN replica to `central`: subscribe first (missing
    /// nothing), then seed from a **fresh** capture — the WAN tier replays
    /// no floor, so a cached pre-subscribe capture would leave a silent
    /// gap, exactly as in the rejoin path.
    pub fn connect(central: &CentralSite, cfg: WanMirrorConfig) -> Self {
        let sub = central.subscribe_updates();
        let sync = central.state_sync();
        let served = sync.capture_now();
        let base = served.as_of.clone();
        let state = Arc::new(Mutex::new(served.into_snapshot().into_state()));

        let link_down = Arc::new(AtomicBool::new(false));
        let stale_since: Arc<Mutex<Option<Instant>>> = Arc::new(Mutex::new(None));
        let applied = Arc::new(AtomicU64::new(0));
        let link_lost = Arc::new(AtomicU64::new(0));
        let stop = Arc::new(AtomicBool::new(false));

        let pump = {
            let state = Arc::clone(&state);
            let link_down = Arc::clone(&link_down);
            let applied = Arc::clone(&applied);
            let link_lost = Arc::clone(&link_lost);
            let stop = Arc::clone(&stop);
            let mut shaper = LinkShaper::new(cfg.seed, cfg.link);
            std::thread::Builder::new()
                .name("wan-pump".into())
                .spawn(move || {
                    // Events in flight on the link, with delivery deadlines.
                    let mut in_flight: VecDeque<(Instant, Event)> = VecDeque::new();
                    loop {
                        if stop.load(Ordering::Acquire) {
                            return;
                        }
                        if let Some(event) = sub.recv_timeout(Duration::from_millis(2)) {
                            if link_down.load(Ordering::Acquire) {
                                // Severed link: the frame is lost on the
                                // wire, along with anything still in
                                // flight when the cut happened.
                                link_lost.fetch_add(1 + in_flight.len() as u64, Ordering::Relaxed);
                                in_flight.clear();
                                continue;
                            }
                            match shaper.fate() {
                                LinkFate::Lost => {
                                    link_lost.fetch_add(1, Ordering::Relaxed);
                                }
                                LinkFate::Deliver { delay } => {
                                    in_flight.push_back((Instant::now() + delay, event));
                                }
                            }
                        } else if link_down.load(Ordering::Acquire) && !in_flight.is_empty() {
                            link_lost.fetch_add(in_flight.len() as u64, Ordering::Relaxed);
                            in_flight.clear();
                        }
                        // Deliver everything already due. Jitter may hand
                        // frames over out of publish order; the store's
                        // per-flight monotone guards absorb the stale ones,
                        // same as any mirror.
                        let now = Instant::now();
                        while let Some(pos) = in_flight
                            .iter()
                            .enumerate()
                            .filter(|(_, (due, _))| *due <= now)
                            .min_by_key(|(_, (due, _))| *due)
                            .map(|(i, _)| i)
                        {
                            let (_, event) = in_flight.remove(pos).expect("due frame present");
                            state.lock().apply(&event);
                            applied.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                })
                .expect("spawn wan pump")
        };

        WanMirror {
            state,
            base: Mutex::new(base),
            sync,
            link_down,
            stale_since,
            applied,
            link_lost,
            stop,
            pump: Some(pump),
            cfg,
        }
    }

    /// Sever the WAN link: events the central publishes from now until
    /// [`heal`](Self::heal) never arrive (loss, not delay), and the
    /// staleness clock starts ticking against the read contract.
    pub fn partition(&self) {
        self.link_down.store(true, Ordering::Release);
        let mut since = self.stale_since.lock();
        if since.is_none() {
            *since = Some(Instant::now());
        }
    }

    /// Restore the WAN link. New events flow again, but the outage left a
    /// hole in the replica's coverage, so reads stay governed by the
    /// staleness clock until [`resync`](Self::resync) closes the gap.
    pub fn heal(&self) {
        self.link_down.store(false, Ordering::Release);
    }

    /// Is the link currently severed?
    pub fn is_partitioned(&self) -> bool {
        self.link_down.load(Ordering::Acquire)
    }

    /// How long the replica has been without coverage, if it is stale.
    pub fn stale_for(&self) -> Option<Duration> {
        self.stale_since.lock().map(|since| since.elapsed())
    }

    /// Close the divergence accumulated since the last transfer: request a
    /// transfer against the replica's base frontier through the central's
    /// unified provider. The central answers with a delta when it still
    /// remembers the base (moving only what changed), a full snapshot
    /// otherwise. Installing the transfer restores read coverage.
    pub fn resync(&self) -> WanResync {
        let base = self.base.lock().clone();
        let transfer = self.sync.transfer_since(Some(&base));
        let as_of = transfer.as_of().clone();
        let wire_bytes = transfer.wire_size();
        let report = match transfer {
            Transfer::Delta(d) => {
                let report = WanResync {
                    delta: true,
                    wire_bytes,
                    flights_moved: d.changed_count(),
                    removed: d.removed().len(),
                    as_of: as_of.clone(),
                };
                self.state.lock().apply_delta(&d);
                report
            }
            Transfer::Full(s) => {
                let report = WanResync {
                    delta: false,
                    wire_bytes,
                    flights_moved: s.flight_count(),
                    removed: 0,
                    as_of: as_of.clone(),
                };
                *self.state.lock() = s.into_snapshot().into_state();
                report
            }
        };
        *self.base.lock() = as_of;
        *self.stale_since.lock() = None;
        report
    }

    /// Serve a read under the bounded-staleness contract: the flight's
    /// current replica view, or [`WanReadError`] when the replica has been
    /// without coverage longer than the configured bound.
    pub fn read(&self, id: FlightId) -> Result<Option<FlightView>, WanReadError> {
        if let Some(since) = *self.stale_since.lock() {
            let stale_for = since.elapsed();
            if stale_for > self.cfg.max_staleness {
                return Err(WanReadError::StaleBeyondBound {
                    stale_for,
                    bound: self.cfg.max_staleness,
                });
            }
        }
        Ok(self.state.lock().flight(id).cloned())
    }

    /// Digest of the replica's flight state (comparable with any site's
    /// `state_hash`).
    pub fn state_hash(&self) -> u64 {
        self.state.lock().state_hash()
    }

    /// Flights currently held by the replica.
    pub fn flight_count(&self) -> usize {
        self.state.lock().flight_count()
    }

    /// Events applied off the shaped link so far.
    pub fn applied(&self) -> u64 {
        self.applied.load(Ordering::Relaxed)
    }

    /// Events lost on the link so far (shaper loss plus partition cuts).
    pub fn link_lost(&self) -> u64 {
        self.link_lost.load(Ordering::Relaxed)
    }

    /// Stop the pump thread (idempotent; joins on completion).
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(t) = self.pump.take() {
            let _ = t.join();
        }
    }
}

impl Drop for WanMirror {
    fn drop(&mut self) {
        self.stop();
    }
}

impl std::fmt::Debug for WanMirror {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WanMirror")
            .field("link", &self.cfg.link)
            .field("partitioned", &self.is_partitioned())
            .field("applied", &self.applied())
            .field("link_lost", &self.link_lost())
            .finish()
    }
}
