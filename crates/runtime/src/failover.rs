//! Automatic central-site failover: detection policy, coordinator-cadence
//! tracking, and the events a takeover surfaces.
//!
//! The paper (§2.3) designates one site as the central mirroring
//! coordinator but leaves its death to operator intervention. This module
//! supplies the pieces that make succession automatic:
//!
//! * [`FailoverPolicy`] — when silence on the control downlink means the
//!   coordinator is dead (the control-plane twin of the checkpoint
//!   coordinator's `suspect_after` for mirrors);
//! * [`CtrlCadence`] — a lock-free tracker of the observed CHKPT/COMMIT
//!   cadence, so the death threshold adapts to the actual checkpoint rate
//!   instead of a fixed wall-clock guess;
//! * [`FailoverEvent`] — what `Cluster::poll_failover` reports when it
//!   declares a death and promotes a successor.
//!
//! Succession is **deterministic**, not elected: every surviving site can
//! rank the live membership by [`SiteId`], so the lowest live mirror is
//! the unambiguous successor and no vote (and no extra message class) is
//! needed. Fencing of the dead-but-maybe-resurrected old coordinator is
//! the term check on control frames (see `mirror-core`): the successor
//! takes over at a strictly higher term, and every site rejects frames
//! from lower terms.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use mirror_core::SiteId;

/// When to declare the central coordinator dead, and how fast it must
/// prove liveness while idle.
#[derive(Debug, Clone, Copy)]
pub struct FailoverPolicy {
    /// Declare the coordinator dead after this many *expected control
    /// gaps* of complete silence on the control downlink. Mirrors' own
    /// failure detector excludes a mirror after `suspect_after` rounds
    /// without a reply; this is the same idea pointed the other way.
    pub suspect_rounds: u32,
    /// Idle aux-thread wakeups (one per flush period, ~20 ms) the central
    /// tolerates with an empty backup queue before starting a heartbeat
    /// checkpoint round — the liveness signal that keeps the control
    /// downlink talking when no data flows.
    pub heartbeat_ticks: u32,
    /// Floor on the expected control gap. Guards against a burst of
    /// back-to-back rounds training the cadence estimate so low that
    /// ordinary scheduling jitter reads as death.
    pub min_gap: Duration,
}

impl Default for FailoverPolicy {
    fn default() -> Self {
        Self { suspect_rounds: 5, heartbeat_ticks: 2, min_gap: Duration::from_millis(50) }
    }
}

/// Lock-free tracker of the coordinator's control-downlink cadence.
///
/// Every CHKPT/COMMIT observed on the downlink calls
/// [`on_ctrl`](Self::on_ctrl); the tracker keeps the arrival time of the
/// latest frame and an EWMA of inter-frame gaps. A monitor then compares
/// [`silent_for`](Self::silent_for) against `suspect_rounds ×`
/// [`expected_gap_us`](Self::expected_gap_us): silence is only meaningful
/// relative to how often this cluster's coordinator actually speaks.
#[derive(Debug)]
pub struct CtrlCadence {
    /// Microsecond timestamp (cluster clock) of the latest control frame.
    last_ctrl_us: AtomicU64,
    /// EWMA of inter-frame gaps, µs (0 until two frames have arrived).
    ewma_gap_us: AtomicU64,
}

impl CtrlCadence {
    /// Start tracking, treating `now_us` as the moment of last contact
    /// (so a freshly started cluster is not instantly "silent forever").
    pub fn new(now_us: u64) -> Self {
        Self { last_ctrl_us: AtomicU64::new(now_us), ewma_gap_us: AtomicU64::new(0) }
    }

    /// Record a control frame observed at `now_us`.
    pub fn on_ctrl(&self, now_us: u64) {
        let prev = self.last_ctrl_us.swap(now_us, Ordering::AcqRel);
        let gap = now_us.saturating_sub(prev);
        if gap == 0 {
            return;
        }
        // EWMA with α = 1/4; a plain store is fine — the estimate only
        // steers a threshold, and observers tolerate one stale reading.
        let prev_ewma = self.ewma_gap_us.load(Ordering::Acquire);
        let next = if prev_ewma == 0 { gap } else { prev_ewma - prev_ewma / 4 + gap / 4 };
        self.ewma_gap_us.store(next, Ordering::Release);
    }

    /// Microseconds since the latest control frame, as of `now_us`.
    pub fn silent_for(&self, now_us: u64) -> u64 {
        now_us.saturating_sub(self.last_ctrl_us.load(Ordering::Acquire))
    }

    /// The gap (µs) after which one more silent period is "a missed
    /// round": the cadence EWMA, floored by the policy's `min_gap`.
    pub fn expected_gap_us(&self, min_gap: Duration) -> u64 {
        self.ewma_gap_us.load(Ordering::Acquire).max(min_gap.as_micros() as u64)
    }

    /// Reset the last-contact mark to `now_us` — called after a takeover
    /// so the new coordinator gets a full grace window.
    pub fn reset(&self, now_us: u64) {
        self.last_ctrl_us.store(now_us, Ordering::Release);
    }
}

/// A failover transition observed by `Cluster::poll_failover` (drained in
/// order, like `ScaleEvent` for elastic membership).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailoverEvent {
    /// The control downlink went silent past the policy threshold: the
    /// coordinator holding `term` is declared dead.
    CoordinatorDead {
        /// How long the downlink had been silent when death was declared.
        silent_for: Duration,
        /// The leadership term of the coordinator being given up on.
        term: u64,
    },
    /// A mirror was promoted to coordinator.
    Promoted {
        /// The promoted site (lowest live [`SiteId`] at declaration time).
        site: SiteId,
        /// Its leadership term — strictly above every previous term, so
        /// stale frames from the old coordinator are fenced everywhere.
        term: u64,
        /// The membership epoch the new coordinator stamps on rounds.
        epoch: u64,
        /// Journal entries replayed beyond the successor's own frontier
        /// during zero-loss handoff (0 without durability, or when the
        /// successor was already fully caught up).
        replayed: usize,
    },
}
